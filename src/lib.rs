//! # carta — Compositional Automotive Real-Time Analysis
//!
//! A from-scratch, open reproduction of the SymTA/S technology surveyed
//! in *"How OEMs and Suppliers can face the Network Integration
//! Challenges"* (Richter, Jersak, Ernst, 2006): CAN worst-case
//! response-time analysis with bit stuffing, controller types and
//! bus-error models; ECU (OSEK) scheduling analysis; compositional
//! system-level analysis via standard event models; sensitivity,
//! message-loss and extensibility exploration; SPEA2-based CAN-ID
//! optimization; and the supply-chain contract layer (datasheets,
//! requirement specifications, iterative refinement).
//!
//! This crate is a facade: it re-exports the workspace crates under
//! one name. See the individual crates for the full documentation:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `carta-core` | time, event models, load analysis, compositional engine |
//! | [`can`] | `carta-can` | CAN model, error models, WCRT analysis |
//! | [`ecu`] | `carta-ecu` | OSEK tasks, ECU analysis, TimeTables, send jitters |
//! | [`kmatrix`] | `carta-kmatrix` | K-Matrix model, CSV I/O, case-study generator |
//! | [`sim`] | `carta-sim` | discrete-event bus simulator, traces, Gantt |
//! | [`engine`] | `carta-engine` | batched, parallel, memoized variant evaluation |
//! | [`obs`] | `carta-obs` | metrics registry, scoped-span tracing, sinks |
//! | [`explore`] | `carta-explore` | what-if scenarios, sensitivity, loss, extensibility |
//! | [`optim`] | `carta-optim` | SPEA2 and CAN-ID optimization |
//! | [`contract`] | `carta-contract` | datasheets, compatibility, duality, refinement |
//!
//! ## Quickstart
//!
//! ```
//! use carta::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The synthetic power-train case study (64 messages, 8 ECUs).
//! let network = powertrain_default().to_network()?;
//! // Experiment 1 of the paper: zero jitters, no errors — all fine.
//! let eval = Evaluator::default();
//! let report = eval.loss_vs_jitter(&network, &Scenario::best_case(), &[0.0])?;
//! assert_eq!(report.points[0].missed, 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use carta_can as can;
pub use carta_contract as contract;
pub use carta_core as core;
pub use carta_ecu as ecu;
pub use carta_engine as engine;
pub use carta_explore as explore;
pub use carta_kmatrix as kmatrix;
pub use carta_obs as obs;
pub use carta_optim as optim;
pub use carta_sim as sim;

/// One-stop import of the most common types across all crates.
pub mod prelude {
    pub use carta_can::prelude::*;
    pub use carta_contract::prelude::*;
    pub use carta_core::{
        analysis::ResponseBounds,
        comp::{CompositionalSystem, NodeRef, Resource, SlotResponse},
        event_model::{ActivationKind, EventModel},
        load::{bus_load, LoadReport, TrafficSource},
        time::Time,
        AnalysisError,
    };
    pub use carta_ecu::prelude::*;
    pub use carta_engine::prelude::*;
    pub use carta_explore::prelude::*;
    pub use carta_kmatrix::prelude::*;
    pub use carta_optim::prelude::*;
    pub use carta_sim::prelude::*;
}
