//! CAN-ID optimization — the paper's Section 4.3: eliminate message
//! loss by re-assigning identifiers with the SPEA2 genetic algorithm,
//! "configured to favor robust configurations over sensitive ones".
//!
//! Run with: `cargo run --release --example optimization`
//! (release mode strongly recommended — the GA runs thousands of
//! analyses).

use carta::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = powertrain_default().to_network()?;
    let grid = paper_jitter_grid();
    let eval = Evaluator::default();

    let before_worst = eval.loss_vs_jitter(&net, &Scenario::worst_case(), &grid)?;
    println!("non-optimized worst case:");
    print_curve(&before_worst);

    println!("\nrunning SPEA2 (population 40, archive 20, 30 generations)...");
    let result = optimize_can_ids(&net, &OptimizeIdsConfig::default());
    println!(
        "done after {} evaluations; winner objectives: loss@25%={}, loss@60%={}, robustness={:.1}",
        result.archive.evaluations,
        result.objectives[0],
        result.objectives[1],
        result.objectives[2]
    );

    let after_worst = eval.loss_vs_jitter(&result.optimized, &Scenario::worst_case(), &grid)?;
    println!("\noptimized worst case:");
    print_curve(&after_worst);

    let at_25 = after_worst.fraction_at(0.25).expect("sampled");
    println!(
        "\nmessage loss at 25 % jitter, worst case: {:.1} % (paper: optimized system \
         \"does not loose a single message at 25% jitter\")",
        at_25 * 100.0
    );

    println!(
        "\nPareto archive ({} solutions):",
        result.archive.archive.len()
    );
    for ind in result.archive.archive.iter().take(8) {
        println!(
            "  loss@25%={:<4} loss@60%={:<4} robustness={:.2}",
            ind.objectives[0], ind.objectives[1], ind.objectives[2]
        );
    }
    Ok(())
}

fn print_curve(curve: &LossCurve) {
    print!("  jitter: ");
    for p in &curve.points {
        print!("{:>5.0}%", p.jitter_ratio * 100.0);
    }
    print!("\n  loss:   ");
    for p in &curve.points {
        print!("{:>5.1}%", p.fraction() * 100.0);
    }
    println!();
}
