//! Compositional system analysis across two buses and a gateway —
//! the multi-resource scenario behind the paper's Sec. 5 remark that
//! "gatewaying strategies can be optimized" and the heart of the
//! SymTA/S composition loop (refs. [12, 13]).
//!
//! Topology: a power-train bus, a gateway ECU forwarding one signal,
//! and a chassis bus. The signal's jitter accumulates hop by hop:
//! bus 1 response jitter → gateway task response jitter → bus 2
//! activation jitter, all handled by the global fixpoint iteration.
//!
//! Run with: `cargo run --example gateway_system`

use carta::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Bus 1: power train ------------------------------------------------
    let mut bus1 = CanNetwork::new(500_000);
    let ems = bus1.add_node(Node::new("EMS", ControllerType::FullCan));
    let gw1 = bus1.add_node(Node::new("GW", ControllerType::FullCan));
    let _ = gw1;
    bus1.add_message(CanMessage::new(
        "engine_rpm",
        CanId::standard(0x100)?,
        Dlc::new(8),
        Time::from_ms(10),
        Time::from_ms(1),
        ems,
    ));
    bus1.add_message(CanMessage::new(
        "throttle_pos",
        CanId::standard(0x180)?,
        Dlc::new(4),
        Time::from_ms(10),
        Time::ZERO,
        ems,
    ));

    // --- The gateway ECU -----------------------------------------------------
    let gateway_tasks = vec![
        Task::periodic(
            "routing",
            Priority(2),
            Time::from_ms(10), // activated per received engine_rpm
            Time::from_us(50),
            Time::from_us(200),
        ),
        Task::periodic(
            "housekeeping",
            Priority(1),
            Time::from_ms(50),
            Time::from_us(100),
            Time::from_ms(1),
        ),
    ];

    // --- Bus 2: chassis ------------------------------------------------------
    let mut bus2 = CanNetwork::new(250_000);
    let gw2 = bus2.add_node(Node::new("GW", ControllerType::FullCan));
    let esp = bus2.add_node(Node::new("ESP", ControllerType::FullCan));
    bus2.add_message(CanMessage::new(
        "engine_rpm_fwd",
        CanId::standard(0x110)?,
        Dlc::new(8),
        Time::from_ms(10),
        Time::ZERO, // derived by the composition, not assumed
        gw2,
    ));
    bus2.add_message(CanMessage::new(
        "yaw_rate",
        CanId::standard(0x090)?,
        Dlc::new(6),
        Time::from_ms(20),
        Time::from_ms(2),
        esp,
    ));

    // --- Compose -------------------------------------------------------------
    let bus1_res = CanBusResource::with_errors(
        "powertrain",
        bus1.clone(),
        std::sync::Arc::new(SporadicErrors::new(Time::from_ms(20))),
    );
    let gw_res = EcuResource::new("gateway", gateway_tasks);
    let bus2_res = CanBusResource::with_errors(
        "chassis",
        bus2.clone(),
        std::sync::Arc::new(SporadicErrors::new(Time::from_ms(20))),
    );

    let mut sys = CompositionalSystem::new();
    let b1 = sys.add_resource(Box::new(bus1_res));
    let gw = sys.add_resource(Box::new(gw_res));
    let b2 = sys.add_resource(Box::new(bus2_res));

    // External sources: every locally-originated stream.
    sys.set_source(NodeRef::new(b1, 0), bus1.messages()[0].activation)?;
    sys.set_source(NodeRef::new(b1, 1), bus1.messages()[1].activation)?;
    sys.set_source(NodeRef::new(gw, 1), EventModel::periodic(Time::from_ms(50)))?;
    sys.set_source(NodeRef::new(b2, 1), bus2.messages()[1].activation)?;
    // The chain: engine_rpm on bus 1 → routing task → forwarded frame.
    sys.connect(NodeRef::new(b1, 0), NodeRef::new(gw, 0))?;
    sys.connect(NodeRef::new(gw, 0), NodeRef::new(b2, 0))?;

    let result = sys.analyze()?;
    println!(
        "global fixpoint reached after {} iterations\n",
        result.iterations()
    );

    let hops = [
        ("engine_rpm @ powertrain bus", NodeRef::new(b1, 0)),
        ("routing     @ gateway ECU", NodeRef::new(gw, 0)),
        ("rpm_fwd     @ chassis bus", NodeRef::new(b2, 0)),
    ];
    println!(
        "{:<28} {:>12} {:>12} {:>14}",
        "hop", "BCRT", "WCRT", "input jitter"
    );
    let mut end_to_end_worst = Time::ZERO;
    let mut end_to_end_best = Time::ZERO;
    for (label, node) in hops {
        let r = result.response(node);
        println!(
            "{:<28} {:>12} {:>12} {:>14}",
            label,
            r.best().to_string(),
            r.worst().to_string(),
            result.activation(node).jitter().to_string()
        );
        end_to_end_worst += r.worst();
        end_to_end_best += r.best();
    }
    println!("\nend-to-end latency engine_rpm → ESP: [{end_to_end_best}, {end_to_end_worst}]");
    println!(
        "arrival model at ESP: {}",
        result.output(NodeRef::new(b2, 0))
    );

    // --- Gatewaying strategies (paper Sec. 5) -------------------------------
    // How should the gateway move frames? Compare the two archetypes on
    // the streams this gateway forwards.
    let streams = vec![ForwardedStream {
        name: "engine_rpm".into(),
        arrival: result.output(NodeRef::new(b1, 0)),
        copy_cost: Time::from_us(60),
    }];
    let overheadful = EcuAnalysisConfig {
        overhead: OsekOverhead {
            activate: Time::from_us(40),
            terminate: Time::from_us(20),
            preempt: Time::from_us(15),
        },
        ..EcuAnalysisConfig::default()
    };
    println!(
        "
gatewaying strategies for the forwarded stream:"
    );
    for (label, strategy) in [
        (
            "per-signal task",
            ForwardingStrategy::PerSignal { top_priority: 9 },
        ),
        (
            "polled batch @5ms",
            ForwardingStrategy::PolledBatch {
                poll_period: Time::from_ms(5),
                priority: 9,
            },
        ),
    ] {
        let plan = plan_gateway(&streams, strategy, &overheadful)?;
        let (_, delay) = &plan.per_stream_delay[0];
        println!(
            "  {label:<18} forwarding delay ≤ {delay}, gateway CPU {:.2} %",
            plan.utilization * 100.0
        );
    }
    Ok(())
}
