//! The oversampling fallacy — the paper's Section 2, executable:
//!
//! > "conservatively allowing 'N out of M' messages to get lost is not
//! > an unusual way to 'guarantee' that a minimum number of messages
//! > gets through. But sending significantly more messages than
//! > actually 'required' further increases bus load and should be
//! > avoided, since this also increases the number of lost messages."
//!
//! We build a loaded bus where one message occasionally misses under
//! burst errors, then compare three reactions:
//!
//! 1. **accept & measure** — quantify the N-out-of-M behaviour,
//! 2. **oversample** — double the victim's rate ("one of the two will
//!    get through"): watch *total* loss rise,
//! 3. **analyze & fix** — reassign identifiers (Audsley) instead:
//!    loss gone, load unchanged.
//!
//! Run with: `cargo run --release --example oversampling_fallacy`

use carta::prelude::*;

fn base_net() -> Result<CanNetwork, Box<dyn std::error::Error>> {
    let mut net = CanNetwork::new(125_000);
    let a = net.add_node(Node::new("A", ControllerType::FullCan));
    let b = net.add_node(Node::new("B", ControllerType::FullCan));
    // The victim: moderately fast, but stuck at a weak identifier.
    net.add_message(CanMessage::new(
        "victim",
        CanId::standard(0x400)?,
        Dlc::new(8),
        Time::from_ms(10),
        Time::from_ms(2),
        a,
    ));
    for (k, (period, jitter)) in [(10u64, 2u64), (20, 4), (20, 2), (50, 5), (50, 0)]
        .iter()
        .enumerate()
    {
        net.add_message(CanMessage::new(
            format!("bg{k}"),
            CanId::standard(0x100 + 16 * k as u32)?,
            Dlc::new(8),
            Time::from_ms(*period),
            Time::from_ms(*jitter),
            if k % 2 == 0 { a } else { b },
        ));
    }
    Ok(net)
}

fn report(label: &str, net: &CanNetwork) -> Result<usize, Box<dyn std::error::Error>> {
    let analysis = Scenario::worst_case().analyze(net)?;
    let load = net.load(StuffingMode::WorstCase).utilization_percent();
    println!(
        "{label:<28} load {load:>5.1} %  analysis: {:>2} of {} messages can be lost",
        analysis.missed_count(),
        analysis.messages.len()
    );
    Ok(analysis.missed_count())
}

fn simulate_losses(net: &CanNetwork) -> u64 {
    let injector = BurstInjection {
        burst_len: 3,
        intra_gap: Time::from_us(200),
        inter_burst: Time::from_us(25_300),
        phase: Time::from_ms(1),
    };
    let sim = simulate(
        net,
        &injector,
        &SimConfig {
            horizon: Time::from_s(10),
            stuffing: SimStuffing::Random,
            record_trace: false,
            ..SimConfig::default()
        },
    );
    let victim = sim
        .by_name("victim")
        .or_else(|| sim.by_name("victim_2x"))
        .expect("present");
    println!(
        "    simulated 10 s: victim missed {} of {} instances \
         (worst window: {} of any 10), total lost on bus: {}",
        victim.deadline_misses + victim.overwritten,
        victim.queued,
        victim.worst_misses_in_window(10),
        sim.total_overwritten() + sim.stats.iter().map(|s| s.deadline_misses).sum::<u64>()
    );
    sim.total_overwritten() + sim.stats.iter().map(|s| s.deadline_misses).sum::<u64>()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== the oversampling fallacy (paper Sec. 2) ===\n");

    // --- 1. The original, slightly lossy design ---------------------------
    let net = base_net()?;
    report("original design", &net)?;
    let base_loss = simulate_losses(&net);

    // --- 2. The 'N out of M' reflex: double the victim's rate -------------
    let mut oversampled = net.clone();
    {
        let (idx, _) = oversampled.message_by_name("victim").expect("present");
        let m = &mut oversampled.messages_mut()[idx];
        m.name = "victim_2x".into();
        m.activation = EventModel::periodic_with_jitter(Time::from_ms(5), Time::from_ms(2));
    }
    println!();
    report("oversampled (victim @5ms)", &oversampled)?;
    let over_loss = simulate_losses(&oversampled);

    // --- 3. The analysis-guided fix: reassign identifiers ------------------
    let scenario = Scenario::worst_case();
    let prepared = scenario.apply(&net);
    let order = audsley_assignment(
        &prepared,
        scenario.errors.model().as_ref(),
        &scenario.analysis_config(),
    )?;
    println!();
    match order {
        Some(order) => {
            let fixed = order.apply(&net);
            report("Audsley-repaired IDs", &fixed)?;
            let fixed_loss = simulate_losses(&fixed);
            println!(
                "\nconclusion: oversampling {} total losses ({base_loss} → {over_loss}), \
                 the ID fix removed them ({base_loss} → {fixed_loss}) at identical load.",
                if over_loss > base_loss {
                    "increased"
                } else {
                    "did not decrease"
                },
            );
        }
        None => println!("no feasible reassignment — bus genuinely overloaded"),
    }
    Ok(())
}
