//! Simulation vs. analysis — the paper's core argument made visible
//! (Sec. 2: simulation "suffers from serious corner case coverage
//! problems"):
//!
//! * the simulator's observed maxima never exceed the analytical
//!   bounds (soundness), and
//! * they routinely stay *below* them — the corner cases a test bench
//!   would miss are exactly the gap printed in the last column.
//!
//! Also renders a Figure-2-style bus Gantt trace with jitters, bursts
//! and error frames.
//!
//! Run with: `cargo run --release --example simulation_vs_analysis`

use carta::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut net = CanNetwork::new(500_000);
    let a = net.add_node(Node::new("EMS", ControllerType::FullCan));
    let b = net.add_node(Node::new("ESP", ControllerType::FullCan));
    net.add_message(CanMessage::new(
        "rpm",
        CanId::standard(0x100)?,
        Dlc::new(8),
        Time::from_ms(5),
        Time::from_ms(1),
        a,
    ));
    net.add_message(
        CanMessage::new(
            "burst_diag",
            CanId::standard(0x150)?,
            Dlc::new(8),
            Time::from_ms(20),
            Time::ZERO,
            a,
        )
        .with_activation(EventModel::burst(Time::from_ms(20), 3, Time::from_us(300))),
    );
    net.add_message(CanMessage::new(
        "yaw",
        CanId::standard(0x200)?,
        Dlc::new(6),
        Time::from_ms(10),
        Time::from_ms(2),
        b,
    ));
    net.add_message(CanMessage::new(
        "status",
        CanId::standard(0x400)?,
        Dlc::new(4),
        Time::from_ms(50),
        Time::from_ms(5),
        b,
    ));

    // Analysis: sporadic errors at least 10 ms apart.
    let errors = SporadicErrors::new(Time::from_ms(10));
    let analysis = analyze_bus(&net, &errors, &AnalysisConfig::default())?;

    // Simulation: same system, random phasings, periodic injection that
    // stays within the analytical error bound.
    let injector = PeriodicInjection {
        interval: Time::from_us(10_700), // ≥ 10 ms, phase-sweeping
        phase: Time::from_us(123),
    };
    let sim = simulate(
        &net,
        &injector,
        &SimConfig {
            horizon: Time::from_s(20),
            stuffing: SimStuffing::Random,
            ..SimConfig::default()
        },
    );

    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>12} {:>10}",
        "message", "sim p50", "sim p99", "sim max", "analysis", "coverage"
    );
    for m in &analysis.messages {
        let stats = sim.by_name(&m.name).expect("simulated");
        let sim_max = stats.max_response.expect("instances ran");
        let bound = m.outcome.wcrt().expect("bounded");
        assert!(
            sim_max <= bound,
            "soundness violated for {}: sim {} > analysis {}",
            m.name,
            sim_max,
            bound
        );
        println!(
            "{:<12} {:>10} {:>10} {:>10} {:>12} {:>9.0}%",
            m.name,
            stats.percentile(0.5).expect("ran").to_string(),
            stats.percentile(0.99).expect("ran").to_string(),
            sim_max.to_string(),
            bound.to_string(),
            100.0 * sim_max.as_ns() as f64 / bound.as_ns() as f64
        );
    }
    println!(
        "\n20 s of simulated traffic: {} error hits, observed utilization {:.1} %",
        sim.trace.error_count(),
        sim.observed_utilization() * 100.0
    );

    // Figure 2: a window of the bus trace.
    let labels: Vec<String> = net.messages().iter().map(|m| m.name.clone()).collect();
    let gantt = render(
        &sim.trace,
        &labels,
        &GanttConfig {
            from: Time::ZERO,
            to: Time::from_ms(20),
            columns: 100,
        },
    );
    println!(
        "\nFigure-2-style trace (first 20 ms; # = frame, R = retransmission, x = error):\n{gantt}"
    );
    Ok(())
}
