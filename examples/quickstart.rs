//! Quickstart: model a small CAN bus, run the load model and the real
//! schedulability analysis, and see why "load analysis is not enough"
//! (paper Sec. 3.1).
//!
//! Run with: `cargo run --example quickstart`

use carta::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 500 kbit/s power-train bus with two ECUs.
    let mut net = CanNetwork::new(500_000);
    let ems = net.add_node(Node::new("EMS", ControllerType::FullCan));
    let tcu = net.add_node(Node::new("TCU", ControllerType::BasicCan));

    net.add_message(CanMessage::new(
        "engine_rpm",
        CanId::standard(0x100)?,
        Dlc::new(8),
        Time::from_ms(10),
        Time::ZERO,
        ems,
    ));
    net.add_message(CanMessage::new(
        "throttle_pos",
        CanId::standard(0x120)?,
        Dlc::new(4),
        Time::from_ms(10),
        Time::from_ms(1),
        ems,
    ));
    net.add_message(CanMessage::new(
        "gear_state",
        CanId::standard(0x1A0)?,
        Dlc::new(2),
        Time::from_ms(20),
        Time::from_ms(3),
        tcu,
    ));
    net.validate()?;

    // 1. The popular-but-weak load model.
    let load = net.load(StuffingMode::WorstCase);
    println!(
        "bus load: {:.1} % of {} kbit/s (overloaded: {})",
        load.utilization_percent(),
        net.bit_rate() / 1000,
        load.is_overloaded()
    );

    // 2. The real analysis: response times, blocking, deadlines,
    //    including sporadic bus errors every 50 ms.
    let errors = SporadicErrors::new(Time::from_ms(50));
    let report = analyze_bus(&net, &errors, &AnalysisConfig::default())?;
    println!(
        "\n{:<14} {:>10} {:>10} {:>10} {:>8}",
        "message", "WCRT", "BCRT", "deadline", "ok"
    );
    for m in &report.messages {
        println!(
            "{:<14} {:>10} {:>10} {:>10} {:>8}",
            m.name,
            m.outcome
                .wcrt()
                .map(|t| t.to_string())
                .unwrap_or_else(|| "unbounded".into()),
            m.outcome
                .bcrt()
                .map(|t| t.to_string())
                .unwrap_or_else(|| "-".into()),
            m.deadline.to_string(),
            if m.misses_deadline() { "MISS" } else { "yes" }
        );
    }
    println!(
        "\nschedulable: {} ({} of {} messages can be lost)",
        report.schedulable(),
        report.missed_count(),
        report.messages.len()
    );
    Ok(())
}
