//! Network dimensioning and risk management — the forward-looking uses
//! of the analysis from the paper's conclusion: "OEMs can evaluate
//! different network choices upfront … dimension optimized and robust
//! buses with known extensibility" and run "a multi-supplier
//! risk-management, possibly in combination with a penalty-reward
//! model".
//!
//! Run with: `cargo run --release --example network_dimensioning`

use carta::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = powertrain_default().to_network()?;
    let scenario = Scenario::worst_case();
    let eval = Evaluator::default();

    // --- 1. Which bus speed does this matrix need? ------------------------
    println!("--- bit-rate dimensioning (worst-case scenario) ---\n");
    let candidates = [125_000u64, 250_000, 500_000, 1_000_000];
    let options = eval.compare_bit_rates(&net, &scenario, &candidates, &EcuTemplate::default())?;
    println!(
        "{:>10} {:>8} {:>13} {:>14} {:>13}",
        "bit rate", "load", "schedulable", "jitter slack", "ECU headroom"
    );
    for o in &options {
        println!(
            "{:>7} k {:>7.1}% {:>13} {:>14} {:>13}",
            o.bit_rate / 1000,
            o.load * 100.0,
            o.schedulable,
            o.jitter_slack
                .map(|s| format!("{:.0} %", s * 100.0))
                .unwrap_or_else(|| "-".into()),
            o.ecu_headroom
        );
    }
    match cheapest_sufficient(&options, 0.10) {
        Some(pick) => println!(
            "\ndimensioning: {} kbit/s is the slowest bus with ≥ 10 % jitter reserve",
            pick.bit_rate / 1000
        ),
        None => println!("\ndimensioning: no candidate meets the 10 % reserve"),
    }

    // --- 2. Buffer dimensioning -------------------------------------------
    println!("\n--- buffer dimensioning ---\n");
    let depths = eval.required_tx_depths(&net, &scenario)?;
    let deep: Vec<&TxBufferNeed> = depths.iter().filter(|d| d.depth != Some(1)).collect();
    println!(
        "sender queues: {} of {} messages need depth 1; exceptions: {}",
        depths.len() - deep.len(),
        depths.len(),
        if deep.is_empty() {
            "none".to_string()
        } else {
            deep.iter()
                .map(|d| format!("{} ({:?})", d.message, d.depth))
                .collect::<Vec<_>>()
                .join(", ")
        }
    );
    for (node, name) in [(6usize, "GW_BODY"), (7, "GW_CHAS")] {
        if let Some(depth) =
            eval.required_rx_depth(&net, &Scenario::best_case(), node, Time::from_ms(10))?
        {
            println!("gateway {name}: a 10 ms routing cycle needs a queue of {depth} frames");
        }
    }

    // --- 3. Multi-supplier risk --------------------------------------------
    println!("\n--- multi-supplier risk (50 % jitter slip, penalty 10/loss) ---\n");
    let assumed = with_assumed_unknown_jitter(&net, 0.15);
    // Suppliers own the nodes' messages; EMS is in-house (guaranteed).
    let mut commitments = Vec::new();
    for m in assumed.messages() {
        let node = &assumed.nodes()[m.sender].name;
        let (supplier, status) = match node.as_str() {
            "EMS" => ("in-house".to_string(), CommitmentStatus::Guaranteed),
            other => (format!("{other} supplier"), CommitmentStatus::Committed),
        };
        commitments.push(Commitment {
            supplier,
            message: m.name.clone(),
            status,
        });
    }
    let report = assess_suppliers(&assumed, &scenario, &commitments, &RiskConfig::default())?;
    println!("baseline deadline misses: {}\n", report.baseline_missed);
    println!(
        "{:<20} {:>9} {:>10} {:>13} {:>8}",
        "supplier", "messages", "slippable", "added losses", "score"
    );
    for s in &report.suppliers {
        println!(
            "{:<20} {:>9} {:>10} {:>13} {:>8.1}",
            s.supplier, s.messages, s.slippable, s.added_losses, s.score
        );
    }
    match report.most_critical() {
        Some(s) => println!(
            "\nrisk focus: `{}` — tighten its contract first (penalty-reward per ref. [14])",
            s.supplier
        ),
        None => println!("\nno supplier slip endangers the integration at this slip factor"),
    }
    Ok(())
}
