//! Supply-chain workflow — the paper's Section 5 / Figure 6 end to end:
//!
//! 1. the OEM checks what its information scope covers (Fig. 3),
//! 2. starts an analysis on assumptions (iterative refinement),
//! 3. derives send-jitter **requirements** for a supplier,
//! 4. the supplier answers with a **datasheet** from its own ECU
//!    analysis (IP stays private — only event models cross the fence),
//! 5. both directions are compatibility-checked, and the OEM commits
//!    the datasheet, replacing assumption by guarantee.
//!
//! Run with: `cargo run --example supply_chain`

use carta::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The OEM's bus: engine controller (in-house) + transmission (supplier).
    let mut net = CanNetwork::new(500_000);
    let ems = net.add_node(Node::new("EMS", ControllerType::FullCan));
    let tcu = net.add_node(Node::new("TCU", ControllerType::FullCan));
    net.add_message(CanMessage::new(
        "engine_rpm",
        CanId::standard(0x100)?,
        Dlc::new(8),
        Time::from_ms(10),
        Time::from_ms(1), // known: in-house
        ems,
    ));
    net.add_message(CanMessage::new(
        "gear_state",
        CanId::standard(0x200)?,
        Dlc::new(4),
        Time::from_ms(20),
        Time::ZERO, // unknown: supplier-owned
        tcu,
    ));
    let _ = ems;

    // --- 1. What does the OEM actually know? (Fig. 3) --------------------
    let scope = InformationScope::oem(["engine_rpm"]);
    let readiness = analysis_readiness(&scope, &net);
    println!("--- information scope (Fig. 3) ---\n{readiness}");

    // --- 2. Analyze on assumptions (Sec. 5.2) ----------------------------
    let mut session = RefinementSession::start(&net, Scenario::worst_case(), 0.25)?;
    println!(
        "initial analysis on assumptions: {} deadline misses, {} assumed jitters",
        session.current_missed(),
        session.assumed_remaining()
    );

    // --- 3. OEM formulates requirements for the TCU supplier -------------
    let requirements = oem_send_requirements(&net, &Scenario::worst_case(), tcu, 0.9, 0.8)?;
    println!("\n--- OEM requirements toward TCU supplier ---");
    for (name, bound) in requirements.iter() {
        println!("  {name}: send model must refine {bound}");
    }

    // --- 4. The supplier's side: ECU analysis → datasheet -----------------
    // (The task set is the supplier's IP; only the datasheet leaves.)
    let supplier_tasks = vec![
        Task::periodic(
            "shift_ctrl",
            Priority(3),
            Time::from_ms(5),
            Time::from_us(300),
            Time::from_ms(1),
        )
        .cooperative(Time::from_us(500)),
        Task::periodic(
            "comm_tx",
            Priority(2),
            Time::from_ms(20),
            Time::from_us(100),
            Time::from_us(500),
        ),
        Task::periodic(
            "diag",
            Priority(1),
            Time::from_ms(100),
            Time::from_us(50),
            Time::from_ms(2),
        ),
    ];
    let overhead = OsekOverhead {
        activate: Time::from_us(20),
        terminate: Time::from_us(10),
        preempt: Time::from_us(15),
    };
    let datasheet = supplier_send_datasheet(
        "TCU supplier",
        &supplier_tasks,
        &EcuAnalysisConfig {
            overhead,
            ..EcuAnalysisConfig::default()
        },
        &[(1, "gear_state")],
    )?;
    println!("\n--- supplier datasheet ---");
    for (name, model) in datasheet.iter() {
        println!("  {name}: guaranteed {model}");
    }

    // --- 5. Close the loop (Fig. 6) ---------------------------------------
    let compat = check(&datasheet, &requirements);
    println!("\n--- compatibility check ---\n{compat}");
    assert!(compat.all_satisfied(), "the supplier meets the requirement");

    let updated = session.commit_datasheet(&datasheet)?;
    println!(
        "committed datasheet ({updated} messages): {} deadline misses, {} assumptions left",
        session.current_missed(),
        session.assumed_remaining()
    );

    // --- 6. Multi-round negotiation (Sec. 5.2) -----------------------------
    // Suppose the supplier's capability misses the first budget: the
    // negotiation freezes what fits, re-derives budgets from the freed
    // slack, and retries.
    let mut capability = Datasheet::new("TCU supplier");
    for (name, model) in datasheet.iter() {
        capability.guarantee(name, *model);
    }
    let outcome = negotiate(&net, &Scenario::worst_case(), tcu, &capability, 6)?;
    println!(
        "\nnegotiation: {} round(s), {} agreed, {} unresolved",
        outcome.rounds.len(),
        outcome.agreed.len(),
        outcome.unresolved.len()
    );

    // And the dual direction: the OEM guarantees arrival timing, which
    // the supplier checks against its freshness needs.
    let (arrivals, unguaranteed) =
        oem_receive_guarantees(session.network(), &Scenario::worst_case())?;
    assert!(unguaranteed.is_empty());
    let rpm_arrival = arrivals.get("engine_rpm").expect("guaranteed");
    println!("\nOEM guarantees engine_rpm arrival: {rpm_arrival}");
    let verdict = check_freshness(Time::from_ms(15), rpm_arrival);
    println!("TCU freshness requirement (≤ 15 ms gap): {verdict}");
    Ok(())
}
