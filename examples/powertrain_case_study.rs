//! The full power-train case study of the paper's Section 4:
//!
//! 1. import the K-Matrix (here: the synthetic generator, exported and
//!    re-imported through the CSV layer to exercise the real pipeline),
//! 2. experiment 1 — zero jitters, no errors: all deadlines met,
//! 3. experiment 2 — "realistic" jitters for the unknown messages plus
//!    sporadic and burst error models,
//! 4. sensitivity classification (Fig. 4) and message-loss curves
//!    (Fig. 5, non-optimized).
//!
//! Run with: `cargo run --release --example powertrain_case_study`

use carta::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- K-Matrix import ------------------------------------------------
    let matrix = powertrain_default();
    let csv = to_csv(&matrix);
    let matrix = from_csv(&csv)?; // round-trip through the CSV layer
    let net = matrix.to_network()?;
    println!(
        "imported K-Matrix `{}`: {} messages, {} nodes, {} with known jitter",
        matrix.name,
        matrix.rows.len(),
        matrix.nodes.len(),
        matrix.known_jitter_count()
    );
    println!(
        "worst-case bus load: {:.1} %\n",
        net.load(StuffingMode::WorstCase).utilization_percent()
    );

    // --- Experiment 1: zero jitters, no errors ---------------------------
    let zero = with_jitter_ratio(&net, 0.0);
    let report = Scenario::best_case().analyze(&zero)?;
    println!(
        "experiment 1 (zero jitter, no errors): {} / {} deadlines met",
        report.messages.len() - report.missed_count(),
        report.messages.len()
    );
    assert!(report.schedulable(), "paper: all messages meet deadlines");

    // --- Experiment 2: realistic jitters + error models -------------------
    // Known jitters stay; unknown ones are assumed at 20 % of period.
    let realistic = with_assumed_unknown_jitter(&net, 0.20);
    for scenario in [
        Scenario::best_case(),
        Scenario::sporadic_errors(Time::from_ms(10)),
        Scenario::worst_case(),
    ] {
        let report = scenario.analyze(&realistic)?;
        println!(
            "experiment 2 under `{}`: {} / {} messages can be lost (max WCRT {})",
            scenario.name,
            report.missed_count(),
            report.messages.len(),
            report
                .max_wcrt()
                .map(|t| t.to_string())
                .unwrap_or_else(|| "unbounded".into()),
        );
    }

    // --- Sensitivity (Fig. 4) --------------------------------------------
    let grid = paper_jitter_grid();
    let eval = Evaluator::default();
    let series = eval.response_vs_jitter(&net, &Scenario::worst_case(), &grid, None)?;
    let mut by_class = std::collections::BTreeMap::new();
    for s in &series {
        *by_class.entry(s.classify().to_string()).or_insert(0usize) += 1;
    }
    println!("\nsensitivity classes over 0–60 % jitter (Fig. 4):");
    for (class, count) in by_class {
        println!("  {class:<20} {count} messages");
    }

    // --- Message loss (Fig. 5, non-optimized curves) ----------------------
    println!("\nmessage loss vs jitter (Fig. 5, dotted curves):");
    println!("{:>8} {:>12} {:>12}", "jitter", "best case", "worst case");
    let best = eval.loss_vs_jitter(&net, &Scenario::best_case(), &grid)?;
    let worst = eval.loss_vs_jitter(&net, &Scenario::worst_case(), &grid)?;
    for (b, w) in best.points.iter().zip(&worst.points) {
        println!(
            "{:>7.0}% {:>11.1}% {:>11.1}%",
            b.jitter_ratio * 100.0,
            b.fraction() * 100.0,
            w.fraction() * 100.0
        );
    }
    Ok(())
}
