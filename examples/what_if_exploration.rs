//! What-if exploration — the integration questions of the paper's
//! Section 2, answered "within minutes, without any simulation or test
//! equipment":
//!
//! * Is the network (temporarily) overloaded?
//! * Which messages can get lost, and how often?
//! * Can more ECUs (and how many) be connected without overloading?
//! * How about diagnosis and ECU flashing?
//!
//! Run with: `cargo run --release --example what_if_exploration`

use carta::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = powertrain_default().to_network()?;

    // --- Is the network overloaded? --------------------------------------
    let load = net.load(StuffingMode::WorstCase);
    println!(
        "Q: Is the network overloaded?\nA: load model says {:.1} % — fine for the 60 % camp, \
         critical for the 40 % camp; the analysis below is the real answer.\n",
        load.utilization_percent()
    );

    // --- Which messages can get lost? -------------------------------------
    let realistic = with_assumed_unknown_jitter(&net, 0.20);
    let report = Scenario::worst_case().analyze(&realistic)?;
    println!("Q: Which messages can get lost (worst case, 20 % assumed jitter)?");
    let lost: Vec<&str> = report
        .messages
        .iter()
        .filter(|m| m.misses_deadline())
        .map(|m| &*m.name)
        .collect();
    if lost.is_empty() {
        println!("A: none.\n");
    } else {
        println!(
            "A: {} of {}: {}\n",
            lost.len(),
            report.messages.len(),
            lost.join(", ")
        );
    }

    // --- How much jitter does the design tolerate? ------------------------
    let eval = Evaluator::default();
    let slack = eval.max_schedulable_jitter(&net, &Scenario::worst_case(), 1.0, 0.01)?;
    println!(
        "Q: How much uniform jitter does the current design tolerate (worst case)?\nA: {}\n",
        slack
            .map(|s| format!("up to {:.0} % of each period", s * 100.0))
            .unwrap_or_else(|| "none — already failing at zero jitter".into())
    );

    // --- Can more ECUs be connected? ---------------------------------------
    let template = EcuTemplate::default();
    let headroom = eval.max_additional_ecus(&net, &Scenario::worst_case(), &template, 32)?;
    println!(
        "Q: Can more ECUs be connected?\nA: up to {headroom} additional ECUs \
         ({} messages of {} every {} each) still meet all deadlines.\n",
        template.messages_per_ecu,
        Dlc::new(template.dlc),
        template.period
    );

    // --- How about diagnosis and flashing? ---------------------------------
    let with_diag = with_diagnostic_stream(&net, Time::from_ms(5));
    let diag_report = Scenario::worst_case().analyze(&with_diag)?;
    println!(
        "Q: How about diagnosis and ECU flashing?\nA: with a tester stream (8-byte frames, \
         ≥ 5 ms apart) the bus {} — {} of {} messages can then be lost.",
        if diag_report.schedulable() {
            "still meets all deadlines"
        } else {
            "starts missing deadlines"
        },
        diag_report.missed_count(),
        diag_report.messages.len()
    );
    Ok(())
}
