//! Workspace-local stand-in for the subset of the `criterion` API that
//! carta's benches use: `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! The build environment has no access to crates.io, so this path crate
//! takes the `criterion` package name inside the workspace. It is a
//! straightforward wall-clock harness: per benchmark it warms up, picks
//! an iteration count targeting ~`measurement_time / sample_size` per
//! sample, then reports min/median/mean over the samples. No HTML
//! reports, no statistical regression testing — numbers print to stdout
//! in a stable `bench: <id> ... median <t>` format that scripts can
//! scrape.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter component.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter component.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to the benchmark closure; runs and times the routine.
pub struct Bencher<'a> {
    samples: u32,
    target_sample_time: Duration,
    test_mode: bool,
    result: &'a mut Option<Stats>,
}

impl Bencher<'_> {
    /// Times `routine`, keeping its return value alive via `black_box`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            // `--test`: execute the routine exactly once so CI can
            // smoke-check every benchmark without paying for sampling.
            let start = Instant::now();
            black_box(routine());
            let t = start.elapsed().as_secs_f64();
            *self.result = Some(Stats {
                min: t,
                median: t,
                mean: t,
                iters_per_sample: 1,
            });
            return;
        }
        // Warm-up and calibration: run until ~50ms elapsed to estimate
        // the per-iteration cost.
        let calib_start = Instant::now();
        let mut calib_iters: u64 = 0;
        loop {
            black_box(routine());
            calib_iters += 1;
            if calib_start.elapsed() >= Duration::from_millis(50) {
                break;
            }
        }
        let per_iter = calib_start.elapsed().as_secs_f64() / calib_iters as f64;
        let iters_per_sample =
            ((self.target_sample_time.as_secs_f64() / per_iter).ceil() as u64).max(1);

        let mut sample_secs = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            sample_secs.push(start.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
        sample_secs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let mean = sample_secs.iter().sum::<f64>() / sample_secs.len() as f64;
        *self.result = Some(Stats {
            min: sample_secs[0],
            median: sample_secs[sample_secs.len() / 2],
            mean,
            iters_per_sample,
        });
    }
}

#[derive(Debug, Clone, Copy)]
struct Stats {
    min: f64,
    median: f64,
    mean: f64,
    iters_per_sample: u64,
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo-bench forwards CLI args after `--bench <name>`; the only
        // positional argument criterion accepts is a name filter.
        // `--test` (like real criterion) runs every benchmark body once
        // instead of sampling; other flags (e.g. `--bench`, which cargo
        // appends for harness=false targets) are ignored.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        let test_mode = std::env::args().skip(1).any(|a| a == "--test");
        Criterion { filter, test_mode }
    }
}

impl Criterion {
    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    fn run_one(&mut self, id: &str, samples: u32, f: &mut dyn FnMut(&mut Bencher)) {
        if !self.matches(id) {
            return;
        }
        let mut result = None;
        let mut bencher = Bencher {
            samples,
            // Keep total time bounded: ~2s of measurement per benchmark.
            target_sample_time: Duration::from_secs_f64(2.0 / samples as f64),
            test_mode: self.test_mode,
            result: &mut result,
        };
        f(&mut bencher);
        match result {
            Some(s) if self.test_mode => println!(
                "bench: {id:<50} ok in {} (test mode — 1 iteration)",
                format_time(s.median),
            ),
            Some(s) => println!(
                "bench: {id:<50} median {:>12}  mean {:>12}  min {:>12}  ({} iters/sample, {} samples)",
                format_time(s.median),
                format_time(s.mean),
                format_time(s.min),
                s.iters_per_sample,
                samples,
            ),
            None => println!("bench: {id:<50} (no measurement — Bencher::iter never called)"),
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        self.run_one(id, 20, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            samples: 20,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    samples: u32,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = (n as u32).max(2);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion.run_one(&full, self.samples, &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion
            .run_one(&full, self.samples, &mut |b| f(b, input));
        self
    }

    /// Ends the group (kept for API parity; no teardown needed here).
    pub fn finish(&mut self) {}
}

/// Bundles benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", "10ms").to_string(), "f/10ms");
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }

    #[test]
    fn harness_measures_something() {
        let mut c = Criterion {
            filter: Some("picked".into()),
            test_mode: false,
        };
        let mut hits = 0u32;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(2);
            group.bench_function("picked", |b| {
                b.iter(|| {
                    hits += 1;
                    std::hint::black_box(3u64.pow(7))
                })
            });
            group.bench_function("skipped_by_filter", |b| b.iter(|| unreachable!()));
            group.finish();
        }
        assert!(hits > 0);
    }

    #[test]
    fn test_mode_runs_each_bench_exactly_once() {
        let mut c = Criterion {
            filter: None,
            test_mode: true,
        };
        let mut hits = 0u32;
        c.bench_function("once", |b| {
            b.iter(|| {
                hits += 1;
                std::hint::black_box(3u64.pow(7))
            })
        });
        assert_eq!(hits, 1);
    }
}
