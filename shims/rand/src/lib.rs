//! Workspace-local stand-in for the subset of the `rand` crate API that
//! carta uses (`StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen_range`,
//! `Rng::gen_bool`).
//!
//! The build environment has no access to crates.io, so this path crate
//! takes the `rand` package name inside the workspace. The generator is
//! xoshiro256++ seeded via SplitMix64 — deterministic per seed, which is
//! all the test-suite and the seeded simulator/optimizer require. The
//! streams differ from upstream `rand`'s ChaCha-based `StdRng`, but no
//! caller in this workspace depends on a specific stream, only on
//! determinism per seed.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seeding interface (API-compatible subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Low-level generator interface.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// High-level sampling helpers (API-compatible subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0,1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Maps 64 random bits onto `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types `Rng::gen_range` can sample uniformly (mirror of
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`; the caller guarantees `lo < hi`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform draw from `[lo, hi]`; the caller guarantees `lo <= hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

/// A range that `Rng::gen_range` can sample from.
///
/// The two impls are blanket over [`SampleUniform`] (as upstream) so
/// type inference can unify an unannotated literal range with the
/// target type.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain: every draw is in range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw from `[0, span)` by rejection sampling (unbiased).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let u = unit_f64(rng.next_u64()) as $t;
                lo + (hi - lo) * u
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let u = unit_f64(rng.next_u64()) as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Alias of [`StdRng`] (upstream `rand` offers a smaller generator;
    /// here both share the same engine).
    pub type SmallRng = StdRng;

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let first: Vec<u64> = (0..8).map(|_| a.gen_range(0..u64::MAX)).collect();
        let other: Vec<u64> = (0..8).map(|_| c.gen_range(0..u64::MAX)).collect();
        assert_ne!(first, other);
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u8..=8);
            assert!((3..=8).contains(&v));
            let w = rng.gen_range(10usize..20);
            assert!((10..20).contains(&w));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits={hits}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.gen_range(5u32..5);
    }
}
