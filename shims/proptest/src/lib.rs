//! Workspace-local stand-in for the subset of the `proptest` API that
//! carta's property tests use: the `proptest!` macro, integer-range and
//! tuple strategies, `prop_map`, `collection::vec`, `option::of`,
//! `any::<T>()`, simple regex-class string strategies, and the
//! `prop_assert*` macros.
//!
//! The build environment has no access to crates.io, so this path crate
//! takes the `proptest` package name inside the workspace. Differences
//! from upstream: no shrinking (failures report the generated case
//! as-is) and a deterministic per-test RNG (the test name seeds the
//! stream; `PROPTEST_CASES` overrides the case count).

use std::fmt;
use std::ops::{Range, RangeInclusive};

pub mod test_runner;

use test_runner::TestRng;

/// Seed bookkeeping for strategies that wrap external seeded
/// generators (e.g. `carta-testkit`'s network strategies, which draw a
/// `u64` seed and build the value with `StdRng`). Upstream proptest
/// persists failing cases to disk; this stand-in instead lets a
/// strategy [`record`](seeds::record) the seeds it consumed so the
/// `proptest!` failure message can print them — enough to replay the
/// case through `carta fuzz --seed <n>` from a CI log alone.
pub mod seeds {
    use std::cell::RefCell;

    thread_local! {
        static RECORDED: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    }

    /// Records a seed consumed while generating the current case.
    pub fn record(seed: u64) {
        RECORDED.with(|r| r.borrow_mut().push(seed));
    }

    /// Clears the record (the `proptest!` macro calls this before each
    /// case's generation phase).
    pub fn reset() {
        RECORDED.with(|r| r.borrow_mut().clear());
    }

    /// All seeds recorded since the last [`reset`].
    pub fn recorded() -> Vec<u64> {
        RECORDED.with(|r| r.borrow().clone())
    }

    /// Renders the recorded seeds as a replay hint for failure
    /// messages, or an empty string if no strategy recorded any.
    pub fn replay_hint() -> String {
        let recorded = recorded();
        if recorded.is_empty() {
            return String::new();
        }
        let list = recorded
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            " [strategy seeds: {list}; replay with `carta fuzz --seed <seed>` or `--repro <file>`]"
        )
    }
}

/// Failure raised by `prop_assert!`-style macros inside a case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// A value generator. Upstream proptest separates strategies from value
/// trees to support shrinking; this stand-in generates directly.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty => $draw:ident),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_int_strategy!(
    u8 => below, u16 => below, u32 => below, u64 => below, usize => below,
    i8 => below, i16 => below, i32 => below, i64 => below, isize => below
);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

/// `&str` strategies generate strings matching a small regex subset:
/// literal characters, `[...]` classes (with ranges), and `{m,n}`, `*`,
/// `+`, `?` quantifiers — enough for patterns like `"[a-z][a-z0-9_]{0,14}"`.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        regex_lite::generate(self, rng)
    }
}

mod regex_lite {
    use super::test_runner::TestRng;

    enum Atom {
        Literal(char),
        Class(Vec<char>),
    }

    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => {
                    let mut set = Vec::new();
                    let mut prev: Option<char> = None;
                    for d in chars.by_ref() {
                        match d {
                            ']' => break,
                            '-' if prev.is_some() => {
                                // Range start recorded in `prev`; complete
                                // it with the next char (held by marking
                                // prev as a pending range via sentinel).
                                set.push('\u{0}'); // placeholder: replaced below
                                continue;
                            }
                            _ => {
                                if set.last() == Some(&'\u{0}') {
                                    set.pop();
                                    let lo = prev.expect("range start");
                                    for ch in lo..=d {
                                        if ch != lo {
                                            set.push(ch);
                                        }
                                    }
                                } else {
                                    set.push(d);
                                }
                                prev = Some(d);
                            }
                        }
                    }
                    assert!(!set.is_empty(), "empty character class in `{pattern}`");
                    Atom::Class(set)
                }
                '\\' => Atom::Literal(chars.next().expect("escape target")),
                _ => Atom::Literal(c),
            };
            let (min, max) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for d in chars.by_ref() {
                        if d == '}' {
                            break;
                        }
                        spec.push(d);
                    }
                    match spec.split_once(',') {
                        Some((m, n)) => (
                            m.trim().parse().expect("quantifier min"),
                            n.trim().parse().expect("quantifier max"),
                        ),
                        None => {
                            let k = spec.trim().parse().expect("quantifier count");
                            (k, k)
                        }
                    }
                }
                Some('*') => {
                    chars.next();
                    (0usize, 8usize)
                }
                Some('+') => {
                    chars.next();
                    (1usize, 8usize)
                }
                Some('?') => {
                    chars.next();
                    (0usize, 1usize)
                }
                _ => (1usize, 1usize),
            };
            let count = min + rng.below((max - min + 1) as u64) as usize;
            for _ in 0..count {
                match &atom {
                    Atom::Literal(l) => out.push(*l),
                    Atom::Class(set) => out.push(set[rng.below(set.len() as u64) as usize]),
                }
            }
        }
        out
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The "any value of `T`" strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// An admissible length range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for vectors of `element` values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy yielding `None` or `Some(inner)`.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `Some` roughly three times out of four.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Everything a property-test module usually imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Defines property tests.
///
/// Supported grammar (the subset this workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u64..100, v in proptest::collection::vec(any::<u8>(), 0..=8)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (cfg = $cfg:expr; $( #[test] fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $crate::seeds::reset();
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property `{}` failed at case {}/{}: {}{}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e,
                            $crate::seeds::replay_hint()
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case
/// (not aborting the process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: both sides equal {:?}", a);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_test("unit");
        for _ in 0..1000 {
            let v = (0u64..100).generate(&mut rng);
            assert!(v < 100);
            let w = (1u8..=8).generate(&mut rng);
            assert!((1..=8).contains(&w));
            let s = "[a-z][a-z0-9_]{0,14}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 15, "{s}");
            assert!(s.chars().next().expect("non-empty").is_ascii_lowercase());
            let doubled = (0u32..10).prop_map(|x| x * 2).generate(&mut rng);
            assert!(doubled % 2 == 0 && doubled < 20);
            let v = crate::collection::vec(any::<u8>(), 0..=8).generate(&mut rng);
            assert!(v.len() <= 8);
            let o = crate::option::of(0u64..10).generate(&mut rng);
            assert!(o.is_none() || o.expect("some") < 10);
            let (a, b, c) = (0u8..2, 0u8..2, 0u8..2).generate(&mut rng);
            assert!(a < 2 && b < 2 && c < 2);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_wires_everything(x in 0u64..50, flag in any::<bool>()) {
            prop_assert!(x < 50);
            prop_assert_eq!(u64::from(flag) <= 1, true);
        }
    }

    #[test]
    #[should_panic(expected = "strategy seeds: 41")]
    fn failure_message_names_recorded_seeds() {
        mod inner {
            use crate::prelude::*;

            struct Seeded;
            impl Strategy for Seeded {
                type Value = u64;
                fn generate(&self, rng: &mut crate::test_runner::TestRng) -> u64 {
                    let seed = 41 + rng.below(1);
                    crate::seeds::record(seed);
                    seed
                }
            }

            proptest! {
                #![proptest_config(ProptestConfig::with_cases(2))]
                #[test]
                fn fails_with_seed(seed in Seeded) {
                    prop_assert!(seed > 100, "seed was {}", seed);
                }
            }
            pub fn run() {
                fails_with_seed();
            }
        }
        inner::run();
    }

    #[test]
    fn seed_record_resets_between_uses() {
        crate::seeds::reset();
        assert!(crate::seeds::recorded().is_empty());
        assert_eq!(crate::seeds::replay_hint(), "");
        crate::seeds::record(7);
        crate::seeds::record(9);
        assert_eq!(crate::seeds::recorded(), vec![7, 9]);
        assert!(crate::seeds::replay_hint().contains("7, 9"));
        crate::seeds::reset();
        assert!(crate::seeds::recorded().is_empty());
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        mod inner {
            use crate::prelude::*;
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]
                #[test]
                fn always_fails(x in 0u64..10) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
            pub fn run() {
                always_fails();
            }
        }
        inner::run();
    }
}
