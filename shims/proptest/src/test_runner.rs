//! The deterministic RNG driving strategy generation.

use std::hash::{DefaultHasher, Hash, Hasher};

/// xoshiro256++ generator seeded from the test's full path, so every
/// run of a given property replays the same case sequence (upstream
/// proptest persists regressions to disk instead; determinism here
/// serves the same reproducibility goal without files).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// A generator whose stream is a pure function of `name`.
    pub fn for_test(name: &str) -> Self {
        let mut hasher = DefaultHasher::new();
        name.hash(&mut hasher);
        Self::from_seed(hasher.finish())
    }

    /// A generator seeded from an explicit value.
    pub fn from_seed(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, span)` by rejection sampling (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `span` is zero.
    pub fn below(&mut self, span: u64) -> u64 {
        assert!(span > 0, "empty draw span");
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % span;
            }
        }
    }

    /// Maps the next 64 bits onto `[0, 1)` with 53-bit precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn deterministic_per_name() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_test("x::y");
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_test("x::y");
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = TestRng::for_test("x::z");
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn below_and_unit_in_bounds() {
        let mut r = TestRng::from_seed(9);
        for _ in 0..10_000 {
            assert!(r.below(7) < 7);
            let u = r.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
