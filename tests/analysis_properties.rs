//! Cross-cutting correctness properties of the analysis stack:
//!
//! * monotonicity — more jitter, more errors or more traffic can never
//!   *improve* a worst-case response time,
//! * OPA optimality — Audsley's assignment finds a feasible identifier
//!   order exactly when brute-force enumeration finds one (small nets).
//!
//! Networks come from `carta_testkit::gen` (the `two_node` and `tight`
//! shapes); the full metamorphic law catalogue lives in
//! `carta_testkit::laws` and is fuzzed by `carta fuzz` — this suite
//! keeps the historical direct checks plus the brute-force OPA cross
//! validation that is too expensive for the fuzz loop.

use carta::prelude::*;
use carta_testkit::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn jitter_monotonicity((seed, net) in networks(NetShape::two_node().messages(6)), bump in 1u64..20) {
        let cfg = AnalysisConfig::default();
        let base = analyze_bus(&net, &NoErrors, &cfg).expect("valid");
        // Bump one message's jitter.
        let mut noisy = net.clone();
        let idx = (seed % 6) as usize;
        let m = &mut noisy.messages_mut()[idx];
        m.activation = EventModel::periodic_with_jitter(
            m.activation.period(),
            m.activation.jitter() + m.activation.period().percent(bump),
        );
        let after = analyze_bus(&noisy, &NoErrors, &cfg).expect("valid");
        prop_assert!(
            pointwise_le(&wcrts(&base), &wcrts(&after)),
            "raising one jitter reduced some WCRT (seed {seed})"
        );
    }

    #[test]
    fn error_rate_monotonicity((seed, net) in networks(NetShape::two_node().messages(5))) {
        let cfg = AnalysisConfig::default();
        let calm = analyze_bus(&net, &SporadicErrors::new(Time::from_ms(50)), &cfg)
            .expect("valid");
        let stormy = analyze_bus(&net, &SporadicErrors::new(Time::from_ms(10)), &cfg)
            .expect("valid");
        prop_assert!(
            pointwise_le(&wcrts(&calm), &wcrts(&stormy)),
            "more errors reduced some WCRT (seed {seed})"
        );
        let none = analyze_bus(&net, &NoErrors, &cfg).expect("valid");
        prop_assert!(pointwise_le(&wcrts(&none), &wcrts(&calm)));
    }

    #[test]
    fn added_traffic_monotonicity((seed, net) in networks(NetShape::two_node().messages(5))) {
        let cfg = AnalysisConfig::default();
        let base = analyze_bus(&net, &NoErrors, &cfg).expect("valid");
        // Add one more message (any priority position).
        let mut bigger = net.clone();
        bigger.add_message(CanMessage::new(
            "intruder",
            CanId::standard(0x148).expect("valid"),
            Dlc::new(8),
            Time::from_ms(10),
            Time::ZERO,
            0,
        ));
        let after = analyze_bus(&bigger, &NoErrors, &cfg).expect("valid");
        // Compare the original five messages only.
        let before_w = wcrts(&base);
        let after_w: Vec<Option<Time>> = base
            .messages
            .iter()
            .map(|m| after.by_name(&m.name).expect("still present").outcome.wcrt())
            .collect();
        prop_assert!(
            pointwise_le(&before_w, &after_w),
            "adding a message reduced some WCRT (seed {seed})"
        );
    }

    #[test]
    fn stuffing_monotonicity((seed, net) in networks(NetShape::two_node().messages(6))) {
        let lean = analyze_bus(
            &net,
            &NoErrors,
            &AnalysisConfig::with_stuffing(StuffingMode::None),
        )
        .expect("valid");
        let stuffed = analyze_bus(&net, &NoErrors, &AnalysisConfig::default()).expect("valid");
        prop_assert!(
            pointwise_le(&wcrts(&lean), &wcrts(&stuffed)),
            "stuffing overhead reduced some WCRT (seed {seed})"
        );
    }
}

/// The law catalogue holds on the two-node shape as well (the fuzz
/// runner's corpus only covers the `bus` and `mixed` shapes).
#[test]
fn law_catalogue_holds_on_two_node_nets() {
    let eval = Evaluator::default();
    for law in all_laws() {
        for seed in 0..2u64 {
            let net = random_network(&NetShape::two_node(), seed);
            let case = LawCase {
                seed,
                errors: ErrorSpec::None,
            };
            law.check(&net, &case, &eval)
                .unwrap_or_else(|v| panic!("seed {seed}: {v}"));
        }
    }
}

/// Exhaustively enumerate all identifier assignments of a small net and
/// compare against Audsley.
fn brute_force_feasible(net: &CanNetwork, errors: &dyn ErrorModel) -> bool {
    let n = net.messages().len();
    let mut ids: Vec<CanId> = net.messages().iter().map(|m| m.id).collect();
    ids.sort_by_key(|id| id.arbitration_key());
    let mut order: Vec<usize> = (0..n).collect();
    // Heap's algorithm, iterative.
    let mut c = vec![0usize; n];
    let cfg = AnalysisConfig::default();
    let check = |order: &[usize]| -> bool {
        let mut v = net.clone();
        for (rank, &m) in order.iter().enumerate() {
            v.messages_mut()[m].id = ids[rank];
        }
        analyze_bus(&v, errors, &cfg).expect("valid").schedulable()
    };
    if check(&order) {
        return true;
    }
    let mut i = 0;
    while i < n {
        if c[i] < i {
            if i % 2 == 0 {
                order.swap(0, i);
            } else {
                order.swap(c[i], i);
            }
            if check(&order) {
                return true;
            }
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    false
}

#[test]
fn opa_agrees_with_brute_force_on_small_nets() {
    let errors = SporadicErrors::new(Time::from_ms(15));
    let cfg = AnalysisConfig::default();
    let mut feasible_seen = 0;
    let mut infeasible_seen = 0;
    for seed in 0..40u64 {
        // Small, tight nets on a slow bus so both verdicts occur.
        let net = random_network(&NetShape::tight(), seed);
        let opa = audsley_assignment(&net, &errors, &cfg).expect("valid network");
        let brute = brute_force_feasible(&net, &errors);
        assert_eq!(
            opa.is_some(),
            brute,
            "seed {seed}: OPA {:?} vs brute force {brute}",
            opa.is_some()
        );
        if let Some(order) = opa {
            feasible_seen += 1;
            let fixed = order.apply(&net);
            assert!(analyze_bus(&fixed, &errors, &cfg)
                .expect("valid")
                .schedulable());
        } else {
            infeasible_seen += 1;
        }
    }
    // The seed range must exercise both outcomes for the test to mean
    // anything.
    assert!(feasible_seen > 3, "only {feasible_seen} feasible cases");
    assert!(
        infeasible_seen > 3,
        "only {infeasible_seen} infeasible cases"
    );
}
