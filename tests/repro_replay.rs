//! Regression gate: every counterexample ever shrunk to a file under
//! `tests/repros/` must keep replaying clean. The suite is
//! directory-driven — fixing a fuzz finding means committing the repro
//! JSON `carta fuzz` wrote, and nothing else.

use carta_testkit::prelude::*;

#[test]
fn every_stored_repro_replays_clean() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/repros");
    let mut replayed = 0;
    for entry in std::fs::read_dir(&dir).expect("tests/repros exists") {
        let path = entry.expect("readable entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("readable file");
        let repro = Repro::from_json(&text)
            .unwrap_or_else(|e| panic!("{} does not decode: {e}", path.display()));
        repro.replay().unwrap_or_else(|v| {
            panic!(
                "{} reproduces again — the defect it anchors has returned: {v}",
                path.display()
            )
        });
        // The file must stay decodable by future sessions: encoding the
        // decoded repro must be lossless.
        assert_eq!(
            Repro::from_json(&repro.to_json()).expect("re-encodes"),
            repro,
            "{} does not roundtrip",
            path.display()
        );
        replayed += 1;
    }
    assert!(replayed >= 1, "no repro files found in {}", dir.display());
}
