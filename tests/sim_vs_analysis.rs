//! Validation oracle (experiment A2 in DESIGN.md): simulated response
//! times must never exceed the analytical worst-case bounds, across
//! randomly generated networks, with and without error injection.
//!
//! This is the soundness half of the paper's core claim; the coverage
//! half (simulation misses corner cases) is demonstrated by the
//! `simulation_vs_analysis` example.

use carta::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a random, structurally valid network from a seed. With
/// `mixed_controllers`, nodes randomly use fullCAN, basicCAN or FIFO
/// TX paths — exercising the conservative controller analysis against
/// the register/queue-faithful simulator.
fn random_network_with(seed: u64, mixed_controllers: bool) -> CanNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = CanNetwork::new(
        *[125_000, 250_000, 500_000]
            .get(rng.gen_range(0..3usize))
            .unwrap(),
    );
    let nodes = rng.gen_range(2..5);
    for n in 0..nodes {
        let controller = if mixed_controllers {
            match rng.gen_range(0..3) {
                0 => ControllerType::FullCan,
                1 => ControllerType::BasicCan,
                _ => ControllerType::FifoQueue {
                    depth: rng.gen_range(2..5),
                },
            }
        } else {
            ControllerType::FullCan
        };
        net.add_node(Node::new(format!("N{n}"), controller));
    }
    let count = rng.gen_range(3..10);
    for k in 0..count {
        let period = Time::from_ms(
            *[5u64, 10, 20, 50, 100]
                .get(rng.gen_range(0..5usize))
                .unwrap(),
        );
        let jitter = period.percent(rng.gen_range(0..40));
        net.add_message(CanMessage::new(
            format!("m{k}"),
            CanId::standard(0x100 + 8 * k as u32).expect("valid"),
            Dlc::new(rng.gen_range(1..=8)),
            period,
            jitter,
            rng.gen_range(0..nodes),
        ));
    }
    net
}

fn random_network(seed: u64) -> CanNetwork {
    random_network_with(seed, false)
}

/// Simulated maxima stay within the analytical bounds for one system.
fn assert_sound(net: &CanNetwork, seed: u64, with_errors: bool) {
    let config = AnalysisConfig::default();
    let report = if with_errors {
        analyze_bus(net, &SporadicErrors::new(Time::from_ms(10)), &config)
    } else {
        analyze_bus(net, &NoErrors, &config)
    }
    .expect("valid network");

    let sim_config = SimConfig {
        horizon: Time::from_s(3),
        seed,
        stuffing: SimStuffing::Random,
        record_trace: false,
    };
    let sim = if with_errors {
        // Periodic injection ≥ the analytical interval stays within the
        // sporadic bound.
        simulate(
            net,
            &PeriodicInjection {
                interval: Time::from_us(10_300),
                phase: Time::from_us(seed % 9_000),
            },
            &sim_config,
        )
    } else {
        simulate(net, &NoInjection, &sim_config)
    };

    for m in &report.messages {
        let stats = sim.by_name(&m.name).expect("simulated");
        if let (Some(observed), Some(bound)) = (stats.max_response, m.outcome.wcrt()) {
            assert!(
                observed <= bound,
                "seed {seed}, errors={with_errors}: {} observed {} > bound {}",
                m.name,
                observed,
                bound
            );
        }
        if let Some(bcrt) = m.outcome.bcrt() {
            if let Some(observed_min) = stats.min_response {
                assert!(
                    observed_min >= bcrt,
                    "seed {seed}: {} observed min {} < best-case bound {}",
                    m.name,
                    observed_min,
                    bcrt
                );
            }
        }
        // A message the analysis proves loss-free must not be
        // overwritten in an error-free simulation. (FIFO senders are
        // exempt: a queue-overflow drop is a different loss mechanism
        // than the deadline-driven buffer overwrite the bound covers.)
        let fifo_sender = matches!(
            net.controller_of(&net.messages()[m.index]),
            ControllerType::FifoQueue { .. }
        );
        if !with_errors && !m.misses_deadline() && !fifo_sender {
            assert_eq!(
                stats.overwritten, 0,
                "seed {seed}: {} lost instances despite proven deadline",
                m.name
            );
        }
    }
}

#[test]
fn fixed_seeds_error_free() {
    for seed in 0..12 {
        assert_sound(&random_network(seed), seed, false);
    }
}

#[test]
fn fixed_seeds_with_errors() {
    for seed in 100..110 {
        assert_sound(&random_network(seed), seed, true);
    }
}

#[test]
fn case_study_is_sound() {
    let net = powertrain_default().to_network().expect("convertible");
    assert_sound(&net, 7, false);
    assert_sound(&net, 8, true);
}

#[test]
fn fixed_seeds_mixed_controllers() {
    for seed in 200..216 {
        assert_sound(&random_network_with(seed, true), seed, false);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_systems_sound(seed in 0u64..10_000) {
        let net = random_network(seed);
        assert_sound(&net, seed, seed % 2 == 0);
    }

    #[test]
    fn random_mixed_controller_systems_sound(seed in 0u64..10_000) {
        let net = random_network_with(seed, true);
        assert_sound(&net, seed, false);
    }
}
