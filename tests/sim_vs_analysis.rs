//! Validation oracle (experiment A2 in DESIGN.md): simulated response
//! times must never exceed the analytical worst-case bounds, across
//! randomly generated networks, with and without error injection.
//!
//! The generators and the oracle itself live in `carta-testkit` (see
//! DESIGN.md § Verification); this suite pins the historical seed
//! ranges and the case study. The coverage half of the claim
//! (simulation misses corner cases) is demonstrated by the
//! `simulation_vs_analysis` example.

use carta::prelude::*;
use carta_testkit::prelude::*;
use proptest::prelude::*;

/// Simulated maxima stay within the analytical bounds for one system.
fn assert_sound(eval: &Evaluator, net: &CanNetwork, seed: u64, with_errors: bool) {
    let errors = if with_errors {
        ErrorSpec::Sporadic {
            interval: Time::from_ms(10),
        }
    } else {
        ErrorSpec::None
    };
    DiffOracle::default()
        .check(eval, net, errors, seed)
        .unwrap_or_else(|v| panic!("seed {seed}, errors={with_errors}: {v}"));
}

#[test]
fn fixed_seeds_error_free() {
    let eval = Evaluator::default();
    for seed in 0..12 {
        assert_sound(&eval, &random_network(&NetShape::bus(), seed), seed, false);
    }
}

#[test]
fn fixed_seeds_with_errors() {
    let eval = Evaluator::default();
    for seed in 100..110 {
        assert_sound(&eval, &random_network(&NetShape::bus(), seed), seed, true);
    }
}

#[test]
fn case_study_is_sound() {
    let eval = Evaluator::default();
    let net = powertrain_default().to_network().expect("convertible");
    assert_sound(&eval, &net, 7, false);
    assert_sound(&eval, &net, 8, true);
}

#[test]
fn fixed_seeds_mixed_controllers() {
    let eval = Evaluator::default();
    for seed in 200..216 {
        assert_sound(
            &eval,
            &random_network(&NetShape::mixed(), seed),
            seed,
            false,
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_systems_sound((seed, net) in networks(NetShape::bus())) {
        assert_sound(&Evaluator::default(), &net, seed, seed % 2 == 0);
    }

    #[test]
    fn random_mixed_controller_systems_sound((seed, net) in networks(NetShape::mixed())) {
        assert_sound(&Evaluator::default(), &net, seed, false);
    }
}
