//! Monte-Carlo validation of the probabilistic RTA (DESIGN.md § 13).
//!
//! For every fuzzed scenario the convolution-based analysis claims a
//! response-time distribution per message. The simulator provides the
//! ground truth sample: its empirical CDF must
//!
//! 1. stay inside the deterministic envelope — every observed response
//!    in `[BCRT, WCRT]`, so the empirical CDF sits between the step
//!    functions at the two bounds, widened by the
//!    Dvoretzky–Kiefer–Wolfowitz (DKW) confidence radius
//!    `ε = sqrt(ln(2/δ) / 2n)`; and
//! 2. dominate the analytic CDF at every lattice point: the analysis
//!    is pessimistic by construction (all error-free mass at the
//!    worst-case phasing, every error hit at full retransmission
//!    cost), so `F_analysis(t) ≤ F_emp(t) + ε` — the analysis never
//!    promises a *better* distribution than the bus delivers.
//!
//! Seeds are fixed, so the checks are reproducible; the DKW radius
//! makes them principled rather than tuned.

use carta::prelude::*;
use carta_testkit::prelude::*;

/// DKW confidence level: the band covers the true CDF with
/// probability `1 - DELTA` per message.
const DELTA: f64 = 1e-6;

/// Simulation horizon per scenario: long enough for a few hundred
/// instances of a 10 ms message, short enough for a 70-scenario sweep.
const HORIZON: Time = Time::from_ms(1_000);

/// The DKW radius for an `n`-sample empirical CDF.
fn dkw_epsilon(n: usize) -> f64 {
    ((2.0 / DELTA).ln() / (2.0 * n as f64)).sqrt()
}

/// Fraction of `responses` at or below `t`.
fn empirical_cdf(responses: &[Time], t: Time) -> f64 {
    responses.iter().filter(|&&r| r <= t).count() as f64 / responses.len() as f64
}

/// Runs one scenario: probabilistic analysis through the engine,
/// matching seeded simulation, then the two CDF checks per message.
fn check_scenario(eval: &Evaluator, net: &CanNetwork, seed: u64, with_errors: bool) {
    let errors = if with_errors {
        ErrorSpec::Sporadic {
            interval: Time::from_ms(10),
        }
    } else {
        ErrorSpec::None
    };
    let scenario = Scenario {
        name: "prob-vs-sim".into(),
        stuffing: StuffingMode::WorstCase,
        errors,
        deadline: DeadlineOverride::Keep,
    };
    let variant = SystemVariant::new(BaseSystem::new(net.clone()), scenario);
    let prob = eval
        .evaluate_prob(&variant)
        .expect("generated networks are analyzable");

    let sim_config = SimConfig {
        horizon: HORIZON,
        seed,
        stuffing: SimStuffing::Random,
        record_trace: false,
    };
    // Same injection convention as the differential oracle: a periodic
    // process at the sporadic interval plus margin realizes (a subset
    // of) what the analytic error model admits.
    let sim = match errors {
        ErrorSpec::None => simulate(net, &NoInjection, &sim_config),
        ErrorSpec::Sporadic { interval } => simulate(
            net,
            &PeriodicInjection {
                interval: interval + Time::from_us(300),
                phase: Time::from_us(seed % 9_000),
            },
            &sim_config,
        ),
        ErrorSpec::Burst { .. } => unreachable!("corpus uses none/sporadic only"),
    };

    for m in &prob.messages {
        let Some(dist) = m.outcome.dist() else {
            continue; // overload: no distribution to validate
        };
        let stats = sim.by_name(&m.name).expect("every message is simulated");
        let responses = stats.responses();
        if responses.is_empty() {
            continue;
        }
        let eps = dkw_epsilon(responses.len());

        // Check 1 — envelope: the empirical CDF between the step
        // functions at WCRT (lower) and BCRT (upper), within ε. With a
        // sound deterministic analysis this means every response lies
        // in [BCRT, WCRT].
        for &(t, _) in &[(dist.bcrt, 0u8), (dist.wcrt, 1u8)] {
            let f = empirical_cdf(responses, t);
            let lower = if t >= dist.wcrt { 1.0 } else { 0.0 };
            let upper = if t >= dist.bcrt { 1.0 } else { 0.0 };
            assert!(
                f + eps >= lower && f - eps <= upper,
                "seed {seed} `{}`: empirical CDF {f:.4} at {t} outside envelope \
                 [{lower}, {upper}] ± {eps:.4}",
                m.name
            );
        }

        // Check 2 — pessimism: at every lattice point of the analytic
        // distribution the empirical CDF is at least the analytic one
        // (the bus is never slower than the analysis claims).
        for (t, _) in dist.pmf.bins() {
            let analytic = dist.pmf.cdf_at(t);
            let observed = empirical_cdf(responses, t);
            assert!(
                analytic <= observed + eps,
                "seed {seed} `{}`: analytic CDF {analytic:.4} exceeds empirical \
                 {observed:.4} + ε {eps:.4} at {t} (n = {})",
                m.name,
                responses.len()
            );
        }

        // A message the analysis certifies risk-free must never miss
        // its deadline in the simulation.
        if dist.miss_probability == 0.0 {
            assert_eq!(
                stats.deadline_misses, 0,
                "seed {seed} `{}`: certified risk-free but missed in simulation",
                m.name
            );
        }
    }
}

/// The fuzzed corpus: 64 classic scenarios (32 bus-shape, 32 mixed
/// controllers, error injection on every other seed) plus 8 CAN FD
/// scenarios, per the acceptance floor of 64.
#[test]
fn empirical_cdfs_stay_inside_the_confidence_band() {
    let eval = Evaluator::default();
    for seed in 0..32 {
        let net = random_network(&NetShape::bus().messages(6), seed);
        check_scenario(&eval, &net, seed, seed % 2 == 0);
    }
    for seed in 32..64 {
        let net = random_network(&NetShape::mixed().messages(6), seed);
        check_scenario(&eval, &net, seed, seed % 2 == 0);
    }
    for seed in 64..72 {
        let net = random_network(&NetShape::fd().messages(6), seed);
        check_scenario(&eval, &net, seed, seed % 2 == 0);
    }
}

/// The case study itself: the paper's power-train K-Matrix under the
/// worst-case scenario with sporadic errors.
#[test]
fn case_study_distribution_is_validated() {
    let eval = Evaluator::default();
    let net = powertrain_default().to_network().expect("convertible");
    check_scenario(&eval, &net, 2006, true);
    check_scenario(&eval, &net, 2007, false);
}
