//! End-to-end validation of the **compositional** analysis: a two-bus
//! gateway chain is co-simulated (upstream bus completions, plus a
//! sampled gateway processing delay, become the downstream bus's
//! arrival stream), and every observed end-to-end latency must stay
//! within the path bound computed by the fixpoint engine.
//!
//! Chains come from `carta_testkit::gen::random_chain`; this suite is
//! the system-level counterpart of `tests/sim_vs_analysis.rs`: it
//! exercises event-model propagation itself, not just one local
//! analysis.

use carta::prelude::*;
use carta_testkit::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Wires the chain into a compositional system: bus 1 → gateway task →
/// bus 2, with every non-forwarded message as an independent source.
fn build_system(c: &GatewayChain) -> (CompositionalSystem, usize, usize, usize) {
    let mut sys = CompositionalSystem::new();
    let b1 = sys.add_resource(Box::new(CanBusResource::new("bus1", c.bus1.clone())));
    let gw = sys.add_resource(Box::new(EcuResource::new("gw", vec![c.route_task()])));
    let b2 = sys.add_resource(Box::new(CanBusResource::new("bus2", c.bus2.clone())));
    for (i, m) in c.bus1.messages().iter().enumerate() {
        sys.set_source(NodeRef::new(b1, i), m.activation)
            .expect("valid");
    }
    for (i, m) in c.bus2.messages().iter().enumerate().skip(1) {
        sys.set_source(NodeRef::new(b2, i), m.activation)
            .expect("valid");
    }
    sys.connect(NodeRef::new(b1, 0), NodeRef::new(gw, 0))
        .expect("valid");
    sys.connect(NodeRef::new(gw, 0), NodeRef::new(b2, 0))
        .expect("valid");
    (sys, b1, gw, b2)
}

/// Analyzes the chain compositionally; returns the end-to-end bound.
fn analyze_chain(c: &GatewayChain) -> ResponseBounds {
    let (sys, b1, gw, b2) = build_system(c);
    let result = sys.analyze().expect("converges");
    sys.path_latency(
        &result,
        &[
            NodeRef::new(b1, 0),
            NodeRef::new(gw, 0),
            NodeRef::new(b2, 0),
        ],
    )
    .expect("connected")
}

/// Co-simulates the chain; returns the largest observed end-to-end
/// latency (source queuing on bus 1 → completion on bus 2).
fn cosimulate(c: &GatewayChain, seed: u64) -> Option<Time> {
    let horizon = Time::from_s(3);
    let config = SimConfig {
        horizon,
        seed,
        stuffing: SimStuffing::Random,
        record_trace: true,
    };
    let up = simulate(&c.bus1, &NoInjection, &config);

    // The gateway forwards each completed fwd_src frame after a sampled
    // processing delay; queue times on bus 2 = completion + delay. The
    // end-to-end latency is compared componentwise (max bus-1 response
    // + max gateway delay + max bus-2 response), which upper-bounds
    // every individual instance's latency.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6A7E);
    let completions = completion_instants(&up.trace, 0);

    let mut downstream_arrivals = Vec::with_capacity(completions.len());
    let mut gw_delays = Vec::with_capacity(completions.len());
    for &t in &completions {
        let d = Time::from_ns(rng.gen_range(c.gw_c_min.as_ns()..=c.gw_c_max.as_ns()));
        gw_delays.push(d);
        downstream_arrivals.push(t + d);
    }
    let down = simulate_with_arrivals(&c.bus2, &NoInjection, &config, &[(0, downstream_arrivals)]);

    // Componentwise observed maxima.
    let r1 = up.by_name("fwd_src")?.max_response?;
    let gw = gw_delays.iter().copied().max()?;
    let r2 = down.by_name("fwd_dst")?.max_response?;
    Some(r1 + gw + r2)
}

#[test]
fn cosimulated_chain_stays_within_the_compositional_bound() {
    for seed in 0..8u64 {
        let c = random_chain(seed);
        let bound = analyze_chain(&c);
        let observed = cosimulate(&c, seed).expect("instances ran");
        assert!(
            observed <= bound.worst(),
            "seed {seed}: observed end-to-end {observed} exceeds bound {}",
            bound.worst()
        );
        // The bound is not absurdly loose either (within 50x here —
        // a smoke check against vacuous bounds).
        assert!(bound.worst() < observed * 50);
    }
}

#[test]
fn downstream_interference_from_forwarded_stream_is_covered() {
    // The background traffic on bus 2 competes with the (jittery)
    // forwarded stream; its observed responses must stay within the
    // compositional analysis's bounds for bus-2 slots.
    let c = random_chain(3);
    let (sys, _b1, _gw, b2) = build_system(&c);
    let result = sys.analyze().expect("converges");

    // Co-simulate and compare bus-2 background messages.
    let config = SimConfig {
        horizon: Time::from_s(3),
        seed: 3,
        stuffing: SimStuffing::Random,
        record_trace: true,
    };
    let up = simulate(&c.bus1, &NoInjection, &config);
    let completions = completion_instants(&up.trace, 0);
    let arrivals: Vec<Time> = completions.iter().map(|&t| t + c.gw_c_max).collect();
    let down = simulate_with_arrivals(&c.bus2, &NoInjection, &config, &[(0, arrivals)]);
    for (i, m) in c.bus2.messages().iter().enumerate().skip(1) {
        let observed = down.by_name(&m.name).expect("simulated").max_response;
        let bound = result.response(NodeRef::new(b2, i)).worst();
        if let Some(obs) = observed {
            assert!(
                obs <= bound,
                "{}: observed {} exceeds compositional bound {}",
                m.name,
                obs,
                bound
            );
        }
    }
}
