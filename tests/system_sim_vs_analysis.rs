//! End-to-end validation of the **compositional** analysis: a two-bus
//! gateway chain is co-simulated (upstream bus completions, plus a
//! sampled gateway processing delay, become the downstream bus's
//! arrival stream), and every observed end-to-end latency must stay
//! within the path bound computed by the fixpoint engine.
//!
//! This is the system-level counterpart of `tests/sim_vs_analysis.rs`:
//! it exercises event-model propagation itself, not just one local
//! analysis.

use carta::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Chain {
    bus1: CanNetwork,
    bus2: CanNetwork,
    gw_c_min: Time,
    gw_c_max: Time,
}

fn chain(seed: u64) -> Chain {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut bus1 = CanNetwork::new(500_000);
    let ems = bus1.add_node(Node::new("EMS", ControllerType::FullCan));
    // The forwarded signal plus background traffic.
    bus1.add_message(CanMessage::new(
        "fwd_src",
        CanId::standard(0x120).expect("valid"),
        Dlc::new(8),
        Time::from_ms(10),
        Time::from_ms(rng.gen_range(0..3)),
        ems,
    ));
    for k in 0..rng.gen_range(2..5) {
        let period = Time::from_ms(*[5u64, 10, 20].get(rng.gen_range(0..3usize)).unwrap());
        bus1.add_message(CanMessage::new(
            format!("bg1_{k}"),
            CanId::standard(0x200 + 16 * k).expect("valid"),
            Dlc::new(rng.gen_range(2..=8)),
            period,
            period.percent(rng.gen_range(0..25)),
            ems,
        ));
    }

    let mut bus2 = CanNetwork::new(250_000);
    let gw = bus2.add_node(Node::new("GW", ControllerType::FullCan));
    let esp = bus2.add_node(Node::new("ESP", ControllerType::FullCan));
    bus2.add_message(CanMessage::new(
        "fwd_dst",
        CanId::standard(0x130).expect("valid"),
        Dlc::new(8),
        Time::from_ms(10),
        Time::ZERO, // derived by propagation
        gw,
    ));
    for k in 0..rng.gen_range(1..4) {
        let period = Time::from_ms(*[10u64, 20, 50].get(rng.gen_range(0..3usize)).unwrap());
        bus2.add_message(CanMessage::new(
            format!("bg2_{k}"),
            CanId::standard(0x300 + 16 * k).expect("valid"),
            Dlc::new(rng.gen_range(2..=8)),
            period,
            period.percent(rng.gen_range(0..25)),
            esp,
        ));
    }
    Chain {
        bus1,
        bus2,
        gw_c_min: Time::from_us(30),
        gw_c_max: Time::from_us(150),
    }
}

/// Analyzes the chain compositionally; returns (end-to-end bound,
/// per-hop node refs are internal).
fn analyze_chain(c: &Chain) -> ResponseBounds {
    let tasks = vec![Task::periodic(
        "route",
        Priority(1),
        Time::from_ms(10),
        c.gw_c_min,
        c.gw_c_max,
    )];
    let mut sys = CompositionalSystem::new();
    let b1 = sys.add_resource(Box::new(CanBusResource::new("bus1", c.bus1.clone())));
    let gw = sys.add_resource(Box::new(EcuResource::new("gw", tasks)));
    let b2 = sys.add_resource(Box::new(CanBusResource::new("bus2", c.bus2.clone())));
    for (i, m) in c.bus1.messages().iter().enumerate() {
        sys.set_source(NodeRef::new(b1, i), m.activation)
            .expect("valid");
    }
    for (i, m) in c.bus2.messages().iter().enumerate().skip(1) {
        sys.set_source(NodeRef::new(b2, i), m.activation)
            .expect("valid");
    }
    sys.connect(NodeRef::new(b1, 0), NodeRef::new(gw, 0))
        .expect("valid");
    sys.connect(NodeRef::new(gw, 0), NodeRef::new(b2, 0))
        .expect("valid");
    let result = sys.analyze().expect("converges");
    sys.path_latency(
        &result,
        &[
            NodeRef::new(b1, 0),
            NodeRef::new(gw, 0),
            NodeRef::new(b2, 0),
        ],
    )
    .expect("connected")
}

/// Co-simulates the chain; returns the largest observed end-to-end
/// latency (source queuing on bus 1 → completion on bus 2).
fn cosimulate(c: &Chain, seed: u64) -> Option<Time> {
    let horizon = Time::from_s(3);
    let config = SimConfig {
        horizon,
        seed,
        stuffing: SimStuffing::Random,
        record_trace: true,
    };
    let up = simulate(&c.bus1, &NoInjection, &config);

    // The gateway forwards each completed fwd_src frame after a sampled
    // processing delay; queue times on bus 2 = completion + delay. The
    // end-to-end latency is compared componentwise (max bus-1 response
    // + max gateway delay + max bus-2 response), which upper-bounds
    // every individual instance's latency.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6A7E);
    let completions = completion_instants(&up.trace, 0);

    let mut downstream_arrivals = Vec::with_capacity(completions.len());
    let mut gw_delays = Vec::with_capacity(completions.len());
    for &t in &completions {
        let d = Time::from_ns(rng.gen_range(c.gw_c_min.as_ns()..=c.gw_c_max.as_ns()));
        gw_delays.push(d);
        downstream_arrivals.push(t + d);
    }
    let down = simulate_with_arrivals(&c.bus2, &NoInjection, &config, &[(0, downstream_arrivals)]);

    // Componentwise observed maxima.
    let r1 = up.by_name("fwd_src")?.max_response?;
    let gw = gw_delays.iter().copied().max()?;
    let r2 = down.by_name("fwd_dst")?.max_response?;
    Some(r1 + gw + r2)
}

#[test]
fn cosimulated_chain_stays_within_the_compositional_bound() {
    for seed in 0..8u64 {
        let c = chain(seed);
        let bound = analyze_chain(&c);
        let observed = cosimulate(&c, seed).expect("instances ran");
        assert!(
            observed <= bound.worst(),
            "seed {seed}: observed end-to-end {observed} exceeds bound {}",
            bound.worst()
        );
        // The bound is not absurdly loose either (within 50x here —
        // a smoke check against vacuous bounds).
        assert!(bound.worst() < observed * 50);
    }
}

#[test]
fn downstream_interference_from_forwarded_stream_is_covered() {
    // The background traffic on bus 2 competes with the (jittery)
    // forwarded stream; its observed responses must stay within the
    // compositional analysis's bounds for bus-2 slots.
    let c = chain(3);
    let tasks = vec![Task::periodic(
        "route",
        Priority(1),
        Time::from_ms(10),
        c.gw_c_min,
        c.gw_c_max,
    )];
    let mut sys = CompositionalSystem::new();
    let b1 = sys.add_resource(Box::new(CanBusResource::new("bus1", c.bus1.clone())));
    let gw = sys.add_resource(Box::new(EcuResource::new("gw", tasks)));
    let b2 = sys.add_resource(Box::new(CanBusResource::new("bus2", c.bus2.clone())));
    for (i, m) in c.bus1.messages().iter().enumerate() {
        sys.set_source(NodeRef::new(b1, i), m.activation)
            .expect("valid");
    }
    for (i, m) in c.bus2.messages().iter().enumerate().skip(1) {
        sys.set_source(NodeRef::new(b2, i), m.activation)
            .expect("valid");
    }
    sys.connect(NodeRef::new(b1, 0), NodeRef::new(gw, 0))
        .expect("valid");
    sys.connect(NodeRef::new(gw, 0), NodeRef::new(b2, 0))
        .expect("valid");
    let result = sys.analyze().expect("converges");

    // Co-simulate and compare bus-2 background messages.
    let config = SimConfig {
        horizon: Time::from_s(3),
        seed: 3,
        stuffing: SimStuffing::Random,
        record_trace: true,
    };
    let up = simulate(&c.bus1, &NoInjection, &config);
    let completions = completion_instants(&up.trace, 0);
    let arrivals: Vec<Time> = completions.iter().map(|&t| t + c.gw_c_max).collect();
    let down = simulate_with_arrivals(&c.bus2, &NoInjection, &config, &[(0, arrivals)]);
    for (i, m) in c.bus2.messages().iter().enumerate().skip(1) {
        let observed = down.by_name(&m.name).expect("simulated").max_response;
        let bound = result.response(NodeRef::new(b2, i)).worst();
        if let Some(obs) = observed {
            assert!(
                obs <= bound,
                "{}: observed {} exceeds compositional bound {}",
                m.name,
                obs,
                bound
            );
        }
        let _ = i;
    }
}
