//! Equivalence gate for the deprecated free-function sweep API: every
//! `foo(...)` / `foo_with(&Evaluator, ...)` shim left in
//! `carta-explore` must return results bit-identical (same `Debug`
//! rendering, covering every field) to its `Sweeps` trait replacement
//! on an `Evaluator`. The shims stay until downstream callers migrate;
//! this suite guarantees the migration is a pure rename.
#![allow(deprecated)]

use carta::prelude::*;
use carta_testkit::prelude::*;

const RATIOS: &[f64] = &[0.0, 0.25, 0.5, 1.0];

/// A small corpus: random two-node nets plus the powertrain case study
/// (the only fixture with realistic bit-rate/template headroom).
fn corpus() -> Vec<(u64, CanNetwork)> {
    let mut nets: Vec<(u64, CanNetwork)> = (0..3u64)
        .map(|seed| {
            (
                seed,
                random_network(&NetShape::two_node().messages(5), seed),
            )
        })
        .collect();
    nets.push((
        u64::MAX,
        powertrain_default().to_network().expect("convertible"),
    ));
    nets
}

fn intervals() -> Vec<Time> {
    vec![Time::from_ms(50), Time::from_ms(20), Time::from_ms(10)]
}

/// Asserts one shim pair against the trait rendering.
fn assert_matches(label: &str, seed: u64, via_trait: &str, plain: String, with: String) {
    assert_eq!(
        plain, via_trait,
        "{label}: plain shim diverged (seed {seed})"
    );
    assert_eq!(
        with, via_trait,
        "{label}: _with shim diverged (seed {seed})"
    );
}

#[test]
fn loss_vs_jitter_shims_match_the_trait() {
    let eval = Evaluator::default();
    let scenario = Scenario::worst_case();
    for (seed, net) in corpus() {
        let via_trait = format!("{:?}", eval.loss_vs_jitter(&net, &scenario, RATIOS));
        assert_matches(
            "loss_vs_jitter",
            seed,
            &via_trait,
            format!("{:?}", loss_vs_jitter(&net, &scenario, RATIOS)),
            format!("{:?}", loss_vs_jitter_with(&eval, &net, &scenario, RATIOS)),
        );
    }
}

#[test]
fn response_vs_jitter_shims_match_the_trait() {
    let eval = Evaluator::default();
    let scenario = Scenario::worst_case();
    for (seed, net) in corpus() {
        // Exercise both the full selection and a named subset.
        let first = net.messages()[0].name.clone();
        for only in [None, Some([first.as_str()].as_slice())] {
            let via_trait = format!(
                "{:?}",
                eval.response_vs_jitter(&net, &scenario, RATIOS, only)
            );
            assert_matches(
                "response_vs_jitter",
                seed,
                &via_trait,
                format!("{:?}", response_vs_jitter(&net, &scenario, RATIOS, only)),
                format!(
                    "{:?}",
                    response_vs_jitter_with(&eval, &net, &scenario, RATIOS, only)
                ),
            );
        }
    }
}

#[test]
fn response_vs_error_rate_shims_match_the_trait() {
    let eval = Evaluator::default();
    let grid = intervals();
    for (seed, net) in corpus() {
        let via_trait = format!(
            "{:?}",
            eval.response_vs_error_rate(&net, StuffingMode::default(), &grid, None)
        );
        assert_matches(
            "response_vs_error_rate",
            seed,
            &via_trait,
            format!(
                "{:?}",
                response_vs_error_rate(&net, StuffingMode::default(), &grid, None)
            ),
            format!(
                "{:?}",
                response_vs_error_rate_with(&eval, &net, StuffingMode::default(), &grid, None)
            ),
        );
    }
}

#[test]
fn max_schedulable_jitter_shims_match_the_trait() {
    let eval = Evaluator::default();
    let scenario = Scenario::sporadic_errors(Time::from_ms(10));
    for (seed, net) in corpus() {
        let via_trait = format!(
            "{:?}",
            eval.max_schedulable_jitter(&net, &scenario, 2.0, 0.05)
        );
        assert_matches(
            "max_schedulable_jitter",
            seed,
            &via_trait,
            format!("{:?}", max_schedulable_jitter(&net, &scenario, 2.0, 0.05)),
            format!(
                "{:?}",
                max_schedulable_jitter_with(&eval, &net, &scenario, 2.0, 0.05)
            ),
        );
    }
}

#[test]
fn required_tx_depths_shims_match_the_trait() {
    let eval = Evaluator::default();
    let scenario = Scenario::worst_case();
    for (seed, net) in corpus() {
        let via_trait = format!("{:?}", eval.required_tx_depths(&net, &scenario));
        assert_matches(
            "required_tx_depths",
            seed,
            &via_trait,
            format!("{:?}", required_tx_depths(&net, &scenario)),
            format!("{:?}", required_tx_depths_with(&eval, &net, &scenario)),
        );
    }
}

#[test]
fn required_rx_depth_shims_match_the_trait() {
    let eval = Evaluator::default();
    let scenario = Scenario::worst_case();
    let drain = Time::from_ms(5);
    for (seed, net) in corpus() {
        // Every node, plus one out-of-range index (the error path must
        // stay identical too).
        for node in 0..=net.nodes().len() {
            let via_trait = format!("{:?}", eval.required_rx_depth(&net, &scenario, node, drain));
            assert_matches(
                "required_rx_depth",
                seed,
                &via_trait,
                format!("{:?}", required_rx_depth(&net, &scenario, node, drain)),
                format!(
                    "{:?}",
                    required_rx_depth_with(&eval, &net, &scenario, node, drain)
                ),
            );
        }
    }
}

#[test]
fn max_additional_ecus_shims_match_the_trait() {
    let eval = Evaluator::default();
    let scenario = Scenario::worst_case();
    let template = EcuTemplate {
        messages_per_ecu: 2,
        ..EcuTemplate::default()
    };
    for (seed, net) in corpus() {
        let via_trait = format!(
            "{:?}",
            eval.max_additional_ecus(&net, &scenario, &template, 6)
        );
        assert_matches(
            "max_additional_ecus",
            seed,
            &via_trait,
            format!("{:?}", max_additional_ecus(&net, &scenario, &template, 6)),
            format!(
                "{:?}",
                max_additional_ecus_with(&eval, &net, &scenario, &template, 6)
            ),
        );
    }
}

#[test]
fn compare_bit_rates_shim_matches_the_trait() {
    // `compare_bit_rates` never had a `_with` twin — only the plain
    // deprecated form exists alongside the trait method.
    let eval = Evaluator::default();
    let scenario = Scenario::worst_case();
    let template = EcuTemplate {
        messages_per_ecu: 2,
        ..EcuTemplate::default()
    };
    let candidates = [125_000u64, 250_000, 500_000];
    for (seed, net) in corpus() {
        let via_trait = format!(
            "{:?}",
            eval.compare_bit_rates(&net, &scenario, &candidates, &template)
        );
        assert_eq!(
            format!(
                "{:?}",
                compare_bit_rates(&net, &scenario, &candidates, &template)
            ),
            via_trait,
            "compare_bit_rates: plain shim diverged (seed {seed})"
        );
    }
}
