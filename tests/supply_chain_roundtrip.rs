//! Full supply-chain round trip across crates (Figures 3 and 6):
//! scope → assumptions → requirements → supplier datasheet →
//! compatibility → refinement, on top of the case-study K-Matrix.

use carta::prelude::*;

fn case_study() -> CanNetwork {
    powertrain_default().to_network().expect("convertible")
}

#[test]
fn scope_of_generated_matrix_matches_known_jitters() {
    let matrix = powertrain_default();
    let net = case_study();
    let known: Vec<String> = matrix
        .rows
        .iter()
        .filter(|r| r.jitter_us.is_some())
        .map(|r| r.name.clone())
        .collect();
    let scope = InformationScope::oem(known.clone());
    let report = analysis_readiness(&scope, &net);
    assert!(report.can_run());
    assert!(!report.is_complete());
    // One assumption per unknown-jitter message, plus errors + flashing.
    assert_eq!(
        report.assumptions_needed.len(),
        (net.messages().len() - known.len()) + 2
    );
}

#[test]
fn refinement_on_case_study_converges_to_fewer_assumptions() {
    let net = case_study();
    let mut session = RefinementSession::start(&net, Scenario::worst_case(), 0.20).expect("valid");
    let initially_assumed = session.assumed_remaining();
    assert_eq!(initially_assumed, 48, "64 messages minus 16 known jitters");

    // A batch of datasheets arrives from the EMS supplier: their real
    // jitters are a calm 5 % of the period.
    let mut ds = Datasheet::new("EMS supplier");
    let ems_messages: Vec<(String, Time)> = net
        .messages()
        .iter()
        .filter(|m| m.sender == 0 && m.activation.jitter().is_zero())
        .map(|m| (m.name.clone(), m.activation.period()))
        .collect();
    assert!(!ems_messages.is_empty());
    for (name, period) in &ems_messages {
        ds.guarantee(
            name.clone(),
            EventModel::periodic_with_jitter(*period, period.percent(5)),
        );
    }
    let misses_before = session.current_missed();
    let updated = session.commit_datasheet(&ds).expect("valid");
    assert_eq!(updated, ems_messages.len());
    assert_eq!(
        session.assumed_remaining(),
        initially_assumed - ems_messages.len()
    );
    // Replacing a 20 % assumption by a 5 % guarantee never hurts.
    assert!(session.current_missed() <= misses_before);
    assert_eq!(session.history().len(), 2);
}

#[test]
fn oem_requirements_are_satisfiable_and_checkable() {
    let net = case_study();
    // Requirements for the TCU (node 1) under the paper's worst case.
    let req = oem_send_requirements(&net, &Scenario::worst_case(), 1, 0.9, 0.8).expect("valid");
    assert!(!req.is_empty());

    // A cooperative supplier guarantees half the required jitter.
    let mut ds = Datasheet::new("TCU supplier");
    for (name, bound) in req.iter() {
        ds.guarantee(
            name,
            EventModel::new(
                bound.kind(),
                bound.period(),
                bound.jitter() / 2,
                bound.dmin(),
            ),
        );
    }
    let compat = check(&ds, &req);
    assert!(compat.all_satisfied(), "{compat}");

    // An uncooperative one exceeds it and is caught.
    let mut bad = Datasheet::new("rogue supplier");
    for (name, bound) in req.iter() {
        bad.guarantee(
            name,
            EventModel::new(
                bound.kind(),
                bound.period(),
                bound.jitter() + Time::from_ms(5),
                bound.dmin(),
            ),
        );
    }
    let compat = check(&bad, &req);
    assert!(!compat.all_satisfied());
    assert_eq!(compat.failures().len(), req.len());
}

#[test]
fn oem_guarantees_receivers_under_committed_requirements() {
    let net = case_study();
    // If every supplier honors a 20 % jitter budget, the OEM can state
    // arrival guarantees for every message in the best case.
    let committed = with_jitter_ratio(&net, 0.20);
    let (arrivals, unguaranteed) =
        oem_receive_guarantees(&committed, &Scenario::best_case()).expect("valid");
    assert!(unguaranteed.is_empty(), "unguaranteed: {unguaranteed:?}");
    assert_eq!(arrivals.len(), net.messages().len());
    // Arrival jitter strictly exceeds send jitter (response span > 0).
    for m in committed.messages() {
        let arrival = arrivals.get(&m.name).expect("guaranteed");
        assert!(arrival.jitter() > m.activation.jitter());
        assert_eq!(arrival.period(), m.activation.period());
    }
}

#[test]
fn negotiation_freezes_budgets_on_the_case_study() {
    let net = with_assumed_unknown_jitter(&case_study(), 0.25);
    let scenario = Scenario::sporadic_errors(Time::from_ms(20));
    let tcu = 1;
    // The supplier's true capability: half of whatever the OEM would
    // budget under the initial (pessimistic) assumptions.
    let initial_budgets = oem_send_requirements(&net, &scenario, tcu, 0.9, 0.8).expect("valid");
    let mut capability = Datasheet::new("TCU supplier");
    for (name, bound) in initial_budgets.iter() {
        capability.guarantee(
            name,
            EventModel::new(
                bound.kind(),
                bound.period(),
                bound.jitter() / 2,
                bound.dmin(),
            ),
        );
    }
    let outcome = negotiate(&net, &scenario, tcu, &capability, 6).expect("valid");
    assert!(outcome.converged(), "unresolved: {:?}", outcome.unresolved);
    assert_eq!(outcome.agreed.len(), capability.len());
    // Frozen values are the capability values, and re-analyzing with
    // them committed keeps the bus at least as healthy as before.
    let mut committed = net.clone();
    for (name, model) in outcome.agreed.iter() {
        let (idx, _) = committed.message_by_name(name).expect("present");
        committed.messages_mut()[idx].activation = *model;
    }
    let before = scenario.analyze(&net).expect("valid").missed_count();
    let after = scenario.analyze(&committed).expect("valid").missed_count();
    assert!(after <= before);
}

#[test]
fn csv_pipeline_feeds_the_whole_stack() {
    // K-Matrix CSV → network → analysis → datasheet → CSV again.
    let matrix = powertrain_default();
    let text = to_csv(&matrix);
    let reparsed = from_csv(&text).expect("parses");
    assert_eq!(matrix, reparsed);
    let net = reparsed.to_network().expect("convertible");
    let report = Scenario::best_case().analyze(&net).expect("valid");
    assert_eq!(report.messages.len(), 64);
    // Deterministic: same matrix, same verdicts, twice.
    let report2 = Scenario::best_case().analyze(&net).expect("valid");
    for (a, b) in report.messages.iter().zip(&report2.messages) {
        assert_eq!(a.outcome.wcrt(), b.outcome.wcrt());
    }
}
