//! Observability must be a read-only window: the metrics the engine
//! exports agree with its own internal bookkeeping, spans nest and
//! close in a balanced way, and instrumenting a run never changes a
//! single analysis result.

use carta::prelude::*;
use carta_obs::metrics::{self, MetricsRegistry};
use carta_obs::trace::{NullSink, RingBufferSink, SpanKind};
use carta_testkit::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// Shape selection only — generation lives in `carta_testkit::gen`.
fn net_for(seed: u64) -> CanNetwork {
    random_network(&NetShape::two_node().messages(6), seed)
}

fn jitter_batch(net: &CanNetwork, scenario: &Scenario) -> Vec<SystemVariant> {
    let base = BaseSystem::new(net.clone());
    [0.0, 0.1, 0.25, 0.4, 0.6]
        .iter()
        .map(|&r| SystemVariant::new(base.clone(), scenario.clone()).with_jitter_ratio(r))
        .collect()
}

/// The cache counters an explicitly-bound registry collects must equal
/// the evaluator's own `CacheStats` — across a cold batch and a fully
/// warm repeat.
#[test]
fn explicit_registry_matches_evaluator_cache_stats() {
    let registry = Arc::new(MetricsRegistry::new());
    let eval = Evaluator::builder().jobs(2).metrics(&registry).build();
    let net = net_for(11);
    let variants = jitter_batch(&net, &Scenario::worst_case());

    eval.evaluate_batch(&variants); // cold: all misses
    eval.evaluate_batch(&variants); // warm: all hits

    let stats = eval.stats();
    assert!(stats.hits >= variants.len() as u64, "{stats:?}");
    let snap = registry.snapshot();
    assert_eq!(snap.counter("engine.cache.hits"), Some(stats.hits));
    assert_eq!(snap.counter("engine.cache.misses"), Some(stats.misses));
    assert_eq!(
        snap.counter("engine.batch.points"),
        Some(2 * variants.len() as u64)
    );
    assert_eq!(snap.counter("engine.batch.runs"), Some(2));
}

/// Every span a single-threaded analysis opens must close, in LIFO
/// order, on the thread that opened it.
#[test]
fn spans_nest_and_balance() {
    let sink = Arc::new(RingBufferSink::new(4096));
    carta_obs::trace::install(sink.clone());
    // Events are tagged with the emitting thread's id; the probe
    // reports its own so we can single it out below.
    let probe_thread = std::thread::spawn(|| {
        let eval = Evaluator::builder().jobs(1).build();
        let net = net_for(5);
        eval.loss_vs_jitter(&net, &Scenario::worst_case(), &[0.0, 0.2, 0.4])
            .expect("valid model");
        format!("{:?}", std::thread::current().id())
    })
    .join()
    .expect("probe thread succeeds");
    carta_obs::trace::uninstall();

    // Other tests may run traced work concurrently; judge only the
    // probe thread, which ran strictly single-threaded.
    let events: Vec<_> = sink
        .drain()
        .into_iter()
        .filter(|e| e.thread == probe_thread)
        .collect();
    assert!(!events.is_empty(), "probe thread emitted no spans");
    let mut stack: Vec<&'static str> = Vec::new();
    for event in &events {
        match event.kind {
            SpanKind::Enter => {
                assert_eq!(event.depth, stack.len(), "enter depth for {}", event.name);
                stack.push(event.name);
            }
            SpanKind::Exit => {
                assert_eq!(stack.pop(), Some(event.name), "exit out of order");
                assert_eq!(event.depth, stack.len(), "exit depth for {}", event.name);
                assert!(event.dur_ns.is_some(), "exit without duration");
            }
            SpanKind::Instant => assert!(!stack.is_empty(), "instant outside any span"),
        }
    }
    assert!(stack.is_empty(), "unclosed spans: {stack:?}");
    assert!(
        events
            .iter()
            .any(|e| e.kind == SpanKind::Enter && e.name.starts_with("sweep.")),
        "sweep span missing from {:?}",
        events.iter().map(|e| e.name).collect::<Vec<_>>()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Turning the whole observability stack on — global metrics, an
    // explicit registry *and* a null span sink — must leave every
    // response bound bit-identical to a bare run.
    #[test]
    fn instrumentation_never_changes_results(seed in 0u64..5_000, pick in 0u8..4) {
        let net = net_for(seed);
        let scenario = match pick % 4 {
            0 => Scenario::best_case(),
            1 => Scenario::best_case_period_deadline(),
            2 => Scenario::worst_case(),
            _ => Scenario::sporadic_errors(Time::from_ms(10)),
        };
        let variants = jitter_batch(&net, &scenario);

        let bare = Evaluator::builder().jobs(1).build();
        let plain: Vec<_> = bare.evaluate_batch(&variants);

        let was_enabled = metrics::enabled();
        metrics::set_enabled(true);
        carta_obs::trace::install(Arc::new(NullSink));
        let registry = Arc::new(MetricsRegistry::new());
        let observed = Evaluator::builder()
            .jobs(2)
            .metrics(&registry)
            .build()
            .evaluate_batch(&variants);
        carta_obs::trace::uninstall();
        metrics::set_enabled(was_enabled);

        for (i, (p, o)) in plain.iter().zip(&observed).enumerate() {
            let (p, o) = (p.as_ref().expect("valid"), o.as_ref().expect("valid"));
            prop_assert_eq!(p.messages.len(), o.messages.len());
            for (a, b) in p.messages.iter().zip(&o.messages) {
                prop_assert_eq!(a.outcome, b.outcome, "variant {}, message {}", i, &a.name);
                prop_assert_eq!(a.blocking, b.blocking);
                prop_assert_eq!(a.c_min, b.c_min);
                prop_assert_eq!(a.instances, b.instances);
            }
        }
        prop_assert!(registry.snapshot().counter("engine.cache.misses").unwrap_or(0) > 0);
    }
}
