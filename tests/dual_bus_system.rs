//! The dual-bus gateway system assembled through the compositional
//! engine: power-train bus → GW_BODY routing task → body bus, at
//! case-study scale (64 + 28 messages, 4 forwarded signals).

use carta::prelude::*;
use std::sync::Arc;

struct Assembled {
    sys: CompositionalSystem,
    pt: usize,
    gw: usize,
    body: usize,
    pt_net: CanNetwork,
    body_net: CanNetwork,
    forwarded: Vec<ForwardedSignal>,
}

fn assemble() -> Assembled {
    assemble_with_pt_jitter(None)
}

/// Builds the system; with `Some(ratio)` the forwarded power-train
/// sources get `ratio` of their period as jitter.
fn assemble_with_pt_jitter(forward_jitter_ratio: Option<f64>) -> Assembled {
    let d = dual_bus_default();
    let mut pt_net = d.powertrain.to_network().expect("convertible");
    if let Some(ratio) = forward_jitter_ratio {
        for f in &d.forwarded {
            let (i, _) = pt_net
                .message_by_name(&f.powertrain_message)
                .expect("present");
            let m = &mut pt_net.messages_mut()[i];
            m.activation = EventModel::periodic_with_jitter(
                m.activation.period(),
                m.activation.period().scale(ratio),
            );
        }
    }
    let body_net = d.body.to_network().expect("convertible");

    // The gateway runs one routing task per forwarded signal plus a
    // housekeeping task.
    let mut tasks = Vec::new();
    for (k, f) in d.forwarded.iter().enumerate() {
        let (_, src) = pt_net
            .message_by_name(&f.powertrain_message)
            .expect("present");
        tasks.push(Task::periodic(
            format!("route_{}", f.body_message),
            Priority(10 - k as u32),
            src.activation.period(),
            Time::from_us(20),
            Time::from_us(80),
        ));
    }
    tasks.push(Task::periodic(
        "housekeeping",
        Priority(1),
        Time::from_ms(100),
        Time::from_us(100),
        Time::from_ms(2),
    ));

    let mut sys = CompositionalSystem::new();
    let pt = sys.add_resource(Box::new(CanBusResource::with_errors(
        "powertrain",
        pt_net.clone(),
        Arc::new(SporadicErrors::new(Time::from_ms(20))),
    )));
    let gw = sys.add_resource(Box::new(EcuResource::new("GW_BODY", tasks)));
    let body = sys.add_resource(Box::new(CanBusResource::with_errors(
        "body",
        body_net.clone(),
        Arc::new(SporadicErrors::new(Time::from_ms(20))),
    )));

    // Sources: every power-train message; every body message that is
    // not forwarded; the housekeeping task.
    for (i, m) in pt_net.messages().iter().enumerate() {
        sys.set_source(NodeRef::new(pt, i), m.activation)
            .expect("valid");
    }
    for (i, m) in body_net.messages().iter().enumerate() {
        if !d.forwarded.iter().any(|f| f.body_message == m.name) {
            sys.set_source(NodeRef::new(body, i), m.activation)
                .expect("valid");
        }
    }
    sys.set_source(
        NodeRef::new(gw, d.forwarded.len()),
        EventModel::periodic(Time::from_ms(100)),
    )
    .expect("valid");

    // Chains: pt message -> routing task -> body message.
    for (k, f) in d.forwarded.iter().enumerate() {
        let (src_idx, _) = pt_net
            .message_by_name(&f.powertrain_message)
            .expect("present");
        let (dst_idx, _) = body_net.message_by_name(&f.body_message).expect("present");
        sys.connect(NodeRef::new(pt, src_idx), NodeRef::new(gw, k))
            .expect("valid");
        sys.connect(NodeRef::new(gw, k), NodeRef::new(body, dst_idx))
            .expect("valid");
    }
    Assembled {
        sys,
        pt,
        gw,
        body,
        pt_net,
        body_net,
        forwarded: d.forwarded,
    }
}

#[test]
fn dual_bus_system_converges_and_is_schedulable() {
    let a = assemble();
    let result = a.sys.analyze().expect("converges");
    assert!(
        result.iterations() <= 10,
        "iterations: {}",
        result.iterations()
    );

    // Every hop of every forwarded chain has a bounded response and
    // accumulated jitter grows along the chain.
    for (k, f) in a.forwarded.iter().enumerate() {
        let (src_idx, src) = a
            .pt_net
            .message_by_name(&f.powertrain_message)
            .expect("present");
        let (dst_idx, _) = a
            .body_net
            .message_by_name(&f.body_message)
            .expect("present");
        let chain = [
            NodeRef::new(a.pt, src_idx),
            NodeRef::new(a.gw, k),
            NodeRef::new(a.body, dst_idx),
        ];
        let latency = a.sys.path_latency(&result, &chain).expect("connected");
        assert!(
            latency.worst() < Time::from_ms(50),
            "{}: {}",
            f.body_message,
            latency
        );
        assert!(latency.best() > Time::ZERO);
        // The forwarded copy's activation jitter reflects the chain.
        let derived = result.activation(NodeRef::new(a.body, dst_idx));
        assert!(derived.jitter() > src.activation.jitter());
        assert_eq!(derived.period(), src.activation.period());
    }
}

#[test]
fn body_bus_feels_powertrain_jitter() {
    // Raising the jitter of the forwarded power-train sources must
    // weakly increase the derived activation jitter of their copies on
    // the body bus — jitter crosses two resource boundaries.
    let calm = assemble();
    let noisy = assemble_with_pt_jitter(Some(0.40));
    let calm_result = calm.sys.analyze().expect("converges");
    let noisy_result = noisy.sys.analyze().expect("converges");
    let mut strictly_larger = 0;
    for f in &calm.forwarded {
        let (dst_idx, _) = calm
            .body_net
            .message_by_name(&f.body_message)
            .expect("present");
        let a = calm_result.activation(NodeRef::new(calm.body, dst_idx));
        let b = noisy_result.activation(NodeRef::new(noisy.body, dst_idx));
        assert!(
            b.jitter() >= a.jitter(),
            "{}: {} < {}",
            f.body_message,
            b.jitter(),
            a.jitter()
        );
        if b.jitter() > a.jitter() {
            strictly_larger += 1;
        }
    }
    assert!(
        strictly_larger > 0,
        "at least one chain must visibly amplify"
    );
    // Local body traffic never improves when upstream gets noisier.
    for (i, m) in calm.body_net.messages().iter().enumerate() {
        if calm.forwarded.iter().any(|f| f.body_message == m.name) {
            continue;
        }
        let a = calm_result.response(NodeRef::new(calm.body, i));
        let b = noisy_result.response(NodeRef::new(noisy.body, i));
        assert!(
            b.worst() >= a.worst(),
            "{}: improved under more jitter",
            m.name
        );
    }
}
