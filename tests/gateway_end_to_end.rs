//! End-to-end compositional analysis across crates: CAN bus → gateway
//! ECU → second CAN bus, exercising the global fixpoint engine with
//! real local analyses on both resource types.

use carta::prelude::*;
use std::sync::Arc;

struct System {
    sys: CompositionalSystem,
    b1: usize,
    gw: usize,
    b2: usize,
}

fn build(rpm_jitter: Time) -> System {
    let mut bus1 = CanNetwork::new(500_000);
    let ems = bus1.add_node(Node::new("EMS", ControllerType::FullCan));
    bus1.add_message(CanMessage::new(
        "engine_rpm",
        CanId::standard(0x100).expect("valid"),
        Dlc::new(8),
        Time::from_ms(10),
        rpm_jitter,
        ems,
    ));
    bus1.add_message(CanMessage::new(
        "throttle",
        CanId::standard(0x180).expect("valid"),
        Dlc::new(4),
        Time::from_ms(10),
        Time::ZERO,
        ems,
    ));

    let tasks = vec![
        Task::periodic(
            "routing",
            Priority(2),
            Time::from_ms(10),
            Time::from_us(50),
            Time::from_us(200),
        ),
        Task::periodic(
            "housekeeping",
            Priority(1),
            Time::from_ms(50),
            Time::from_us(100),
            Time::from_ms(1),
        ),
    ];

    let mut bus2 = CanNetwork::new(250_000);
    let gwn = bus2.add_node(Node::new("GW", ControllerType::FullCan));
    let esp = bus2.add_node(Node::new("ESP", ControllerType::FullCan));
    bus2.add_message(CanMessage::new(
        "rpm_fwd",
        CanId::standard(0x110).expect("valid"),
        Dlc::new(8),
        Time::from_ms(10),
        Time::ZERO,
        gwn,
    ));
    bus2.add_message(CanMessage::new(
        "yaw_rate",
        CanId::standard(0x090).expect("valid"),
        Dlc::new(6),
        Time::from_ms(20),
        Time::from_ms(2),
        esp,
    ));

    let em0 = bus1.messages()[0].activation;
    let em1 = bus1.messages()[1].activation;
    let em_yaw = bus2.messages()[1].activation;

    let mut sys = CompositionalSystem::new();
    let b1 = sys.add_resource(Box::new(CanBusResource::with_errors(
        "powertrain",
        bus1,
        Arc::new(SporadicErrors::new(Time::from_ms(20))),
    )));
    let gw = sys.add_resource(Box::new(EcuResource::new("gateway", tasks)));
    let b2 = sys.add_resource(Box::new(CanBusResource::with_errors(
        "chassis",
        bus2,
        Arc::new(SporadicErrors::new(Time::from_ms(20))),
    )));

    sys.set_source(NodeRef::new(b1, 0), em0).expect("valid");
    sys.set_source(NodeRef::new(b1, 1), em1).expect("valid");
    sys.set_source(NodeRef::new(gw, 1), EventModel::periodic(Time::from_ms(50)))
        .expect("valid");
    sys.set_source(NodeRef::new(b2, 1), em_yaw).expect("valid");
    sys.connect(NodeRef::new(b1, 0), NodeRef::new(gw, 0))
        .expect("valid");
    sys.connect(NodeRef::new(gw, 0), NodeRef::new(b2, 0))
        .expect("valid");
    System { sys, b1, gw, b2 }
}

#[test]
fn fixpoint_converges_and_jitter_accumulates() {
    let s = build(Time::from_ms(1));
    let result = s.sys.analyze().expect("converges");
    assert!(result.iterations() <= 8, "DAG should converge quickly");

    // Jitter grows hop by hop along the chain.
    let j_bus1_in = result.activation(NodeRef::new(s.b1, 0)).jitter();
    let j_gw_in = result.activation(NodeRef::new(s.gw, 0)).jitter();
    let j_bus2_in = result.activation(NodeRef::new(s.b2, 0)).jitter();
    assert_eq!(j_bus1_in, Time::from_ms(1));
    assert!(j_gw_in > j_bus1_in);
    assert!(j_bus2_in > j_gw_in);

    // Period is preserved along the chain.
    assert_eq!(
        result.activation(NodeRef::new(s.b2, 0)).period(),
        Time::from_ms(10)
    );

    // The end-to-end worst case is the sum of hop worst cases.
    let total: Time = [s.b1, s.gw, s.b2]
        .iter()
        .map(|&r| result.response(NodeRef::new(r, 0)).worst())
        .sum();
    assert!(total > Time::ZERO);
    assert!(total < Time::from_ms(10), "chain fits within one period");
}

#[test]
fn upstream_jitter_propagates_to_downstream_bus() {
    let calm = build(Time::ZERO);
    let noisy = build(Time::from_ms(8));
    let r_calm = calm.sys.analyze().expect("converges");
    let r_noisy = noisy.sys.analyze().expect("converges");
    // The forwarded frame's activation jitter on bus 2 reflects the
    // source jitter injected two hops upstream.
    let calm_j = r_calm.activation(NodeRef::new(calm.b2, 0)).jitter();
    let noisy_j = r_noisy.activation(NodeRef::new(noisy.b2, 0)).jitter();
    assert!(noisy_j >= calm_j + Time::from_ms(8) - Time::from_ms(1));
    // And the *other* traffic on bus 2 sees (at most slightly) more
    // interference, never less.
    let calm_yaw = r_calm.response(NodeRef::new(calm.b2, 1)).worst();
    let noisy_yaw = r_noisy.response(NodeRef::new(noisy.b2, 1)).worst();
    assert!(noisy_yaw >= calm_yaw);
}

#[test]
fn overloaded_downstream_bus_reports_entity() {
    // Shrink bus 2 to 50 kbit/s: the forwarded stream no longer fits.
    let mut s = build(Time::ZERO);
    let mut bus2 = CanNetwork::new(50_000);
    let gwn = bus2.add_node(Node::new("GW", ControllerType::FullCan));
    bus2.add_message(CanMessage::new(
        "rpm_fwd",
        CanId::standard(0x110).expect("valid"),
        Dlc::new(8),
        Time::from_ms(1), // 135 bits / 1 ms on 50 kbit/s: 270 %
        Time::ZERO,
        gwn,
    ));
    let slow = CanBusResource::new("slow", bus2);
    let b3 = s.sys.add_resource(Box::new(slow));
    s.sys
        .set_source(NodeRef::new(b3, 0), EventModel::periodic(Time::from_ms(1)))
        .expect("valid");
    match s.sys.analyze() {
        Err(AnalysisError::Unbounded { entity }) => assert_eq!(&*entity, "rpm_fwd"),
        other => panic!("expected Unbounded, got {other:?}"),
    }
}
