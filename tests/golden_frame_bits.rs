//! Golden frame-length values, pinned against the literature.
//!
//! Classic CAN bit counts follow Tindell/Burns' worst-case stuffing
//! formulas (CAN 2.0A standard, 2.0B extended, interframe space
//! included); the CAN FD table follows ISO 11898-1:2015 (DLC payload
//! steps, dual-rate phases, fixed-stuffed CRC-17/21). These are the
//! numbers every layer above `carta-can` ultimately multiplies by the
//! bit time, so they are pinned here as plain integers: any backend
//! refactor that shifts one of them must show up as a diff in this
//! file, not as a silent change in analysis results.

use carta_can::backend::{fd_wire_payload, BackendConfig, FD_PAYLOAD_STEPS};
use carta_can::frame::{Dlc, FrameKind, StuffingMode};
use carta_core::time::Time;

/// CAN 2.0A (standard, 11-bit id): worst case `55 + 10·s` bits, best
/// case `47 + 8·s`; CAN 2.0B (extended, 29-bit id): `80 + 10·s` and
/// `67 + 8·s`.
#[test]
fn classic_bit_counts_match_the_worst_case_stuffing_formulas() {
    let classic = BackendConfig::Can;
    for s in 0..=8u8 {
        let dlc = Dlc::new(s.max(1)); // payloads start at one byte
        let s = u64::from(dlc.bytes());
        assert_eq!(FrameKind::Standard.max_bits(dlc), 55 + 10 * s);
        assert_eq!(FrameKind::Standard.min_bits(dlc), 47 + 8 * s);
        assert_eq!(FrameKind::Extended.max_bits(dlc), 80 + 10 * s);
        assert_eq!(FrameKind::Extended.min_bits(dlc), 67 + 8 * s);
        // The backend reports the same counts as a pure nominal phase.
        for kind in [FrameKind::Standard, FrameKind::Extended] {
            let bits = classic.backend().wire_bits(kind, dlc);
            assert_eq!(bits.nominal_max, kind.max_bits(dlc));
            assert_eq!(bits.nominal_min, kind.min_bits(dlc));
            assert_eq!((bits.data_min, bits.data_max), (0, 0));
        }
    }
}

/// The headline classic pins at 500 kbit/s: an 8-byte standard frame
/// is 135 bits = 270 µs worst case, 111 bits = 222 µs unstuffed; the
/// extended twin is 160 bits = 320 µs and 131 bits = 262 µs.
#[test]
fn classic_transmission_times_at_500k_are_pinned() {
    let classic = BackendConfig::Can;
    let dlc = Dlc::new(8);
    let rate = 500_000;
    let cases = [
        (FrameKind::Standard, 270_000, 222_000),
        (FrameKind::Extended, 320_000, 262_000),
    ];
    for (kind, worst_ns, best_ns) in cases {
        assert_eq!(
            classic.c_max(kind, dlc, StuffingMode::WorstCase, rate),
            Time::from_ns(worst_ns)
        );
        assert_eq!(classic.c_min(kind, dlc, rate), Time::from_ns(best_ns));
    }
    // One-byte standard frame: 65 bits = 130 µs worst case.
    assert_eq!(
        classic.c_max(
            FrameKind::Standard,
            Dlc::new(1),
            StuffingMode::WorstCase,
            rate
        ),
        Time::from_ns(130_000)
    );
}

/// The ISO 11898-1 DLC step table: requested payloads round *up* to
/// the next wire size.
#[test]
fn fd_dlc_step_table_is_pinned() {
    assert_eq!(
        FD_PAYLOAD_STEPS,
        [0, 1, 2, 3, 4, 5, 6, 7, 8, 12, 16, 20, 24, 32, 48, 64]
    );
    for bytes in 0..=64u8 {
        let expected = match bytes {
            0..=8 => bytes,
            9..=12 => 12,
            13..=16 => 16,
            17..=20 => 20,
            21..=24 => 24,
            25..=32 => 32,
            33..=48 => 48,
            _ => 64,
        };
        assert_eq!(fd_wire_payload(bytes), expected, "payload {bytes}");
        if bytes >= 1 {
            assert_eq!(Dlc::fd(bytes).bytes(), expected);
        }
    }
}

/// FD per-phase bit counts for every wire payload size `s`: the
/// nominal phase is payload-independent (30/34 bits standard, 49/57
/// extended); the data phase is `5 + 8·s` payload bits plus dynamic
/// stuffing plus the fixed-stuffed CRC field (27 bits through 16-byte
/// payloads — CRC-17 — and 32 bits above — CRC-21).
#[test]
fn fd_wire_bit_counts_are_pinned() {
    let fd = BackendConfig::can_fd();
    //            s  data_min data_max
    let golden = [
        (0u8, 32u64, 33u64),
        (1, 40, 43),
        (2, 48, 53),
        (3, 56, 63),
        (4, 64, 73),
        (5, 72, 83),
        (6, 80, 93),
        (7, 88, 103),
        (8, 96, 113),
        (12, 128, 153),
        (16, 160, 193),
        (20, 197, 238),
        (24, 229, 278),
        (32, 293, 358),
        (48, 421, 518),
        (64, 549, 678),
    ];
    for (s, data_min, data_max) in golden {
        if s == 0 {
            continue; // zero-byte frames are not constructible via Dlc
        }
        let dlc = Dlc::fd(s);
        let std = fd.backend().wire_bits(FrameKind::Standard, dlc);
        let ext = fd.backend().wire_bits(FrameKind::Extended, dlc);
        assert_eq!((std.nominal_min, std.nominal_max), (30, 34), "s={s}");
        assert_eq!((ext.nominal_min, ext.nominal_max), (49, 57), "s={s}");
        for bits in [std, ext] {
            assert_eq!(bits.data_min, data_min, "s={s}");
            assert_eq!(bits.data_max, data_max, "s={s}");
        }
    }
}

/// FD transmission-time pins on a 500 kbit/s bus with the default 4×
/// data phase (2 Mbit/s): the nominal phase pays classic-speed bits,
/// the data phase runs four times faster.
#[test]
fn fd_transmission_times_at_500k_x4_are_pinned() {
    let fd = BackendConfig::can_fd();
    let rate = 500_000;
    // 8-byte standard frame: 34 bits @500k (68 µs) + 113 bits @2M
    // (56.5 µs) = 124.5 µs worst; 30 + 96 bits = 60 + 48 µs best.
    assert_eq!(
        fd.c_max(
            FrameKind::Standard,
            Dlc::new(8),
            StuffingMode::WorstCase,
            rate
        ),
        Time::from_ns(124_500)
    );
    assert_eq!(
        fd.c_min(FrameKind::Standard, Dlc::new(8), rate),
        Time::from_ns(108_000)
    );
    // 64-byte frames: 678 data bits @2M = 339 µs on top of the
    // nominal phase.
    assert_eq!(
        fd.c_max(
            FrameKind::Standard,
            Dlc::fd(64),
            StuffingMode::WorstCase,
            rate
        ),
        Time::from_ns(407_000)
    );
    assert_eq!(
        fd.c_max(
            FrameKind::Extended,
            Dlc::fd(64),
            StuffingMode::WorstCase,
            rate
        ),
        Time::from_ns(453_000)
    );
    // Same payload, same bus: FD dominates classic at ratio >= 2.
    for bytes in 1..=8u8 {
        for kind in [FrameKind::Standard, FrameKind::Extended] {
            let dlc = Dlc::new(bytes);
            assert!(
                fd.c_max(kind, dlc, StuffingMode::WorstCase, rate)
                    <= BackendConfig::Can.c_max(kind, dlc, StuffingMode::WorstCase, rate),
                "{kind:?} {bytes}B"
            );
        }
    }
}
