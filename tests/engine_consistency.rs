//! The evaluation engine's core contract: batched, parallel, memoized
//! evaluation is *observationally identical* to the fresh sequential
//! clone-and-analyze path. Whatever the parallelism, cache temperature
//! or overlay combination, every message's [`ResponseBounds`] must be
//! bit-identical.

use carta::prelude::*;
use carta_testkit::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// Shape selection only — generation lives in `carta_testkit::gen`.
/// Odd seeds use the mixed-controller shape so basicCAN and FIFO TX
/// paths stay covered.
fn net_for(seed: u64) -> CanNetwork {
    let shape = if seed.is_multiple_of(2) {
        NetShape::two_node()
    } else {
        NetShape::mixed()
    };
    random_network(&shape.messages(6), seed)
}

fn scenario_for(pick: u8) -> Scenario {
    match pick % 4 {
        0 => Scenario::best_case(),
        1 => Scenario::best_case_period_deadline(),
        2 => Scenario::worst_case(),
        _ => Scenario::sporadic_errors(Time::from_ms(10)),
    }
}

/// The reference path the engine must match: clone the base, apply the
/// jitter transform and identifier permutation by hand, run the plain
/// sequential analysis.
fn fresh_sequential(
    net: &CanNetwork,
    scenario: &Scenario,
    ratio: f64,
    perm: Option<&[usize]>,
) -> BusReport {
    let mut candidate = net.clone();
    if let Some(perm) = perm {
        let mut pool: Vec<CanId> = net.messages().iter().map(|m| m.id).collect();
        pool.sort_by_key(|id| id.arbitration_key());
        for (rank, &msg_idx) in perm.iter().enumerate() {
            candidate.messages_mut()[msg_idx].id = pool[rank];
        }
    }
    scenario
        .analyze(&with_jitter_ratio(&candidate, ratio))
        .expect("valid model")
}

/// A distinct-key scenario ladder for the large-batch grids: every
/// (scenario, jitter ratio) pair below maps to a unique [`VariantKey`],
/// so cache hit/miss counts cannot race between workers and the full
/// [`CacheStats`] become a pure function of the grid.
fn scenario_ladder() -> Vec<Scenario> {
    vec![
        Scenario::best_case(),
        Scenario::best_case_period_deadline(),
        Scenario::worst_case(),
        Scenario::sporadic_errors(Time::from_ms(5)),
        Scenario::sporadic_errors(Time::from_ms(10)),
        Scenario::sporadic_errors(Time::from_ms(20)),
        Scenario::sporadic_errors(Time::from_ms(40)),
        Scenario::sporadic_errors(Time::from_ms(80)),
    ]
}

fn grid(base: &Arc<BaseSystem>, ratios_per_scenario: usize) -> Vec<SystemVariant> {
    let scenarios = scenario_ladder();
    let mut variants = Vec::with_capacity(scenarios.len() * ratios_per_scenario);
    for scenario in &scenarios {
        for k in 0..ratios_per_scenario {
            variants.push(
                SystemVariant::new(base.clone(), scenario.clone())
                    .with_jitter_ratio(k as f64 * 0.0005),
            );
        }
    }
    variants
}

/// The chunked batch contract at scale: a ≥10k-point deterministic grid
/// comes out bit-identical — results *and* the full [`CacheStats`],
/// warm/cold solve counts included — at `--jobs` 1, 2 and 8. Chunks are
/// assigned round-robin by index and each starts from invalidated
/// warm-start state, so nothing observable depends on the worker count.
#[test]
fn large_deterministic_batches_are_bit_identical_across_jobs() {
    let base = BaseSystem::new(random_network(&NetShape::mixed().messages(6), 42));
    let variants = grid(&base, 1260);
    assert!(
        variants.len() >= 10_000,
        "grid too small: {}",
        variants.len()
    );
    let mut reference: Option<(Vec<EvalResult>, CacheStats)> = None;
    for jobs in [1usize, 2, 8] {
        let eval = Evaluator::new(Parallelism::new(jobs));
        let out = eval.evaluate_batch(&variants);
        let stats = eval.stats();
        match &reference {
            None => reference = Some((out, stats)),
            Some((ref_out, ref_stats)) => {
                assert_eq!(
                    &stats, ref_stats,
                    "cache statistics must be reproducible at jobs={jobs}"
                );
                for (i, (a, b)) in out.iter().zip(ref_out).enumerate() {
                    let (a, b) = (a.as_ref().expect("valid"), b.as_ref().expect("valid"));
                    assert_eq!(a, b, "point {i} diverged at jobs={jobs}");
                }
            }
        }
    }
}

/// Permutation overlays ride the incremental re-analysis path, whose
/// anchor availability *can* depend on scheduling — but the results may
/// not: whether a permuted point diffs against an anchor or solves
/// cold, the report must be bit-identical at any job count.
#[test]
fn permutation_batches_are_bit_identical_across_jobs() {
    let base = BaseSystem::new(random_network(&NetShape::two_node().messages(6), 7));
    let n = base.network().messages().len();
    let perms: Vec<Arc<Vec<usize>>> = (1..4)
        .map(|rot| Arc::new((0..n).map(|i| (i + rot) % n).collect()))
        .collect();
    let mut variants = Vec::new();
    for k in 0..640usize {
        let v = SystemVariant::new(base.clone(), Scenario::worst_case())
            .with_jitter_ratio(k as f64 * 0.0008);
        variants.push(v.clone());
        for perm in &perms {
            variants.push(v.clone().with_permutation(perm.clone()));
        }
    }
    let mut reference: Option<Vec<EvalResult>> = None;
    for jobs in [1usize, 2, 8] {
        let eval = Evaluator::new(Parallelism::new(jobs));
        let out = eval.evaluate_batch(&variants);
        match &reference {
            None => reference = Some(out),
            Some(ref_out) => {
                for (i, (a, b)) in out.iter().zip(ref_out).enumerate() {
                    let (a, b) = (a.as_ref().expect("valid"), b.as_ref().expect("valid"));
                    assert_eq!(a, b, "point {i} diverged at jobs={jobs}");
                }
            }
        }
    }
}

/// The probabilistic path under the same contract, stats included. The
/// warm-up batch contains every grid point *plus* its error-free twin
/// (deduplicated by key), so the prob phase is answered entirely from
/// the deterministic cache and the final [`CacheStats`] — warm/cold
/// counts included — are again a pure function of the grid. The grid is
/// smaller than the deterministic one only because each retained
/// [`ProbBusReport`] carries per-message PMFs (up to 4096 bins each).
#[test]
fn prob_batches_are_bit_identical_across_jobs() {
    let base = BaseSystem::new(random_network(&NetShape::mixed().messages(6), 11));
    let variants = grid(&base, 63);
    let mut seen = std::collections::HashSet::new();
    let mut warmup = Vec::new();
    for v in &variants {
        for candidate in [v.clone(), v.clone().with_errors(ErrorSpec::None)] {
            if seen.insert(candidate.key()) {
                warmup.push(candidate);
            }
        }
    }
    let mut reference: Option<(Vec<Arc<ProbBusReport>>, CacheStats)> = None;
    for jobs in [1usize, 2, 8] {
        let eval = Evaluator::new(Parallelism::new(jobs));
        let _ = eval.evaluate_batch(&warmup);
        let out: Vec<Arc<ProbBusReport>> = variants
            .iter()
            .map(|v| eval.evaluate_prob(v).expect("analyzable"))
            .collect();
        let stats = eval.stats();
        match &reference {
            None => reference = Some((out, stats)),
            Some((ref_out, ref_stats)) => {
                assert_eq!(
                    &stats, ref_stats,
                    "prob-path cache statistics must be reproducible at jobs={jobs}"
                );
                for (i, (a, b)) in out.iter().zip(ref_out).enumerate() {
                    assert_eq!(a, b, "prob point {i} diverged at jobs={jobs}");
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn parallel_warm_cache_matches_fresh_sequential(
        seed in 0u64..5_000,
        pick in 0u8..4,
        jobs in 1usize..5,
    ) {
        let net = net_for(seed);
        let scenario = scenario_for(pick);
        let ratios = [0.0, 0.1, 0.25, 0.4, 0.6];
        // A rotation permutation derived from the seed (plus identity
        // via `None`) exercises the incremental re-analysis path.
        let n = net.messages().len();
        let rot = (seed as usize) % n;
        let perm: Arc<Vec<usize>> = Arc::new((0..n).map(|i| (i + rot) % n).collect());

        let base = BaseSystem::new(net.clone());
        let mut variants = Vec::new();
        let mut expected = Vec::new();
        for &ratio in &ratios {
            let plain = SystemVariant::new(base.clone(), scenario.clone())
                .with_jitter_ratio(ratio);
            variants.push(plain.clone());
            expected.push(fresh_sequential(&net, &scenario, ratio, None));
            variants.push(plain.with_permutation(perm.clone()));
            expected.push(fresh_sequential(&net, &scenario, ratio, Some(&perm)));
        }

        let eval = Evaluator::new(Parallelism::new(jobs));
        let cold = eval.evaluate_batch(&variants);
        let warm = eval.evaluate_batch(&variants);
        prop_assert!(
            eval.stats().hits >= variants.len() as u64,
            "second batch must be answered from the cache: {:?}",
            eval.stats()
        );

        for (i, ((c, w), fresh)) in cold.iter().zip(&warm).zip(&expected).enumerate() {
            let (c, w) = (c.as_ref().expect("valid"), w.as_ref().expect("valid"));
            prop_assert!(Arc::ptr_eq(c, w), "variant {i}: warm result not shared");
            prop_assert_eq!(c.messages.len(), fresh.messages.len());
            for (e, d) in c.messages.iter().zip(&fresh.messages) {
                // Bit-identical response bounds (and everything else the
                // report carries about the message).
                prop_assert_eq!(e.outcome, d.outcome, "variant {}, message {}", i, &e.name);
                prop_assert_eq!(e.id, d.id);
                prop_assert_eq!(e.deadline, d.deadline);
                prop_assert_eq!(e.blocking, d.blocking);
                prop_assert_eq!(e.c_min, d.c_min);
                prop_assert_eq!(e.instances, d.instances);
            }
        }
    }

    // The probabilistic analysis inherits the same contract: results
    // are bit-identical (every PMF bin, every derived quantile) across
    // cache temperature, worker count, and bus backend — a fresh
    // single-threaded evaluator and a warm multi-threaded one must not
    // differ in a single bit.
    #[test]
    fn prob_results_are_bit_identical_across_cache_and_jobs(
        seed in 0u64..5_000,
        pick in 0u8..4,
        jobs in 2usize..5,
    ) {
        // Rotate through classic two-node, mixed-controller, and CAN FD
        // shapes so both backends' prob paths are pinned.
        let shape = match seed % 3 {
            0 => NetShape::two_node(),
            1 => NetShape::mixed(),
            _ => NetShape::fd(),
        };
        let net = random_network(&shape.messages(6), seed);
        let scenario = scenario_for(pick);
        let base = BaseSystem::new(net.clone());
        let variants: Vec<SystemVariant> = [0.0, 0.2, 0.5]
            .iter()
            .map(|&r| SystemVariant::new(base.clone(), scenario.clone()).with_jitter_ratio(r))
            .collect();

        let reference = Evaluator::new(Parallelism::new(1));
        let parallel = Evaluator::new(Parallelism::new(jobs));
        // Warm the parallel evaluator's deterministic cache first so the
        // prob path runs against a warm cache there and a cold one on
        // the reference.
        let _ = parallel.evaluate_batch(&variants);

        for (i, v) in variants.iter().enumerate() {
            let cold = parallel.evaluate_prob(v).expect("analyzable");
            let warm = parallel.evaluate_prob(v).expect("analyzable");
            prop_assert!(Arc::ptr_eq(&cold, &warm), "variant {i}: prob result not cached");
            let fresh = reference.evaluate_prob(v).expect("analyzable");
            prop_assert_eq!(&*cold, &*fresh, "variant {} diverges across evaluators", i);
        }
    }
}
