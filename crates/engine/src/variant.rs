//! Network variants as cheap overlays over a shared base.
//!
//! The sweep and optimization workloads evaluate thousands of networks
//! that differ from one base system only in a jitter assumption, an
//! identifier permutation and the scenario's deadline override. Instead
//! of cloning the network per point, a [`SystemVariant`] records those
//! deltas and [`SystemVariant::apply_onto`] rewrites a reusable scratch
//! network in place — every field is recomputed from the base, so the
//! scratch's previous contents never leak into the next variant.

use crate::scenario::{DeadlineOverride, Scenario};
use carta_can::message::{CanId, DeadlinePolicy};
use carta_can::network::CanNetwork;
use carta_core::analysis::AnalysisError;
use carta_core::event_model::EventModel;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::Arc;

/// An immutable base network with the precomputed data the overlay
/// machinery needs: a structural fingerprint (cache key component) and
/// the sorted identifier pool (permutation overlays re-distribute
/// existing identifiers, never invent new ones).
#[derive(Debug)]
pub struct BaseSystem {
    net: CanNetwork,
    fingerprint: u64,
    id_pool: Vec<CanId>,
}

impl BaseSystem {
    /// Wraps a network for variant evaluation.
    pub fn new(net: CanNetwork) -> Arc<Self> {
        let fingerprint = fingerprint(&net);
        let mut id_pool: Vec<CanId> = net.messages().iter().map(|m| m.id).collect();
        id_pool.sort_by_key(|id| id.arbitration_key());
        Arc::new(BaseSystem {
            net,
            fingerprint,
            id_pool,
        })
    }

    /// The underlying network.
    pub fn network(&self) -> &CanNetwork {
        &self.net
    }

    /// Structural hash of the base network. Two bases with the same
    /// fingerprint are treated as interchangeable by the cache.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The network's identifiers, strongest (lowest arbitration key)
    /// first.
    pub fn id_pool(&self) -> &[CanId] {
        &self.id_pool
    }
}

/// Structural hash over everything the analysis can observe.
fn fingerprint(net: &CanNetwork) -> u64 {
    // DefaultHasher::new() uses fixed keys: deterministic within (and
    // across) processes, which keeps VariantKey stable for a given
    // network.
    let mut h = DefaultHasher::new();
    net.bit_rate().hash(&mut h);
    net.backend().hash(&mut h);
    net.nodes().len().hash(&mut h);
    for node in net.nodes() {
        node.name.hash(&mut h);
        node.controller.hash(&mut h);
    }
    net.messages().len().hash(&mut h);
    for m in net.messages() {
        m.name.hash(&mut h);
        m.id.hash(&mut h);
        m.dlc.hash(&mut h);
        m.activation.hash(&mut h);
        m.deadline.hash(&mut h);
        m.sender.hash(&mut h);
    }
    h.finish()
}

/// Jitter assumption applied on top of the base network's event models
/// (the plain-data mirror of the [`crate::jitter`] transforms).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JitterOverlay {
    /// Every message's jitter becomes `ratio` of its period
    /// ([`crate::jitter::with_jitter_ratio`]).
    UniformRatio(f64),
    /// Only messages with unknown (zero) base jitter receive `ratio`
    /// of their period ([`crate::jitter::with_assumed_unknown_jitter`]).
    AssumedUnknownRatio(f64),
    /// Every existing jitter is scaled by the factor
    /// ([`crate::jitter::with_scaled_jitter`]).
    Scale(f64),
}

impl JitterOverlay {
    fn value(&self) -> f64 {
        match *self {
            JitterOverlay::UniformRatio(v)
            | JitterOverlay::AssumedUnknownRatio(v)
            | JitterOverlay::Scale(v) => v,
        }
    }

    fn discriminant(&self) -> u8 {
        match self {
            JitterOverlay::UniformRatio(_) => 0,
            JitterOverlay::AssumedUnknownRatio(_) => 1,
            JitterOverlay::Scale(_) => 2,
        }
    }

    /// The event model of one message under this overlay.
    fn activation(&self, base: &EventModel) -> EventModel {
        let period = base.period();
        match *self {
            JitterOverlay::UniformRatio(r) => {
                EventModel::new(base.kind(), period, period.scale(r), base.dmin())
            }
            JitterOverlay::AssumedUnknownRatio(r) => {
                if base.jitter().is_zero() {
                    EventModel::new(base.kind(), period, period.scale(r), base.dmin())
                } else {
                    *base
                }
            }
            JitterOverlay::Scale(f) => {
                EventModel::new(base.kind(), period, base.jitter().scale(f), base.dmin())
            }
        }
    }
}

/// Exact structural identity of one evaluation: everything that can
/// influence the produced [`carta_can::rta::BusReport`], and nothing
/// else (the scenario's display name, for instance, is excluded).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VariantKey {
    base: u64,
    stuffing: carta_can::frame::StuffingMode,
    errors: crate::scenario::ErrorSpec,
    deadline: DeadlineOverride,
    jitter: Option<(u8, u64)>,
    permutation: Option<Arc<Vec<usize>>>,
}

/// One candidate system: a shared base plus cheap overlay deltas.
#[derive(Debug, Clone)]
pub struct SystemVariant {
    base: Arc<BaseSystem>,
    scenario: Scenario,
    jitter: Option<JitterOverlay>,
    permutation: Option<Arc<Vec<usize>>>,
}

impl SystemVariant {
    /// A variant of `base` under `scenario`, with no further overlays.
    pub fn new(base: Arc<BaseSystem>, scenario: Scenario) -> Self {
        SystemVariant {
            base,
            scenario,
            jitter: None,
            permutation: None,
        }
    }

    /// Adds a jitter overlay.
    ///
    /// Hostile values (negative, NaN, infinite) are accepted here and
    /// rejected with [`AnalysisError::InvalidModel`] when the variant
    /// is evaluated — building a variant never panics.
    pub fn with_jitter(mut self, overlay: JitterOverlay) -> Self {
        self.jitter = Some(overlay);
        self
    }

    /// Shorthand for the paper's sweep axis: every jitter becomes
    /// `ratio` of the period.
    pub fn with_jitter_ratio(self, ratio: f64) -> Self {
        self.with_jitter(JitterOverlay::UniformRatio(ratio))
    }

    /// Checks the overlays for hostile values the type system cannot
    /// rule out (the analysis entry points call this before solving).
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::InvalidModel`] when a jitter overlay
    /// carries a negative, NaN or infinite ratio/factor.
    pub fn validate_overlays(&self) -> Result<(), AnalysisError> {
        if let Some(overlay) = &self.jitter {
            let v = overlay.value();
            if !v.is_finite() || v < 0.0 {
                return Err(AnalysisError::InvalidModel(format!(
                    "jitter overlay value {v} must be a finite non-negative number"
                )));
            }
        }
        Ok(())
    }

    /// Adds an identifier permutation: message `perm[k]` receives the
    /// `k`-th strongest identifier of the base pool.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of the message indices.
    pub fn with_permutation(mut self, perm: Arc<Vec<usize>>) -> Self {
        let n = self.base.network().messages().len();
        assert_eq!(perm.len(), n, "permutation length mismatch");
        let mut seen = vec![false; n];
        for &i in perm.iter() {
            assert!(i < n && !seen[i], "not a permutation of 0..{n}");
            seen[i] = true;
        }
        self.permutation = Some(perm);
        self
    }

    /// This variant with the scenario's error model replaced; every
    /// other overlay (jitter, permutation, deadline override) is kept.
    /// The probabilistic analysis uses this to derive the error-free
    /// twin of a variant.
    pub fn with_errors(mut self, errors: crate::scenario::ErrorSpec) -> Self {
        self.scenario.errors = errors;
        self
    }

    /// The shared base system.
    pub fn base(&self) -> &Arc<BaseSystem> {
        &self.base
    }

    /// The scenario this variant is evaluated under.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The identifier permutation overlay, if any.
    pub fn permutation(&self) -> Option<&Arc<Vec<usize>>> {
        self.permutation.as_ref()
    }

    /// The cache key of this variant.
    pub fn key(&self) -> VariantKey {
        VariantKey {
            base: self.base.fingerprint(),
            stuffing: self.scenario.stuffing,
            errors: self.scenario.errors,
            deadline: self.scenario.deadline,
            jitter: self.jitter.map(|j| (j.discriminant(), j.value().to_bits())),
            permutation: self.permutation.clone(),
        }
    }

    /// The key this variant would have without its permutation overlay
    /// — the bucket within which incremental re-analysis is sound
    /// (same activations and deadlines, identifiers re-distributed).
    pub fn anchor_key(&self) -> VariantKey {
        VariantKey {
            permutation: None,
            ..self.key()
        }
    }

    /// Rewrites `scratch` into this variant's network. Every mutable
    /// field (identifier, activation, deadline policy) is recomputed
    /// from the base, so any previously applied variant is fully
    /// overwritten. `scratch` must be a clone of the base network.
    pub fn apply_onto(&self, scratch: &mut CanNetwork) {
        let base_msgs = self.base.network().messages();
        debug_assert_eq!(scratch.messages().len(), base_msgs.len());
        for (i, dst) in scratch.messages_mut().iter_mut().enumerate() {
            let src = &base_msgs[i];
            dst.id = src.id;
            dst.activation = match &self.jitter {
                Some(overlay) => overlay.activation(&src.activation),
                None => src.activation,
            };
            dst.deadline = match self.scenario.deadline {
                DeadlineOverride::Keep => src.deadline,
                DeadlineOverride::Period => DeadlinePolicy::Period,
                DeadlineOverride::MinReArrival => DeadlinePolicy::MinReArrival,
            };
        }
        if let Some(perm) = &self.permutation {
            let pool = self.base.id_pool();
            let msgs = scratch.messages_mut();
            for (rank, &msg_idx) in perm.iter().enumerate() {
                msgs[msg_idx].id = pool[rank];
            }
        }
    }

    /// The structure-of-arrays row of message `i` under this variant's
    /// overlays: the overlaid activation model and the deadline it
    /// resolves to — exactly what [`SystemVariant::apply_onto`]
    /// followed by `resolved_deadline()` would produce, without
    /// touching a network. Feeds [`carta_can::compiled::SolvePoint`]
    /// construction on the evaluator's hot path. Identifier
    /// permutations are *not* reflected here — they change the compiled
    /// tables, not the solve rows — so the permutation path still
    /// materializes a network.
    pub fn solve_row(&self, i: usize) -> (EventModel, carta_core::time::Time) {
        let src = &self.base.network().messages()[i];
        let activation = match &self.jitter {
            Some(overlay) => overlay.activation(&src.activation),
            None => src.activation,
        };
        let policy = match self.scenario.deadline {
            DeadlineOverride::Keep => src.deadline,
            DeadlineOverride::Period => DeadlinePolicy::Period,
            DeadlineOverride::MinReArrival => DeadlinePolicy::MinReArrival,
        };
        (activation, policy.deadline(&activation))
    }

    /// Materializes the full network (one clone; prefer
    /// [`SystemVariant::apply_onto`] with a reused scratch in loops).
    pub fn materialize(&self) -> CanNetwork {
        let mut net = self.base.network().clone();
        self.apply_onto(&mut net);
        net
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jitter::{with_jitter_ratio, with_scaled_jitter};
    use carta_can::controller::ControllerType;
    use carta_can::frame::Dlc;
    use carta_can::message::CanMessage;
    use carta_can::network::Node;
    use carta_core::time::Time;

    fn net() -> CanNetwork {
        let mut net = CanNetwork::new(500_000);
        let a = net.add_node(Node::new("A", ControllerType::FullCan));
        net.add_message(CanMessage::new(
            "known",
            CanId::standard(0x200).expect("valid"),
            Dlc::new(8),
            Time::from_ms(10),
            Time::from_ms(1),
            a,
        ));
        net.add_message(CanMessage::new(
            "unknown",
            CanId::standard(0x100).expect("valid"),
            Dlc::new(4),
            Time::from_ms(20),
            Time::ZERO,
            a,
        ));
        net
    }

    #[test]
    fn overlays_match_the_clone_based_transforms() {
        let base = BaseSystem::new(net());
        for ratio in [0.0, 0.25, 0.6] {
            let v = SystemVariant::new(base.clone(), Scenario::worst_case())
                .with_jitter_ratio(ratio)
                .materialize();
            let expected = Scenario::worst_case().apply(&with_jitter_ratio(&net(), ratio));
            assert_eq!(v, expected, "ratio {ratio}");
        }
        let v = SystemVariant::new(base.clone(), Scenario::best_case())
            .with_jitter(JitterOverlay::Scale(2.0))
            .materialize();
        let expected = Scenario::best_case().apply(&with_scaled_jitter(&net(), 2.0));
        assert_eq!(v, expected);
        let v = SystemVariant::new(base.clone(), Scenario::best_case())
            .with_jitter(JitterOverlay::AssumedUnknownRatio(0.25))
            .materialize();
        let expected =
            Scenario::best_case().apply(&crate::jitter::with_assumed_unknown_jitter(&net(), 0.25));
        assert_eq!(v, expected);
    }

    #[test]
    fn scratch_reuse_is_equivalent_to_fresh_materialization() {
        let base = BaseSystem::new(net());
        let mut scratch = base.network().clone();
        // Apply a heavy variant first, then a light one: the light one
        // must fully overwrite the heavy one's traces.
        SystemVariant::new(base.clone(), Scenario::worst_case())
            .with_jitter_ratio(0.6)
            .with_permutation(Arc::new(vec![1, 0]))
            .apply_onto(&mut scratch);
        let light = SystemVariant::new(base.clone(), Scenario::best_case());
        light.apply_onto(&mut scratch);
        assert_eq!(scratch, light.materialize());
        assert_eq!(scratch, Scenario::best_case().apply(base.network()));
    }

    #[test]
    fn solve_rows_mirror_apply_onto() {
        let base = BaseSystem::new(net());
        let scenarios = [
            Scenario::worst_case(),
            Scenario::best_case(),
            Scenario::best_case_period_deadline(),
        ];
        let overlays = [
            None,
            Some(JitterOverlay::UniformRatio(0.4)),
            Some(JitterOverlay::AssumedUnknownRatio(0.25)),
            Some(JitterOverlay::Scale(2.0)),
        ];
        for scenario in &scenarios {
            for overlay in &overlays {
                let mut v = SystemVariant::new(base.clone(), scenario.clone());
                if let Some(overlay) = overlay {
                    v = v.with_jitter(*overlay);
                }
                let materialized = v.materialize();
                for (i, m) in materialized.messages().iter().enumerate() {
                    let (activation, deadline) = v.solve_row(i);
                    assert_eq!(activation, m.activation, "{} row {i}", scenario.name);
                    assert_eq!(deadline, m.resolved_deadline(), "{} row {i}", scenario.name);
                }
            }
        }
    }

    #[test]
    fn permutation_redistributes_the_pool() {
        let base = BaseSystem::new(net());
        // Pool strongest-first: [0x100, 0x200]. perm [0, 1]: message 0
        // ("known", base 0x200) takes 0x100.
        let v = SystemVariant::new(base.clone(), Scenario::best_case())
            .with_permutation(Arc::new(vec![0, 1]))
            .materialize();
        assert_eq!(v.messages()[0].id.raw(), 0x100);
        assert_eq!(v.messages()[1].id.raw(), 0x200);
        let mut before: Vec<u32> = net().messages().iter().map(|m| m.id.raw()).collect();
        let mut after: Vec<u32> = v.messages().iter().map(|m| m.id.raw()).collect();
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after);
    }

    #[test]
    fn keys_identify_structure_not_names() {
        let base = BaseSystem::new(net());
        let a = SystemVariant::new(base.clone(), Scenario::worst_case()).with_jitter_ratio(0.25);
        let mut renamed = Scenario::worst_case();
        renamed.name = "same assumptions, different label".into();
        let b = SystemVariant::new(base.clone(), renamed).with_jitter_ratio(0.25);
        assert_eq!(a.key(), b.key());

        let c = SystemVariant::new(base.clone(), Scenario::worst_case()).with_jitter_ratio(0.26);
        assert_ne!(a.key(), c.key());
        let d = SystemVariant::new(base.clone(), Scenario::best_case()).with_jitter_ratio(0.25);
        assert_ne!(a.key(), d.key());
        let e = SystemVariant::new(base.clone(), Scenario::worst_case())
            .with_jitter_ratio(0.25)
            .with_permutation(Arc::new(vec![1, 0]));
        assert_ne!(a.key(), e.key());
        assert_eq!(a.key(), e.anchor_key());

        let mut other = net();
        other.messages_mut()[0].dlc = Dlc::new(1);
        let f = SystemVariant::new(BaseSystem::new(other), Scenario::worst_case())
            .with_jitter_ratio(0.25);
        assert_ne!(a.key(), f.key());
    }

    #[test]
    fn backend_separates_fingerprints() {
        let classic = BaseSystem::new(net());
        let fd = BaseSystem::new(net().with_backend(carta_can::backend::BackendConfig::can_fd()));
        assert_ne!(classic.fingerprint(), fd.fingerprint());
        let a = SystemVariant::new(classic, Scenario::worst_case());
        let b = SystemVariant::new(fd, Scenario::worst_case());
        assert_ne!(a.key(), b.key());
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn malformed_permutations_rejected() {
        let base = BaseSystem::new(net());
        let _ =
            SystemVariant::new(base, Scenario::best_case()).with_permutation(Arc::new(vec![0, 0]));
    }
}
