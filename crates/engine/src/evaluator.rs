//! The memoizing, batching, parallel evaluator.
//!
//! One [`Evaluator`] instance serves a whole workload (a sweep, a GA
//! run, a CLI invocation): it owns the sharded result cache and the
//! parallelism budget, and hands out `Arc<BusReport>`s so repeated
//! evaluations of the same variant share one allocation.

use crate::variant::{SystemVariant, VariantKey};
use carta_can::compiled::{CompiledBus, RtaWorkspace, SolvePoint};
use carta_can::frame::StuffingMode;
use carta_can::network::CanNetwork;
use carta_can::prob::{prob_from_reports, ProbBusReport};
use carta_can::rta::BusReport;
use carta_core::analysis::AnalysisError;
use carta_core::cancel::CancelToken;
use carta_core::time::Time;
use carta_obs::metrics::{self, Counter, Histogram, MetricsRegistry};
use carta_obs::{event, span};
use std::cell::RefCell;
use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, TryLockError};
use std::time::Instant;

/// Result of one evaluation: the analysis report, or the model error
/// (also cached — a malformed base fails identically every time).
pub type EvalResult = Result<Arc<BusReport>, AnalysisError>;

/// One compiled-bus cache entry: the tables, or the validation error of
/// the base (cached so a malformed base is validated once).
type CompiledEntry = Result<Arc<CompiledBus>, AnalysisError>;

/// Result of one probabilistic evaluation: the convolved distribution
/// report, or the model error (cached like [`EvalResult`]).
pub type ProbEvalResult = Result<Arc<ProbBusReport>, AnalysisError>;

/// How many worker threads a batch may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    jobs: usize,
}

impl Parallelism {
    /// Exactly `jobs` workers (clamped to at least one).
    pub fn new(jobs: usize) -> Self {
        Parallelism { jobs: jobs.max(1) }
    }

    /// Single-threaded evaluation.
    pub fn sequential() -> Self {
        Parallelism::new(1)
    }

    /// The number of hardware threads available to this process.
    pub fn available() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// Resolves the job count the way the CLI does: an explicit
    /// request wins, then the `CARTA_JOBS` environment variable, then
    /// all available hardware threads.
    ///
    /// A malformed or zero `CARTA_JOBS` is *reported* — one warning
    /// line on stderr plus an `engine.jobs.env_invalid` counter while
    /// metrics are enabled — instead of silently falling back.
    pub fn resolve(explicit: Option<usize>) -> Self {
        let env = std::env::var("CARTA_JOBS").ok();
        let (resolved, warning) = Self::resolve_with_env(explicit, env.as_deref());
        if let Some(warning) = warning {
            eprintln!("warning: {warning}");
            if metrics::enabled() {
                metrics::global().counter("engine.jobs.env_invalid").inc();
            }
        }
        resolved
    }

    /// Pure resolution core of [`Parallelism::resolve`]: `env` is the
    /// raw `CARTA_JOBS` value, if set. Returns the parallelism plus the
    /// warning a malformed value deserves (the caller decides where it
    /// goes).
    pub fn resolve_with_env(explicit: Option<usize>, env: Option<&str>) -> (Self, Option<String>) {
        if let Some(n) = explicit {
            return (Parallelism::new(n), None);
        }
        match env {
            None => (Parallelism::new(Self::available()), None),
            Some(raw) => match raw.trim().parse::<usize>() {
                Ok(0) => (
                    Parallelism::new(1),
                    Some(format!(
                        "CARTA_JOBS={raw} requests zero workers; clamping to 1"
                    )),
                ),
                Ok(n) => (Parallelism::new(n), None),
                Err(_) => (
                    Parallelism::new(Self::available()),
                    Some(format!(
                        "CARTA_JOBS={raw:?} is not a valid worker count; using all {} hardware threads",
                        Self::available()
                    )),
                ),
            },
        }
    }

    /// `CARTA_JOBS` / hardware-thread default (see
    /// [`Parallelism::resolve`]).
    pub fn from_env() -> Self {
        Self::resolve(None)
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::from_env()
    }
}

/// Deterministic fault injection for chaos testing — the hooks behind
/// `carta-testkit`'s chaos harness and the `fault-isolation` law.
///
/// Each hook fires on the N-th *uncached* analysis this evaluator
/// performs (cache hits replay completed work and never fault). An
/// injected result is never written to the memo cache, so retrying the
/// faulted point behaves exactly like a fresh evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Panic inside the analysis of the N-th uncached evaluation (after
    /// the scratch network has been mutated), exercising the
    /// `catch_unwind` containment and workspace-reset path.
    pub panic_at: Option<u64>,
    /// Force the N-th uncached evaluation to diverge by sabotaging its
    /// busy-window horizon to zero, degrading every message of that
    /// report.
    pub diverge_at: Option<u64>,
    /// Fail the N-th uncached evaluation with an injected
    /// [`AnalysisError::InvalidModel`].
    pub invalid_at: Option<u64>,
}

impl FaultPlan {
    fn pick(&self, seq: u64) -> Option<InjectedFault> {
        if self.panic_at == Some(seq) {
            Some(InjectedFault::Panic)
        } else if self.diverge_at == Some(seq) {
            Some(InjectedFault::Diverge)
        } else if self.invalid_at == Some(seq) {
            Some(InjectedFault::Invalid)
        } else {
            None
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InjectedFault {
    Panic,
    Diverge,
    Invalid,
}

/// Cache effectiveness counters (monotonically increasing over the
/// evaluator's lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Evaluations answered from the memo cache.
    pub hits: u64,
    /// Evaluations that ran the analysis.
    pub misses: u64,
    /// Per-message results reused by incremental re-analysis within the
    /// analyses counted under `misses`.
    pub messages_reused: u64,
    /// Per-message results recomputed by incremental re-analysis.
    pub messages_recomputed: u64,
    /// RTA compile-phase runs: one full [`CompiledBus::compile`] per
    /// (base, stuffing mode), plus one order-dependent recompile per
    /// permutation overlay miss.
    pub compiles: u64,
    /// Busy-window fixpoints warm-started from a per-thread workspace.
    pub warm_starts: u64,
    /// Busy-window fixpoints solved from a cold start.
    pub cold_starts: u64,
}

impl CacheStats {
    /// Fraction of evaluations served from the cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Fraction of solved busy-window fixpoints that warm-started
    /// (cached evaluations solve nothing and are not counted).
    pub fn warm_start_rate(&self) -> f64 {
        let total = self.warm_starts + self.cold_starts;
        if total == 0 {
            0.0
        } else {
            self.warm_starts as f64 / total as f64
        }
    }
}

const SHARDS: usize = 16;

/// Fixed batch chunk size: chunk `c` of a batch always runs on worker
/// `c % jobs`, making work assignment a pure function of the batch —
/// not of scheduling. 64 points amortize the chunked cache protocol's
/// two lock passes while keeping tail imbalance under a millisecond of
/// work.
const BATCH_CHUNK: usize = 64;

/// One planned unit of batch work: a chunk of the input and the
/// disjoint output rows it writes.
type ChunkWork<'a, 'b> = (&'a [SystemVariant], &'b mut [Option<EvalResult>]);

/// Per-bucket reference analysis for incremental re-analysis of
/// permutation overlays: a permutation changes identifiers only, so
/// messages whose higher-priority set is unchanged keep their verdict.
struct Anchor {
    report: BusReport,
    hp_sets: Vec<Vec<usize>>,
}

/// Per-thread solve state for one base: the SoA solve point rebuilt per
/// variant, the lazily cloned scratch network (materialized only for
/// permutation overlays, which rewrite identifier tables in place), the
/// compiled tables last used on this thread (an `Arc` into the
/// evaluator's compiled-bus cache, re-fetched when stuffing changes),
/// and the RTA workspace that carries busy-window warm-start data from
/// one solve to the next.
struct Scratch {
    fp: u64,
    net: Option<CanNetwork>,
    compiled: Option<((u64, StuffingMode), Arc<CompiledBus>)>,
    ws: RtaWorkspace,
    point: SolvePoint,
}

/// Bound on the per-thread scratch pool: cycling through more bases
/// than this on one thread evicts the least recently used state instead
/// of growing without limit.
const SCRATCH_POOL_CAP: usize = 8;

/// Small per-thread pool of [`Scratch`] states keyed by base
/// fingerprint, kept in LRU order (most recently used last).
struct ScratchPool {
    entries: Vec<Scratch>,
}

impl ScratchPool {
    const fn new() -> Self {
        ScratchPool {
            entries: Vec::new(),
        }
    }

    /// The scratch state for `fp`, moved to the most-recent slot. A
    /// miss creates a fresh entry, evicting the least recently used one
    /// past [`SCRATCH_POOL_CAP`]; the flag reports that eviction.
    fn entry_for(&mut self, fp: u64) -> (&mut Scratch, bool) {
        let mut evicted = false;
        if let Some(pos) = self.entries.iter().position(|s| s.fp == fp) {
            let entry = self.entries.remove(pos);
            self.entries.push(entry);
        } else {
            if self.entries.len() >= SCRATCH_POOL_CAP {
                self.entries.remove(0);
                evicted = true;
            }
            self.entries.push(Scratch {
                fp,
                net: None,
                compiled: None,
                ws: RtaWorkspace::new(),
                point: SolvePoint::new(),
            });
        }
        let last = self.entries.len() - 1;
        (&mut self.entries[last], evicted)
    }

    /// Invalidates every entry's warm-start workspace (networks,
    /// compiled handles and allocations are kept — they are
    /// deterministic caches and cannot influence results or stats).
    fn invalidate_warm_state(&mut self) {
        for entry in &mut self.entries {
            entry.ws.invalidate();
        }
    }

    /// Drops everything — the panic-containment path, where any entry
    /// may have been left mid-rewrite.
    fn clear(&mut self) {
        self.entries.clear();
    }
}

thread_local! {
    /// Per-thread scratch pool, keyed by base fingerprint. Networks are
    /// cloned at most once per (thread, base) and rewritten in place
    /// per variant — the "no full-network clone per point" mechanism.
    static SCRATCH: RefCell<ScratchPool> = const { RefCell::new(ScratchPool::new()) };
}

/// Pre-resolved metric handles for the engine's hot paths.
///
/// Handles are resolved once at evaluator construction so the per-point
/// cost while recording is a handful of relaxed atomic adds — and while
/// *not* recording, a single relaxed load in [`EngineMetrics::active`].
struct EngineMetrics {
    /// `true` when an explicit registry was bound via
    /// [`EvaluatorBuilder::metrics`]: recording is then unconditional.
    /// Otherwise the handles point into [`metrics::global`] and record
    /// only while [`metrics::enabled`].
    explicit: bool,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    contention: Arc<Counter>,
    evictions: Arc<Counter>,
    eval_wall_ns: Arc<Histogram>,
    batch_runs: Arc<Counter>,
    batch_points: Arc<Counter>,
    batch_wall_ns: Arc<Histogram>,
    queue_depth: Arc<Histogram>,
    batch_chunks: Arc<Counter>,
    batch_worker_points: Arc<Histogram>,
    batch_publish_flushes: Arc<Counter>,
    batch_shard_waits: Arc<Counter>,
    scratch_evictions: Arc<Counter>,
    rta_compiles: Arc<Counter>,
    rta_warm_starts: Arc<Counter>,
    rta_cold_starts: Arc<Counter>,
    fault_panics: Arc<Counter>,
    fault_injected: Arc<Counter>,
}

impl EngineMetrics {
    fn bind(registry: &MetricsRegistry, explicit: bool) -> Self {
        EngineMetrics {
            explicit,
            hits: registry.counter("engine.cache.hits"),
            misses: registry.counter("engine.cache.misses"),
            contention: registry.counter("engine.cache.contention"),
            evictions: registry.counter("engine.cache.evictions"),
            eval_wall_ns: registry.histogram("engine.eval.wall_ns"),
            batch_runs: registry.counter("engine.batch.runs"),
            batch_points: registry.counter("engine.batch.points"),
            batch_wall_ns: registry.histogram("engine.batch.wall_ns"),
            queue_depth: registry.histogram("engine.batch.queue_depth"),
            batch_chunks: registry.counter("engine.batch.chunks"),
            batch_worker_points: registry.histogram("engine.batch.worker_points"),
            batch_publish_flushes: registry.counter("engine.batch.publish_flushes"),
            batch_shard_waits: registry.counter("engine.batch.shard_waits"),
            scratch_evictions: registry.counter("engine.scratch.evictions"),
            rta_compiles: registry.counter("engine.rta.compiles"),
            rta_warm_starts: registry.counter("engine.rta.warm_starts"),
            rta_cold_starts: registry.counter("engine.rta.cold_starts"),
            fault_panics: registry.counter("engine.faults.panics"),
            fault_injected: registry.counter("engine.faults.injected"),
        }
    }

    #[inline]
    fn active(&self) -> bool {
        self.explicit || metrics::enabled()
    }
}

fn elapsed_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Extracts a human-readable message from a caught panic payload.
fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Configures and constructs an [`Evaluator`] — the one way CLI, optim
/// and benches build one.
///
/// ```
/// use carta_engine::evaluator::Evaluator;
///
/// let evaluator = Evaluator::builder().jobs(2).cache_capacity(10_000).build();
/// assert_eq!(evaluator.parallelism().jobs(), 2);
/// ```
#[derive(Debug, Default, Clone)]
pub struct EvaluatorBuilder {
    parallelism: Option<Parallelism>,
    cache_capacity: Option<usize>,
    metrics: Option<Arc<MetricsRegistry>>,
    faults: Option<FaultPlan>,
}

impl EvaluatorBuilder {
    /// Exactly `jobs` worker threads (clamped to at least one).
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.parallelism = Some(Parallelism::new(jobs));
        self
    }

    /// A pre-resolved [`Parallelism`] (e.g. from
    /// [`Parallelism::resolve`]). Later of `jobs`/`parallelism` wins.
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = Some(parallelism);
        self
    }

    /// Bounds the memo cache to roughly `capacity` entries. When a
    /// cache shard outgrows its share the whole shard is cleared (a
    /// deterministic, correctness-neutral policy: evicted variants are
    /// simply re-analysed on their next request). Unbounded by default.
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = Some(capacity);
        self
    }

    /// Records engine metrics into `registry` unconditionally, instead
    /// of into the global registry gated on [`metrics::enabled`].
    pub fn metrics(mut self, registry: &Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(registry.clone());
        self
    }

    /// Arms deterministic fault injection; see [`FaultPlan`]. Chaos
    /// testing only — production callers never set this.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Builds the evaluator. Defaults: [`Parallelism::from_env`],
    /// unbounded cache, global-registry metrics.
    pub fn build(self) -> Evaluator {
        let metrics = match &self.metrics {
            Some(registry) => EngineMetrics::bind(registry, true),
            None => EngineMetrics::bind(metrics::global(), false),
        };
        Evaluator {
            shared: Arc::new(EvalShared {
                parallelism: self.parallelism.unwrap_or_else(Parallelism::from_env),
                // Per-shard budget; a capacity below SHARDS still keeps
                // one entry per shard rather than thrashing on every
                // insert.
                shard_capacity: self.cache_capacity.map(|c| (c / SHARDS).max(1)),
                // Anchors retain whole reports plus higher-priority
                // sets, so a bounded cache bounds them too (at a
                // fraction of the entry budget — anchors are per
                // bucket, not per variant).
                anchor_capacity: self.cache_capacity.map(|c| (c / 4).max(1)),
                shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
                anchors: Mutex::new(HashMap::new()),
                compiled: Mutex::new(HashMap::new()),
                prob: Mutex::new(HashMap::new()),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                messages_reused: AtomicU64::new(0),
                messages_recomputed: AtomicU64::new(0),
                compiles: AtomicU64::new(0),
                warm_starts: AtomicU64::new(0),
                cold_starts: AtomicU64::new(0),
                metrics,
                faults: self.faults,
                fault_seq: AtomicU64::new(0),
            }),
            cancel: None,
        }
    }
}

/// The caches, counters and configuration every handle onto one
/// logical evaluator shares. [`Evaluator`] is a thin `Arc` around this:
/// [`Evaluator::scoped_cancel`] hands out additional handles carrying a
/// per-request [`CancelToken`] while hitting the same caches.
struct EvalShared {
    parallelism: Parallelism,
    shard_capacity: Option<usize>,
    anchor_capacity: Option<usize>,
    shards: Vec<Mutex<HashMap<VariantKey, EvalResult>>>,
    anchors: Mutex<HashMap<VariantKey, Arc<Anchor>>>,
    /// One compiled bus per (base fingerprint, stuffing mode), shared
    /// by every worker thread; compile errors are cached alongside so a
    /// malformed base is validated once.
    compiled: Mutex<HashMap<(u64, StuffingMode), CompiledEntry>>,
    /// Memoized probabilistic reports, keyed like the deterministic
    /// shards; prob traffic is rare enough that one map suffices.
    prob: Mutex<HashMap<VariantKey, ProbEvalResult>>,
    hits: AtomicU64,
    misses: AtomicU64,
    messages_reused: AtomicU64,
    messages_recomputed: AtomicU64,
    compiles: AtomicU64,
    warm_starts: AtomicU64,
    cold_starts: AtomicU64,
    metrics: EngineMetrics,
    faults: Option<FaultPlan>,
    /// Counts uncached analyses, numbering them for [`FaultPlan`].
    fault_seq: AtomicU64,
}

/// Batched, memoized, parallel variant evaluation.
///
/// An `Evaluator` is a cheap handle onto shared state (caches,
/// counters, metric handles): [`Evaluator::scoped_cancel`] derives a
/// second handle over the *same* state whose evaluations poll a
/// [`CancelToken`] and abandon unfinished work with
/// [`AnalysisError::Cancelled`] — the server's request-deadline and
/// drain mechanism. Cancelled results are never cached, so completed
/// points stay bit-identical to an uncancelled run and retries behave
/// like fresh evaluations.
pub struct Evaluator {
    shared: Arc<EvalShared>,
    /// Token polled by this handle's evaluations (entry, chunk and
    /// per-message solve boundaries); `None` on the root handle.
    cancel: Option<CancelToken>,
}

impl std::fmt::Debug for Evaluator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Evaluator")
            .field("parallelism", &self.shared.parallelism)
            .field("stats", &self.stats())
            .field("cancel_scoped", &self.cancel.is_some())
            .finish_non_exhaustive()
    }
}

impl Default for Evaluator {
    fn default() -> Self {
        Evaluator::new(Parallelism::from_env())
    }
}

impl Evaluator {
    /// Starts configuring an evaluator; see [`EvaluatorBuilder`].
    pub fn builder() -> EvaluatorBuilder {
        EvaluatorBuilder::default()
    }

    /// An evaluator with an empty cache and the given parallelism.
    /// Shorthand for `Evaluator::builder().parallelism(..).build()`.
    pub fn new(parallelism: Parallelism) -> Self {
        Evaluator::builder().parallelism(parallelism).build()
    }

    /// The configured parallelism.
    pub fn parallelism(&self) -> Parallelism {
        self.shared.parallelism
    }

    /// A cancel-scoped handle onto the *same* evaluator: the new handle
    /// shares every cache, counter and metric handle with `self`, but
    /// its evaluations poll `token` — at evaluation entry, at batch
    /// chunk boundaries, and between per-message busy-window fixpoints
    /// — and abandon unfinished work with [`AnalysisError::Cancelled`].
    /// Scoping is per-handle: evaluations running through other handles
    /// are unaffected, so a server can keep one long-lived evaluator
    /// per tenant and derive a scoped handle per request.
    pub fn scoped_cancel(&self, token: CancelToken) -> Evaluator {
        Evaluator {
            shared: Arc::clone(&self.shared),
            cancel: Some(token),
        }
    }

    /// The token this handle polls, if it is cancel-scoped (see
    /// [`Evaluator::scoped_cancel`]).
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// Cache counters so far.
    pub fn stats(&self) -> CacheStats {
        self.shared.stats()
    }

    /// Evaluates one variant, consulting and filling the cache.
    ///
    /// # Errors
    ///
    /// Propagates (and caches) [`AnalysisError`] for malformed bases.
    /// A cancel-scoped handle whose token tripped returns (but never
    /// caches) [`AnalysisError::Cancelled`].
    pub fn evaluate(&self, variant: &SystemVariant) -> EvalResult {
        self.shared.evaluate(variant, self.cancel.as_ref())
    }

    /// Evaluates one variant probabilistically: the deterministic
    /// error-free and full analyses feed [`prob_from_reports`],
    /// producing per-message response-time distributions and
    /// deadline-miss probabilities. Results are memoized by the same
    /// structural [`VariantKey`] as [`Evaluator::evaluate`]; both
    /// underlying deterministic analyses also land in the regular memo
    /// cache.
    ///
    /// # Errors
    ///
    /// Propagates (and caches) [`AnalysisError`] for malformed bases;
    /// returns (but never caches) [`AnalysisError::Cancelled`] on a
    /// tripped cancel scope.
    pub fn evaluate_prob(&self, variant: &SystemVariant) -> ProbEvalResult {
        self.shared.evaluate_prob(variant, self.cancel.as_ref())
    }

    /// Evaluates a slice of variants, in parallel when both the batch
    /// and the configured [`Parallelism`] allow it. `results[i]`
    /// corresponds to `variants[i]`, identical to calling
    /// [`Evaluator::evaluate`] sequentially (the analysis is
    /// deterministic and the cache keyed structurally, so scheduling
    /// cannot change any result). On a cancel-scoped handle, chunks
    /// that start after the token trips fill their rows with
    /// [`AnalysisError::Cancelled`] deterministically; rows completed
    /// before the trip are bit-identical to an uncancelled run.
    pub fn evaluate_batch(&self, variants: &[SystemVariant]) -> Vec<EvalResult> {
        self.shared.evaluate_batch(variants, self.cancel.as_ref())
    }
}

impl EvalShared {
    /// Cache counters so far.
    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            messages_reused: self.messages_reused.load(Ordering::Relaxed),
            messages_recomputed: self.messages_recomputed.load(Ordering::Relaxed),
            compiles: self.compiles.load(Ordering::Relaxed),
            warm_starts: self.warm_starts.load(Ordering::Relaxed),
            cold_starts: self.cold_starts.load(Ordering::Relaxed),
        }
    }

    fn shard_index(&self, key: &VariantKey) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % SHARDS
    }

    /// Locks shard `s`, counting contended acquisitions while metrics
    /// are active (`batch` attributes the wait to the chunked batch
    /// protocol rather than point-wise cache contention).
    ///
    /// Poisoned locks are recovered, not propagated: shards only ever
    /// hold fully-constructed entries (no lock is held across an
    /// analysis), so a panic on another thread cannot leave a torn
    /// value behind.
    fn lock_shard_at(
        &self,
        s: usize,
        batch: bool,
    ) -> MutexGuard<'_, HashMap<VariantKey, EvalResult>> {
        let shard = &self.shards[s];
        if !self.metrics.active() {
            return shard.lock().unwrap_or_else(PoisonError::into_inner);
        }
        match shard.try_lock() {
            Ok(guard) => guard,
            Err(TryLockError::WouldBlock) => {
                if batch {
                    self.metrics.batch_shard_waits.inc();
                } else {
                    self.metrics.contention.inc();
                }
                shard.lock().unwrap_or_else(PoisonError::into_inner)
            }
            Err(TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
        }
    }

    fn lock_shard(&self, key: &VariantKey) -> MutexGuard<'_, HashMap<VariantKey, EvalResult>> {
        self.lock_shard_at(self.shard_index(key), false)
    }

    /// Cache-consulting evaluation core; `cancel` (when present) is
    /// polled at entry and through the solve loop.
    fn evaluate(&self, variant: &SystemVariant, cancel: Option<&CancelToken>) -> EvalResult {
        if cancel.is_some_and(|token| token.is_cancelled()) {
            return Err(AnalysisError::Cancelled);
        }
        let key = variant.key();
        if let Some(cached) = self.lock_shard(&key).get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            if self.metrics.active() {
                self.metrics.hits.inc();
            }
            return cached.clone();
        }
        let (result, cacheable) = self.analyze_miss(variant, cancel);
        if !cacheable {
            // Contained panics, injected faults and cancelled solves
            // never enter the memo cache: a retry of this variant must
            // behave exactly like a fresh evaluation.
            return result;
        }
        let mut shard = self.lock_shard(&key);
        self.evict_if_full(&mut shard, &key);
        // Racing threads may both compute; the first insert wins so all
        // callers share one Arc.
        shard.entry(key).or_insert(result).clone()
    }

    /// Miss bookkeeping around one contained analysis: the miss
    /// counters, and the per-evaluation wall-time histogram while
    /// metrics are active.
    fn analyze_miss(
        &self,
        variant: &SystemVariant,
        cancel: Option<&CancelToken>,
    ) -> (EvalResult, bool) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        let timed = self.metrics.active();
        if timed {
            self.metrics.misses.inc();
        }
        let start = timed.then(Instant::now);
        let outcome = self.analyze_contained(variant, cancel);
        if let Some(start) = start {
            self.metrics.eval_wall_ns.record(elapsed_ns(start));
        }
        outcome
    }

    /// Applies the whole-shard eviction policy before an insert of
    /// `key` (see [`EvaluatorBuilder::cache_capacity`]).
    fn evict_if_full(&self, shard: &mut HashMap<VariantKey, EvalResult>, key: &VariantKey) {
        if let Some(capacity) = self.shard_capacity {
            if shard.len() >= capacity && !shard.contains_key(key) {
                let evicted = shard.len() as u64;
                shard.clear();
                if self.metrics.active() {
                    self.metrics.evictions.add(evicted);
                }
            }
        }
    }

    /// Probabilistic evaluation core (see [`Evaluator::evaluate_prob`]
    /// for the contract). A tripped `cancel` returns — and never caches
    /// — [`AnalysisError::Cancelled`].
    fn evaluate_prob(
        &self,
        variant: &SystemVariant,
        cancel: Option<&CancelToken>,
    ) -> ProbEvalResult {
        if cancel.is_some_and(|token| token.is_cancelled()) {
            return Err(AnalysisError::Cancelled);
        }
        let key = variant.key();
        {
            let map = self.prob.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(cached) = map.get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                if self.metrics.active() {
                    self.metrics.hits.inc();
                }
                return cached.clone();
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        if self.metrics.active() {
            self.metrics.misses.inc();
        }
        let result = self.compute_prob(variant, cancel);
        if matches!(result, Err(AnalysisError::Cancelled)) {
            // Transient by construction — never memoized.
            return result;
        }
        let mut map = self.prob.lock().unwrap_or_else(PoisonError::into_inner);
        map.entry(key).or_insert(result).clone()
    }

    /// One uncached probabilistic analysis (see
    /// [`Evaluator::evaluate_prob`]).
    fn compute_prob(
        &self,
        variant: &SystemVariant,
        cancel: Option<&CancelToken>,
    ) -> ProbEvalResult {
        let full = self.evaluate(variant, cancel)?;
        let base = self.evaluate(
            &variant
                .clone()
                .with_errors(crate::scenario::ErrorSpec::None),
            cancel,
        )?;
        let stuffing = variant.scenario().stuffing;
        let compiled = match variant.permutation() {
            // The shared compiled-bus cache serves the common case; a
            // permutation overlay analyzes a reordered copy, so compile
            // the materialized network directly instead.
            None => self.compiled_for(variant, variant.base().fingerprint(), stuffing)?,
            Some(_) => Arc::new(CompiledBus::compile(&variant.materialize(), stuffing)?),
        };
        let model = variant.scenario().errors.model();
        prob_from_reports(&compiled, &base, &full, model.as_ref()).map(Arc::new)
    }

    /// Batch evaluation core (see [`Evaluator::evaluate_batch`] for the
    /// contract, including the cancellation semantics).
    fn evaluate_batch(
        &self,
        variants: &[SystemVariant],
        cancel: Option<&CancelToken>,
    ) -> Vec<EvalResult> {
        let _span = span!(
            "engine.batch",
            points = variants.len(),
            jobs = self.parallelism.jobs()
        );
        let timed = self.metrics.active();
        if timed {
            self.metrics.batch_runs.inc();
            self.metrics.batch_points.add(variants.len() as u64);
            self.metrics.queue_depth.record(variants.len() as u64);
        }
        let start = timed.then(Instant::now);
        let out = self.evaluate_batch_inner(variants, cancel);
        if let Some(start) = start {
            self.metrics.batch_wall_ns.record(elapsed_ns(start));
        }
        out
    }

    /// Deterministic chunked execution behind [`Evaluator::evaluate_batch`].
    ///
    /// The batch is cut into fixed-size chunks of [`BATCH_CHUNK`]
    /// points; chunk `c` always runs on worker `c % jobs`, in ascending
    /// chunk order within each worker. The assignment is a pure
    /// function of the batch and the job count — never of scheduling —
    /// so per-worker warm-start sequences, fault numbering under a
    /// fixed assignment, and the work distribution are reproducible
    /// run over run. Each chunk additionally starts from invalidated
    /// warm-start state, which makes every result *and* the warm/cold
    /// solve counters a pure function of the chunk's own contents:
    /// batches of distinct points are bit-identical, [`CacheStats`]
    /// included, at any `--jobs` value.
    fn evaluate_batch_inner(
        &self,
        variants: &[SystemVariant],
        cancel: Option<&CancelToken>,
    ) -> Vec<EvalResult> {
        if variants.len() <= 1 {
            return variants.iter().map(|v| self.evaluate(v, cancel)).collect();
        }
        let chunk_count = variants.len().div_ceil(BATCH_CHUNK);
        let jobs = self.parallelism.jobs().min(chunk_count);
        let mut out: Vec<Option<EvalResult>> = vec![None; variants.len()];
        if jobs <= 1 {
            for (chunk, rows) in variants
                .chunks(BATCH_CHUNK)
                .zip(out.chunks_mut(BATCH_CHUNK))
            {
                self.process_chunk(chunk, rows, cancel);
            }
            if self.metrics.active() {
                self.metrics
                    .batch_worker_points
                    .record(variants.len() as u64);
            }
        } else {
            // Deterministic round-robin chunk plan, built before any
            // worker starts.
            let mut plans: Vec<Vec<ChunkWork>> = (0..jobs).map(|_| Vec::new()).collect();
            for (c, work) in variants
                .chunks(BATCH_CHUNK)
                .zip(out.chunks_mut(BATCH_CHUNK))
                .enumerate()
            {
                plans[c % jobs].push(work);
            }
            let worker_points: Vec<u64> = std::thread::scope(|scope| {
                let workers: Vec<_> = plans
                    .into_iter()
                    .map(|plan| {
                        scope.spawn(move || {
                            let mut points = 0u64;
                            for (chunk, rows) in plan {
                                points += chunk.len() as u64;
                                self.process_chunk(chunk, rows, cancel);
                            }
                            points
                        })
                    })
                    .collect();
                // Panics inside the analysis are contained by
                // `analyze_contained`, so a worker dying is a harness
                // bug — degrade its unclaimed points instead of
                // aborting the whole batch.
                workers.into_iter().filter_map(|w| w.join().ok()).collect()
            });
            if self.metrics.active() {
                for points in worker_points {
                    self.metrics.batch_worker_points.record(points);
                }
            }
        }
        out.into_iter()
            .map(|r| {
                r.unwrap_or_else(|| {
                    Err(AnalysisError::Panicked {
                        detail: "evaluation worker died before reporting this point".into(),
                    })
                })
            })
            .collect()
    }

    /// Evaluates one chunk with the contention-free cache protocol:
    ///
    /// 1. **Batched read pass** — the chunk's keys are bucketed by
    ///    shard, then each touched shard is locked exactly once to pull
    ///    every hit, instead of once per point.
    /// 2. **Lock-free analysis** — every miss is analysed into a
    ///    chunk-local buffer. Duplicate keys within the chunk are
    ///    deduplicated here (the second occurrence counts as a hit and
    ///    shares the first's result) without touching any lock.
    /// 3. **Publish pass** — the buffered results are written back with
    ///    one lock acquisition per touched shard. First insert wins, and
    ///    every output row is rewritten with the canonical `Arc` from
    ///    the cache so concurrent chunks that computed the same key
    ///    still hand out one shared allocation.
    ///
    /// Warm-start state is invalidated on entry, making the chunk's
    /// results and solve statistics independent of whatever ran on this
    /// thread before — the keystone of cross-`jobs` bit-identity.
    fn process_chunk(
        &self,
        variants: &[SystemVariant],
        out: &mut [Option<EvalResult>],
        cancel: Option<&CancelToken>,
    ) {
        if cancel.is_some_and(|token| token.is_cancelled()) {
            // Chunk-boundary check: a chunk that starts after the trip
            // never touches a lock, the cache, or warm-start state —
            // every row degrades to `Cancelled` deterministically.
            for row in out.iter_mut() {
                *row = Some(Err(AnalysisError::Cancelled));
            }
            return;
        }
        SCRATCH.with_borrow_mut(ScratchPool::invalidate_warm_state);
        if self.metrics.active() {
            self.metrics.batch_chunks.inc();
        }
        let keys: Vec<VariantKey> = variants.iter().map(SystemVariant::key).collect();
        let shard_of: Vec<usize> = keys.iter().map(|k| self.shard_index(k)).collect();

        // Read pass: one lock per touched shard.
        let mut read_buckets: [Vec<usize>; SHARDS] = std::array::from_fn(|_| Vec::new());
        for (i, &s) in shard_of.iter().enumerate() {
            read_buckets[s].push(i);
        }
        let mut hits = 0u64;
        for (s, bucket) in read_buckets.iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let shard = self.lock_shard_at(s, true);
            for &i in bucket {
                if let Some(cached) = shard.get(&keys[i]) {
                    out[i] = Some(cached.clone());
                    hits += 1;
                }
            }
        }

        // Analysis pass: no locks. Fresh results buffer locally; a key
        // repeated within the chunk is analysed once and its later
        // occurrences count as cache hits on the buffered entry.
        let mut fresh: HashMap<VariantKey, (EvalResult, Vec<usize>)> = HashMap::new();
        for i in 0..variants.len() {
            if out[i].is_some() {
                continue;
            }
            if let Some((result, users)) = fresh.get_mut(&keys[i]) {
                out[i] = Some(result.clone());
                users.push(i);
                hits += 1;
                continue;
            }
            let (result, cacheable) = self.analyze_miss(&variants[i], cancel);
            if cacheable {
                out[i] = Some(result.clone());
                fresh.insert(keys[i].clone(), (result, vec![i]));
            } else {
                out[i] = Some(result);
            }
        }
        self.hits.fetch_add(hits, Ordering::Relaxed);
        if self.metrics.active() {
            self.metrics.hits.add(hits);
        }

        // Publish pass: one lock per touched shard, canonical Arcs
        // rewritten into every user row.
        if fresh.is_empty() {
            return;
        }
        let mut publish: [Vec<(VariantKey, EvalResult, Vec<usize>)>; SHARDS] =
            std::array::from_fn(|_| Vec::new());
        for (key, (result, users)) in fresh.drain() {
            let s = self.shard_index(&key);
            publish[s].push((key, result, users));
        }
        for (s, mut bucket) in publish.into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            // HashMap drain order is nondeterministic; under a bounded
            // cache the insert order decides which entries survive an
            // eviction, so pin it to batch order.
            bucket.sort_by_key(|(_, _, users)| users[0]);
            let mut shard = self.lock_shard_at(s, true);
            if self.metrics.active() {
                self.metrics.batch_publish_flushes.inc();
            }
            for (key, result, users) in bucket {
                self.evict_if_full(&mut shard, &key);
                let canonical = shard.entry(key).or_insert(result).clone();
                for i in users {
                    out[i] = Some(canonical.clone());
                }
            }
        }
    }

    /// The compiled bus of `variant`'s base under `stuffing`, from the
    /// shared cache (compiling on first use). Always compiles the *base*
    /// network — permutation overlays reorder a copy via
    /// [`CompiledBus::reordered`] instead of polluting this cache.
    fn compiled_for(
        &self,
        variant: &SystemVariant,
        fp: u64,
        stuffing: StuffingMode,
    ) -> Result<Arc<CompiledBus>, AnalysisError> {
        let mut map = self.compiled.lock().unwrap_or_else(PoisonError::into_inner);
        map.entry((fp, stuffing))
            .or_insert_with(|| {
                self.compiles.fetch_add(1, Ordering::Relaxed);
                if self.metrics.active() {
                    self.metrics.rta_compiles.inc();
                }
                CompiledBus::compile(variant.base().network(), stuffing).map(Arc::new)
            })
            .clone()
    }

    /// Counts the warm/cold busy-window starts of the latest solve.
    fn record_solve(&self, ws: &RtaWorkspace) {
        let stats = ws.last_stats();
        self.warm_starts
            .fetch_add(stats.warm_messages, Ordering::Relaxed);
        self.cold_starts
            .fetch_add(stats.cold_messages, Ordering::Relaxed);
        if self.metrics.active() {
            self.metrics.rta_warm_starts.add(stats.warm_messages);
            self.metrics.rta_cold_starts.add(stats.cold_messages);
        }
    }

    /// Runs one uncached analysis behind a panic boundary. Returns the
    /// result plus whether it may enter the memo cache.
    ///
    /// A panic anywhere inside the analysis is contained here and
    /// surfaced as [`AnalysisError::Panicked`] instead of unwinding
    /// through the batch: one poisoned variant costs its own point,
    /// never the other 63. The thread's scratch state is dropped on the
    /// way out (the panic may have unwound mid-solve, leaving the
    /// scratch network or warm-start workspace inconsistent), so the
    /// next analysis on this thread cold-starts from clean state.
    fn analyze_contained(
        &self,
        variant: &SystemVariant,
        cancel: Option<&CancelToken>,
    ) -> (EvalResult, bool) {
        let injected = self.faults.as_ref().and_then(|plan| {
            let seq = self.fault_seq.fetch_add(1, Ordering::Relaxed);
            plan.pick(seq)
        });
        if injected == Some(InjectedFault::Invalid) {
            if self.metrics.active() {
                self.metrics.fault_injected.inc();
            }
            event!("engine.fault.injected", kind = "invalid-model");
            let err = AnalysisError::InvalidModel("injected fault: invalid model".into());
            return (Err(err), false);
        }
        if injected == Some(InjectedFault::Diverge) {
            if self.metrics.active() {
                self.metrics.fault_injected.inc();
            }
            event!("engine.fault.injected", kind = "forced-divergence");
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            self.analyze_uncached(variant, injected, cancel)
        }));
        match outcome {
            Ok(result) => {
                // Cancelled solves join panics and injected faults on
                // the never-cached path.
                let cacheable =
                    injected.is_none() && !matches!(result, Err(AnalysisError::Cancelled));
                (result, cacheable)
            }
            Err(payload) => {
                SCRATCH.with_borrow_mut(ScratchPool::clear);
                let detail = panic_detail(payload.as_ref());
                if self.metrics.active() {
                    self.metrics.fault_panics.inc();
                }
                event!("engine.fault.contained", detail = detail);
                (Err(AnalysisError::Panicked { detail }), false)
            }
        }
    }

    /// Installs the anchor report for `key` (first writer wins). Under
    /// a bounded cache the anchors map is bounded too: at capacity it
    /// is cleared whole, like a shard — anchors only accelerate
    /// permutation overlays, so losing one costs a recompute, never
    /// correctness.
    fn install_anchor(&self, key: VariantKey, anchor: impl FnOnce() -> Anchor) {
        let mut anchors = self.anchors.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(capacity) = self.anchor_capacity {
            if anchors.len() >= capacity && !anchors.contains_key(&key) {
                let evicted = anchors.len() as u64;
                anchors.clear();
                if self.metrics.active() {
                    self.metrics.evictions.add(evicted);
                }
            }
        }
        anchors.entry(key).or_insert_with(|| Arc::new(anchor()));
    }

    /// Runs the analysis for a cache miss on the compiled fast path:
    /// the per-thread SoA solve point is rebuilt row by row (no network
    /// clone or rewrite on the common path), the base's [`CompiledBus`]
    /// is fetched from the shared cache, and the solve phase
    /// warm-starts from the thread's [`RtaWorkspace`]. Permutation
    /// overlays materialize the thread's scratch network, recompile
    /// only the order-dependent tables ([`CompiledBus::reordered`]) and
    /// re-use per-message verdicts from the bucket's anchor report
    /// where the priority order is unchanged.
    fn analyze_uncached(
        &self,
        variant: &SystemVariant,
        fault: Option<InjectedFault>,
        cancel: Option<&CancelToken>,
    ) -> EvalResult {
        if cancel.is_some_and(|token| token.is_cancelled()) {
            return Err(AnalysisError::Cancelled);
        }
        variant.validate_overlays()?;
        SCRATCH.with_borrow_mut(|pool| {
            let fp = variant.base().fingerprint();
            let (scratch, evicted) = pool.entry_for(fp);
            if evicted && self.metrics.active() {
                self.metrics.scratch_evictions.inc();
            }
            if fault == Some(InjectedFault::Panic) {
                // Fires after the scratch entry was claimed so the
                // containment path must genuinely discard dirty state.
                panic!("injected fault: panic during analysis");
            }

            let errors = variant.scenario().errors.model();
            let mut config = variant.scenario().analysis_config();
            if fault == Some(InjectedFault::Diverge) {
                // A zero busy-window horizon makes every message abort
                // with a `HorizonExceeded` diagnostic on first demand.
                config.horizon = Time::ZERO;
            }
            let compiled = match &scratch.compiled {
                Some((key, c)) if *key == (fp, config.stuffing) => c.clone(),
                _ => {
                    let c = self.compiled_for(variant, fp, config.stuffing)?;
                    scratch.compiled = Some(((fp, config.stuffing), c.clone()));
                    c
                }
            };

            if variant.permutation().is_some() {
                // Identifiers were redistributed: this is the one path
                // that needs a materialized network (cloned once per
                // (thread, base), then rewritten in place), because the
                // order-dependent tables recompile against it (interned
                // names and frame times carry over).
                let net = scratch
                    .net
                    .get_or_insert_with(|| variant.base().network().clone());
                variant.apply_onto(net);
                let reordered = compiled.reordered(net);
                self.compiles.fetch_add(1, Ordering::Relaxed);
                if self.metrics.active() {
                    self.metrics.rta_compiles.inc();
                }
                let anchor = self
                    .anchors
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .get(&variant.anchor_key())
                    .cloned();
                if let Some(anchor) = anchor {
                    let (report, stats) = reordered.solve_incremental(
                        net,
                        errors.as_ref(),
                        &config,
                        &anchor.report,
                        &anchor.hp_sets,
                    );
                    self.messages_reused
                        .fetch_add(stats.reused as u64, Ordering::Relaxed);
                    self.messages_recomputed
                        .fetch_add(stats.recomputed as u64, Ordering::Relaxed);
                    return Ok(Arc::new(report));
                }
                // Anchor miss: solve cold (warm-start state never
                // transfers across a reordering) and install the anchor.
                let report =
                    reordered.solve(net, errors.as_ref(), &config, &mut RtaWorkspace::new());
                self.cold_starts
                    .fetch_add(report.messages.len() as u64, Ordering::Relaxed);
                let hp_sets = reordered.hp_sets().to_vec();
                let anchor_report = report.clone();
                self.install_anchor(variant.anchor_key(), move || Anchor {
                    report: anchor_report,
                    hp_sets,
                });
                return Ok(Arc::new(report));
            }

            // Common path: no network materialization at all — the SoA
            // solve point is filled straight from the base plus
            // overlays, one (activation, deadline) row per message.
            let mut point = std::mem::take(&mut scratch.point);
            point.fill_with(variant.base().network().messages().len(), |i| {
                variant.solve_row(i)
            });
            let solved = match cancel {
                Some(token) => compiled.solve_point_cancellable(
                    &point,
                    errors.as_ref(),
                    &config,
                    token,
                    &mut scratch.ws,
                ),
                None => Ok(compiled.solve_point(&point, errors.as_ref(), &config, &mut scratch.ws)),
            };
            scratch.point = point;
            // A trip mid-solve abandons the point whole: the workspace
            // was invalidated by the solver, no stats are recorded, no
            // anchor is installed, and the caller never caches the
            // error.
            let report = solved?;
            self.record_solve(&scratch.ws);
            // First full analysis in this bucket: it becomes the anchor
            // future permutation overlays diff against.
            let hp_sets = compiled.hp_sets().to_vec();
            let anchor_report = report.clone();
            self.install_anchor(variant.anchor_key(), move || Anchor {
                report: anchor_report,
                hp_sets,
            });
            Ok(Arc::new(report))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use crate::variant::BaseSystem;
    use carta_can::controller::ControllerType;
    use carta_can::frame::Dlc;
    use carta_can::message::{CanId, CanMessage};
    use carta_can::network::{CanNetwork, Node};
    use carta_core::time::Time;
    use std::time::Duration;

    fn net(n: usize) -> CanNetwork {
        let mut net = CanNetwork::new(250_000);
        let a = net.add_node(Node::new("A", ControllerType::FullCan));
        let b = net.add_node(Node::new("B", ControllerType::BasicCan));
        for k in 0..n {
            net.add_message(CanMessage::new(
                format!("m{k}"),
                CanId::standard(0x100 + 16 * k as u32).expect("valid"),
                Dlc::new(8),
                Time::from_ms(5 + 5 * (k as u64 % 4)),
                Time::from_us(500 * k as u64),
                if k % 2 == 0 { a } else { b },
            ));
        }
        net
    }

    #[test]
    fn cache_hits_on_repeated_variants() {
        let base = BaseSystem::new(net(6));
        let eval = Evaluator::new(Parallelism::sequential());
        let v = SystemVariant::new(base, Scenario::worst_case()).with_jitter_ratio(0.25);
        let first = eval.evaluate(&v).expect("valid");
        let second = eval.evaluate(&v).expect("valid");
        assert!(Arc::ptr_eq(&first, &second), "second call must be cached");
        let stats = eval.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.hit_rate(), 0.5);
    }

    #[test]
    fn results_match_the_direct_path() {
        let base = BaseSystem::new(net(8));
        let eval = Evaluator::default();
        for scenario in [
            Scenario::best_case(),
            Scenario::worst_case(),
            Scenario::sporadic_errors(Time::from_ms(10)),
        ] {
            for ratio in [0.0, 0.25, 0.6] {
                let v = SystemVariant::new(base.clone(), scenario.clone()).with_jitter_ratio(ratio);
                let engine = eval.evaluate(&v).expect("valid");
                let direct = scenario
                    .analyze(&crate::jitter::with_jitter_ratio(base.network(), ratio))
                    .expect("valid");
                assert_eq!(engine.messages.len(), direct.messages.len());
                for (e, d) in engine.messages.iter().zip(&direct.messages) {
                    assert_eq!(e.outcome, d.outcome, "{} at {ratio}", e.name);
                    assert_eq!(e.deadline, d.deadline);
                    assert_eq!(e.blocking, d.blocking);
                }
            }
        }
    }

    #[test]
    fn batch_matches_sequential_and_preserves_order() {
        let base = BaseSystem::new(net(6));
        let variants: Vec<SystemVariant> = (0..20)
            .map(|k| {
                SystemVariant::new(base.clone(), Scenario::worst_case())
                    .with_jitter_ratio(k as f64 * 0.05)
            })
            .collect();
        let parallel = Evaluator::new(Parallelism::new(4));
        let sequential = Evaluator::new(Parallelism::sequential());
        let par = parallel.evaluate_batch(&variants);
        let seq = sequential.evaluate_batch(&variants);
        for (i, (p, s)) in par.iter().zip(&seq).enumerate() {
            let (p, s) = (p.as_ref().expect("valid"), s.as_ref().expect("valid"));
            for (pm, sm) in p.messages.iter().zip(&s.messages) {
                assert_eq!(pm.outcome, sm.outcome, "variant {i}, message {}", pm.name);
            }
        }
    }

    #[test]
    fn permutations_use_incremental_analysis_and_stay_exact() {
        let base = BaseSystem::new(net(6));
        let eval = Evaluator::new(Parallelism::sequential());
        let scenario = Scenario::worst_case();
        // Prime the anchor with the un-permuted variant.
        let baseline = SystemVariant::new(base.clone(), scenario.clone()).with_jitter_ratio(0.25);
        eval.evaluate(&baseline).expect("valid");
        // A permutation that swaps the two weakest identifiers leaves
        // the higher-priority sets of messages 0..4 untouched.
        let perm = Arc::new(vec![0usize, 1, 2, 3, 5, 4]);
        let v = baseline.clone().with_permutation(perm.clone());
        let report = eval.evaluate(&v).expect("valid");
        let stats = eval.stats();
        assert!(
            stats.messages_reused >= 4,
            "expected reuse of unchanged prefixes, got {stats:?}"
        );
        // Exactness against the from-scratch path.
        let direct = {
            let mut m = base.network().clone();
            let pool = base.id_pool().to_vec();
            for (rank, &mi) in perm.iter().enumerate() {
                m.messages_mut()[mi].id = pool[rank];
            }
            scenario
                .analyze(&crate::jitter::with_jitter_ratio(&m, 0.25))
                .expect("valid")
        };
        for (e, d) in report.messages.iter().zip(&direct.messages) {
            assert_eq!(e.outcome, d.outcome, "{}", e.name);
            assert_eq!(e.id, d.id);
            assert_eq!(e.blocking, d.blocking);
        }
    }

    #[test]
    fn jitter_sweeps_compile_once_and_warm_start() {
        let base = BaseSystem::new(net(6));
        let eval = Evaluator::new(Parallelism::sequential());
        for k in 0..8 {
            let v = SystemVariant::new(base.clone(), Scenario::worst_case())
                .with_jitter_ratio(k as f64 * 0.05);
            eval.evaluate(&v).expect("valid");
        }
        let stats = eval.stats();
        assert_eq!(stats.compiles, 1, "one compile serves the sweep: {stats:?}");
        assert_eq!(
            stats.warm_starts + stats.cold_starts,
            8 * 6,
            "every message of every point is solved exactly once: {stats:?}"
        );
        // Ascending jitter dominates the previous point stream-wise, so
        // every solve after the first warm-starts.
        assert_eq!(
            stats.cold_starts, 6,
            "only the first point runs cold: {stats:?}"
        );
        assert!(stats.warm_start_rate() > 0.8, "{stats:?}");
    }

    #[test]
    fn backends_never_share_cache_entries_or_warm_state() {
        let classic = BaseSystem::new(net(6));
        let fd = BaseSystem::new(net(6).with_backend(carta_can::backend::BackendConfig::can_fd()));
        assert_ne!(
            classic.fingerprint(),
            fd.fingerprint(),
            "backend must enter the structural fingerprint"
        );
        let eval = Evaluator::new(Parallelism::sequential());
        let scenario = Scenario::worst_case();
        let a = eval
            .evaluate(&SystemVariant::new(classic.clone(), scenario.clone()))
            .expect("valid");
        let b = eval
            .evaluate(&SystemVariant::new(fd.clone(), scenario.clone()))
            .expect("valid");
        let stats = eval.stats();
        assert_eq!((stats.hits, stats.misses), (0, 2), "{stats:?}");
        assert_eq!(stats.compiles, 2, "one compile per backend: {stats:?}");
        assert_eq!(
            stats.cold_starts,
            2 * 6,
            "warm-start state never crosses backends: {stats:?}"
        );
        assert_ne!(a.backend, b.backend);
        assert!(
            a.messages
                .iter()
                .zip(&b.messages)
                .all(|(x, y)| x.c_max > y.c_max),
            "FD frames must be strictly shorter at the default data ratio"
        );
        // Re-evaluating either backend hits exactly its own entry.
        eval.evaluate(&SystemVariant::new(classic, scenario.clone()))
            .expect("valid");
        eval.evaluate(&SystemVariant::new(fd, scenario))
            .expect("valid");
        assert_eq!(eval.stats().hits, 2);
        assert_eq!(eval.stats().compiles, 2, "no recompiles on the warm pass");
    }

    #[test]
    fn invalid_models_cache_their_error() {
        let empty = CanNetwork::new(500_000);
        let base = BaseSystem::new(empty);
        let eval = Evaluator::default();
        let v = SystemVariant::new(base, Scenario::best_case());
        assert!(eval.evaluate(&v).is_err());
        assert!(eval.evaluate(&v).is_err());
        assert_eq!(eval.stats().hits, 1);
    }

    #[test]
    fn cancelled_scope_degrades_without_caching() {
        let base = BaseSystem::new(net(4));
        let v = SystemVariant::new(base, Scenario::worst_case()).with_jitter_ratio(0.1);
        let eval = Evaluator::new(Parallelism::sequential());
        let token = CancelToken::new();
        token.cancel();
        let scoped = eval.scoped_cancel(token);
        assert!(matches!(scoped.evaluate(&v), Err(AnalysisError::Cancelled)));
        assert!(matches!(
            scoped.evaluate_prob(&v),
            Err(AnalysisError::Cancelled)
        ));
        // Nothing was cached: the root handle runs a real analysis.
        let fresh = eval.evaluate(&v).expect("uncancelled handle unaffected");
        assert!(!fresh.is_degraded());
        // And the prob cache was not poisoned either.
        eval.evaluate_prob(&v)
            .expect("prob retry is a real analysis");
    }

    #[test]
    fn cancelled_batch_keeps_completed_points_bit_identical() {
        let base = BaseSystem::new(net(6));
        let variants: Vec<SystemVariant> = (0..(2 * BATCH_CHUNK + 8))
            .map(|k| {
                SystemVariant::new(base.clone(), Scenario::worst_case())
                    .with_jitter_ratio(k as f64 * 0.003)
            })
            .collect();
        let reference = Evaluator::new(Parallelism::sequential()).evaluate_batch(&variants);

        // Pre-tripped token: every chunk starts after the trip, so the
        // whole batch degrades deterministically.
        let eval = Evaluator::new(Parallelism::new(2));
        let token = CancelToken::new();
        token.cancel();
        let all_cancelled = eval.scoped_cancel(token).evaluate_batch(&variants);
        assert_eq!(all_cancelled.len(), variants.len());
        for (i, r) in all_cancelled.iter().enumerate() {
            assert!(
                matches!(r, Err(AnalysisError::Cancelled)),
                "row {i} must be Cancelled, got {r:?}"
            );
        }

        // The same (shared) evaluator afterwards: nothing of the
        // cancelled run was cached, and every point is bit-identical to
        // the sequential reference.
        let retried = eval.evaluate_batch(&variants);
        for (i, (r, b)) in retried.iter().zip(&reference).enumerate() {
            let (r, b) = (r.as_ref().expect("valid"), b.as_ref().expect("valid"));
            assert_eq!(r.messages, b.messages, "point {i} must match the reference");
        }

        // A token that trips mid-batch: completed rows are bit-identical
        // to the reference, the rest are typed `Cancelled` — never a
        // torn report.
        let eval = Evaluator::new(Parallelism::sequential());
        let token = CancelToken::new();
        let scoped = eval.scoped_cancel(token.clone());
        // Cancel from a racing thread while the batch runs.
        let results = std::thread::scope(|scope| {
            let canceller = scope.spawn(|| {
                std::thread::sleep(std::time::Duration::from_millis(2));
                token.cancel();
            });
            let results = scoped.evaluate_batch(&variants);
            canceller.join().expect("canceller thread");
            results
        });
        for (i, r) in results.iter().enumerate() {
            match r {
                Ok(report) => {
                    let reference = reference[i].as_ref().expect("valid");
                    assert_eq!(
                        report.messages, reference.messages,
                        "completed point {i} must be bit-identical"
                    );
                }
                Err(AnalysisError::Cancelled) => {}
                other => panic!("row {i}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn deadline_token_trips_running_evaluations() {
        let base = BaseSystem::new(net(6));
        let variants: Vec<SystemVariant> = (0..64)
            .map(|k| {
                SystemVariant::new(base.clone(), Scenario::worst_case())
                    .with_jitter_ratio(k as f64 * 0.01)
            })
            .collect();
        let eval = Evaluator::new(Parallelism::sequential());
        let scoped = eval.scoped_cancel(CancelToken::with_deadline(Duration::ZERO));
        let results = scoped.evaluate_batch(&variants);
        assert!(results
            .iter()
            .all(|r| matches!(r, Err(AnalysisError::Cancelled))));
        assert!(scoped.cancel_token().expect("scoped").is_cancelled());
        assert!(eval.cancel_token().is_none(), "root handle stays unscoped");
    }

    #[test]
    fn injected_panic_is_contained_and_isolated() {
        let base = BaseSystem::new(net(6));
        let variants: Vec<SystemVariant> = (0..8)
            .map(|k| {
                SystemVariant::new(base.clone(), Scenario::worst_case())
                    .with_jitter_ratio(k as f64 * 0.05)
            })
            .collect();
        let clean = Evaluator::new(Parallelism::sequential());
        let baseline = clean.evaluate_batch(&variants);

        let faulty = Evaluator::builder()
            .parallelism(Parallelism::sequential())
            .faults(FaultPlan {
                panic_at: Some(3),
                ..FaultPlan::default()
            })
            .build();
        let got = faulty.evaluate_batch(&variants);
        for (i, (g, b)) in got.iter().zip(&baseline).enumerate() {
            if i == 3 {
                match g {
                    Err(AnalysisError::Panicked { detail }) => {
                        assert!(detail.contains("injected fault"), "{detail}");
                    }
                    other => panic!("point 3 must be Panicked, got {other:?}"),
                }
            } else {
                let (g, b) = (g.as_ref().expect("isolated"), b.as_ref().expect("valid"));
                assert_eq!(g.messages, b.messages, "point {i} must be untouched");
            }
        }
        // Retrying the failed point is a fresh evaluation: nothing was
        // cached for it, and the fault (keyed to analysis #3) is spent.
        let retried = faulty.evaluate(&variants[3]).expect("retry succeeds");
        assert_eq!(
            retried.messages,
            baseline[3].as_ref().expect("valid").messages,
            "retry must be bit-identical to a clean evaluation"
        );
    }

    #[test]
    fn injected_faults_never_enter_the_cache() {
        let base = BaseSystem::new(net(4));
        let v = SystemVariant::new(base, Scenario::worst_case()).with_jitter_ratio(0.1);

        let eval = Evaluator::builder()
            .parallelism(Parallelism::sequential())
            .faults(FaultPlan {
                invalid_at: Some(0),
                ..FaultPlan::default()
            })
            .build();
        match eval.evaluate(&v) {
            Err(AnalysisError::InvalidModel(msg)) => assert!(msg.contains("injected")),
            other => panic!("expected injected InvalidModel, got {other:?}"),
        }
        // The injected error was not cached: the retry runs a real
        // analysis and succeeds.
        let retried = eval.evaluate(&v).expect("retry is a real analysis");
        assert!(!retried.is_degraded());
        assert_eq!(eval.stats().hits, 0, "no cache hit can have occurred");
    }

    #[test]
    fn forced_divergence_degrades_the_report_without_caching_it() {
        let registry = Arc::new(MetricsRegistry::new());
        let base = BaseSystem::new(net(4));
        let v = SystemVariant::new(base, Scenario::worst_case()).with_jitter_ratio(0.1);
        let eval = Evaluator::builder()
            .parallelism(Parallelism::sequential())
            .metrics(&registry)
            .faults(FaultPlan {
                diverge_at: Some(0),
                ..FaultPlan::default()
            })
            .build();
        let degraded = eval.evaluate(&v).expect("degraded, not failed");
        assert!(degraded.is_degraded());
        assert_eq!(degraded.diagnostics().count(), 4, "every message aborts");
        let healthy = eval.evaluate(&v).expect("fresh analysis");
        assert!(
            !healthy.is_degraded(),
            "sabotaged report must not be cached"
        );
        let snap = registry.snapshot();
        assert_eq!(snap.counter("engine.faults.injected"), Some(1));
    }

    #[test]
    fn parallelism_resolution_precedence() {
        assert_eq!(Parallelism::new(0).jobs(), 1);
        assert_eq!(Parallelism::resolve(Some(3)).jobs(), 3);
        assert!(Parallelism::from_env().jobs() >= 1);
        assert_eq!(Parallelism::sequential().jobs(), 1);
    }

    #[test]
    fn malformed_jobs_env_warns_instead_of_silently_falling_back() {
        let (p, w) = Parallelism::resolve_with_env(None, Some("4"));
        assert_eq!((p.jobs(), w), (4, None));
        let (p, w) = Parallelism::resolve_with_env(None, Some(" 2 "));
        assert_eq!((p.jobs(), w), (2, None), "whitespace is tolerated");
        let (p, w) = Parallelism::resolve_with_env(None, Some("0"));
        assert_eq!(p.jobs(), 1);
        assert!(w.expect("warned").contains("zero workers"));
        let (p, w) = Parallelism::resolve_with_env(None, Some("abc"));
        assert_eq!(p.jobs(), Parallelism::available());
        assert!(w.expect("warned").contains("not a valid worker count"));
        let (p, w) = Parallelism::resolve_with_env(Some(2), Some("abc"));
        assert_eq!(
            (p.jobs(), w),
            (2, None),
            "an explicit request wins without consulting the env"
        );
        let (p, w) = Parallelism::resolve_with_env(None, None);
        assert_eq!((p.jobs(), w), (Parallelism::available(), None));
    }

    #[test]
    fn scratch_pool_is_bounded_per_thread() {
        let registry = Arc::new(MetricsRegistry::new());
        let eval = Evaluator::builder()
            .parallelism(Parallelism::sequential())
            .metrics(&registry)
            .build();
        let cycles = SCRATCH_POOL_CAP + 4;
        // Distinct message counts yield distinct base fingerprints, so
        // every evaluation claims its own scratch entry.
        for k in 0..cycles {
            let base = BaseSystem::new(net(2 + k));
            eval.evaluate(&SystemVariant::new(base, Scenario::worst_case()))
                .expect("valid");
        }
        SCRATCH.with_borrow(|pool| {
            assert!(
                pool.entries.len() <= SCRATCH_POOL_CAP,
                "pool grew to {} entries",
                pool.entries.len()
            );
        });
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("engine.scratch.evictions"),
            Some((cycles - SCRATCH_POOL_CAP) as u64),
            "every base past the cap evicts exactly one entry"
        );
        // Cycling back through an evicted base still works (and is
        // still correct) — it just re-claims a fresh entry.
        let base = BaseSystem::new(net(2));
        let v = SystemVariant::new(base, Scenario::worst_case()).with_jitter_ratio(0.1);
        eval.evaluate(&v).expect("valid");
    }

    #[test]
    fn chunked_batches_are_bit_identical_across_jobs() {
        let base = BaseSystem::new(net(6));
        // More than two chunks, all keys distinct, so hits, misses and
        // the chunk-local warm/cold split are jobs-invariant.
        let variants: Vec<SystemVariant> = (0..(3 * BATCH_CHUNK + 10))
            .map(|k| {
                SystemVariant::new(base.clone(), Scenario::worst_case())
                    .with_jitter_ratio(k as f64 * 0.003)
            })
            .collect();
        let mut reference: Option<(Vec<EvalResult>, CacheStats)> = None;
        for jobs in [1usize, 2, 8] {
            let eval = Evaluator::new(Parallelism::new(jobs));
            let out = eval.evaluate_batch(&variants);
            let stats = eval.stats();
            match &reference {
                None => reference = Some((out, stats)),
                Some((ref_out, ref_stats)) => {
                    assert_eq!(
                        stats, *ref_stats,
                        "cache statistics must be reproducible at jobs={jobs}"
                    );
                    for (i, (a, b)) in out.iter().zip(ref_out).enumerate() {
                        let (a, b) = (a.as_ref().expect("valid"), b.as_ref().expect("valid"));
                        assert_eq!(a.messages, b.messages, "point {i} diverged at jobs={jobs}");
                    }
                }
            }
        }
    }

    #[test]
    fn chunk_protocol_dedups_repeats_and_shares_arcs() {
        let base = BaseSystem::new(net(6));
        // 8 distinct keys, each repeated 16 times within one batch.
        let variants: Vec<SystemVariant> = (0..128)
            .map(|k| {
                SystemVariant::new(base.clone(), Scenario::worst_case())
                    .with_jitter_ratio((k % 8) as f64 * 0.05)
            })
            .collect();
        let eval = Evaluator::new(Parallelism::sequential());
        let out = eval.evaluate_batch(&variants);
        let stats = eval.stats();
        assert_eq!(stats.misses, 8, "the first chunk analyses each key once");
        assert_eq!(
            stats.hits, 120,
            "repeats are hits — chunk-local dedup or the read pass"
        );
        for (i, r) in out.iter().enumerate() {
            let r = r.as_ref().expect("valid");
            let canonical = out[i % 8].as_ref().expect("valid");
            assert!(
                Arc::ptr_eq(r, canonical),
                "row {i} must share the canonical Arc of its key"
            );
        }
    }

    #[test]
    fn builder_configures_jobs_and_capacity() {
        let eval = Evaluator::builder().jobs(3).cache_capacity(64).build();
        assert_eq!(eval.parallelism().jobs(), 3);
        assert_eq!(eval.shared.shard_capacity, Some(4));
        // A tiny capacity still keeps one entry per shard.
        let tiny = Evaluator::builder().cache_capacity(1).build();
        assert_eq!(tiny.shared.shard_capacity, Some(1));
    }

    #[test]
    fn bounded_cache_evicts_and_stays_correct() {
        let base = BaseSystem::new(net(6));
        let eval = Evaluator::builder()
            .jobs(1)
            .cache_capacity(SHARDS) // one entry per shard
            .build();
        let variants: Vec<SystemVariant> = (0..40)
            .map(|k| {
                SystemVariant::new(base.clone(), Scenario::worst_case())
                    .with_jitter_ratio(k as f64 * 0.01)
            })
            .collect();
        let first = eval.evaluate_batch(&variants);
        let unbounded = Evaluator::new(Parallelism::sequential());
        let reference = unbounded.evaluate_batch(&variants);
        for (a, b) in first.iter().zip(&reference) {
            let (a, b) = (a.as_ref().expect("valid"), b.as_ref().expect("valid"));
            for (am, bm) in a.messages.iter().zip(&b.messages) {
                assert_eq!(am.outcome, bm.outcome, "{}", am.name);
            }
        }
        // With 40 distinct variants across 16 single-entry shards, some
        // shard must have been cleared at least once.
        assert!(
            eval.stats().misses == 40,
            "all distinct variants analysed: {:?}",
            eval.stats()
        );
    }

    #[test]
    fn explicit_registry_mirrors_internal_counters() {
        let registry = Arc::new(MetricsRegistry::new());
        let base = BaseSystem::new(net(6));
        let eval = Evaluator::builder().jobs(2).metrics(&registry).build();
        let variants: Vec<SystemVariant> = (0..10)
            .map(|k| {
                SystemVariant::new(base.clone(), Scenario::worst_case())
                    .with_jitter_ratio((k % 5) as f64 * 0.1)
            })
            .collect();
        eval.evaluate_batch(&variants);
        eval.evaluate_batch(&variants); // warm pass: all hits
        let stats = eval.stats();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("engine.cache.hits"), Some(stats.hits));
        assert_eq!(snap.counter("engine.cache.misses"), Some(stats.misses));
        assert_eq!(snap.counter("engine.batch.runs"), Some(2));
        assert_eq!(snap.counter("engine.batch.points"), Some(20));
        // Ten points fit one chunk; two batches, one chunk each.
        assert_eq!(snap.counter("engine.batch.chunks"), Some(2));
        let worker_points = snap
            .histogram("engine.batch.worker_points")
            .expect("present");
        assert_eq!((worker_points.count, worker_points.sum), (2, 20));
        // Only the first batch has fresh results to publish; the warm
        // batch is answered entirely by the read pass.
        let flushes = snap
            .counter("engine.batch.publish_flushes")
            .expect("present");
        assert!(
            (1..=5).contains(&flushes),
            "5 keys over 16 shards: {flushes}"
        );
        let wall = snap.histogram("engine.eval.wall_ns").expect("present");
        assert_eq!(wall.count, stats.misses);
        assert!(wall.sum > 0);
    }
}
