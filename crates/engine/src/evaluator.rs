//! The memoizing, batching, parallel evaluator.
//!
//! One [`Evaluator`] instance serves a whole workload (a sweep, a GA
//! run, a CLI invocation): it owns the sharded result cache and the
//! parallelism budget, and hands out `Arc<BusReport>`s so repeated
//! evaluations of the same variant share one allocation.

use crate::variant::{SystemVariant, VariantKey};
use carta_can::network::CanNetwork;
use carta_can::rta::{analyze_bus, analyze_bus_incremental, hp_index_sets, BusReport};
use carta_core::analysis::AnalysisError;
use std::cell::RefCell;
use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Result of one evaluation: the analysis report, or the model error
/// (also cached — a malformed base fails identically every time).
pub type EvalResult = Result<Arc<BusReport>, AnalysisError>;

/// How many worker threads a batch may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    jobs: usize,
}

impl Parallelism {
    /// Exactly `jobs` workers (clamped to at least one).
    pub fn new(jobs: usize) -> Self {
        Parallelism { jobs: jobs.max(1) }
    }

    /// Single-threaded evaluation.
    pub fn sequential() -> Self {
        Parallelism::new(1)
    }

    /// The number of hardware threads available to this process.
    pub fn available() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// Resolves the job count the way the CLI does: an explicit
    /// request wins, then the `CARTA_JOBS` environment variable, then
    /// all available hardware threads.
    pub fn resolve(explicit: Option<usize>) -> Self {
        if let Some(n) = explicit {
            return Parallelism::new(n);
        }
        match std::env::var("CARTA_JOBS")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            Some(n) => Parallelism::new(n),
            None => Parallelism::new(Self::available()),
        }
    }

    /// `CARTA_JOBS` / hardware-thread default (see
    /// [`Parallelism::resolve`]).
    pub fn from_env() -> Self {
        Self::resolve(None)
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::from_env()
    }
}

/// Cache effectiveness counters (monotonically increasing over the
/// evaluator's lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Evaluations answered from the memo cache.
    pub hits: u64,
    /// Evaluations that ran the analysis.
    pub misses: u64,
    /// Per-message results reused by incremental re-analysis within the
    /// analyses counted under `misses`.
    pub messages_reused: u64,
    /// Per-message results recomputed by incremental re-analysis.
    pub messages_recomputed: u64,
}

impl CacheStats {
    /// Fraction of evaluations served from the cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

const SHARDS: usize = 16;

/// Per-bucket reference analysis for incremental re-analysis of
/// permutation overlays: a permutation changes identifiers only, so
/// messages whose higher-priority set is unchanged keep their verdict.
struct Anchor {
    report: BusReport,
    hp_sets: Vec<Vec<usize>>,
}

thread_local! {
    /// Per-thread scratch network, keyed by base fingerprint. Cloned
    /// once per (thread, base) and rewritten in place per variant — the
    /// "no full-network clone per point" mechanism.
    static SCRATCH: RefCell<Option<(u64, CanNetwork)>> = const { RefCell::new(None) };
}

/// Batched, memoized, parallel variant evaluation.
pub struct Evaluator {
    parallelism: Parallelism,
    shards: Vec<Mutex<HashMap<VariantKey, EvalResult>>>,
    anchors: Mutex<HashMap<VariantKey, Arc<Anchor>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    messages_reused: AtomicU64,
    messages_recomputed: AtomicU64,
}

impl std::fmt::Debug for Evaluator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Evaluator")
            .field("parallelism", &self.parallelism)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl Default for Evaluator {
    fn default() -> Self {
        Evaluator::new(Parallelism::from_env())
    }
}

impl Evaluator {
    /// An evaluator with an empty cache and the given parallelism.
    pub fn new(parallelism: Parallelism) -> Self {
        Evaluator {
            parallelism,
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            anchors: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            messages_reused: AtomicU64::new(0),
            messages_recomputed: AtomicU64::new(0),
        }
    }

    /// The configured parallelism.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Cache counters so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            messages_reused: self.messages_reused.load(Ordering::Relaxed),
            messages_recomputed: self.messages_recomputed.load(Ordering::Relaxed),
        }
    }

    fn shard(&self, key: &VariantKey) -> &Mutex<HashMap<VariantKey, EvalResult>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// Evaluates one variant, consulting and filling the cache.
    ///
    /// # Errors
    ///
    /// Propagates (and caches) [`AnalysisError`] for malformed bases.
    pub fn evaluate(&self, variant: &SystemVariant) -> EvalResult {
        let key = variant.key();
        if let Some(cached) = self.shard(&key).lock().expect("cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return cached.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let result = self.analyze_uncached(variant);
        // Racing threads may both compute; the first insert wins so all
        // callers share one Arc.
        self.shard(&key)
            .lock()
            .expect("cache poisoned")
            .entry(key)
            .or_insert(result)
            .clone()
    }

    /// Evaluates a slice of variants, in parallel when both the batch
    /// and the configured [`Parallelism`] allow it. `results[i]`
    /// corresponds to `variants[i]`, identical to calling
    /// [`Evaluator::evaluate`] sequentially (the analysis is
    /// deterministic and the cache keyed structurally, so scheduling
    /// cannot change any result).
    pub fn evaluate_batch(&self, variants: &[SystemVariant]) -> Vec<EvalResult> {
        let jobs = self.parallelism.jobs().min(variants.len());
        if jobs <= 1 {
            return variants.iter().map(|v| self.evaluate(v)).collect();
        }
        let next = AtomicUsize::new(0);
        let mut out: Vec<Option<EvalResult>> = vec![None; variants.len()];
        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..jobs)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= variants.len() {
                                break;
                            }
                            local.push((i, self.evaluate(&variants[i])));
                        }
                        local
                    })
                })
                .collect();
            for worker in workers {
                for (i, result) in worker.join().expect("evaluation worker panicked") {
                    out[i] = Some(result);
                }
            }
        });
        out.into_iter()
            .map(|r| r.expect("every index claimed by exactly one worker"))
            .collect()
    }

    /// Runs the analysis for a cache miss, using the per-thread scratch
    /// network and, for permutation overlays, incremental re-analysis
    /// against the bucket's anchor report.
    fn analyze_uncached(&self, variant: &SystemVariant) -> EvalResult {
        SCRATCH.with_borrow_mut(|slot| {
            let fp = variant.base().fingerprint();
            let scratch = match slot {
                Some((cached_fp, net)) if *cached_fp == fp => net,
                _ => {
                    *slot = Some((fp, variant.base().network().clone()));
                    &mut slot.as_mut().expect("just set").1
                }
            };
            variant.apply_onto(scratch);

            let errors = variant.scenario().errors.model();
            let config = variant.scenario().analysis_config();

            if variant.permutation().is_some() {
                let anchor = self
                    .anchors
                    .lock()
                    .expect("anchor map poisoned")
                    .get(&variant.anchor_key())
                    .cloned();
                if let Some(anchor) = anchor {
                    let (report, stats) = analyze_bus_incremental(
                        scratch,
                        errors.as_ref(),
                        &config,
                        &anchor.report,
                        &anchor.hp_sets,
                    )?;
                    self.messages_reused
                        .fetch_add(stats.reused as u64, Ordering::Relaxed);
                    self.messages_recomputed
                        .fetch_add(stats.recomputed as u64, Ordering::Relaxed);
                    return Ok(Arc::new(report));
                }
            }

            let report = analyze_bus(scratch, errors.as_ref(), &config)?;
            // First full analysis in this bucket: it becomes the anchor
            // future permutation overlays diff against.
            self.anchors
                .lock()
                .expect("anchor map poisoned")
                .entry(variant.anchor_key())
                .or_insert_with(|| {
                    Arc::new(Anchor {
                        report: report.clone(),
                        hp_sets: hp_index_sets(scratch),
                    })
                });
            Ok(Arc::new(report))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use crate::variant::BaseSystem;
    use carta_can::controller::ControllerType;
    use carta_can::frame::Dlc;
    use carta_can::message::{CanId, CanMessage};
    use carta_can::network::{CanNetwork, Node};
    use carta_core::time::Time;

    fn net(n: usize) -> CanNetwork {
        let mut net = CanNetwork::new(250_000);
        let a = net.add_node(Node::new("A", ControllerType::FullCan));
        let b = net.add_node(Node::new("B", ControllerType::BasicCan));
        for k in 0..n {
            net.add_message(CanMessage::new(
                format!("m{k}"),
                CanId::standard(0x100 + 16 * k as u32).expect("valid"),
                Dlc::new(8),
                Time::from_ms(5 + 5 * (k as u64 % 4)),
                Time::from_us(500 * k as u64),
                if k % 2 == 0 { a } else { b },
            ));
        }
        net
    }

    #[test]
    fn cache_hits_on_repeated_variants() {
        let base = BaseSystem::new(net(6));
        let eval = Evaluator::new(Parallelism::sequential());
        let v = SystemVariant::new(base, Scenario::worst_case()).with_jitter_ratio(0.25);
        let first = eval.evaluate(&v).expect("valid");
        let second = eval.evaluate(&v).expect("valid");
        assert!(Arc::ptr_eq(&first, &second), "second call must be cached");
        let stats = eval.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.hit_rate(), 0.5);
    }

    #[test]
    fn results_match_the_direct_path() {
        let base = BaseSystem::new(net(8));
        let eval = Evaluator::default();
        for scenario in [
            Scenario::best_case(),
            Scenario::worst_case(),
            Scenario::sporadic_errors(Time::from_ms(10)),
        ] {
            for ratio in [0.0, 0.25, 0.6] {
                let v = SystemVariant::new(base.clone(), scenario.clone()).with_jitter_ratio(ratio);
                let engine = eval.evaluate(&v).expect("valid");
                let direct = scenario
                    .analyze(&crate::jitter::with_jitter_ratio(base.network(), ratio))
                    .expect("valid");
                assert_eq!(engine.messages.len(), direct.messages.len());
                for (e, d) in engine.messages.iter().zip(&direct.messages) {
                    assert_eq!(e.outcome, d.outcome, "{} at {ratio}", e.name);
                    assert_eq!(e.deadline, d.deadline);
                    assert_eq!(e.blocking, d.blocking);
                }
            }
        }
    }

    #[test]
    fn batch_matches_sequential_and_preserves_order() {
        let base = BaseSystem::new(net(6));
        let variants: Vec<SystemVariant> = (0..20)
            .map(|k| {
                SystemVariant::new(base.clone(), Scenario::worst_case())
                    .with_jitter_ratio(k as f64 * 0.05)
            })
            .collect();
        let parallel = Evaluator::new(Parallelism::new(4));
        let sequential = Evaluator::new(Parallelism::sequential());
        let par = parallel.evaluate_batch(&variants);
        let seq = sequential.evaluate_batch(&variants);
        for (i, (p, s)) in par.iter().zip(&seq).enumerate() {
            let (p, s) = (p.as_ref().expect("valid"), s.as_ref().expect("valid"));
            for (pm, sm) in p.messages.iter().zip(&s.messages) {
                assert_eq!(pm.outcome, sm.outcome, "variant {i}, message {}", pm.name);
            }
        }
    }

    #[test]
    fn permutations_use_incremental_analysis_and_stay_exact() {
        let base = BaseSystem::new(net(6));
        let eval = Evaluator::new(Parallelism::sequential());
        let scenario = Scenario::worst_case();
        // Prime the anchor with the un-permuted variant.
        let baseline = SystemVariant::new(base.clone(), scenario.clone()).with_jitter_ratio(0.25);
        eval.evaluate(&baseline).expect("valid");
        // A permutation that swaps the two weakest identifiers leaves
        // the higher-priority sets of messages 0..4 untouched.
        let perm = Arc::new(vec![0usize, 1, 2, 3, 5, 4]);
        let v = baseline.clone().with_permutation(perm.clone());
        let report = eval.evaluate(&v).expect("valid");
        let stats = eval.stats();
        assert!(
            stats.messages_reused >= 4,
            "expected reuse of unchanged prefixes, got {stats:?}"
        );
        // Exactness against the from-scratch path.
        let direct = {
            let mut m = base.network().clone();
            let pool = base.id_pool().to_vec();
            for (rank, &mi) in perm.iter().enumerate() {
                m.messages_mut()[mi].id = pool[rank];
            }
            scenario
                .analyze(&crate::jitter::with_jitter_ratio(&m, 0.25))
                .expect("valid")
        };
        for (e, d) in report.messages.iter().zip(&direct.messages) {
            assert_eq!(e.outcome, d.outcome, "{}", e.name);
            assert_eq!(e.id, d.id);
            assert_eq!(e.blocking, d.blocking);
        }
    }

    #[test]
    fn invalid_models_cache_their_error() {
        let empty = CanNetwork::new(500_000);
        let base = BaseSystem::new(empty);
        let eval = Evaluator::default();
        let v = SystemVariant::new(base, Scenario::best_case());
        assert!(eval.evaluate(&v).is_err());
        assert!(eval.evaluate(&v).is_err());
        assert_eq!(eval.stats().hits, 1);
    }

    #[test]
    fn parallelism_resolution_precedence() {
        assert_eq!(Parallelism::new(0).jobs(), 1);
        assert_eq!(Parallelism::resolve(Some(3)).jobs(), 3);
        assert!(Parallelism::from_env().jobs() >= 1);
        assert_eq!(Parallelism::sequential().jobs(), 1);
    }
}
