//! # carta-engine
//!
//! The unified evaluation engine of the `carta` workspace: every caller
//! that asks "what would the RTA say about this variant of the network"
//! — sensitivity sweeps, loss curves, extensibility searches, the SPEA2
//! identifier optimizer, benches — routes through one [`Evaluator`].
//!
//! The paper's headline workloads (Sec. 4.1–4.3) all reduce to
//! evaluating the same analysis over thousands of network variants.
//! Three mechanisms make that cheap:
//!
//! * **Overlays, not clones** — a [`SystemVariant`] is a shared
//!   [`BaseSystem`] plus small deltas (jitter assumption, error model,
//!   deadline override, identifier permutation). Materialization
//!   rewrites a per-thread scratch network in place; hot loops never
//!   clone a full network per point.
//! * **Memoization** — the [`Evaluator`] caches reports in a sharded
//!   map keyed by the structural [`VariantKey`], so repeated genomes
//!   across GA generations and overlapping sweep grids hit the cache.
//! * **Parallel batches** — [`Evaluator::evaluate_batch`] fans a slice
//!   of variants out over [`Parallelism::jobs`] worker threads
//!   (`CARTA_JOBS` env var / `--jobs` CLI flag), with incremental
//!   priority-aware re-analysis (see `carta_can::rta::
//!   analyze_bus_incremental`) for permutation overlays.
//!
//! ```
//! use carta_engine::prelude::*;
//! use carta_can::prelude::*;
//! use carta_core::time::Time;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut net = CanNetwork::new(500_000);
//! let a = net.add_node(Node::new("A", ControllerType::FullCan));
//! net.add_message(CanMessage::new(
//!     "m", CanId::standard(0x100)?, Dlc::new(8),
//!     Time::from_ms(10), Time::ZERO, a,
//! ));
//! let base = BaseSystem::new(net);
//! let eval = Evaluator::new(Parallelism::sequential());
//! let variants: Vec<SystemVariant> = [0.0, 0.25, 0.60]
//!     .iter()
//!     .map(|&r| SystemVariant::new(base.clone(), Scenario::worst_case()).with_jitter_ratio(r))
//!     .collect();
//! let reports = eval.evaluate_batch(&variants);
//! assert!(reports.iter().all(|r| r.is_ok()));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Panic-free library surface: a malformed model must surface as a
// typed error, never a crash. Tests and benches may still unwrap.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod evaluator;
pub mod jitter;
pub mod scenario;
pub mod variant;

/// Convenient single import for the common types of this crate.
pub mod prelude {
    pub use crate::evaluator::{
        CacheStats, EvalResult, Evaluator, EvaluatorBuilder, FaultPlan, Parallelism, ProbEvalResult,
    };
    pub use crate::jitter::{with_assumed_unknown_jitter, with_jitter_ratio, with_scaled_jitter};
    pub use crate::scenario::{DeadlineOverride, ErrorSpec, Scenario};
    pub use crate::variant::{BaseSystem, JitterOverlay, SystemVariant, VariantKey};
    pub use carta_core::cancel::CancelToken;
}
