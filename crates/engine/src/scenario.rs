//! What-if scenarios — named bundles of analysis assumptions.
//!
//! The paper's case study (Sec. 4) is a sequence of what-if runs over
//! the same K-Matrix: zero jitters, "realistic" jitters, different
//! error models, with and without bit stuffing, period vs. minimum
//! re-arrival deadlines. A [`Scenario`] captures one such assumption
//! bundle so experiments can be expressed declaratively.

use carta_can::error_model::{BurstErrors, ErrorModel, NoErrors, SporadicErrors};
use carta_can::frame::StuffingMode;
use carta_can::message::DeadlinePolicy;
use carta_can::network::CanNetwork;
use carta_can::rta::AnalysisConfig;
use carta_core::time::Time;

/// Error-model selection (a plain-data mirror of the trait objects in
/// `carta-can`, so scenarios stay `Clone + Eq` and can participate in
/// the evaluator's structural cache keys).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorSpec {
    /// No bus errors.
    None,
    /// Sporadic errors with the given minimum distance.
    Sporadic {
        /// Minimum distance between error hits.
        interval: Time,
    },
    /// Burst errors.
    Burst {
        /// Hits per burst.
        burst_len: u64,
        /// Distance between hits inside a burst.
        intra_gap: Time,
        /// Distance between burst starts.
        inter_burst: Time,
    },
}

impl ErrorSpec {
    /// Materializes the analytical error model.
    pub fn model(&self) -> Box<dyn ErrorModel> {
        match *self {
            ErrorSpec::None => Box::new(NoErrors),
            ErrorSpec::Sporadic { interval } => Box::new(SporadicErrors::new(interval)),
            ErrorSpec::Burst {
                burst_len,
                intra_gap,
                inter_burst,
            } => Box::new(BurstErrors::new(burst_len, intra_gap, inter_burst)),
        }
    }
}

/// How the scenario overrides the deadlines in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeadlineOverride {
    /// Keep per-message policies as modeled.
    Keep,
    /// Force deadline = period everywhere.
    Period,
    /// Force deadline = minimum re-arrival time everywhere (the
    /// paper's strictest, buffer-overwrite-safe setting).
    MinReArrival,
}

/// One named bundle of analysis assumptions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// Scenario name for reports.
    pub name: String,
    /// Bit-stuffing assumption.
    pub stuffing: StuffingMode,
    /// Bus-error assumption.
    pub errors: ErrorSpec,
    /// Deadline interpretation.
    pub deadline: DeadlineOverride,
}

impl Scenario {
    /// The paper's Figure 5 **best case**: no bus errors and no stuff
    /// bits. The deadline stays the minimum re-arrival time — the
    /// worst case of Sec. 4.2 *adds* errors and stuffing on top of
    /// that common deadline interpretation.
    pub fn best_case() -> Self {
        Scenario {
            name: "best case".into(),
            stuffing: StuffingMode::None,
            errors: ErrorSpec::None,
            deadline: DeadlineOverride::MinReArrival,
        }
    }

    /// A lenient variant of [`Scenario::best_case`] with implicit
    /// (period) deadlines, for what-if comparisons.
    pub fn best_case_period_deadline() -> Self {
        Scenario {
            name: "best case (period deadline)".into(),
            stuffing: StuffingMode::None,
            errors: ErrorSpec::None,
            deadline: DeadlineOverride::Period,
        }
    }

    /// The paper's Figure 5 **worst case**: burst bus errors, worst-case
    /// bit stuffing, minimum re-arrival time as deadline.
    ///
    /// Burst parameters follow the Punnekkat-style setting used in the
    /// CAN error-analysis literature: 3 hits 200 µs apart, bursts at
    /// least 25 ms apart.
    pub fn worst_case() -> Self {
        Scenario {
            name: "worst case".into(),
            stuffing: StuffingMode::WorstCase,
            errors: ErrorSpec::Burst {
                burst_len: 3,
                intra_gap: Time::from_us(200),
                inter_burst: Time::from_ms(25),
            },
            deadline: DeadlineOverride::MinReArrival,
        }
    }

    /// Sporadic-error variant (MTBF-style) between the two extremes.
    pub fn sporadic_errors(interval: Time) -> Self {
        Scenario {
            name: format!("sporadic errors every {interval}"),
            stuffing: StuffingMode::WorstCase,
            errors: ErrorSpec::Sporadic { interval },
            deadline: DeadlineOverride::MinReArrival,
        }
    }

    /// The analysis configuration for this scenario.
    pub fn analysis_config(&self) -> AnalysisConfig {
        AnalysisConfig::with_stuffing(self.stuffing)
    }

    /// Applies the deadline override, returning the adjusted network.
    pub fn apply(&self, net: &CanNetwork) -> CanNetwork {
        let mut net = net.clone();
        match self.deadline {
            DeadlineOverride::Keep => {}
            DeadlineOverride::Period => {
                for m in net.messages_mut() {
                    m.deadline = DeadlinePolicy::Period;
                }
            }
            DeadlineOverride::MinReArrival => {
                for m in net.messages_mut() {
                    m.deadline = DeadlinePolicy::MinReArrival;
                }
            }
        }
        net
    }

    /// Runs the full bus analysis under this scenario.
    ///
    /// # Errors
    ///
    /// Propagates [`carta_core::analysis::AnalysisError`] from the
    /// underlying analysis.
    pub fn analyze(
        &self,
        net: &CanNetwork,
    ) -> Result<carta_can::rta::BusReport, carta_core::analysis::AnalysisError> {
        carta_can::rta::analyze_bus(
            &self.apply(net),
            self.errors.model().as_ref(),
            &self.analysis_config(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carta_can::controller::ControllerType;
    use carta_can::frame::Dlc;
    use carta_can::message::{CanId, CanMessage};
    use carta_can::network::Node;

    fn small_net() -> CanNetwork {
        let mut net = CanNetwork::new(500_000);
        let a = net.add_node(Node::new("A", ControllerType::FullCan));
        net.add_message(CanMessage::new(
            "m0",
            CanId::standard(0x100).expect("valid"),
            Dlc::new(8),
            Time::from_ms(10),
            Time::from_ms(2),
            a,
        ));
        net
    }

    #[test]
    fn presets_have_expected_shape() {
        let best = Scenario::best_case();
        assert_eq!(best.errors, ErrorSpec::None);
        assert_eq!(best.stuffing, StuffingMode::None);
        assert_eq!(best.deadline, DeadlineOverride::MinReArrival);
        assert_eq!(
            Scenario::best_case_period_deadline().deadline,
            DeadlineOverride::Period
        );
        let worst = Scenario::worst_case();
        assert!(matches!(worst.errors, ErrorSpec::Burst { .. }));
        assert_eq!(worst.stuffing, StuffingMode::WorstCase);
        assert_eq!(worst.deadline, DeadlineOverride::MinReArrival);
    }

    #[test]
    fn deadline_override_applied() {
        let net = small_net();
        let best = Scenario::best_case_period_deadline().apply(&net);
        assert_eq!(best.messages()[0].resolved_deadline(), Time::from_ms(10));
        let worst = Scenario::worst_case().apply(&net);
        assert_eq!(worst.messages()[0].resolved_deadline(), Time::from_ms(8));
        let keep = Scenario {
            deadline: DeadlineOverride::Keep,
            ..Scenario::best_case()
        }
        .apply(&net);
        assert_eq!(keep.messages()[0].deadline, DeadlinePolicy::MinReArrival);
    }

    #[test]
    fn worst_dominates_best() {
        let net = small_net();
        let best = Scenario::best_case().analyze(&net).expect("valid");
        let worst = Scenario::worst_case().analyze(&net).expect("valid");
        assert!(
            worst.messages[0].outcome.wcrt().expect("bounded")
                > best.messages[0].outcome.wcrt().expect("bounded")
        );
    }

    #[test]
    fn error_spec_materializes() {
        assert_eq!(ErrorSpec::None.model().max_hits(Time::from_s(1)), 0);
        assert!(
            ErrorSpec::Sporadic {
                interval: Time::from_ms(10)
            }
            .model()
            .max_hits(Time::from_s(1))
                > 0
        );
        let spec = Scenario::sporadic_errors(Time::from_ms(5));
        assert!(spec.name.contains("5ms"));
    }
}
