//! Jitter assumptions for what-if sweeps.
//!
//! The x-axis of the paper's Figures 4 and 5 is "Jitter in % of Message
//! Period": the OEM, lacking supplier data, *assumes* a uniform jitter
//! ratio for every message and sweeps it. These helpers produce the
//! corresponding network variants.

use carta_can::network::CanNetwork;
use carta_core::event_model::EventModel;

/// Returns a copy of the network in which **every** message's jitter is
/// `ratio` of its period (e.g. `0.25` for the paper's 25 % point).
///
/// # Panics
///
/// Panics if `ratio` is negative or not finite.
pub fn with_jitter_ratio(net: &CanNetwork, ratio: f64) -> CanNetwork {
    assert!(
        ratio.is_finite() && ratio >= 0.0,
        "ratio must be non-negative"
    );
    let mut net = net.clone();
    for m in net.messages_mut() {
        let period = m.activation.period();
        m.activation = EventModel::new(
            m.activation.kind(),
            period,
            period.scale(ratio),
            m.activation.dmin(),
        );
    }
    net
}

/// Returns a copy in which only messages with **unknown** jitter (zero
/// in the model) receive the assumed ratio; messages with known jitter
/// keep it. This mirrors the paper's "realistic jitters for the unknown
/// messages" experiment.
///
/// # Panics
///
/// Panics if `ratio` is negative or not finite.
pub fn with_assumed_unknown_jitter(net: &CanNetwork, ratio: f64) -> CanNetwork {
    assert!(
        ratio.is_finite() && ratio >= 0.0,
        "ratio must be non-negative"
    );
    let mut net = net.clone();
    for m in net.messages_mut() {
        if m.activation.jitter().is_zero() {
            let period = m.activation.period();
            m.activation = EventModel::new(
                m.activation.kind(),
                period,
                period.scale(ratio),
                m.activation.dmin(),
            );
        }
    }
    net
}

/// Scales every existing jitter by `factor` (robustness exploration).
///
/// # Panics
///
/// Panics if `factor` is negative or not finite.
pub fn with_scaled_jitter(net: &CanNetwork, factor: f64) -> CanNetwork {
    assert!(
        factor.is_finite() && factor >= 0.0,
        "factor must be non-negative"
    );
    let mut net = net.clone();
    for m in net.messages_mut() {
        m.activation = EventModel::new(
            m.activation.kind(),
            m.activation.period(),
            m.activation.jitter().scale(factor),
            m.activation.dmin(),
        );
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use carta_can::controller::ControllerType;
    use carta_can::frame::Dlc;
    use carta_can::message::{CanId, CanMessage};
    use carta_can::network::Node;
    use carta_core::time::Time;

    fn net() -> CanNetwork {
        let mut net = CanNetwork::new(500_000);
        let a = net.add_node(Node::new("A", ControllerType::FullCan));
        net.add_message(CanMessage::new(
            "known",
            CanId::standard(0x100).expect("valid"),
            Dlc::new(8),
            Time::from_ms(10),
            Time::from_ms(1),
            a,
        ));
        net.add_message(CanMessage::new(
            "unknown",
            CanId::standard(0x200).expect("valid"),
            Dlc::new(4),
            Time::from_ms(20),
            Time::ZERO,
            a,
        ));
        net
    }

    #[test]
    fn uniform_ratio_overrides_all() {
        let out = with_jitter_ratio(&net(), 0.25);
        assert_eq!(out.messages()[0].activation.jitter(), Time::from_us(2500));
        assert_eq!(out.messages()[1].activation.jitter(), Time::from_ms(5));
    }

    #[test]
    fn assumed_ratio_keeps_known_jitters() {
        let out = with_assumed_unknown_jitter(&net(), 0.25);
        assert_eq!(out.messages()[0].activation.jitter(), Time::from_ms(1));
        assert_eq!(out.messages()[1].activation.jitter(), Time::from_ms(5));
    }

    #[test]
    fn scaling_multiplies_existing() {
        let out = with_scaled_jitter(&net(), 3.0);
        assert_eq!(out.messages()[0].activation.jitter(), Time::from_ms(3));
        assert_eq!(out.messages()[1].activation.jitter(), Time::ZERO);
        let zero = with_scaled_jitter(&net(), 0.0);
        assert_eq!(zero.messages()[0].activation.jitter(), Time::ZERO);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_ratio_rejected() {
        let _ = with_jitter_ratio(&net(), -0.1);
    }
}
