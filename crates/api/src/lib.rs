//! # carta-api — transport-agnostic analysis API (`carta.api.v1`)
//!
//! Every way of asking the carta engine a question — each CLI
//! subcommand, each server call — is a [`request::Request`] value;
//! every answer is a [`response::Response`] carrying the engine's own
//! result types. [`handler::Handler`] is the single interpreter
//! between the two, and [`wire`] gives both a stable, versioned JSON
//! spelling.
//!
//! Frontends stay thin: the CLI parses argv into a `Request` and
//! renders the `Response` as text; the server decodes the request
//! envelope from a POST body and encodes the response envelope back.
//! Neither touches the engine directly, so behavior (scenario
//! presets, evaluation caching, degraded-mode reporting) cannot drift
//! between surfaces.
//!
//! Errors carry stable string codes ([`error::ErrorCode`]) with fixed
//! mappings to CLI exit codes and HTTP statuses, so scripts can match
//! on `analysis.unbounded` instead of prose.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod error;
pub mod handler;
pub mod request;
pub mod response;
pub mod wire;

/// Convenient single-import surface.
pub mod prelude {
    pub use crate::error::{divergence_code, ApiError, ErrorCode};
    pub use crate::handler::Handler;
    pub use crate::request::{
        parse_backend, Model, ModelOptions, ModelSource, Request, ScenarioSpec,
    };
    pub use crate::response::{
        AnalyzeReport, AudsleyRow, FuzzReplay, FuzzSummary, LoadSummary, OptimizeSummary,
        ProbAnalyzeReport, Response, SimulateSummary,
    };
}
