//! The request side of `carta.api.v1`: plain-data descriptions of
//! every analysis the engine can run, shared by the CLI and the
//! server frontends.

use crate::error::ApiError;
use carta_can::backend::BackendConfig;
use carta_core::time::Time;
use carta_engine::prelude::Scenario;

/// Where the K-Matrix comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelSource {
    /// The built-in synthetic power-train case study.
    CaseStudy {
        /// Generator seed (the CLI's `-` path uses the default 42).
        seed: u64,
    },
    /// An uploaded/loaded K-Matrix CSV document.
    Csv(String),
}

impl Default for ModelSource {
    fn default() -> Self {
        ModelSource::CaseStudy { seed: 42 }
    }
}

/// Model-level switches applied before analysis, in a fixed order:
/// backend, then uniform jitter override, then assumed-unknown jitter.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ModelOptions {
    /// Bus backend (classic CAN or CAN FD).
    pub backend: BackendConfig,
    /// `--jitter <pct>`: uniform jitter as a percentage of each period.
    pub jitter_pct: Option<f64>,
    /// `--assume-unknown <pct>`: jitter assumed for messages whose
    /// jitter is unknown.
    pub assume_unknown_pct: Option<f64>,
}

/// A model reference: source plus options.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Model {
    /// Where the K-Matrix comes from.
    pub source: ModelSource,
    /// Switches applied before analysis.
    pub options: ModelOptions,
}

impl Model {
    /// The built-in case study with default options.
    pub fn case_study() -> Self {
        Model::default()
    }

    /// A model from CSV text with default options.
    pub fn from_csv(text: impl Into<String>) -> Self {
        Model {
            source: ModelSource::Csv(text.into()),
            options: ModelOptions::default(),
        }
    }
}

/// Scenario selection, as spelled on the wire and the CLI
/// (`worst`, `best`, `sporadic:<ms>`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScenarioSpec {
    /// Burst errors + worst-case stuffing (the paper's Fig. 5 upper
    /// bound).
    #[default]
    Worst,
    /// No errors, no stuff bits.
    Best,
    /// Sporadic errors with the given minimum distance in ms.
    SporadicMs(u64),
}

impl ScenarioSpec {
    /// Parses the CLI/wire spelling.
    ///
    /// # Errors
    ///
    /// Returns [`ApiError`] with the exact message the CLI has always
    /// printed for unknown scenarios.
    pub fn parse(s: &str) -> Result<Self, ApiError> {
        match s {
            "worst" => Ok(ScenarioSpec::Worst),
            "best" => Ok(ScenarioSpec::Best),
            _ => {
                if let Some(ms) = s.strip_prefix("sporadic:") {
                    let ms: u64 = ms.parse().map_err(|_| {
                        ApiError::request(format!("invalid sporadic interval `{ms}`"))
                    })?;
                    Ok(ScenarioSpec::SporadicMs(ms))
                } else {
                    Err(ApiError::request(format!(
                        "unknown scenario `{s}` (best, worst, sporadic:<ms>)"
                    )))
                }
            }
        }
    }

    /// The canonical wire spelling.
    pub fn spec_str(&self) -> String {
        match self {
            ScenarioSpec::Worst => "worst".into(),
            ScenarioSpec::Best => "best".into(),
            ScenarioSpec::SporadicMs(ms) => format!("sporadic:{ms}"),
        }
    }

    /// Materializes the engine scenario.
    pub fn to_scenario(self) -> Scenario {
        match self {
            ScenarioSpec::Worst => Scenario::worst_case(),
            ScenarioSpec::Best => Scenario::best_case(),
            ScenarioSpec::SporadicMs(ms) => Scenario::sporadic_errors(Time::from_ms(ms)),
        }
    }
}

/// Parses a backend name (`can`, `can-fd`), preserving the engine's
/// error text.
///
/// # Errors
///
/// Returns a [`crate::error::ErrorCode::RequestInvalid`] error naming
/// the unknown backend.
pub fn parse_backend(name: &str) -> Result<BackendConfig, ApiError> {
    BackendConfig::parse(name).map_err(ApiError::request)
}

/// One API request. Every CLI subcommand and server call is a value
/// of this type; the [`crate::handler::Handler`] is the single
/// interpreter.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Emit the synthetic power-train K-Matrix CSV.
    Generate {
        /// Generator seed.
        seed: u64,
    },
    /// Bus-load (utilization) report.
    Load {
        /// The model to load.
        model: Model,
    },
    /// Worst/best-case response times per message.
    Analyze {
        /// The model to analyze.
        model: Model,
        /// Assumption bundle.
        scenario: ScenarioSpec,
    },
    /// Message-loss curve over the paper's 0–60 % jitter grid.
    Loss {
        /// The model to sweep.
        model: Model,
        /// Assumption bundle.
        scenario: ScenarioSpec,
    },
    /// Convolution-based response-time distributions and deadline-miss
    /// probabilities per message.
    ProbAnalyze {
        /// The model to analyze.
        model: Model,
        /// Assumption bundle.
        scenario: ScenarioSpec,
    },
    /// Probabilistic message-loss curve (expected losses with a
    /// certain/possible confidence band) over the jitter grid.
    ProbLoss {
        /// The model to sweep.
        model: Model,
        /// Assumption bundle.
        scenario: ScenarioSpec,
    },
    /// Response-vs-jitter sensitivity classes per message.
    Sensitivity {
        /// The model to sweep.
        model: Model,
        /// Assumption bundle.
        scenario: ScenarioSpec,
        /// Restrict to one message, by name.
        message: Option<String>,
    },
    /// Audsley feasibility identifier assignment.
    Audsley {
        /// The model to assign.
        model: Model,
        /// Assumption bundle.
        scenario: ScenarioSpec,
    },
    /// SPEA2 identifier optimization.
    Optimize {
        /// The model to optimize (jitter options are ignored, as the
        /// CLI always has).
        model: Model,
        /// SPEA2 population size.
        population: usize,
        /// SPEA2 generations.
        generations: usize,
        /// Return the optimized K-Matrix CSV instead of the summary.
        emit_csv: bool,
    },
    /// Discrete-event simulation.
    Simulate {
        /// The model to simulate.
        model: Model,
        /// Simulated horizon in milliseconds.
        millis: u64,
        /// Simulation seed.
        seed: u64,
        /// Periodic error injection interval in ms, if any.
        errors_ms: Option<u64>,
        /// Render an ASCII Gantt chart of the first 20 ms.
        gantt: bool,
    },
    /// Compare candidate bit rates.
    Dimension {
        /// The model to re-dimension.
        model: Model,
        /// Assumption bundle.
        scenario: ScenarioSpec,
        /// Candidate bit rates in bit/s.
        rates: Vec<u64>,
    },
    /// Structural review of a K-Matrix.
    Lint {
        /// The model to review.
        model: Model,
    },
    /// Compare two matrices' analyses message by message.
    Diff {
        /// The "before" model.
        before: Model,
        /// The "after" model.
        after: Model,
        /// Assumption bundle applied to both.
        scenario: ScenarioSpec,
    },
    /// Randomized verification (metamorphic laws + differential
    /// oracle).
    Fuzz {
        /// Cases per law.
        cases: u64,
        /// Fuzz seed.
        seed: u64,
        /// Law-name filter, if any.
        laws: Option<Vec<String>>,
        /// Corpus backend.
        backend: BackendConfig,
    },
    /// Replay a stored fuzz counterexample (`carta.repro.v1` JSON).
    FuzzReplay {
        /// The repro document text.
        repro_json: String,
    },
}

impl Request {
    /// The stable wire name of this request kind.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Generate { .. } => "generate",
            Request::Load { .. } => "load",
            Request::Analyze { .. } => "analyze",
            Request::Loss { .. } => "loss",
            Request::ProbAnalyze { .. } => "prob-analyze",
            Request::ProbLoss { .. } => "prob-loss",
            Request::Sensitivity { .. } => "sensitivity",
            Request::Audsley { .. } => "audsley",
            Request::Optimize { .. } => "optimize",
            Request::Simulate { .. } => "simulate",
            Request::Dimension { .. } => "dimension",
            Request::Lint { .. } => "lint",
            Request::Diff { .. } => "diff",
            Request::Fuzz { .. } => "fuzz",
            Request::FuzzReplay { .. } => "fuzz-replay",
        }
    }

    /// Whether this request is expensive enough that an overloaded
    /// tenant should be shed rather than served (sweeps, optimization,
    /// fuzzing, simulation). Cheap point queries are always admitted;
    /// `analyze` under pressure degrades instead of shedding.
    pub fn is_heavy(&self) -> bool {
        matches!(
            self,
            Request::Loss { .. }
                | Request::ProbAnalyze { .. }
                | Request::ProbLoss { .. }
                | Request::Sensitivity { .. }
                | Request::Audsley { .. }
                | Request::Optimize { .. }
                | Request::Simulate { .. }
                | Request::Dimension { .. }
                | Request::Diff { .. }
                | Request::Fuzz { .. }
                | Request::FuzzReplay { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_spec_parses_the_cli_grammar() {
        assert_eq!(ScenarioSpec::parse("worst"), Ok(ScenarioSpec::Worst));
        assert_eq!(ScenarioSpec::parse("best"), Ok(ScenarioSpec::Best));
        assert_eq!(
            ScenarioSpec::parse("sporadic:10"),
            Ok(ScenarioSpec::SporadicMs(10))
        );
        let err = ScenarioSpec::parse("chaotic").expect_err("unknown");
        assert_eq!(
            err.to_string(),
            "unknown scenario `chaotic` (best, worst, sporadic:<ms>)"
        );
        let err = ScenarioSpec::parse("sporadic:soon").expect_err("bad ms");
        assert!(err.to_string().contains("invalid sporadic interval"));
    }

    #[test]
    fn scenario_spec_roundtrips_via_spec_str() {
        for spec in [
            ScenarioSpec::Worst,
            ScenarioSpec::Best,
            ScenarioSpec::SporadicMs(7),
        ] {
            assert_eq!(ScenarioSpec::parse(&spec.spec_str()), Ok(spec));
        }
        assert_eq!(ScenarioSpec::Worst.to_scenario().name, "worst case");
    }

    #[test]
    fn backend_parse_keeps_the_error_text() {
        assert_eq!(parse_backend("can"), Ok(BackendConfig::Can));
        assert_eq!(parse_backend("can-fd"), Ok(BackendConfig::can_fd()));
        let err = parse_backend("flexray").expect_err("unknown");
        assert!(err.to_string().contains("unknown backend `flexray`"));
    }

    #[test]
    fn heavy_classification_exempts_point_queries() {
        assert!(!Request::Generate { seed: 1 }.is_heavy());
        assert!(!Request::Load {
            model: Model::case_study()
        }
        .is_heavy());
        assert!(!Request::Analyze {
            model: Model::case_study(),
            scenario: ScenarioSpec::Worst
        }
        .is_heavy());
        assert!(Request::Fuzz {
            cases: 1,
            seed: 1,
            laws: None,
            backend: BackendConfig::Can
        }
        .is_heavy());
    }
}
