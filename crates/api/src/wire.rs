//! The `carta.api.v1` wire format: JSON encoding for every request
//! and response, and decoding for requests (the server's inbound
//! path), analyze responses and error envelopes (so clients — and the
//! e2e isolation test — can reconstruct a [`BusReport`] bit for bit).
//!
//! Envelopes:
//!
//! ```json
//! {"schema":"carta.api.v1","request":"analyze","params":{...}}
//! {"schema":"carta.api.v1","ok":true,"kind":"analyze","result":{...}}
//! {"schema":"carta.api.v1","ok":false,"error":{"code":"...","message":"..."}}
//! ```
//!
//! All durations are nanoseconds (`*_ns`); they stay below 2⁵³ and so
//! survive the JSON double representation exactly.

use crate::error::{divergence_code, ApiError, ErrorCode};
use crate::request::{parse_backend, Model, ModelOptions, ModelSource, Request, ScenarioSpec};
use crate::response::{AnalyzeReport, AudsleyRow, ProbAnalyzeReport, Response};
use carta_can::backend::{BackendConfig, CanFd};
use carta_can::frame::StuffingMode;
use carta_can::message::CanId;
use carta_can::prob::{ProbDist, ProbMessageReport, ProbOutcome};
use carta_can::rta::{BusReport, MessageReport, ResponseOutcome};
use carta_core::analysis::{DivergenceCause, MessageDiagnostic, ResponseBounds};
use carta_core::time::Time;
use carta_engine::prelude::CacheStats;
use carta_explore::prelude::{LossCurve, ProbLossCurve};
use carta_obs::json::{self, ObjectBuilder, Value};
use std::sync::Arc;

/// The schema identifier stamped on every document.
pub const SCHEMA: &str = "carta.api.v1";

fn arr(items: impl IntoIterator<Item = String>) -> String {
    format!("[{}]", items.into_iter().collect::<Vec<_>>().join(","))
}

fn str_arr<'a>(items: impl IntoIterator<Item = &'a str>) -> String {
    arr(items
        .into_iter()
        .map(|s| format!("\"{}\"", json::escape(s))))
}

fn opt_uint(v: Option<u64>) -> String {
    v.map_or_else(|| "null".into(), |n| n.to_string())
}

fn opt_num(v: Option<f64>) -> String {
    v.map_or_else(|| "null".into(), json::number)
}

// ---------------------------------------------------------------- encode

fn backend_json(backend: BackendConfig) -> String {
    match backend {
        BackendConfig::Can => ObjectBuilder::new().string("kind", "can").build(),
        BackendConfig::CanFd(fd) => ObjectBuilder::new()
            .string("kind", "can-fd")
            .uint("data_ratio", u64::from(fd.data_ratio))
            .build(),
    }
}

fn stuffing_str(mode: StuffingMode) -> &'static str {
    match mode {
        StuffingMode::WorstCase => "worst-case",
        StuffingMode::None => "none",
    }
}

fn model_json(model: &Model) -> String {
    let source = match &model.source {
        ModelSource::CaseStudy { seed } => ObjectBuilder::new()
            .string("kind", "case-study")
            .uint("seed", *seed)
            .build(),
        ModelSource::Csv(text) => ObjectBuilder::new()
            .string("kind", "csv")
            .string("csv", text)
            .build(),
    };
    ObjectBuilder::new()
        .raw("source", &source)
        .raw("backend", &backend_json(model.options.backend))
        .raw("jitter_pct", &opt_num(model.options.jitter_pct))
        .raw(
            "assume_unknown_pct",
            &opt_num(model.options.assume_unknown_pct),
        )
        .build()
}

/// Encodes a request document (with the model inline; servers accept
/// `{"kind":"session","id":...}` sources as well, resolved at decode
/// time).
pub fn encode_request(req: &Request) -> String {
    encode_request_with_deadline(req, None)
}

/// [`encode_request`] plus an optional top-level `deadline_ms` budget:
/// a server receiving the document derives a cancellation deadline for
/// the evaluation and answers `request.deadline_exceeded` (HTTP 504)
/// when it trips. Omitted (`None`) means no deadline — the wire
/// document is then byte-identical to [`encode_request`], so the field
/// is backward compatible.
pub fn encode_request_with_deadline(req: &Request, deadline_ms: Option<u64>) -> String {
    let params = match req {
        Request::Generate { seed } => ObjectBuilder::new().uint("seed", *seed).build(),
        Request::Load { model } | Request::Lint { model } => ObjectBuilder::new()
            .raw("model", &model_json(model))
            .build(),
        Request::Analyze { model, scenario }
        | Request::Loss { model, scenario }
        | Request::ProbAnalyze { model, scenario }
        | Request::ProbLoss { model, scenario }
        | Request::Audsley { model, scenario } => ObjectBuilder::new()
            .raw("model", &model_json(model))
            .string("scenario", &scenario.spec_str())
            .build(),
        Request::Sensitivity {
            model,
            scenario,
            message,
        } => {
            let b = ObjectBuilder::new()
                .raw("model", &model_json(model))
                .string("scenario", &scenario.spec_str());
            match message {
                Some(m) => b.string("message", m),
                None => b.raw("message", "null"),
            }
            .build()
        }
        Request::Optimize {
            model,
            population,
            generations,
            emit_csv,
        } => ObjectBuilder::new()
            .raw("model", &model_json(model))
            .uint("population", *population as u64)
            .uint("generations", *generations as u64)
            .bool("emit_csv", *emit_csv)
            .build(),
        Request::Simulate {
            model,
            millis,
            seed,
            errors_ms,
            gantt,
        } => ObjectBuilder::new()
            .raw("model", &model_json(model))
            .uint("millis", *millis)
            .uint("seed", *seed)
            .raw("errors_ms", &opt_uint(*errors_ms))
            .bool("gantt", *gantt)
            .build(),
        Request::Dimension {
            model,
            scenario,
            rates,
        } => ObjectBuilder::new()
            .raw("model", &model_json(model))
            .string("scenario", &scenario.spec_str())
            .raw("rates", &arr(rates.iter().map(u64::to_string)))
            .build(),
        Request::Diff {
            before,
            after,
            scenario,
        } => ObjectBuilder::new()
            .raw("before", &model_json(before))
            .raw("after", &model_json(after))
            .string("scenario", &scenario.spec_str())
            .build(),
        Request::Fuzz {
            cases,
            seed,
            laws,
            backend,
        } => {
            let b = ObjectBuilder::new()
                .uint("cases", *cases)
                .uint("seed", *seed)
                .raw("backend", &backend_json(*backend));
            match laws {
                Some(laws) => b.raw("laws", &str_arr(laws.iter().map(String::as_str))),
                None => b.raw("laws", "null"),
            }
            .build()
        }
        Request::FuzzReplay { repro_json } => {
            ObjectBuilder::new().string("repro", repro_json).build()
        }
    };
    let envelope = ObjectBuilder::new()
        .string("schema", SCHEMA)
        .string("request", req.kind())
        .raw("params", &params);
    match deadline_ms {
        Some(ms) => envelope.uint("deadline_ms", ms).build(),
        None => envelope.build(),
    }
}

fn diagnostic_json(d: &MessageDiagnostic) -> String {
    let cause = match d.cause {
        DivergenceCause::HorizonExceeded { horizon } => ObjectBuilder::new()
            .string("code", divergence_code(&d.cause))
            .uint("horizon_ns", horizon.as_ns())
            .build(),
        DivergenceCause::InstanceLimit { limit } => ObjectBuilder::new()
            .string("code", divergence_code(&d.cause))
            .uint("limit", limit)
            .build(),
        DivergenceCause::IterationBudget { budget } => ObjectBuilder::new()
            .string("code", divergence_code(&d.cause))
            .uint("budget", budget)
            .build(),
    };
    ObjectBuilder::new()
        .string("entity", &d.entity)
        .uint("priority_level", d.priority_level as u64)
        .uint("busy_window_ns", d.busy_window.as_ns())
        .uint("instances", d.instances)
        .raw(
            "interference",
            &str_arr(d.interference.iter().map(|s| s.as_ref())),
        )
        .raw("cause", &cause)
        .build()
}

fn message_report_json(m: &MessageReport) -> String {
    let b = ObjectBuilder::new()
        .uint("index", m.index as u64)
        .string("name", &m.name)
        .uint("id", u64::from(m.id.raw()))
        .bool(
            "extended",
            m.id.kind() == carta_can::frame::FrameKind::Extended,
        )
        .uint("c_max_ns", m.c_max.as_ns())
        .uint("c_min_ns", m.c_min.as_ns())
        .uint("blocking_ns", m.blocking.as_ns())
        .uint("deadline_ns", m.deadline.as_ns())
        .uint("instances", m.instances);
    match &m.outcome {
        ResponseOutcome::Bounded(bounds) => b
            .bool("bounded", true)
            .uint("wcrt_ns", bounds.worst().as_ns())
            .uint("bcrt_ns", bounds.best().as_ns()),
        ResponseOutcome::Overload(d) => b
            .bool("bounded", false)
            .raw("diagnostic", &diagnostic_json(d)),
    }
    .build()
}

fn analyze_json(a: &AnalyzeReport) -> String {
    ObjectBuilder::new()
        .string("scenario", &a.scenario)
        .bool("degraded", a.report.is_degraded())
        .bool("schedulable", a.report.schedulable())
        .uint("missed", a.report.missed_count() as u64)
        .string("error_model", &a.report.error_model)
        .string("stuffing", stuffing_str(a.report.stuffing))
        .raw("backend", &backend_json(a.report.backend))
        .raw(
            "messages",
            &arr(a.report.messages.iter().map(message_report_json)),
        )
        .build()
}

fn loss_curve_json(curve: &LossCurve) -> String {
    ObjectBuilder::new()
        .string("scenario", &curve.scenario)
        .raw(
            "points",
            &arr(curve.points.iter().map(|p| {
                ObjectBuilder::new()
                    .num("jitter_ratio", p.jitter_ratio)
                    .uint("missed", p.missed as u64)
                    .uint("total", p.total as u64)
                    .bool("failed", p.failed)
                    .build()
            })),
        )
        .build()
}

fn prob_dist_json(d: &ProbDist) -> String {
    // The raw PMF can run to thousands of bins; the wire carries the
    // summary statistics plus the CDF the quantiles were read from.
    ObjectBuilder::new()
        .uint("bcrt_ns", d.bcrt.as_ns())
        .uint("wcrt_ns", d.wcrt.as_ns())
        .num("miss_probability", d.miss_probability)
        .uint("p50_ns", d.p50.as_ns())
        .uint("p95_ns", d.p95.as_ns())
        .uint("p99_ns", d.p99.as_ns())
        .uint("support_min_ns", d.pmf.support_min().as_ns())
        .uint("support_max_ns", d.pmf.support_max().as_ns())
        .uint("bins", d.pmf.len() as u64)
        .num("total_mass", d.pmf.total_mass())
        .build()
}

fn prob_message_json(m: &ProbMessageReport) -> String {
    let b = ObjectBuilder::new()
        .uint("index", m.index as u64)
        .string("name", &m.name)
        .uint("id", u64::from(m.id.raw()))
        .uint("deadline_ns", m.deadline.as_ns())
        .num("miss_probability", m.outcome.miss_probability());
    match &m.outcome {
        ProbOutcome::Dist(d) => b.bool("bounded", true).raw("dist", &prob_dist_json(d)),
        ProbOutcome::Overload(d) => b
            .bool("bounded", false)
            .raw("diagnostic", &diagnostic_json(d)),
    }
    .build()
}

fn prob_analyze_json(a: &ProbAnalyzeReport) -> String {
    ObjectBuilder::new()
        .string("scenario", &a.scenario)
        .uint("quantum_ns", a.report.quantum.as_ns())
        .num("expected_missed", a.report.expected_missed())
        .uint("certain_missed", a.report.certain_missed() as u64)
        .uint("possible_missed", a.report.possible_missed() as u64)
        .string("error_model", &a.report.error_model)
        .string("stuffing", stuffing_str(a.report.stuffing))
        .raw("backend", &backend_json(a.report.backend))
        .raw(
            "messages",
            &arr(a.report.messages.iter().map(prob_message_json)),
        )
        .build()
}

fn prob_loss_curve_json(curve: &ProbLossCurve) -> String {
    ObjectBuilder::new()
        .string("scenario", &curve.scenario)
        .raw(
            "points",
            &arr(curve.points.iter().map(|p| {
                ObjectBuilder::new()
                    .num("jitter_ratio", p.jitter_ratio)
                    .num("expected_missed", p.expected_missed)
                    .uint("certain_missed", p.certain_missed as u64)
                    .uint("possible_missed", p.possible_missed as u64)
                    .uint("total", p.total as u64)
                    .bool("failed", p.failed)
                    .build()
            })),
        )
        .build()
}

fn cache_stats_json(cache: &CacheStats) -> String {
    ObjectBuilder::new()
        .uint("hits", cache.hits)
        .uint("misses", cache.misses)
        .uint("messages_reused", cache.messages_reused)
        .uint("messages_recomputed", cache.messages_recomputed)
        .uint("compiles", cache.compiles)
        .uint("warm_starts", cache.warm_starts)
        .uint("cold_starts", cache.cold_starts)
        .build()
}

fn result_json(resp: &Response) -> String {
    match resp {
        Response::Matrix { csv } => ObjectBuilder::new().string("csv", csv).build(),
        Response::Load(l) => ObjectBuilder::new()
            .uint("messages", l.messages as u64)
            .uint("bit_rate", l.bit_rate)
            .string("backend", &l.backend)
            .num("worst_util_percent", l.worst_util_percent)
            .num("best_util_percent", l.best_util_percent)
            .build(),
        Response::Analyze(a) => analyze_json(a),
        Response::Loss(curve) => loss_curve_json(curve),
        Response::ProbAnalyze(a) => prob_analyze_json(a),
        Response::ProbLoss(curve) => prob_loss_curve_json(curve),
        Response::Sensitivity(series) => ObjectBuilder::new()
            .raw(
                "series",
                &arr(series.iter().map(|s| {
                    ObjectBuilder::new()
                        .string("message", &s.message)
                        .string("class", &s.classify().to_string())
                        .raw(
                            "points",
                            &arr(s.points.iter().map(|(ratio, wcrt)| {
                                ObjectBuilder::new()
                                    .num("jitter_ratio", *ratio)
                                    .raw("wcrt_ns", &opt_uint(wcrt.map(Time::as_ns)))
                                    .build()
                            })),
                        )
                        .build()
                })),
            )
            .build(),
        Response::Audsley(order) => match order {
            None => ObjectBuilder::new().bool("feasible", false).build(),
            Some(rows) => ObjectBuilder::new()
                .bool("feasible", true)
                .raw(
                    "rows",
                    &arr(rows.iter().map(|r| {
                        ObjectBuilder::new()
                            .string("message", &r.message)
                            .string("new_id", &r.new_id)
                            .build()
                    })),
                )
                .build(),
        },
        Response::Optimize(o) => ObjectBuilder::new()
            .uint("evaluations", o.evaluations as u64)
            .raw(
                "objectives",
                &arr(o.objectives.iter().map(|v| json::number(*v))),
            )
            .raw("cache", &cache_stats_json(&o.cache))
            .raw("loss_before", &loss_curve_json(&o.loss_before))
            .raw("loss_after", &loss_curve_json(&o.loss_after))
            .build(),
        Response::Simulate(s) => {
            let b = ObjectBuilder::new()
                .uint("millis", s.millis)
                .num("observed_utilization", s.observed_utilization)
                .uint("error_hits", s.error_hits as u64)
                .raw(
                    "stats",
                    &arr(s.stats.iter().map(|m| {
                        ObjectBuilder::new()
                            .string("message", &m.name)
                            .uint("queued", m.queued)
                            .uint("completed", m.completed)
                            .uint("overwritten", m.overwritten)
                            .uint("deadline_misses", m.deadline_misses)
                            .raw(
                                "max_response_ns",
                                &opt_uint(m.max_response.map(Time::as_ns)),
                            )
                            .build()
                    })),
                );
            match &s.gantt {
                Some(g) => b.string("gantt", g),
                None => b.raw("gantt", "null"),
            }
            .build()
        }
        Response::Dimension(options) => ObjectBuilder::new()
            .raw(
                "options",
                &arr(options.iter().map(|o| {
                    ObjectBuilder::new()
                        .uint("bit_rate", o.bit_rate)
                        .num("load", o.load)
                        .bool("schedulable", o.schedulable)
                        .raw("jitter_slack", &opt_num(o.jitter_slack))
                        .uint("ecu_headroom", o.ecu_headroom as u64)
                        .build()
                })),
            )
            .build(),
        Response::Lint(findings) => ObjectBuilder::new()
            .raw(
                "findings",
                &arr(findings.iter().map(|f| {
                    ObjectBuilder::new()
                        .string(
                            "severity",
                            match f.severity {
                                carta_kmatrix::lint::Severity::Info => "info",
                                carta_kmatrix::lint::Severity::Warning => "warning",
                            },
                        )
                        .string("rule", f.rule)
                        .string("message", &f.message)
                        .build()
                })),
            )
            .build(),
        Response::Diff(diff) => ObjectBuilder::new()
            .raw(
                "rows",
                &arr(diff.rows.iter().map(|r| {
                    ObjectBuilder::new()
                        .string("message", &r.message)
                        .raw("before_ns", &opt_uint(r.before.map(Time::as_ns)))
                        .raw("after_ns", &opt_uint(r.after.map(Time::as_ns)))
                        .string("change", &r.change.to_string())
                        .build()
                })),
            )
            .raw("added", &str_arr(diff.added.iter().map(String::as_str)))
            .raw("removed", &str_arr(diff.removed.iter().map(String::as_str)))
            .uint("regressions", diff.regressions().len() as u64)
            .uint("fixes", diff.fixes().len() as u64)
            .bool("safe", diff.is_safe())
            .build(),
        Response::Fuzz(f) => ObjectBuilder::new()
            .uint("seed", f.report.seed)
            .uint("cases", f.cases)
            .bool("passed", f.report.passed())
            .raw(
                "outcomes",
                &arr(f.report.outcomes.iter().map(|o| {
                    let b = ObjectBuilder::new()
                        .string("law", &o.law)
                        .uint("cases_run", o.cases_run)
                        .bool("violated", o.repro.is_some());
                    match &o.repro {
                        Some(r) => b.string("violation", &r.violation),
                        None => b.raw("violation", "null"),
                    }
                    .build()
                })),
            )
            .build(),
        Response::FuzzReplay(r) => ObjectBuilder::new()
            .string("law", &r.law)
            .uint("seed", r.seed)
            .bool("passes", true)
            .build(),
    }
}

/// Encodes a successful response envelope.
pub fn encode_response(resp: &Response) -> String {
    ObjectBuilder::new()
        .string("schema", SCHEMA)
        .bool("ok", true)
        .string("kind", resp.kind())
        .raw("result", &result_json(resp))
        .build()
}

/// Encodes an error envelope.
pub fn encode_error(err: &ApiError) -> String {
    ObjectBuilder::new()
        .string("schema", SCHEMA)
        .bool("ok", false)
        .raw(
            "error",
            &ObjectBuilder::new()
                .string("code", err.code.as_str())
                .string("message", &err.message)
                .build(),
        )
        .build()
}

// ---------------------------------------------------------------- decode

fn malformed(what: &str) -> ApiError {
    ApiError::request(format!("malformed {SCHEMA} document: {what}"))
}

fn get<'a>(obj: &'a Value, key: &str) -> Result<&'a Value, ApiError> {
    obj.get(key)
        .ok_or_else(|| malformed(&format!("missing `{key}`")))
}

fn get_str<'a>(obj: &'a Value, key: &str) -> Result<&'a str, ApiError> {
    get(obj, key)?
        .as_str()
        .ok_or_else(|| malformed(&format!("`{key}` must be a string")))
}

fn get_u64(obj: &Value, key: &str) -> Result<u64, ApiError> {
    get(obj, key)?
        .as_u64()
        .ok_or_else(|| malformed(&format!("`{key}` must be an unsigned integer")))
}

fn get_bool(obj: &Value, key: &str) -> Result<bool, ApiError> {
    get(obj, key)?
        .as_bool()
        .ok_or_else(|| malformed(&format!("`{key}` must be a boolean")))
}

fn opt_u64(obj: &Value, key: &str, default: u64) -> Result<u64, ApiError> {
    match obj.get(key) {
        None | Some(Value::Null) => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| malformed(&format!("`{key}` must be an unsigned integer"))),
    }
}

fn decode_backend(value: &Value) -> Result<BackendConfig, ApiError> {
    // Accept both the object form and a bare "can"/"can-fd" string.
    if let Some(name) = value.as_str() {
        return parse_backend(name);
    }
    let kind = get_str(value, "kind")?;
    let mut backend = parse_backend(kind)?;
    if let BackendConfig::CanFd(_) = backend {
        let ratio = opt_u64(value, "data_ratio", u64::from(CanFd::DEFAULT_DATA_RATIO))?;
        if ratio == 0 || ratio > u64::from(u32::MAX) {
            return Err(malformed("`data_ratio` out of range"));
        }
        backend = BackendConfig::CanFd(CanFd::new(ratio as u32));
    }
    Ok(backend)
}

fn decode_model(
    value: &Value,
    resolve_session: &dyn Fn(&str) -> Option<String>,
) -> Result<Model, ApiError> {
    let source = get(value, "source")?;
    let source = match get_str(source, "kind")? {
        "case-study" => ModelSource::CaseStudy {
            seed: opt_u64(source, "seed", 42)?,
        },
        "csv" => ModelSource::Csv(get_str(source, "csv")?.to_string()),
        "session" => {
            let id = get_str(source, "id")?;
            let csv = resolve_session(id).ok_or_else(|| {
                ApiError::new(
                    ErrorCode::SessionNotFound,
                    format!("unknown session `{id}`"),
                )
            })?;
            ModelSource::Csv(csv)
        }
        other => return Err(malformed(&format!("unknown model source `{other}`"))),
    };
    let backend = match value.get("backend") {
        None | Some(Value::Null) => BackendConfig::Can,
        Some(b) => decode_backend(b)?,
    };
    let num_opt = |key: &str| -> Result<Option<f64>, ApiError> {
        match value.get(key) {
            None | Some(Value::Null) => Ok(None),
            Some(v) => v
                .as_f64()
                .map(Some)
                .ok_or_else(|| malformed(&format!("`{key}` must be a number"))),
        }
    };
    Ok(Model {
        source,
        options: ModelOptions {
            backend,
            jitter_pct: num_opt("jitter_pct")?,
            assume_unknown_pct: num_opt("assume_unknown_pct")?,
        },
    })
}

fn decode_scenario(params: &Value) -> Result<ScenarioSpec, ApiError> {
    match params.get("scenario") {
        None | Some(Value::Null) => Ok(ScenarioSpec::Worst),
        Some(v) => ScenarioSpec::parse(
            v.as_str()
                .ok_or_else(|| malformed("`scenario` must be a string"))?,
        ),
    }
}

/// Decodes a request document. `resolve_session` maps a session id to
/// its uploaded CSV (servers pass their session store; transports
/// without sessions can pass `|_| None`).
///
/// # Errors
///
/// Returns [`ErrorCode::RequestInvalid`] for malformed documents and
/// [`ErrorCode::SessionNotFound`] for unknown session references.
pub fn decode_request(
    text: &str,
    resolve_session: &dyn Fn(&str) -> Option<String>,
) -> Result<Request, ApiError> {
    decode_envelope(text, resolve_session).map(|(req, _)| req)
}

/// [`decode_request`] plus the envelope's optional top-level
/// `deadline_ms` budget (see [`encode_request_with_deadline`]).
///
/// # Errors
///
/// As [`decode_request`]; additionally rejects a non-integer
/// `deadline_ms` as [`ErrorCode::RequestInvalid`].
pub fn decode_envelope(
    text: &str,
    resolve_session: &dyn Fn(&str) -> Option<String>,
) -> Result<(Request, Option<u64>), ApiError> {
    let doc = json::parse(text).map_err(|e| malformed(&e.to_string()))?;
    let schema = get_str(&doc, "schema")?;
    if schema != SCHEMA {
        return Err(ApiError::request(format!(
            "unsupported schema `{schema}` (expected `{SCHEMA}`)"
        )));
    }
    let deadline_ms = match doc.get("deadline_ms") {
        None | Some(Value::Null) => None,
        Some(v) => Some(
            v.as_u64()
                .ok_or_else(|| malformed("`deadline_ms` must be an unsigned integer"))?,
        ),
    };
    let kind = get_str(&doc, "request")?;
    let empty = Value::Obj(Default::default());
    let params = doc.get("params").unwrap_or(&empty);
    let model = |key: &str| -> Result<Model, ApiError> {
        match params.get(key) {
            None | Some(Value::Null) => Ok(Model::case_study()),
            Some(m) => decode_model(m, resolve_session),
        }
    };
    let request = match kind {
        "generate" => Ok(Request::Generate {
            seed: opt_u64(params, "seed", 42)?,
        }),
        "load" => Ok(Request::Load {
            model: model("model")?,
        }),
        "lint" => Ok(Request::Lint {
            model: model("model")?,
        }),
        "analyze" => Ok(Request::Analyze {
            model: model("model")?,
            scenario: decode_scenario(params)?,
        }),
        "loss" => Ok(Request::Loss {
            model: model("model")?,
            scenario: decode_scenario(params)?,
        }),
        "prob-analyze" => Ok(Request::ProbAnalyze {
            model: model("model")?,
            scenario: decode_scenario(params)?,
        }),
        "prob-loss" => Ok(Request::ProbLoss {
            model: model("model")?,
            scenario: decode_scenario(params)?,
        }),
        "audsley" => Ok(Request::Audsley {
            model: model("model")?,
            scenario: decode_scenario(params)?,
        }),
        "sensitivity" => Ok(Request::Sensitivity {
            model: model("model")?,
            scenario: decode_scenario(params)?,
            message: match params.get("message") {
                None | Some(Value::Null) => None,
                Some(v) => Some(
                    v.as_str()
                        .ok_or_else(|| malformed("`message` must be a string"))?
                        .to_string(),
                ),
            },
        }),
        "optimize" => Ok(Request::Optimize {
            model: model("model")?,
            population: opt_u64(params, "population", 60)? as usize,
            generations: opt_u64(params, "generations", 40)? as usize,
            emit_csv: match params.get("emit_csv") {
                None | Some(Value::Null) => false,
                Some(v) => v
                    .as_bool()
                    .ok_or_else(|| malformed("`emit_csv` must be a boolean"))?,
            },
        }),
        "simulate" => Ok(Request::Simulate {
            model: model("model")?,
            millis: opt_u64(params, "millis", 2_000)?,
            seed: opt_u64(params, "seed", 42)?,
            errors_ms: match params.get("errors_ms") {
                None | Some(Value::Null) => None,
                Some(v) => Some(
                    v.as_u64()
                        .ok_or_else(|| malformed("`errors_ms` must be an unsigned integer"))?,
                ),
            },
            gantt: match params.get("gantt") {
                None | Some(Value::Null) => false,
                Some(v) => v
                    .as_bool()
                    .ok_or_else(|| malformed("`gantt` must be a boolean"))?,
            },
        }),
        "dimension" => Ok(Request::Dimension {
            model: model("model")?,
            scenario: decode_scenario(params)?,
            rates: match params.get("rates") {
                None | Some(Value::Null) => vec![125_000, 250_000, 500_000, 1_000_000],
                Some(v) => v
                    .as_arr()
                    .ok_or_else(|| malformed("`rates` must be an array"))?
                    .iter()
                    .map(|r| {
                        r.as_u64()
                            .ok_or_else(|| malformed("`rates` entries must be unsigned integers"))
                    })
                    .collect::<Result<_, _>>()?,
            },
        }),
        "diff" => Ok(Request::Diff {
            before: match params.get("before") {
                None => return Err(malformed("missing `before`")),
                Some(m) => decode_model(m, resolve_session)?,
            },
            after: match params.get("after") {
                None => return Err(malformed("missing `after`")),
                Some(m) => decode_model(m, resolve_session)?,
            },
            scenario: decode_scenario(params)?,
        }),
        "fuzz" => Ok(Request::Fuzz {
            cases: opt_u64(params, "cases", 64)?,
            seed: opt_u64(params, "seed", 2006)?,
            laws: match params.get("laws") {
                None | Some(Value::Null) => None,
                Some(v) => Some(
                    v.as_arr()
                        .ok_or_else(|| malformed("`laws` must be an array"))?
                        .iter()
                        .map(|l| {
                            l.as_str()
                                .map(str::to_string)
                                .ok_or_else(|| malformed("`laws` entries must be strings"))
                        })
                        .collect::<Result<_, _>>()?,
                ),
            },
            backend: match params.get("backend") {
                None | Some(Value::Null) => BackendConfig::Can,
                Some(b) => decode_backend(b)?,
            },
        }),
        "fuzz-replay" => Ok(Request::FuzzReplay {
            repro_json: get_str(params, "repro")?.to_string(),
        }),
        other => Err(ApiError::request(format!("unknown request `{other}`"))),
    }?;
    Ok((request, deadline_ms))
}

fn decode_stuffing(s: &str) -> Result<StuffingMode, ApiError> {
    match s {
        "worst-case" => Ok(StuffingMode::WorstCase),
        "none" => Ok(StuffingMode::None),
        other => Err(malformed(&format!("unknown stuffing mode `{other}`"))),
    }
}

fn decode_time(obj: &Value, key: &str) -> Result<Time, ApiError> {
    Ok(Time::from_ns(get_u64(obj, key)?))
}

fn decode_cause(value: &Value) -> Result<DivergenceCause, ApiError> {
    match get_str(value, "code")? {
        "diverged.horizon" => Ok(DivergenceCause::HorizonExceeded {
            horizon: decode_time(value, "horizon_ns")?,
        }),
        "diverged.instance_limit" => Ok(DivergenceCause::InstanceLimit {
            limit: get_u64(value, "limit")?,
        }),
        "diverged.iteration_budget" => Ok(DivergenceCause::IterationBudget {
            budget: get_u64(value, "budget")?,
        }),
        other => Err(malformed(&format!("unknown divergence code `{other}`"))),
    }
}

fn decode_message_report(value: &Value) -> Result<MessageReport, ApiError> {
    let raw = get_u64(value, "id")?;
    let raw = u32::try_from(raw).map_err(|_| malformed("`id` out of range"))?;
    let id = if get_bool(value, "extended")? {
        CanId::extended(raw)
    } else {
        CanId::standard(raw)
    }
    .map_err(|e| malformed(&e.to_string()))?;
    let outcome = if get_bool(value, "bounded")? {
        ResponseOutcome::Bounded(ResponseBounds::new(
            decode_time(value, "bcrt_ns")?,
            decode_time(value, "wcrt_ns")?,
        ))
    } else {
        let d = get(value, "diagnostic")?;
        ResponseOutcome::Overload(MessageDiagnostic {
            entity: Arc::from(get_str(d, "entity")?),
            priority_level: get_u64(d, "priority_level")? as usize,
            busy_window: decode_time(d, "busy_window_ns")?,
            instances: get_u64(d, "instances")?,
            interference: get(d, "interference")?
                .as_arr()
                .ok_or_else(|| malformed("`interference` must be an array"))?
                .iter()
                .map(|n| {
                    n.as_str()
                        .map(Arc::from)
                        .ok_or_else(|| malformed("`interference` entries must be strings"))
                })
                .collect::<Result<_, _>>()?,
            cause: decode_cause(get(d, "cause")?)?,
        })
    };
    Ok(MessageReport {
        index: get_u64(value, "index")? as usize,
        name: Arc::from(get_str(value, "name")?),
        id,
        c_max: decode_time(value, "c_max_ns")?,
        c_min: decode_time(value, "c_min_ns")?,
        blocking: decode_time(value, "blocking_ns")?,
        deadline: decode_time(value, "deadline_ns")?,
        outcome,
        instances: get_u64(value, "instances")?,
    })
}

/// Decodes a response envelope into an [`AnalyzeReport`],
/// reconstructing the [`BusReport`] bit for bit (so `PartialEq`
/// against a direct evaluator run is meaningful).
///
/// # Errors
///
/// Returns the envelope's own error for `ok:false` documents and
/// [`ErrorCode::RequestInvalid`] for malformed or non-analyze
/// envelopes.
pub fn decode_analyze(text: &str) -> Result<AnalyzeReport, ApiError> {
    let doc = json::parse(text).map_err(|e| malformed(&e.to_string()))?;
    if let Some(err) = decode_error_value(&doc) {
        return Err(err);
    }
    let kind = get_str(&doc, "kind")?;
    if kind != "analyze" {
        return Err(malformed(&format!(
            "expected an analyze envelope, got `{kind}`"
        )));
    }
    let result = get(&doc, "result")?;
    let report = BusReport {
        messages: get(result, "messages")?
            .as_arr()
            .ok_or_else(|| malformed("`messages` must be an array"))?
            .iter()
            .map(decode_message_report)
            .collect::<Result<_, _>>()?,
        error_model: get_str(result, "error_model")?.to_string(),
        stuffing: decode_stuffing(get_str(result, "stuffing")?)?,
        backend: decode_backend(get(result, "backend")?)?,
    };
    Ok(AnalyzeReport {
        scenario: get_str(result, "scenario")?.to_string(),
        report: Arc::new(report),
    })
}

fn decode_error_value(doc: &Value) -> Option<ApiError> {
    if doc.get("ok")?.as_bool()? {
        return None;
    }
    let err = doc.get("error")?;
    let code = ErrorCode::parse(err.get("code")?.as_str()?)?;
    Some(ApiError::new(code, err.get("message")?.as_str()?))
}

/// Decodes an error envelope, if `text` is one.
pub fn decode_error(text: &str) -> Option<ApiError> {
    decode_error_value(&json::parse(text).ok()?)
}

/// Decodes an Audsley response's rows (`None` when infeasible).
///
/// # Errors
///
/// Returns the envelope's own error for `ok:false` documents.
#[allow(clippy::type_complexity)]
pub fn decode_audsley(text: &str) -> Result<Option<Vec<AudsleyRow>>, ApiError> {
    let doc = json::parse(text).map_err(|e| malformed(&e.to_string()))?;
    if let Some(err) = decode_error_value(&doc) {
        return Err(err);
    }
    let result = get(&doc, "result")?;
    if !get_bool(result, "feasible")? {
        return Ok(None);
    }
    Ok(Some(
        get(result, "rows")?
            .as_arr()
            .ok_or_else(|| malformed("`rows` must be an array"))?
            .iter()
            .map(|r| {
                Ok(AudsleyRow {
                    message: get_str(r, "message")?.to_string(),
                    new_id: get_str(r, "new_id")?.to_string(),
                })
            })
            .collect::<Result<_, ApiError>>()?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handler::Handler;
    use carta_engine::prelude::Parallelism;

    fn no_sessions(_: &str) -> Option<String> {
        None
    }

    #[test]
    fn analyze_roundtrips_bit_identically() {
        let h = Handler::new(Parallelism::sequential());
        let req = Request::Analyze {
            model: Model::case_study(),
            scenario: ScenarioSpec::Worst,
        };
        let resp = h.handle(&req).expect("analyzes");
        let encoded = encode_response(&resp);
        let decoded = decode_analyze(&encoded).expect("decodes");
        match resp {
            Response::Analyze(a) => {
                assert_eq!(decoded.scenario, a.scenario);
                assert_eq!(*decoded.report, *a.report);
            }
            other => panic!("wrong response kind {}", other.kind()),
        }
    }

    #[test]
    fn degraded_analyze_roundtrips_with_diagnostics() {
        let h = Handler::new(Parallelism::sequential());
        let mut csv = match h.handle(&Request::Generate { seed: 7 }).expect("generates") {
            Response::Matrix { csv } => csv,
            other => panic!("wrong response kind {}", other.kind()),
        };
        csv.push_str("flood,0x7fa,0,8,50,,,EMS,TCU\n");
        let resp = h
            .handle(&Request::Analyze {
                model: Model::from_csv(csv),
                scenario: ScenarioSpec::Worst,
            })
            .expect("analyzes");
        let decoded = decode_analyze(&encode_response(&resp)).expect("decodes");
        match resp {
            Response::Analyze(a) => {
                assert!(decoded.report.is_degraded());
                assert_eq!(*decoded.report, *a.report);
            }
            other => panic!("wrong response kind {}", other.kind()),
        }
    }

    #[test]
    fn request_roundtrips_through_the_wire() {
        let requests = [
            Request::Generate { seed: 7 },
            Request::Load {
                model: Model::case_study(),
            },
            Request::Analyze {
                model: Model {
                    source: ModelSource::Csv("#kmatrix,x,500000\n".into()),
                    options: ModelOptions {
                        backend: BackendConfig::can_fd(),
                        jitter_pct: Some(25.0),
                        assume_unknown_pct: None,
                    },
                },
                scenario: ScenarioSpec::SporadicMs(10),
            },
            Request::Sensitivity {
                model: Model::case_study(),
                scenario: ScenarioSpec::Best,
                message: Some("clutch_torque_1".into()),
            },
            Request::Optimize {
                model: Model::case_study(),
                population: 8,
                generations: 2,
                emit_csv: true,
            },
            Request::Simulate {
                model: Model::case_study(),
                millis: 100,
                seed: 42,
                errors_ms: Some(7),
                gantt: true,
            },
            Request::Dimension {
                model: Model::case_study(),
                scenario: ScenarioSpec::Worst,
                rates: vec![250_000, 500_000],
            },
            Request::Diff {
                before: Model::case_study(),
                after: Model::case_study(),
                scenario: ScenarioSpec::Worst,
            },
            Request::ProbAnalyze {
                model: Model::case_study(),
                scenario: ScenarioSpec::SporadicMs(5),
            },
            Request::ProbLoss {
                model: Model {
                    source: ModelSource::CaseStudy { seed: 9 },
                    options: ModelOptions {
                        backend: BackendConfig::can_fd(),
                        jitter_pct: None,
                        assume_unknown_pct: Some(10.0),
                    },
                },
                scenario: ScenarioSpec::Worst,
            },
            Request::Fuzz {
                cases: 2,
                seed: 2006,
                laws: Some(vec!["load-schedulability".into()]),
                backend: BackendConfig::Can,
            },
            Request::FuzzReplay {
                repro_json: "{}".into(),
            },
        ];
        for req in requests {
            let decoded = decode_request(&encode_request(&req), &no_sessions).expect("roundtrips");
            assert_eq!(decoded, req, "wire roundtrip changed the request");
        }
    }

    #[test]
    fn session_sources_resolve_through_the_callback() {
        let text = r#"{"schema":"carta.api.v1","request":"analyze",
            "params":{"model":{"source":{"kind":"session","id":"s1"}}}}"#;
        let resolved = decode_request(&text.replace('\n', ""), &|id: &str| {
            (id == "s1").then(|| "#kmatrix,up,500000\n".to_string())
        })
        .expect("resolves");
        match resolved {
            Request::Analyze { model, scenario } => {
                assert_eq!(scenario, ScenarioSpec::Worst);
                assert_eq!(
                    model.source,
                    ModelSource::Csv("#kmatrix,up,500000\n".into())
                );
            }
            other => panic!("wrong request kind {}", other.kind()),
        }
        let err = decode_request(&text.replace('\n', ""), &no_sessions).expect_err("unknown");
        assert_eq!(err.code, ErrorCode::SessionNotFound);
        assert_eq!(err.to_string(), "unknown session `s1`");
    }

    #[test]
    fn error_envelopes_roundtrip() {
        let err = ApiError::new(ErrorCode::AdmissionShed, "tenant over budget");
        let encoded = encode_error(&err);
        let decoded = decode_error(&encoded).expect("decodes");
        assert_eq!(decoded, err);
        assert!(decode_error(&encode_response(&Response::Matrix { csv: String::new() })).is_none());
    }

    #[test]
    fn malformed_documents_are_request_invalid() {
        let err = decode_request("{", &no_sessions).expect_err("parse error");
        assert_eq!(err.code, ErrorCode::RequestInvalid);
        let err = decode_request(
            r#"{"schema":"carta.api.v2","request":"load"}"#,
            &no_sessions,
        )
        .expect_err("wrong schema");
        assert!(err.to_string().contains("unsupported schema"));
        let err = decode_request(
            r#"{"schema":"carta.api.v1","request":"frobnicate"}"#,
            &no_sessions,
        )
        .expect_err("unknown kind");
        assert!(err.to_string().contains("unknown request `frobnicate`"));
    }
}
