//! The response side of `carta.api.v1`.
//!
//! Responses carry the engine's own rich result types (reports,
//! curves, diffs) rather than pre-rendered text, so every frontend —
//! the CLI's table renderer, the server's JSON encoder — is a pure
//! function of the same value.

use carta_can::prob::ProbBusReport;
use carta_can::rta::BusReport;
use carta_engine::prelude::CacheStats;
use carta_explore::prelude::{
    AnalysisDiff, BitRateOption, LossCurve, ProbLossCurve, SensitivitySeries,
};
use carta_kmatrix::lint::Finding;
use carta_sim::engine::MessageStats;
use carta_testkit::prelude::FuzzReport;
use std::sync::Arc;

/// Bus-load (utilization) summary.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadSummary {
    /// Message count.
    pub messages: usize,
    /// Nominal bit rate in bit/s.
    pub bit_rate: u64,
    /// Backend, rendered (`can`, `can-fd(x4)`).
    pub backend: String,
    /// Utilization percentage under worst-case stuffing.
    pub worst_util_percent: f64,
    /// Utilization percentage with no stuff bits.
    pub best_util_percent: f64,
}

/// An analysis report plus the scenario it ran under.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzeReport {
    /// Scenario display name (e.g. `worst case`).
    pub scenario: String,
    /// The full per-message report, shared with the engine's cache.
    pub report: Arc<BusReport>,
}

/// A probabilistic analysis report plus the scenario it ran under.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbAnalyzeReport {
    /// Scenario display name (e.g. `worst case`).
    pub scenario: String,
    /// Per-message distributions, shared with the engine's cache.
    pub report: Arc<ProbBusReport>,
}

/// One row of a feasible Audsley assignment, strongest first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AudsleyRow {
    /// Message name.
    pub message: String,
    /// The newly assigned identifier, rendered (`0x101`).
    pub new_id: String,
}

/// SPEA2 optimization summary (the non-`--emit-csv` shape).
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeSummary {
    /// Total genome evaluations performed.
    pub evaluations: usize,
    /// Winner objective vector.
    pub objectives: Vec<f64>,
    /// Engine cache statistics of the optimization run.
    pub cache: CacheStats,
    /// Loss curve of the original identifier assignment.
    pub loss_before: LossCurve,
    /// Loss curve of the optimized assignment.
    pub loss_after: LossCurve,
}

/// Discrete-event simulation summary.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulateSummary {
    /// Per-message statistics.
    pub stats: Vec<MessageStats>,
    /// Simulated horizon in milliseconds.
    pub millis: u64,
    /// Observed bus utilization (0..1).
    pub observed_utilization: f64,
    /// Error hits injected over the horizon.
    pub error_hits: usize,
    /// Rendered ASCII Gantt chart, when requested.
    pub gantt: Option<String>,
}

/// Fuzz run summary.
#[derive(Debug, Clone)]
pub struct FuzzSummary {
    /// Per-law outcomes (violations carry shrunk repros).
    pub report: FuzzReport,
    /// Cases requested per law.
    pub cases: u64,
}

/// Result of replaying a stored counterexample that no longer fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzReplay {
    /// The law the repro exercises.
    pub law: String,
    /// The seed it was found under.
    pub seed: u64,
}

/// One API response; the payload mirror of [`crate::request::Request`].
#[derive(Debug, Clone)]
pub enum Response {
    /// A K-Matrix CSV document (`generate`, `optimize --emit-csv`).
    Matrix {
        /// The CSV text.
        csv: String,
    },
    /// Bus-load summary.
    Load(LoadSummary),
    /// Response-time analysis report.
    Analyze(AnalyzeReport),
    /// Message-loss curve.
    Loss(LossCurve),
    /// Probabilistic response-time analysis report.
    ProbAnalyze(ProbAnalyzeReport),
    /// Probabilistic message-loss curve.
    ProbLoss(ProbLossCurve),
    /// Sensitivity series per message.
    Sensitivity(Vec<SensitivitySeries>),
    /// Audsley assignment (`None` = infeasible).
    Audsley(Option<Vec<AudsleyRow>>),
    /// Optimization summary.
    Optimize(OptimizeSummary),
    /// Simulation summary.
    Simulate(SimulateSummary),
    /// Bit-rate candidates.
    Dimension(Vec<BitRateOption>),
    /// Lint findings.
    Lint(Vec<Finding>),
    /// Analysis diff between two models.
    Diff(AnalysisDiff),
    /// Fuzz outcomes.
    Fuzz(FuzzSummary),
    /// Repro replay that passed.
    FuzzReplay(FuzzReplay),
}

impl Response {
    /// The stable wire name of this response kind (matches the
    /// request kind that produced it).
    pub fn kind(&self) -> &'static str {
        match self {
            Response::Matrix { .. } => "matrix",
            Response::Load(_) => "load",
            Response::Analyze(_) => "analyze",
            Response::Loss(_) => "loss",
            Response::ProbAnalyze(_) => "prob-analyze",
            Response::ProbLoss(_) => "prob-loss",
            Response::Sensitivity(_) => "sensitivity",
            Response::Audsley(_) => "audsley",
            Response::Optimize(_) => "optimize",
            Response::Simulate(_) => "simulate",
            Response::Dimension(_) => "dimension",
            Response::Lint(_) => "lint",
            Response::Diff(_) => "diff",
            Response::Fuzz(_) => "fuzz",
            Response::FuzzReplay(_) => "fuzz-replay",
        }
    }
}
