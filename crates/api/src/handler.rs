//! The single interpreter of [`Request`]s over the analysis engine.
//!
//! Both frontends — the `carta` CLI and `carta-server` — construct a
//! [`Handler`] and call [`Handler::handle`]; neither contains any
//! analysis logic of its own. The handler owns (or borrows, in the
//! server's per-tenant pools) one [`Evaluator`] whose memo cache is
//! shared across requests.

use crate::error::ApiError;
use crate::request::{Model, ModelSource, Request};
use crate::response::{
    AnalyzeReport, AudsleyRow, FuzzReplay, FuzzSummary, LoadSummary, OptimizeSummary,
    ProbAnalyzeReport, Response, SimulateSummary,
};
use carta_can::frame::StuffingMode;
use carta_can::network::CanNetwork;
use carta_can::opa::audsley_assignment;
use carta_core::time::Time;
use carta_engine::prelude::{BaseSystem, CancelToken, Evaluator, Parallelism, SystemVariant};
use carta_explore::extensibility::EcuTemplate;
use carta_explore::jitter::{with_assumed_unknown_jitter, with_jitter_ratio};
use carta_explore::loss::paper_jitter_grid;
use carta_explore::sweeps::Sweeps;
use carta_kmatrix::csv::{from_csv, to_csv};
use carta_kmatrix::generator::{powertrain_kmatrix, CaseStudyConfig};
use carta_kmatrix::model::KMatrix;
use carta_obs::metrics::PhaseGuard;
use std::sync::Arc;

/// Materializes a model's K-Matrix (without network conversion).
///
/// # Errors
///
/// Returns [`crate::error::ErrorCode::ModelInvalid`] when the CSV does
/// not parse.
pub fn load_matrix(source: &ModelSource) -> Result<KMatrix, ApiError> {
    match source {
        ModelSource::CaseStudy { seed } => Ok(powertrain_kmatrix(&CaseStudyConfig {
            seed: *seed,
            ..CaseStudyConfig::default()
        })),
        ModelSource::Csv(text) => from_csv(text).map_err(|e| ApiError::model(e.to_string())),
    }
}

/// Materializes a model's network: matrix → network, then backend,
/// then the jitter overrides, in the order the CLI has always applied
/// them.
///
/// # Errors
///
/// Returns [`crate::error::ErrorCode::ModelInvalid`] for unparsable or
/// structurally invalid models.
pub fn load_network(model: &Model) -> Result<CanNetwork, ApiError> {
    let matrix = load_matrix(&model.source)?;
    let mut net = matrix
        .to_network()
        .map_err(|e| ApiError::model(e.to_string()))?;
    net.set_backend(model.options.backend);
    if let Some(pct) = model.options.jitter_pct {
        net = with_jitter_ratio(&net, pct / 100.0);
    }
    if let Some(pct) = model.options.assume_unknown_pct {
        net = with_assumed_unknown_jitter(&net, pct / 100.0);
    }
    Ok(net)
}

/// The shared request interpreter.
#[derive(Debug, Clone)]
pub struct Handler {
    evaluator: Arc<Evaluator>,
    parallelism: Parallelism,
}

impl Handler {
    /// A handler with a fresh evaluator at the given parallelism
    /// (the CLI shape: one evaluator per invocation).
    pub fn new(parallelism: Parallelism) -> Self {
        Handler {
            evaluator: Arc::new(Evaluator::builder().parallelism(parallelism).build()),
            parallelism,
        }
    }

    /// A handler borrowing an existing evaluator (the server shape:
    /// per-tenant pooled evaluators with cache quotas).
    pub fn with_evaluator(evaluator: Arc<Evaluator>, parallelism: Parallelism) -> Self {
        Handler {
            evaluator,
            parallelism,
        }
    }

    /// The evaluator answering this handler's requests.
    pub fn evaluator(&self) -> &Arc<Evaluator> {
        &self.evaluator
    }

    /// A cancel-scoped twin of this handler: it shares the same caches
    /// and counters (via [`Evaluator::scoped_cancel`]) but every
    /// evaluator-routed request polls `token` and surfaces a trip as
    /// `request.deadline_exceeded`. The server derives one per request
    /// from the drain token plus the request's `deadline_ms`.
    pub fn scoped_cancel(&self, token: CancelToken) -> Handler {
        Handler {
            evaluator: Arc::new(self.evaluator.scoped_cancel(token)),
            parallelism: self.parallelism,
        }
    }

    /// Interprets one request.
    ///
    /// # Errors
    ///
    /// Returns [`ApiError`] carrying the stable `carta.api.v1` error
    /// code for every failure class; per-message divergence is *not*
    /// an error (degraded reports are successful responses).
    pub fn handle(&self, req: &Request) -> Result<Response, ApiError> {
        match req {
            Request::Generate { seed } => {
                let matrix = powertrain_kmatrix(&CaseStudyConfig {
                    seed: *seed,
                    ..CaseStudyConfig::default()
                });
                Ok(Response::Matrix {
                    csv: to_csv(&matrix),
                })
            }
            Request::Load { model } => self.load(model),
            Request::Analyze { model, scenario } => self.analyze(model, *scenario),
            Request::Loss { model, scenario } => self.loss(model, *scenario),
            Request::ProbAnalyze { model, scenario } => self.prob_analyze(model, *scenario),
            Request::ProbLoss { model, scenario } => self.prob_loss(model, *scenario),
            Request::Sensitivity {
                model,
                scenario,
                message,
            } => self.sensitivity(model, *scenario, message.as_deref()),
            Request::Audsley { model, scenario } => self.audsley(model, *scenario),
            Request::Optimize {
                model,
                population,
                generations,
                emit_csv,
            } => self.optimize(model, *population, *generations, *emit_csv),
            Request::Simulate {
                model,
                millis,
                seed,
                errors_ms,
                gantt,
            } => self.simulate(model, *millis, *seed, *errors_ms, *gantt),
            Request::Dimension {
                model,
                scenario,
                rates,
            } => self.dimension(model, *scenario, rates),
            Request::Lint { model } => {
                let matrix = load_matrix(&model.source)?;
                Ok(Response::Lint(carta_kmatrix::lint::lint(&matrix)))
            }
            Request::Diff {
                before,
                after,
                scenario,
            } => self.diff(before, after, *scenario),
            Request::Fuzz {
                cases,
                seed,
                laws,
                backend,
            } => self.fuzz(*cases, *seed, laws.as_deref(), *backend),
            Request::FuzzReplay { repro_json } => Self::fuzz_replay(repro_json),
        }
    }

    fn load(&self, model: &Model) -> Result<Response, ApiError> {
        let net = {
            let _phase = PhaseGuard::new("load");
            load_network(model)?
        };
        let worst = net.load(StuffingMode::WorstCase);
        let best = net.load(StuffingMode::None);
        Ok(Response::Load(LoadSummary {
            messages: net.messages().len(),
            bit_rate: net.bit_rate(),
            backend: net.backend().to_string(),
            worst_util_percent: worst.utilization_percent(),
            best_util_percent: best.utilization_percent(),
        }))
    }

    fn analyze(
        &self,
        model: &Model,
        scenario: crate::request::ScenarioSpec,
    ) -> Result<Response, ApiError> {
        let net = {
            let _phase = PhaseGuard::new("load");
            load_network(model)?
        };
        let scenario = scenario.to_scenario();
        let report = {
            let _phase = PhaseGuard::new("analyze");
            self.evaluator
                .evaluate(&SystemVariant::new(BaseSystem::new(net), scenario.clone()))?
        };
        Ok(Response::Analyze(AnalyzeReport {
            scenario: scenario.name,
            report,
        }))
    }

    fn loss(
        &self,
        model: &Model,
        scenario: crate::request::ScenarioSpec,
    ) -> Result<Response, ApiError> {
        let net = {
            let _phase = PhaseGuard::new("load");
            load_network(model)?
        };
        let scenario = scenario.to_scenario();
        let grid = paper_jitter_grid();
        let curve = {
            let _phase = PhaseGuard::new("analyze");
            self.evaluator.loss_vs_jitter(&net, &scenario, &grid)?
        };
        Ok(Response::Loss(curve))
    }

    fn prob_analyze(
        &self,
        model: &Model,
        scenario: crate::request::ScenarioSpec,
    ) -> Result<Response, ApiError> {
        let net = {
            let _phase = PhaseGuard::new("load");
            load_network(model)?
        };
        let scenario = scenario.to_scenario();
        let report = {
            let _phase = PhaseGuard::new("analyze");
            self.evaluator
                .evaluate_prob(&SystemVariant::new(BaseSystem::new(net), scenario.clone()))?
        };
        Ok(Response::ProbAnalyze(ProbAnalyzeReport {
            scenario: scenario.name,
            report,
        }))
    }

    fn prob_loss(
        &self,
        model: &Model,
        scenario: crate::request::ScenarioSpec,
    ) -> Result<Response, ApiError> {
        let net = {
            let _phase = PhaseGuard::new("load");
            load_network(model)?
        };
        let scenario = scenario.to_scenario();
        let grid = paper_jitter_grid();
        let curve = {
            let _phase = PhaseGuard::new("analyze");
            self.evaluator.prob_loss_vs_jitter(&net, &scenario, &grid)?
        };
        Ok(Response::ProbLoss(curve))
    }

    fn sensitivity(
        &self,
        model: &Model,
        scenario: crate::request::ScenarioSpec,
        message: Option<&str>,
    ) -> Result<Response, ApiError> {
        let net = {
            let _phase = PhaseGuard::new("load");
            load_network(model)?
        };
        let scenario = scenario.to_scenario();
        let grid = paper_jitter_grid();
        let only = message.map(|m| vec![m]);
        let series = {
            let _phase = PhaseGuard::new("analyze");
            self.evaluator
                .response_vs_jitter(&net, &scenario, &grid, only.as_deref())?
        };
        Ok(Response::Sensitivity(series))
    }

    fn audsley(
        &self,
        model: &Model,
        scenario: crate::request::ScenarioSpec,
    ) -> Result<Response, ApiError> {
        let net = {
            let _phase = PhaseGuard::new("load");
            load_network(model)?
        };
        let scenario = scenario.to_scenario();
        let prepared = scenario.apply(&net);
        let order = audsley_assignment(
            &prepared,
            scenario.errors.model().as_ref(),
            &scenario.analysis_config(),
        )?;
        Ok(Response::Audsley(order.map(|order| {
            let fixed = order.apply(&net);
            order
                .strongest_first()
                .iter()
                .map(|&idx| AudsleyRow {
                    message: net.messages()[idx].name.clone(),
                    new_id: fixed.messages()[idx].id.to_string(),
                })
                .collect()
        })))
    }

    fn optimize(
        &self,
        model: &Model,
        population: usize,
        generations: usize,
        emit_csv: bool,
    ) -> Result<Response, ApiError> {
        use carta_optim::canid::{optimize_can_ids, OptimizeIdsConfig};
        use carta_optim::spea2::Spea2Config;
        // Jitter options are deliberately not applied here — the CLI's
        // `optimize` has always run on the as-modeled matrix.
        let (matrix, net) = {
            let _phase = PhaseGuard::new("load");
            let matrix = load_matrix(&model.source)?;
            let mut net = matrix
                .to_network()
                .map_err(|e| ApiError::model(e.to_string()))?;
            net.set_backend(model.options.backend);
            (matrix, net)
        };
        let config = OptimizeIdsConfig {
            spea2: Spea2Config {
                population,
                archive: (population / 2).max(1),
                generations,
                ..Spea2Config::default()
            },
            parallelism: self.parallelism,
            ..OptimizeIdsConfig::default()
        };
        let result = {
            let _phase = PhaseGuard::new("analyze");
            optimize_can_ids(&net, &config)
        };
        if emit_csv {
            // Re-emit the matrix with the optimized identifiers.
            let mut out_matrix = matrix.clone();
            for (row, msg) in out_matrix.rows.iter_mut().zip(result.optimized.messages()) {
                debug_assert_eq!(row.name, msg.name);
                row.id = msg.id.raw();
            }
            return Ok(Response::Matrix {
                csv: to_csv(&out_matrix),
            });
        }
        let grid = paper_jitter_grid();
        let scenario = carta_engine::prelude::Scenario::worst_case();
        let loss_before = self.evaluator.loss_vs_jitter(&net, &scenario, &grid)?;
        let loss_after = self
            .evaluator
            .loss_vs_jitter(&result.optimized, &scenario, &grid)?;
        Ok(Response::Optimize(OptimizeSummary {
            evaluations: result.archive.evaluations,
            objectives: result.objectives,
            cache: result.cache,
            loss_before,
            loss_after,
        }))
    }

    fn simulate(
        &self,
        model: &Model,
        millis: u64,
        seed: u64,
        errors_ms: Option<u64>,
        gantt: bool,
    ) -> Result<Response, ApiError> {
        use carta_sim::engine::{simulate, SimConfig, SimStuffing};
        use carta_sim::gantt::{render, GanttConfig};
        use carta_sim::inject::{NoInjection, PeriodicInjection};
        let net = {
            let _phase = PhaseGuard::new("load");
            load_network(model)?
        };
        let config = SimConfig {
            horizon: Time::from_ms(millis),
            seed,
            stuffing: SimStuffing::Random,
            record_trace: true,
        };
        let report = match errors_ms {
            Some(ms) => simulate(
                &net,
                &PeriodicInjection {
                    interval: Time::from_ms(ms),
                    phase: Time::from_us(137),
                },
                &config,
            ),
            None => simulate(&net, &NoInjection, &config),
        };
        let gantt = gantt.then(|| {
            let labels: Vec<String> = net.messages().iter().map(|m| m.name.clone()).collect();
            let window = Time::from_ms(millis.min(20));
            render(
                &report.trace,
                &labels,
                &GanttConfig {
                    from: Time::ZERO,
                    to: window,
                    columns: 100,
                },
            )
        });
        Ok(Response::Simulate(SimulateSummary {
            millis,
            observed_utilization: report.observed_utilization(),
            error_hits: report.trace.error_count(),
            stats: report.stats,
            gantt,
        }))
    }

    fn dimension(
        &self,
        model: &Model,
        scenario: crate::request::ScenarioSpec,
        rates: &[u64],
    ) -> Result<Response, ApiError> {
        let net = {
            let _phase = PhaseGuard::new("load");
            load_network(model)?
        };
        let scenario = scenario.to_scenario();
        let options = {
            let _phase = PhaseGuard::new("analyze");
            self.evaluator
                .compare_bit_rates(&net, &scenario, rates, &EcuTemplate::default())?
        };
        Ok(Response::Dimension(options))
    }

    fn diff(
        &self,
        before: &Model,
        after: &Model,
        scenario: crate::request::ScenarioSpec,
    ) -> Result<Response, ApiError> {
        use carta_explore::diff::diff_reports;
        let scenario = scenario.to_scenario();
        // Jitter options are not applied (parity with the CLI's
        // `diff`, which honors `--backend` only); the direct
        // `scenario.analyze` path keeps the diff independent of any
        // evaluator cache state.
        let net_before = load_matrix(&before.source)?
            .to_network()
            .map_err(|e| ApiError::model(e.to_string()))?
            .with_backend(before.options.backend);
        let net_after = load_matrix(&after.source)?
            .to_network()
            .map_err(|e| ApiError::model(e.to_string()))?
            .with_backend(after.options.backend);
        let report_before = scenario.analyze(&net_before)?;
        let report_after = scenario.analyze(&net_after)?;
        Ok(Response::Diff(diff_reports(&report_before, &report_after)))
    }

    fn fuzz(
        &self,
        cases: u64,
        seed: u64,
        laws: Option<&[String]>,
        backend: carta_can::backend::BackendConfig,
    ) -> Result<Response, ApiError> {
        use carta_testkit::prelude::{run_fuzz, FuzzConfig};
        let config = FuzzConfig {
            seed,
            cases,
            laws: laws.map(<[String]>::to_vec),
            parallelism: self.parallelism,
            backend,
        };
        let report = {
            let _phase = PhaseGuard::new("fuzz");
            run_fuzz(&config).map_err(|e| ApiError::request(e.to_string()))?
        };
        Ok(Response::Fuzz(FuzzSummary { report, cases }))
    }

    fn fuzz_replay(repro_json: &str) -> Result<Response, ApiError> {
        use carta_testkit::prelude::{ReplayError, Repro};
        let repro = Repro::from_json(repro_json).map_err(|e| ApiError::request(e.to_string()))?;
        let _phase = PhaseGuard::new("fuzz");
        match repro.replay() {
            Ok(()) => Ok(Response::FuzzReplay(FuzzReplay {
                law: repro.law,
                seed: repro.seed,
            })),
            // A retired/misspelled law name is a malformed request, not
            // a reproduced defect — it must not exit like a violation.
            Err(ReplayError::UnknownLaw(e)) => Err(ApiError::request(e.to_string())),
            Err(ReplayError::Violation(v)) => Err(ApiError::new(
                crate::error::ErrorCode::FuzzViolation,
                v.to_string(),
            )),
        }
    }
}

impl Default for Handler {
    fn default() -> Self {
        Handler::new(Parallelism::from_env())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ScenarioSpec;

    fn handler() -> Handler {
        Handler::new(Parallelism::sequential())
    }

    #[test]
    fn analyze_case_study_is_schedulable_under_best_case() {
        let resp = handler()
            .handle(&Request::Analyze {
                model: Model::case_study(),
                scenario: ScenarioSpec::Best,
            })
            .expect("analyzes");
        match resp {
            Response::Analyze(a) => {
                assert_eq!(a.scenario, "best case");
                assert_eq!(a.report.missed_count(), 0);
                assert_eq!(a.report.messages.len(), 64);
            }
            other => panic!("wrong response kind {}", other.kind()),
        }
    }

    #[test]
    fn generate_and_lint_share_the_matrix_pipeline() {
        let h = handler();
        let csv = match h.handle(&Request::Generate { seed: 7 }).expect("generates") {
            Response::Matrix { csv } => csv,
            other => panic!("wrong response kind {}", other.kind()),
        };
        assert!(csv.starts_with("#kmatrix,powertrain"));
        let lint = h
            .handle(&Request::Lint {
                model: Model::from_csv(csv),
            })
            .expect("lints");
        match lint {
            Response::Lint(findings) => assert!(!findings.is_empty()),
            other => panic!("wrong response kind {}", other.kind()),
        }
    }

    #[test]
    fn invalid_csv_maps_to_model_invalid() {
        let err = handler()
            .handle(&Request::Load {
                model: Model::from_csv("not,a,kmatrix"),
            })
            .expect_err("invalid");
        assert_eq!(err.code, crate::error::ErrorCode::ModelInvalid);
    }

    #[test]
    fn degraded_analysis_is_a_successful_response() {
        let h = handler();
        let mut csv = match h.handle(&Request::Generate { seed: 7 }).expect("generates") {
            Response::Matrix { csv } => csv,
            other => panic!("wrong response kind {}", other.kind()),
        };
        csv.push_str("flood,0x7fa,0,8,50,,,EMS,TCU\n");
        let resp = h
            .handle(&Request::Analyze {
                model: Model::from_csv(csv),
                scenario: ScenarioSpec::Worst,
            })
            .expect("degraded is not an error");
        match resp {
            Response::Analyze(a) => {
                assert!(a.report.is_degraded());
                assert_eq!(a.report.diagnostics().count(), 1);
            }
            other => panic!("wrong response kind {}", other.kind()),
        }
    }
}
