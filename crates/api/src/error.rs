//! The unified error surface of `carta.api.v1`.
//!
//! Every failure that can cross the API boundary carries a stable
//! string code (the `error.code` field on the wire) plus a
//! human-readable message. The same table drives the CLI's process
//! exit codes and the server's HTTP status codes, so the three
//! frontends can never disagree about what a failure *is*.

use carta_core::analysis::{AnalysisError, DivergenceCause};
use std::error::Error;
use std::fmt;

/// Stable machine-readable failure classes.
///
/// Codes are part of the `carta.api.v1` contract: new ones may be
/// added, existing strings never change meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// The request itself is malformed (unknown command, bad flag
    /// value, missing argument).
    RequestInvalid,
    /// The uploaded model (K-Matrix CSV or network) does not parse or
    /// is structurally invalid.
    ModelInvalid,
    /// A file or socket operation failed (CLI-side paths, uploads).
    Io,
    /// The analysis proved an entity has no bounded response time.
    Unbounded,
    /// The global fixpoint did not converge within its budget.
    NotConverged,
    /// The analysis panicked; the panic was contained by the engine's
    /// fault isolation and the process kept running.
    AnalysisPanicked,
    /// A fuzz law was violated (a counterexample was found).
    FuzzViolation,
    /// The referenced upload session does not exist.
    SessionNotFound,
    /// A per-tenant resource quota was exceeded.
    QuotaExceeded,
    /// Admission control shed the request; retry later.
    AdmissionShed,
    /// The request's deadline elapsed (or the evaluation was cancelled
    /// cooperatively) before the analysis completed.
    DeadlineExceeded,
    /// Authentication is configured and the request carried no (or an
    /// unknown) bearer token.
    Unauthenticated,
    /// The bearer token is valid but does not grant the tenant the
    /// request addressed.
    Forbidden,
    /// The server is shutting down (draining) and no longer takes new
    /// work; retry against another instance.
    Unavailable,
    /// Any other internal failure.
    Internal,
}

impl ErrorCode {
    /// The stable wire string for this code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::RequestInvalid => "request.invalid",
            ErrorCode::ModelInvalid => "model.invalid",
            ErrorCode::Io => "io",
            ErrorCode::Unbounded => "analysis.unbounded",
            ErrorCode::NotConverged => "analysis.not_converged",
            ErrorCode::AnalysisPanicked => "analysis.panicked",
            ErrorCode::FuzzViolation => "fuzz.violation",
            ErrorCode::SessionNotFound => "session.not_found",
            ErrorCode::QuotaExceeded => "quota.exceeded",
            ErrorCode::AdmissionShed => "admission.shed",
            ErrorCode::DeadlineExceeded => "request.deadline_exceeded",
            ErrorCode::Unauthenticated => "auth.required",
            ErrorCode::Forbidden => "auth.forbidden",
            ErrorCode::Unavailable => "server.unavailable",
            ErrorCode::Internal => "internal",
        }
    }

    /// Parses a wire string back into a code.
    pub fn parse(code: &str) -> Option<Self> {
        Some(match code {
            "request.invalid" => ErrorCode::RequestInvalid,
            "model.invalid" => ErrorCode::ModelInvalid,
            "io" => ErrorCode::Io,
            "analysis.unbounded" => ErrorCode::Unbounded,
            "analysis.not_converged" => ErrorCode::NotConverged,
            "analysis.panicked" => ErrorCode::AnalysisPanicked,
            "fuzz.violation" => ErrorCode::FuzzViolation,
            "session.not_found" => ErrorCode::SessionNotFound,
            "quota.exceeded" => ErrorCode::QuotaExceeded,
            "admission.shed" => ErrorCode::AdmissionShed,
            "request.deadline_exceeded" => ErrorCode::DeadlineExceeded,
            "auth.required" => ErrorCode::Unauthenticated,
            "auth.forbidden" => ErrorCode::Forbidden,
            "server.unavailable" => ErrorCode::Unavailable,
            "internal" => ErrorCode::Internal,
            _ => return None,
        })
    }

    /// Process exit code for CLI frontends (sysexits-flavored).
    pub fn exit_code(self) -> u8 {
        match self {
            ErrorCode::RequestInvalid => 2,
            ErrorCode::Unbounded | ErrorCode::NotConverged => 3,
            ErrorCode::FuzzViolation => 4,
            ErrorCode::ModelInvalid => 65,
            ErrorCode::Io => 66,
            ErrorCode::SessionNotFound | ErrorCode::QuotaExceeded | ErrorCode::Unavailable => 69,
            ErrorCode::AnalysisPanicked | ErrorCode::Internal => 70,
            ErrorCode::DeadlineExceeded => 73,
            ErrorCode::AdmissionShed => 75,
            ErrorCode::Unauthenticated | ErrorCode::Forbidden => 77,
        }
    }

    /// HTTP status for server frontends. Analysis failures are `200`
    /// at the transport level is *not* an option — they are reported
    /// as `422` so clients can dispatch without parsing the body;
    /// shedding is `429`, never a `500`.
    pub fn http_status(self) -> u16 {
        match self {
            ErrorCode::RequestInvalid => 400,
            ErrorCode::Unauthenticated => 401,
            ErrorCode::Forbidden => 403,
            ErrorCode::SessionNotFound => 404,
            ErrorCode::ModelInvalid => 422,
            ErrorCode::Unbounded | ErrorCode::NotConverged => 422,
            ErrorCode::FuzzViolation => 422,
            ErrorCode::QuotaExceeded | ErrorCode::AdmissionShed => 429,
            ErrorCode::Io | ErrorCode::AnalysisPanicked | ErrorCode::Internal => 500,
            ErrorCode::Unavailable => 503,
            ErrorCode::DeadlineExceeded => 504,
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// An API failure: a stable code plus the message shown to humans.
///
/// `Display` renders the message *only* — the CLI's `error: {e}`
/// output and every existing message-text assertion stay intact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// Stable failure class.
    pub code: ErrorCode,
    /// Human-readable description.
    pub message: String,
}

impl ApiError {
    /// A new error with an explicit code.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        ApiError {
            code,
            message: message.into(),
        }
    }

    /// A malformed-request error.
    pub fn request(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::RequestInvalid, message)
    }

    /// An invalid-model error.
    pub fn model(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::ModelInvalid, message)
    }

    /// An I/O error.
    pub fn io(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::Io, message)
    }

    /// An internal error.
    pub fn internal(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::Internal, message)
    }
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl Error for ApiError {}

impl From<AnalysisError> for ApiError {
    fn from(e: AnalysisError) -> Self {
        let code = match &e {
            AnalysisError::Unbounded { .. } => ErrorCode::Unbounded,
            AnalysisError::NotConverged { .. } => ErrorCode::NotConverged,
            AnalysisError::InvalidModel(_) => ErrorCode::ModelInvalid,
            AnalysisError::Panicked { .. } => ErrorCode::AnalysisPanicked,
            AnalysisError::Cancelled => ErrorCode::DeadlineExceeded,
        };
        ApiError::new(code, e.to_string())
    }
}

/// The stable wire code for a per-message divergence cause, used in
/// degraded-report diagnostics (`diagnostic.cause.code`).
pub fn divergence_code(cause: &DivergenceCause) -> &'static str {
    match cause {
        DivergenceCause::HorizonExceeded { .. } => "diverged.horizon",
        DivergenceCause::InstanceLimit { .. } => "diverged.instance_limit",
        DivergenceCause::IterationBudget { .. } => "diverged.iteration_budget",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carta_core::time::Time;

    #[test]
    fn codes_roundtrip_and_stay_stable() {
        for code in [
            ErrorCode::RequestInvalid,
            ErrorCode::ModelInvalid,
            ErrorCode::Io,
            ErrorCode::Unbounded,
            ErrorCode::NotConverged,
            ErrorCode::AnalysisPanicked,
            ErrorCode::FuzzViolation,
            ErrorCode::SessionNotFound,
            ErrorCode::QuotaExceeded,
            ErrorCode::AdmissionShed,
            ErrorCode::DeadlineExceeded,
            ErrorCode::Unauthenticated,
            ErrorCode::Forbidden,
            ErrorCode::Unavailable,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
        }
        assert_eq!(ErrorCode::parse("no.such.code"), None);
        assert_eq!(ErrorCode::RequestInvalid.exit_code(), 2);
        assert_eq!(ErrorCode::AdmissionShed.http_status(), 429);
        assert_eq!(ErrorCode::SessionNotFound.http_status(), 404);
        assert_eq!(
            ErrorCode::DeadlineExceeded.as_str(),
            "request.deadline_exceeded"
        );
        assert_eq!(ErrorCode::DeadlineExceeded.http_status(), 504);
        assert_eq!(ErrorCode::DeadlineExceeded.exit_code(), 73);
        assert_eq!(ErrorCode::Unauthenticated.http_status(), 401);
        assert_eq!(ErrorCode::Forbidden.http_status(), 403);
        assert_eq!(ErrorCode::Unavailable.http_status(), 503);
    }

    #[test]
    fn display_is_the_bare_message() {
        let e = ApiError::request("unknown scenario `chaotic`");
        assert_eq!(e.to_string(), "unknown scenario `chaotic`");
    }

    #[test]
    fn analysis_errors_map_by_variant() {
        let e: ApiError = AnalysisError::InvalidModel("x".into()).into();
        assert_eq!(e.code, ErrorCode::ModelInvalid);
        assert_eq!(e.to_string(), "invalid system model: x");
        let e: ApiError = AnalysisError::Panicked { detail: "p".into() }.into();
        assert_eq!(e.code, ErrorCode::AnalysisPanicked);
        let e: ApiError = AnalysisError::Cancelled.into();
        assert_eq!(e.code, ErrorCode::DeadlineExceeded);
    }

    #[test]
    fn divergence_codes_cover_all_causes() {
        assert_eq!(
            divergence_code(&DivergenceCause::HorizonExceeded {
                horizon: Time::from_s(10)
            }),
            "diverged.horizon"
        );
        assert_eq!(
            divergence_code(&DivergenceCause::InstanceLimit { limit: 1 }),
            "diverged.instance_limit"
        );
        assert_eq!(
            divergence_code(&DivergenceCause::IterationBudget { budget: 1 }),
            "diverged.iteration_budget"
        );
    }
}
