//! Permutation genomes and their variation operators.
//!
//! CAN-ID assignment is a priority-ordering problem, naturally encoded
//! as a permutation: position `k` of the genome names the message that
//! receives the `k`-th strongest identifier. The operators are the
//! standard permutation-GA pair: PMX (partially mapped crossover) and
//! swap mutation.

use rand::rngs::StdRng;
use rand::Rng;

/// A permutation of `0..len` (validated).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation(Vec<usize>);

impl Permutation {
    /// The identity permutation of the given length.
    pub fn identity(len: usize) -> Self {
        Permutation((0..len).collect())
    }

    /// Builds a permutation, validating that every index `0..len`
    /// appears exactly once.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..order.len()`.
    pub fn new(order: Vec<usize>) -> Self {
        let mut seen = vec![false; order.len()];
        for &i in &order {
            assert!(i < order.len() && !seen[i], "not a permutation");
            seen[i] = true;
        }
        Permutation(order)
    }

    /// A uniformly random permutation.
    pub fn random(len: usize, rng: &mut StdRng) -> Self {
        let mut v: Vec<usize> = (0..len).collect();
        // Fisher–Yates.
        for i in (1..len).rev() {
            let j = rng.gen_range(0..=i);
            v.swap(i, j);
        }
        Permutation(v)
    }

    /// The underlying order: `self.as_slice()[rank] = item`.
    pub fn as_slice(&self) -> &[usize] {
        &self.0
    }

    /// Length of the permutation.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The inverse mapping: `rank_of()[item] = rank`.
    pub fn rank_of(&self) -> Vec<usize> {
        let mut ranks = vec![0; self.0.len()];
        for (rank, &item) in self.0.iter().enumerate() {
            ranks[item] = rank;
        }
        ranks
    }

    /// PMX (partially mapped) crossover.
    pub fn pmx(&self, other: &Permutation, rng: &mut StdRng) -> Permutation {
        let n = self.0.len();
        if n < 2 {
            return self.clone();
        }
        let mut a = rng.gen_range(0..n);
        let mut b = rng.gen_range(0..n);
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        let mut child: Vec<Option<usize>> = vec![None; n];
        let mut used = vec![false; n];
        // Copy the segment [a, b] from self.
        for i in a..=b {
            child[i] = Some(self.0[i]);
            used[self.0[i]] = true;
        }
        // Map the rest from `other`, resolving conflicts through the
        // segment mapping.
        let self_pos = self.rank_of();
        for i in (0..a).chain(b + 1..n) {
            let mut candidate = other.0[i];
            let mut guard = 0;
            while used[candidate] {
                // Follow the PMX mapping: value at the conflicting
                // position in `other`.
                candidate = other.0[self_pos[candidate]];
                guard += 1;
                if guard > n {
                    // Degenerate cycle; pick the first unused value
                    // (one always exists: i values are used out of n).
                    candidate = (0..n).find(|&v| !used[v]).unwrap_or(candidate);
                    break;
                }
            }
            child[i] = Some(candidate);
            used[candidate] = true;
        }
        Permutation(child.into_iter().flatten().collect())
    }

    /// Swap mutation: exchanges 1–3 random pairs.
    pub fn swap_mutate(&mut self, rng: &mut StdRng) {
        let n = self.0.len();
        if n < 2 {
            return;
        }
        for _ in 0..rng.gen_range(1..=3) {
            let i = rng.gen_range(0..n);
            let j = rng.gen_range(0..n);
            self.0.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn is_permutation(p: &Permutation) -> bool {
        let mut seen = vec![false; p.len()];
        p.as_slice().iter().all(|&i| {
            if i < seen.len() && !seen[i] {
                seen[i] = true;
                true
            } else {
                false
            }
        })
    }

    #[test]
    fn identity_and_ranks() {
        let p = Permutation::identity(4);
        assert_eq!(p.as_slice(), &[0, 1, 2, 3]);
        assert_eq!(p.rank_of(), vec![0, 1, 2, 3]);
        let q = Permutation::new(vec![2, 0, 3, 1]);
        assert_eq!(q.rank_of(), vec![1, 3, 0, 2]);
        assert!(!q.is_empty());
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn duplicate_rejected() {
        let _ = Permutation::new(vec![0, 0, 1]);
    }

    #[test]
    fn random_is_valid_and_seeded() {
        let a = Permutation::random(20, &mut rng(1));
        let b = Permutation::random(20, &mut rng(1));
        assert_eq!(a, b);
        assert!(is_permutation(&a));
        let c = Permutation::random(20, &mut rng(2));
        assert_ne!(a, c);
    }

    proptest! {
        #[test]
        fn pmx_always_yields_valid_permutations(
            len in 2usize..30,
            seed in 0u64..1000,
        ) {
            let mut r = rng(seed);
            let a = Permutation::random(len, &mut r);
            let b = Permutation::random(len, &mut r);
            let child = a.pmx(&b, &mut r);
            prop_assert!(is_permutation(&child));
            prop_assert_eq!(child.len(), len);
        }

        #[test]
        fn swap_mutation_preserves_validity(
            len in 2usize..30,
            seed in 0u64..1000,
        ) {
            let mut r = rng(seed);
            let mut p = Permutation::random(len, &mut r);
            p.swap_mutate(&mut r);
            prop_assert!(is_permutation(&p));
        }
    }
}
