//! SPEA2 — the Strength Pareto Evolutionary Algorithm 2 of Zitzler,
//! Laumanns & Thiele (TR-103, ref. \[10\] of the paper), the optimizer
//! behind SymTA/S's automatic CAN-ID exploration (Sec. 4.3).
//!
//! The implementation follows the published algorithm faithfully:
//!
//! 1. **Strength** `S(i)`: how many individuals `i` dominates.
//! 2. **Raw fitness** `R(i)`: sum of strengths of `i`'s dominators.
//! 3. **Density** `D(i) = 1 / (σᵏ + 2)` with `σᵏ` the distance to the
//!    `k`-th nearest neighbour, `k = √(N + N̄)`.
//! 4. **Environmental selection**: all non-dominated individuals enter
//!    the archive; overfull archives are truncated by iteratively
//!    removing the individual with the lexicographically smallest
//!    nearest-neighbour distance vector; underfull archives are topped
//!    up with the best dominated individuals.
//! 5. **Mating**: binary tournaments on the archive, then
//!    problem-defined crossover and mutation.
//!
//! All objectives are **minimized**.

use carta_obs::metrics;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Records per-generation observability: counters
/// `optim.generations` / `optim.evaluations`, gauges
/// `optim.archive_size` / `optim.archive_spread` and the
/// `optim.evals_per_gen` histogram. The spread gauge is a cheap
/// hypervolume proxy: the mean per-objective extent of the archive's
/// bounding box — it grows as the front widens and collapses when the
/// archive degenerates to a point.
fn record_generation<G>(archive: &[Individual<G>], evals_this_gen: usize) {
    if !metrics::enabled() {
        return;
    }
    let registry = metrics::global();
    registry.counter("optim.generations").inc();
    registry
        .counter("optim.evaluations")
        .add(evals_this_gen as u64);
    registry
        .histogram("optim.evals_per_gen")
        .record(evals_this_gen as u64);
    registry
        .gauge("optim.archive_size")
        .set(archive.len() as f64);
    registry
        .gauge("optim.archive_spread")
        .set(archive_spread(archive));
}

/// Mean per-objective extent (max − min) over the archive.
fn archive_spread<G>(archive: &[Individual<G>]) -> f64 {
    let Some(first) = archive.first() else {
        return 0.0;
    };
    let dims = first.objectives.len();
    if dims == 0 {
        return 0.0;
    }
    let mut spread = 0.0;
    for d in 0..dims {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for ind in archive {
            let v = ind.objectives[d];
            if v.is_finite() {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        if hi > lo {
            spread += hi - lo;
        }
    }
    spread / dims as f64
}

/// An optimization problem for [`optimize`].
pub trait Problem {
    /// Genome representation.
    type Genome: Clone;

    /// Samples a random genome.
    fn random_genome(&self, rng: &mut StdRng) -> Self::Genome;

    /// Optional seed genomes injected into the initial population
    /// (e.g. the current configuration). Default: none.
    fn seed_genomes(&self) -> Vec<Self::Genome> {
        Vec::new()
    }

    /// Recombines two parents.
    fn crossover(&self, a: &Self::Genome, b: &Self::Genome, rng: &mut StdRng) -> Self::Genome;

    /// Mutates a genome in place.
    fn mutate(&self, genome: &mut Self::Genome, rng: &mut StdRng);

    /// Evaluates a genome into its objective vector (minimized).
    fn evaluate(&self, genome: &Self::Genome) -> Vec<f64>;

    /// Evaluates a whole population at once. The default maps
    /// [`Problem::evaluate`] sequentially; problems backed by the
    /// evaluation engine override this to submit one parallel,
    /// memoized batch per generation. `result[i]` must equal
    /// `self.evaluate(&genomes[i])` — the optimizer relies on batch
    /// and sequential evaluation being interchangeable.
    fn evaluate_population(&self, genomes: &[Self::Genome]) -> Vec<Vec<f64>> {
        genomes.iter().map(|g| self.evaluate(g)).collect()
    }
}

/// SPEA2 parameters.
#[derive(Debug, Clone, Copy)]
pub struct Spea2Config {
    /// Population size `N`.
    pub population: usize,
    /// Archive size `N̄`.
    pub archive: usize,
    /// Number of generations.
    pub generations: usize,
    /// Probability of mutating each offspring.
    pub mutation_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Spea2Config {
    fn default() -> Self {
        Spea2Config {
            population: 40,
            archive: 20,
            generations: 30,
            mutation_rate: 0.3,
            seed: 42,
        }
    }
}

/// An evaluated individual.
#[derive(Debug, Clone)]
pub struct Individual<G> {
    /// The genome.
    pub genome: G,
    /// Its objective vector.
    pub objectives: Vec<f64>,
    fitness: f64,
}

impl<G> Individual<G> {
    /// SPEA2 fitness (raw + density); lower is better, `< 1` means
    /// non-dominated.
    pub fn fitness(&self) -> f64 {
        self.fitness
    }
}

/// The result of an optimization run: the final archive
/// (an approximation of the Pareto front).
#[derive(Debug, Clone)]
pub struct Spea2Result<G> {
    /// Final archive, sorted by fitness (best first).
    pub archive: Vec<Individual<G>>,
    /// Generations actually run.
    pub generations: usize,
    /// Total genome evaluations performed.
    pub evaluations: usize,
}

impl<G> Spea2Result<G> {
    /// The archive member minimizing the weighted sum of objectives.
    ///
    /// # Panics
    ///
    /// Panics if `weights` length differs from the objective count or
    /// the archive is empty.
    #[allow(clippy::expect_used)] // the empty-archive panic is documented
    pub fn best_weighted(&self, weights: &[f64]) -> &Individual<G> {
        self.archive
            .iter()
            .map(|ind| {
                assert_eq!(ind.objectives.len(), weights.len(), "weight arity mismatch");
                let score: f64 = ind.objectives.iter().zip(weights).map(|(o, w)| o * w).sum();
                (ind, score)
            })
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(ind, _)| ind)
            .expect("archive is never empty after a run")
    }
}

/// `true` if `a` Pareto-dominates `b` (all objectives ≤, one <).
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strictly = false;
    for (x, y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly = true;
        }
    }
    strictly
}

fn distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Runs SPEA2.
///
/// # Panics
///
/// Panics if `population` or `archive` is zero.
pub fn optimize<P: Problem>(problem: &P, config: &Spea2Config) -> Spea2Result<P::Genome> {
    assert!(config.population > 0, "population must be positive");
    assert!(config.archive > 0, "archive must be positive");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut evaluations = 0usize;

    // Whole generations are evaluated as one batch. The RNG stream is
    // consumed entirely during variation (before any evaluation), so
    // batching — and any parallelism inside `evaluate_population` —
    // cannot change the per-seed result.
    let eval_batch =
        |genomes: Vec<P::Genome>, evaluations: &mut usize| -> Vec<Individual<P::Genome>> {
            *evaluations += genomes.len();
            let objectives = problem.evaluate_population(&genomes);
            debug_assert_eq!(objectives.len(), genomes.len());
            genomes
                .into_iter()
                .zip(objectives)
                .map(|(genome, objectives)| Individual {
                    genome,
                    objectives,
                    fitness: f64::INFINITY,
                })
                .collect()
        };

    // Initial population: seeds first, then random.
    let mut genomes: Vec<P::Genome> = problem
        .seed_genomes()
        .into_iter()
        .take(config.population)
        .collect();
    while genomes.len() < config.population {
        genomes.push(problem.random_genome(&mut rng));
    }
    let mut population = eval_batch(genomes, &mut evaluations);

    let mut archive: Vec<Individual<P::Genome>> = Vec::new();
    for generation in 0..config.generations {
        let _span = carta_obs::span!("optim.generation", gen = generation);
        // Fitness over the combined set.
        let mut combined: Vec<Individual<P::Genome>> = Vec::new();
        combined.append(&mut population);
        combined.append(&mut archive);
        assign_fitness(&mut combined);

        // Environmental selection.
        archive = environmental_selection(combined, config.archive);

        // Mating selection + variation, then one batched evaluation.
        let offspring: Vec<P::Genome> = (0..config.population)
            .map(|_| {
                let a = tournament(&archive, &mut rng);
                let b = tournament(&archive, &mut rng);
                let mut child = problem.crossover(&archive[a].genome, &archive[b].genome, &mut rng);
                if rng.gen_bool(config.mutation_rate.clamp(0.0, 1.0)) {
                    problem.mutate(&mut child, &mut rng);
                }
                child
            })
            .collect();
        let before = evaluations;
        population = eval_batch(offspring, &mut evaluations);
        record_generation(&archive, evaluations - before);
    }

    // Final fitness assignment on the last archive for reporting order.
    let mut final_set = archive;
    assign_fitness(&mut final_set);
    final_set.sort_by(|a, b| a.fitness.total_cmp(&b.fitness));
    Spea2Result {
        archive: final_set,
        generations: config.generations,
        evaluations,
    }
}

/// Computes SPEA2 fitness (raw + density) for every individual.
fn assign_fitness<G>(set: &mut [Individual<G>]) {
    let n = set.len();
    if n == 0 {
        return;
    }
    // Strength: number of individuals each one dominates.
    let mut strength = vec![0usize; n];
    for i in 0..n {
        for j in 0..n {
            if i != j && dominates(&set[i].objectives, &set[j].objectives) {
                strength[i] += 1;
            }
        }
    }
    // Raw fitness: sum of strengths of dominators.
    let k = ((n as f64).sqrt() as usize).max(1);
    for i in 0..n {
        let mut raw = 0usize;
        for j in 0..n {
            if i != j && dominates(&set[j].objectives, &set[i].objectives) {
                raw += strength[j];
            }
        }
        // Density via k-th nearest neighbour.
        let mut dists: Vec<f64> = (0..n)
            .filter(|&j| j != i)
            .map(|j| distance(&set[i].objectives, &set[j].objectives))
            .collect();
        dists.sort_by(f64::total_cmp);
        let sigma_k = dists.get(k - 1).copied().unwrap_or(0.0);
        set[i].fitness = raw as f64 + 1.0 / (sigma_k + 2.0);
    }
}

/// SPEA2 environmental selection into an archive of exactly
/// `capacity` (or fewer if the candidate set is smaller).
fn environmental_selection<G: Clone>(
    mut combined: Vec<Individual<G>>,
    capacity: usize,
) -> Vec<Individual<G>> {
    combined.sort_by(|a, b| a.fitness.total_cmp(&b.fitness));
    let mut archive: Vec<Individual<G>> = combined
        .iter()
        .filter(|i| i.fitness < 1.0)
        .cloned()
        .collect();
    if archive.len() < capacity {
        // Top up with the best dominated individuals.
        for ind in combined.iter().filter(|i| i.fitness >= 1.0) {
            if archive.len() >= capacity {
                break;
            }
            archive.push(ind.clone());
        }
        return archive;
    }
    // Truncation: repeatedly remove the individual with the
    // lexicographically smallest sorted distance vector.
    while archive.len() > capacity {
        let n = archive.len();
        let dist_vectors: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let mut d: Vec<f64> = (0..n)
                    .filter(|&j| j != i)
                    .map(|j| distance(&archive[i].objectives, &archive[j].objectives))
                    .collect();
                d.sort_by(f64::total_cmp);
                d
            })
            .collect();
        let victim = (0..n).min_by(|&a, &b| {
            dist_vectors[a]
                .iter()
                .zip(&dist_vectors[b])
                .map(|(x, y)| x.total_cmp(y))
                .find(|o| o.is_ne())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let Some(victim) = victim else { break };
        archive.remove(victim);
    }
    archive
}

/// Binary tournament by fitness; returns the winner's index.
fn tournament<G>(archive: &[Individual<G>], rng: &mut StdRng) -> usize {
    let a = rng.gen_range(0..archive.len());
    let b = rng.gen_range(0..archive.len());
    if archive[a].fitness <= archive[b].fitness {
        a
    } else {
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize (x − 3)² and (x − 5)² over x ∈ \[0, 8\] encoded as f64 —
    /// the Pareto set is the interval \[3, 5\].
    struct TwoHumps;

    impl Problem for TwoHumps {
        type Genome = f64;

        fn random_genome(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(0.0..8.0)
        }

        fn crossover(&self, a: &f64, b: &f64, _rng: &mut StdRng) -> f64 {
            (a + b) / 2.0
        }

        fn mutate(&self, g: &mut f64, rng: &mut StdRng) {
            *g = (*g + rng.gen_range(-1.0..1.0)).clamp(0.0, 8.0);
        }

        fn evaluate(&self, g: &f64) -> Vec<f64> {
            vec![(g - 3.0).powi(2), (g - 5.0).powi(2)]
        }
    }

    #[test]
    fn dominance_relation() {
        assert!(dominates(&[1.0, 2.0], &[2.0, 2.0]));
        assert!(dominates(&[1.0, 1.0], &[2.0, 2.0]));
        assert!(!dominates(&[1.0, 3.0], &[2.0, 2.0]));
        assert!(!dominates(&[2.0, 2.0], &[2.0, 2.0]));
        assert!(!dominates(&[2.0, 2.0], &[1.0, 2.0]));
    }

    #[test]
    fn converges_to_pareto_interval() {
        let result = optimize(&TwoHumps, &Spea2Config::default());
        assert_eq!(result.generations, 30);
        assert!(result.evaluations >= 40 * 30);
        assert!(!result.archive.is_empty());
        // Every archive member should sit in (or very near) [3, 5].
        for ind in &result.archive {
            assert!(
                ind.genome > 2.5 && ind.genome < 5.5,
                "genome {} outside Pareto region",
                ind.genome
            );
        }
        // The extremes of the front should be approached.
        let best_f1 = result
            .archive
            .iter()
            .map(|i| i.objectives[0])
            .fold(f64::INFINITY, f64::min);
        assert!(best_f1 < 0.3, "f1 minimum not approached: {best_f1}");
    }

    #[test]
    fn weighted_pick_moves_with_weights() {
        let result = optimize(&TwoHumps, &Spea2Config::default());
        let toward_3 = result.best_weighted(&[1.0, 0.0]).genome;
        let toward_5 = result.best_weighted(&[0.0, 1.0]).genome;
        assert!(toward_3 < toward_5);
        assert!((toward_3 - 3.0).abs() < 1.0);
        assert!((toward_5 - 5.0).abs() < 1.0);
    }

    #[test]
    fn population_evaluation_is_batched() {
        use std::cell::Cell;
        struct Counting {
            batches: Cell<usize>,
        }
        impl Problem for Counting {
            type Genome = f64;
            fn random_genome(&self, rng: &mut StdRng) -> f64 {
                rng.gen_range(0.0..8.0)
            }
            fn crossover(&self, a: &f64, b: &f64, _rng: &mut StdRng) -> f64 {
                (a + b) / 2.0
            }
            fn mutate(&self, g: &mut f64, rng: &mut StdRng) {
                *g = (*g + rng.gen_range(-1.0..1.0)).clamp(0.0, 8.0);
            }
            fn evaluate(&self, g: &f64) -> Vec<f64> {
                vec![(g - 3.0).powi(2), (g - 5.0).powi(2)]
            }
            fn evaluate_population(&self, genomes: &[f64]) -> Vec<Vec<f64>> {
                self.batches.set(self.batches.get() + 1);
                genomes.iter().map(|g| self.evaluate(g)).collect()
            }
        }
        let problem = Counting {
            batches: Cell::new(0),
        };
        let config = Spea2Config {
            generations: 3,
            ..Spea2Config::default()
        };
        let result = optimize(&problem, &config);
        // One batch for the initial population, one per generation.
        assert_eq!(problem.batches.get(), 4);
        assert_eq!(result.evaluations, 40 * 4);
        // Batching must not change the per-seed outcome.
        let plain = optimize(&TwoHumps, &config);
        let ga: Vec<f64> = result.archive.iter().map(|i| i.genome).collect();
        let gb: Vec<f64> = plain.archive.iter().map(|i| i.genome).collect();
        assert_eq!(ga, gb);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = optimize(&TwoHumps, &Spea2Config::default());
        let b = optimize(&TwoHumps, &Spea2Config::default());
        let ga: Vec<f64> = a.archive.iter().map(|i| i.genome).collect();
        let gb: Vec<f64> = b.archive.iter().map(|i| i.genome).collect();
        assert_eq!(ga, gb);
    }

    #[test]
    fn seeds_enter_population() {
        struct Seeded;
        impl Problem for Seeded {
            type Genome = f64;
            fn random_genome(&self, rng: &mut StdRng) -> f64 {
                rng.gen_range(100.0..200.0) // random genomes are awful
            }
            fn seed_genomes(&self) -> Vec<f64> {
                vec![4.0] // the seed is optimal
            }
            fn crossover(&self, a: &f64, b: &f64, _r: &mut StdRng) -> f64 {
                (a + b) / 2.0
            }
            fn mutate(&self, g: &mut f64, rng: &mut StdRng) {
                *g += rng.gen_range(-0.1..0.1);
            }
            fn evaluate(&self, g: &f64) -> Vec<f64> {
                vec![(g - 4.0).abs()]
            }
        }
        let result = optimize(
            &Seeded,
            &Spea2Config {
                generations: 5,
                ..Spea2Config::default()
            },
        );
        let best = result.best_weighted(&[1.0]);
        assert!(best.objectives[0] < 1.0, "seeded optimum must survive");
        assert!(best.fitness() < 1.0);
    }

    #[test]
    fn generation_metrics_accumulate_when_enabled() {
        let was = metrics::enabled();
        metrics::set_enabled(true);
        let registry = metrics::global();
        let gens_before = registry.counter("optim.generations").get();
        let evals_before = registry.counter("optim.evaluations").get();
        let config = Spea2Config {
            generations: 4,
            ..Spea2Config::default()
        };
        let result = optimize(&TwoHumps, &config);
        assert_eq!(registry.counter("optim.generations").get(), gens_before + 4);
        // Per-generation evaluations exclude the initial population.
        assert_eq!(
            registry.counter("optim.evaluations").get(),
            evals_before + (result.evaluations - config.population) as u64
        );
        assert!(registry.gauge("optim.archive_size").get() >= 1.0);
        metrics::set_enabled(was);
    }

    #[test]
    fn archive_spread_of_degenerate_archives() {
        assert_eq!(archive_spread::<f64>(&[]), 0.0);
        let point = vec![
            Individual {
                genome: 1.0,
                objectives: vec![2.0, 3.0],
                fitness: 0.0,
            };
            3
        ];
        assert_eq!(archive_spread(&point), 0.0);
        let spread = vec![
            Individual {
                genome: 1.0,
                objectives: vec![0.0, 0.0],
                fitness: 0.0,
            },
            Individual {
                genome: 2.0,
                objectives: vec![2.0, 4.0],
                fitness: 0.0,
            },
        ];
        assert!((archive_spread(&spread) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn archive_capacity_respected() {
        let result = optimize(
            &TwoHumps,
            &Spea2Config {
                archive: 5,
                ..Spea2Config::default()
            },
        );
        assert!(result.archive.len() <= 5);
        assert!(!result.archive.is_empty());
    }
}
