//! # carta-optim
//!
//! The optimization layer of the `carta` workspace: a faithful
//! implementation of **SPEA2** (Zitzler, Laumanns, Thiele — ref. \[10\]
//! of the paper) and the CAN-ID assignment problem the paper's
//! Section 4.3 solves with it ("we used the automatic optimization
//! feature … to find better CAN ID configurations that would exhibit
//! less message loss … configured to favor robust configurations over
//! sensitive ones").
//!
//! ```no_run
//! use carta_kmatrix::prelude::*;
//! use carta_optim::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = powertrain_default().to_network()?;
//! let result = optimize_can_ids(&net, &OptimizeIdsConfig::default());
//! println!("loss at 25 % jitter after optimization: {}", result.objectives[0]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Panic-free library surface: a malformed model must surface as a
// typed error, never a crash. Tests and benches may still unwrap.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod canid;
pub mod permutation;
pub mod spea2;

/// Convenient single import for the common types of this crate.
pub mod prelude {
    pub use crate::canid::{
        optimize_can_ids, CanIdProblem, IdOptimizationResult, OptimizeIdsConfig,
    };
    pub use crate::permutation::Permutation;
    pub use crate::spea2::{dominates, optimize, Individual, Problem, Spea2Config, Spea2Result};
}
