//! CAN-ID (priority) assignment optimization — the paper's Section 4.3.
//!
//! The genome is a permutation: rank `k` names the message that
//! receives the `k`-th strongest identifier of the network's existing
//! identifier pool (IDs are *re-distributed*, never invented, so the
//! optimized matrix stays compatible with downstream tooling).
//!
//! As in the paper, the optimizer is configured "to favor robust
//! configurations over sensitive ones": besides the message-loss counts
//! at the reference jitter ratios, a robustness objective (sum of
//! response-to-deadline ratios) rewards margin even among zero-loss
//! configurations.

use crate::permutation::Permutation;
use crate::spea2::{optimize, Problem, Spea2Config, Spea2Result};
use carta_can::network::CanNetwork;
use carta_engine::prelude::{
    BaseSystem, CacheStats, EvalResult, Evaluator, Parallelism, SystemVariant,
};
use carta_explore::jitter::with_jitter_ratio;
use carta_explore::scenario::Scenario;
use rand::rngs::StdRng;
use std::sync::Arc;

/// Penalty charged per unbounded (overloaded) message in the
/// robustness objective.
const UNBOUNDED_PENALTY: f64 = 10.0;

/// The optimization problem fed to SPEA2. Genome evaluation routes
/// through a [`carta_engine::evaluator::Evaluator`]: each genome is a
/// permutation overlay over one shared [`BaseSystem`], whole
/// generations are submitted as one batch, and genomes resurfacing in
/// later generations hit the memo cache.
#[derive(Debug)]
pub struct CanIdProblem<'a> {
    base: &'a CanNetwork,
    system: Arc<BaseSystem>,
    evaluator: Evaluator,
    scenario: Scenario,
    eval_ratios: Vec<f64>,
}

impl<'a> CanIdProblem<'a> {
    /// Creates the problem for a network, evaluating loss under
    /// `scenario` at the given jitter ratios (the paper uses 25 % as
    /// the design point). Evaluation parallelism follows
    /// [`carta_engine::evaluator::Parallelism::from_env`]; use
    /// [`CanIdProblem::with_evaluator`] to override.
    pub fn new(base: &'a CanNetwork, scenario: Scenario, eval_ratios: Vec<f64>) -> Self {
        CanIdProblem {
            base,
            system: BaseSystem::new(base.clone()),
            evaluator: Evaluator::default(),
            scenario,
            eval_ratios,
        }
    }

    /// Replaces the evaluation engine (e.g. to set an explicit job
    /// count, or to share a cache with surrounding sweeps).
    pub fn with_evaluator(mut self, evaluator: Evaluator) -> Self {
        self.evaluator = evaluator;
        self
    }

    /// The engine evaluator (its [`carta_engine::evaluator::CacheStats`]
    /// show the per-genome hit rate after a run).
    pub fn evaluator(&self) -> &Evaluator {
        &self.evaluator
    }

    /// Applies a genome: message `perm[k]` receives the `k`-th
    /// strongest identifier of the pool.
    pub fn apply(&self, perm: &Permutation) -> CanNetwork {
        let mut net = self.base.clone();
        let pool = self.system.id_pool();
        for (rank, &msg_idx) in perm.as_slice().iter().enumerate() {
            net.messages_mut()[msg_idx].id = pool[rank];
        }
        net
    }

    /// The engine variants of one genome — one per evaluation ratio.
    fn variants(&self, perm: &Permutation) -> Vec<SystemVariant> {
        let overlay = Arc::new(perm.as_slice().to_vec());
        self.eval_ratios
            .iter()
            .map(|&ratio| {
                SystemVariant::new(self.system.clone(), self.scenario.clone())
                    .with_jitter_ratio(ratio)
                    .with_permutation(overlay.clone())
            })
            .collect()
    }

    /// Folds the per-ratio reports of one genome into its objective
    /// vector: loss counts per ratio, then the robustness sum at the
    /// design point.
    fn objectives(&self, results: &[EvalResult]) -> Vec<f64> {
        let mut objectives = Vec::with_capacity(self.eval_ratios.len() + 1);
        let mut robustness = 0.0;
        for (k, result) in results.iter().enumerate() {
            match result {
                Ok(report) => {
                    objectives.push(report.missed_count() as f64);
                    if k == 0 {
                        for m in &report.messages {
                            robustness += match m.outcome.wcrt() {
                                Some(wcrt) => {
                                    wcrt.as_ns() as f64 / m.deadline.as_ns().max(1) as f64
                                }
                                None => UNBOUNDED_PENALTY,
                            };
                        }
                    }
                }
                Err(_) => {
                    // Failed variant (injected fault, contained panic):
                    // rank it strictly worse than any analyzable genome
                    // but keep the fitness *finite* — infinities poison
                    // SPEA2's euclidean density estimation with NaNs and
                    // would let one bad candidate abort the whole run.
                    let n = self.base.messages().len() as f64;
                    objectives.push(n + 1.0);
                    robustness = (n + 1.0) * UNBOUNDED_PENALTY;
                }
            }
        }
        objectives.push(robustness);
        objectives
    }

    /// The rate-monotonic permutation (shorter period ⇒ stronger ID),
    /// used as a seed.
    pub fn rate_monotonic(&self) -> Permutation {
        let mut order: Vec<usize> = (0..self.base.messages().len()).collect();
        order.sort_by_key(|&i| {
            let m = &self.base.messages()[i];
            (m.activation.period(), m.id.arbitration_key())
        });
        Permutation::new(order)
    }
}

impl Problem for CanIdProblem<'_> {
    type Genome = Permutation;

    fn random_genome(&self, rng: &mut StdRng) -> Permutation {
        Permutation::random(self.base.messages().len(), rng)
    }

    fn seed_genomes(&self) -> Vec<Permutation> {
        let mut seeds = vec![
            Permutation::identity(self.base.messages().len()),
            self.rate_monotonic(),
        ];
        // Audsley's optimal priority assignment at the first design
        // point: if any ID order is feasible there, this seed already
        // achieves zero loss and the GA only has to improve the other
        // objectives.
        let ratio = self.eval_ratios.first().copied().unwrap_or(0.25);
        let prepared = self.scenario.apply(&with_jitter_ratio(self.base, ratio));
        if let Ok(Some(order)) = carta_can::opa::audsley_assignment(
            &prepared,
            self.scenario.errors.model().as_ref(),
            &self.scenario.analysis_config(),
        ) {
            seeds.push(Permutation::new(order.strongest_first().to_vec()));
        }
        seeds
    }

    fn crossover(&self, a: &Permutation, b: &Permutation, rng: &mut StdRng) -> Permutation {
        a.pmx(b, rng)
    }

    fn mutate(&self, genome: &mut Permutation, rng: &mut StdRng) {
        genome.swap_mutate(rng);
    }

    fn evaluate(&self, genome: &Permutation) -> Vec<f64> {
        let results = self.evaluator.evaluate_batch(&self.variants(genome));
        self.objectives(&results)
    }

    fn evaluate_population(&self, genomes: &[Permutation]) -> Vec<Vec<f64>> {
        let per_genome = self.eval_ratios.len();
        if per_genome == 0 {
            return genomes.iter().map(|g| self.evaluate(g)).collect();
        }
        // One flat batch: |genomes| × |ratios| variants, evaluated in
        // parallel and deduplicated by the engine's cache.
        let variants: Vec<SystemVariant> = genomes.iter().flat_map(|g| self.variants(g)).collect();
        let results = self.evaluator.evaluate_batch(&variants);
        results
            .chunks(per_genome)
            .map(|chunk| self.objectives(chunk))
            .collect()
    }
}

/// Configuration of [`optimize_can_ids`].
#[derive(Debug, Clone)]
pub struct OptimizeIdsConfig {
    /// The SPEA2 parameters.
    pub spea2: Spea2Config,
    /// Scenario under which loss is evaluated (default: worst case).
    pub scenario: Scenario,
    /// Jitter ratios at which loss counts become objectives
    /// (default: 25 %, 40 % and 60 % — the design point plus two
    /// tail anchors so the optimized curve stays below the original
    /// across the whole sweep).
    pub eval_ratios: Vec<f64>,
    /// Weights for picking the final solution from the Pareto archive
    /// (must have `eval_ratios.len() + 1` entries — loss counts first,
    /// robustness last).
    pub weights: Vec<f64>,
    /// Worker threads for genome evaluation (default:
    /// [`Parallelism::from_env`] — `CARTA_JOBS` or all hardware
    /// threads). Parallelism never changes the per-seed result.
    pub parallelism: Parallelism,
}

impl Default for OptimizeIdsConfig {
    fn default() -> Self {
        OptimizeIdsConfig {
            spea2: Spea2Config::default(),
            scenario: Scenario::worst_case(),
            eval_ratios: vec![0.25, 0.40, 0.60],
            weights: vec![1000.0, 100.0, 150.0, 1.0],
            parallelism: Parallelism::from_env(),
        }
    }
}

/// Result of a CAN-ID optimization run.
#[derive(Debug)]
pub struct IdOptimizationResult {
    /// The network with optimized identifiers.
    pub optimized: CanNetwork,
    /// The winning permutation.
    pub permutation: Permutation,
    /// Objectives of the winner (loss counts per ratio, then
    /// robustness).
    pub objectives: Vec<f64>,
    /// The full Pareto archive.
    pub archive: Spea2Result<Permutation>,
    /// Engine cache counters of the run — the hit rate shows how many
    /// genome evaluations were answered without re-running the RTA.
    pub cache: CacheStats,
}

/// Runs the SPEA2 identifier optimization.
///
/// # Panics
///
/// Panics if `config.weights` does not match
/// `config.eval_ratios.len() + 1` or the network has no messages.
pub fn optimize_can_ids(net: &CanNetwork, config: &OptimizeIdsConfig) -> IdOptimizationResult {
    assert!(!net.messages().is_empty(), "network has no messages");
    assert_eq!(
        config.weights.len(),
        config.eval_ratios.len() + 1,
        "one weight per loss ratio plus one for robustness"
    );
    let problem = CanIdProblem::new(net, config.scenario.clone(), config.eval_ratios.clone())
        .with_evaluator(Evaluator::builder().parallelism(config.parallelism).build());
    let result = optimize(&problem, &config.spea2);
    // Selection is lexicographic in the first objective (loss at the
    // design point — the paper's non-negotiable "not a single message"
    // criterion), then weighted over the remaining objectives.
    let min_first = result
        .archive
        .iter()
        .map(|ind| ind.objectives[0])
        .fold(f64::INFINITY, f64::min);
    // SPEA2 always returns a non-empty archive for a non-empty
    // population, and the message-count assert above rules that out.
    #[allow(clippy::expect_used)]
    let best = result
        .archive
        .iter()
        .filter(|ind| ind.objectives[0] <= min_first)
        .map(|ind| {
            let score: f64 = ind
                .objectives
                .iter()
                .zip(&config.weights)
                .map(|(o, w)| o * w)
                .sum();
            (ind, score)
        })
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(ind, _)| ind)
        .expect("archive is never empty");
    let permutation = best.genome.clone();
    let objectives = best.objectives.clone();
    let optimized = problem.apply(&permutation);
    IdOptimizationResult {
        optimized,
        permutation,
        objectives,
        archive: result,
        cache: problem.evaluator().stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carta_can::controller::ControllerType;
    use carta_can::frame::Dlc;
    use carta_can::message::CanMessage;
    use carta_can::network::Node;
    use carta_core::time::Time;
    use carta_explore::sweeps::Sweeps;

    /// A deliberately inverted network: the fastest message has the
    /// weakest identifier. Chosen so that the inversion loses messages
    /// at 25 % jitter under the worst-case scenario while the
    /// rate-monotonic assignment is loss-free.
    fn inverted_net() -> CanNetwork {
        let mut net = CanNetwork::new(250_000);
        let a = net.add_node(Node::new("A", ControllerType::FullCan));
        let periods = [100u64, 100, 50, 50, 20, 20, 10, 10, 5, 5]; // slowest gets 0x100
        for (k, period) in periods.into_iter().enumerate() {
            net.add_message(CanMessage::new(
                format!("m{k}"),
                carta_can::message::CanId::standard(0x100 + 16 * k as u32).expect("valid"),
                Dlc::new(8),
                Time::from_ms(period),
                Time::ZERO,
                a,
            ));
        }
        net
    }

    fn quick_config() -> OptimizeIdsConfig {
        OptimizeIdsConfig {
            spea2: Spea2Config {
                population: 12,
                archive: 6,
                generations: 6,
                ..Spea2Config::default()
            },
            eval_ratios: vec![0.25],
            weights: vec![100.0, 1.0],
            ..OptimizeIdsConfig::default()
        }
    }

    #[test]
    fn permutation_application_redistributes_pool() {
        let net = inverted_net();
        let problem = CanIdProblem::new(&net, Scenario::worst_case(), vec![0.25]);
        let rm = problem.rate_monotonic();
        let optimized = problem.apply(&rm);
        // A 5 ms message (index 8 or 9) now holds the strongest ID.
        assert_eq!(optimized.messages()[8].id.raw(), 0x100);
        // Pool is preserved as a set.
        let mut before: Vec<u32> = net.messages().iter().map(|m| m.id.raw()).collect();
        let mut after: Vec<u32> = optimized.messages().iter().map(|m| m.id.raw()).collect();
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after);
        optimized.validate().expect("still valid");
    }

    #[test]
    fn optimization_removes_loss_at_design_point() {
        let net = inverted_net();
        let eval = Evaluator::default();
        let before = eval
            .loss_vs_jitter(&net, &Scenario::worst_case(), &[0.25])
            .expect("valid");
        let result = optimize_can_ids(&net, &quick_config());
        let after = eval
            .loss_vs_jitter(&result.optimized, &Scenario::worst_case(), &[0.25])
            .expect("valid");
        assert!(
            after.points[0].missed <= before.points[0].missed,
            "optimizer must not make things worse"
        );
        // The inverted net loses messages at 25 %; the optimum does not.
        assert!(before.points[0].missed > 0, "test net must start lossy");
        assert_eq!(after.points[0].missed, 0, "optimum should be loss-free");
        assert_eq!(result.objectives[0], 0.0);
        // Genomes recur across generations (seeds, converged offspring):
        // the engine cache must have answered a good share of them.
        assert!(
            result.cache.hits > 0,
            "expected cache hits across generations: {:?}",
            result.cache
        );
    }

    #[test]
    fn failed_candidates_get_finite_worst_rank_fitness() {
        use carta_engine::prelude::FaultPlan;
        let net = inverted_net();
        let problem = CanIdProblem::new(&net, Scenario::worst_case(), vec![0.25]).with_evaluator(
            Evaluator::builder()
                .jobs(1)
                .faults(FaultPlan {
                    panic_at: Some(0),
                    ..FaultPlan::default()
                })
                .build(),
        );
        let rm = problem.rate_monotonic();
        let faulted = problem.evaluate(&rm);
        assert!(
            faulted.iter().all(|o| o.is_finite()),
            "fitness must stay finite under faults: {faulted:?}"
        );
        let healthy = problem.evaluate(&rm);
        for (f, h) in faulted.iter().zip(&healthy) {
            assert!(f > h, "faulted rank {f} must be worse than healthy {h}");
        }
    }

    #[test]
    fn optimizer_is_deterministic() {
        let net = inverted_net();
        let a = optimize_can_ids(&net, &quick_config());
        let b = optimize_can_ids(&net, &quick_config());
        assert_eq!(a.permutation, b.permutation);
        assert_eq!(a.objectives, b.objectives);
    }

    #[test]
    #[should_panic(expected = "one weight per loss ratio")]
    fn weight_arity_checked() {
        let net = inverted_net();
        let mut cfg = quick_config();
        cfg.weights = vec![1.0];
        cfg.eval_ratios = vec![0.25, 0.5];
        let _ = optimize_can_ids(&net, &cfg);
    }
}
