//! Replayable counterexample files.
//!
//! When the fuzz runner (or the differential oracle) finds a violation
//! it shrinks the case and serializes the minimal network — together
//! with the law name, the originating seed and the error model — as a
//! small JSON document (schema `carta.repro.v1`). The file is
//! self-contained: [`Repro::from_json`] followed by [`Repro::replay`]
//! re-runs the exact failing check without the generator.

use crate::laws::{law_by_name, LawCase};
use crate::oracle::Violation;
use crate::runner::UnknownLawError;
use carta_can::backend::{BackendConfig, CanFd};
use carta_can::controller::ControllerType;
use carta_can::frame::{Dlc, FrameKind};
use carta_can::message::{CanId, CanMessage, DeadlinePolicy};
use carta_can::network::{CanNetwork, Node};
use carta_core::event_model::{ActivationKind, EventModel};
use carta_core::time::Time;
use carta_engine::prelude::{ErrorSpec, Evaluator};
use carta_obs::json::{parse, ObjectBuilder, Value};
use std::fmt;

/// Schema identifier written into every repro document.
pub const SCHEMA: &str = "carta.repro.v1";

/// A minimal, replayable counterexample for one law.
#[derive(Debug, Clone, PartialEq)]
pub struct Repro {
    /// Name of the violated law (see [`crate::laws::law_names`]).
    pub law: String,
    /// Seed the failing case originated from.
    pub seed: u64,
    /// Error model the case ran under (after shrinking).
    pub errors: ErrorSpec,
    /// Human-readable description of the violation.
    pub violation: String,
    /// Number of accepted shrink steps that led to this network.
    pub shrink_steps: u64,
    /// The shrunk network.
    pub network: CanNetwork,
}

/// Failure to decode a repro document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReproError(String);

impl ReproError {
    fn new(message: impl Into<String>) -> Self {
        ReproError(message.into())
    }
}

impl fmt::Display for ReproError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid repro: {}", self.0)
    }
}

impl std::error::Error for ReproError {}

/// Failure to replay a decoded repro: either the named law is no longer
/// in the catalogue, or the defect still reproduces.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayError {
    /// The repro names a law that is not in the catalogue. Replaying
    /// under a *different* check than the one that produced the file
    /// would be silently misleading, so this is a hard error listing
    /// the known laws.
    UnknownLaw(UnknownLawError),
    /// The law ran and the defect still reproduces.
    Violation(Violation),
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::UnknownLaw(e) => e.fmt(f),
            ReplayError::Violation(v) => v.fmt(f),
        }
    }
}

impl std::error::Error for ReplayError {}

impl Repro {
    /// A stable, filesystem-friendly name for this repro.
    pub fn file_name(&self) -> String {
        format!("{}-seed{}.json", self.law, self.seed)
    }

    /// Re-runs the failing check on the embedded network, dispatching
    /// to the named law.
    ///
    /// # Errors
    ///
    /// Returns [`ReplayError::UnknownLaw`] (listing the catalogue) when
    /// the law name is not recognized — a repro must replay under
    /// exactly the check that produced it — and
    /// [`ReplayError::Violation`] if the defect still reproduces.
    pub fn replay(&self) -> Result<(), ReplayError> {
        let law = law_by_name(&self.law).ok_or_else(|| {
            ReplayError::UnknownLaw(UnknownLawError {
                name: self.law.clone(),
            })
        })?;
        let eval = Evaluator::default();
        let case = LawCase {
            seed: self.seed,
            errors: self.errors,
        };
        law.check(&self.network, &case, &eval)
            .map_err(ReplayError::Violation)
    }

    /// Serializes the repro as a `carta.repro.v1` JSON document.
    pub fn to_json(&self) -> String {
        let nodes: Vec<String> = self
            .network
            .nodes()
            .iter()
            .map(|n| {
                let b = ObjectBuilder::new().string("name", &n.name);
                match n.controller {
                    ControllerType::FullCan => b.string("controller", "full"),
                    ControllerType::BasicCan => b.string("controller", "basic"),
                    ControllerType::FifoQueue { depth } => {
                        b.string("controller", "fifo").uint("depth", depth as u64)
                    }
                }
                .build()
            })
            .collect();
        let messages: Vec<String> = self
            .network
            .messages()
            .iter()
            .map(|m| {
                let b = ObjectBuilder::new()
                    .string("name", &m.name)
                    .uint("id", u64::from(m.id.raw()))
                    .string(
                        "frame",
                        match m.id.kind() {
                            FrameKind::Standard => "standard",
                            FrameKind::Extended => "extended",
                        },
                    )
                    .uint("dlc", u64::from(m.dlc.bytes()))
                    .string(
                        "activation",
                        match m.activation.kind() {
                            ActivationKind::Periodic => "periodic",
                            ActivationKind::Sporadic => "sporadic",
                        },
                    )
                    .uint("period_ns", m.activation.period().as_ns())
                    .uint("jitter_ns", m.activation.jitter().as_ns())
                    .uint("dmin_ns", m.activation.dmin().as_ns())
                    .uint("sender", m.sender as u64);
                match m.deadline {
                    DeadlinePolicy::Period => b.string("deadline", "period"),
                    DeadlinePolicy::MinReArrival => b.string("deadline", "min_rearrival"),
                    DeadlinePolicy::Explicit(t) => b
                        .string("deadline", "explicit")
                        .uint("deadline_ns", t.as_ns()),
                }
                .build()
            })
            .collect();
        // The backend is only written for non-classic buses, so every
        // pre-FD `carta.repro.v1` document stays byte-identical and
        // decodes as classic CAN.
        let network = match self.network.backend() {
            BackendConfig::Can => ObjectBuilder::new().uint("bit_rate", self.network.bit_rate()),
            BackendConfig::CanFd(fd) => ObjectBuilder::new()
                .uint("bit_rate", self.network.bit_rate())
                .string("backend", "can-fd")
                .uint("data_ratio", u64::from(fd.data_ratio)),
        }
        .raw("nodes", &format!("[{}]", nodes.join(",")))
        .raw("messages", &format!("[{}]", messages.join(",")))
        .build();
        let errors = match self.errors {
            ErrorSpec::None => ObjectBuilder::new().string("kind", "none").build(),
            ErrorSpec::Sporadic { interval } => ObjectBuilder::new()
                .string("kind", "sporadic")
                .uint("interval_ns", interval.as_ns())
                .build(),
            ErrorSpec::Burst {
                burst_len,
                intra_gap,
                inter_burst,
            } => ObjectBuilder::new()
                .string("kind", "burst")
                .uint("burst_len", burst_len)
                .uint("intra_gap_ns", intra_gap.as_ns())
                .uint("inter_burst_ns", inter_burst.as_ns())
                .build(),
        };
        ObjectBuilder::new()
            .string("schema", SCHEMA)
            .string("law", &self.law)
            // Seeds use the full u64 range; a JSON number would go
            // through f64 on parse and lose bits, so store a string.
            .string("seed", &self.seed.to_string())
            .raw("errors", &errors)
            .string("violation", &self.violation)
            .uint("shrink_steps", self.shrink_steps)
            .raw("network", &network)
            .build()
    }

    /// Decodes a `carta.repro.v1` document.
    ///
    /// # Errors
    ///
    /// Returns [`ReproError`] on malformed JSON, a wrong schema tag or
    /// out-of-range fields.
    pub fn from_json(input: &str) -> Result<Self, ReproError> {
        let doc = parse(input).map_err(|e| ReproError::new(e.to_string()))?;
        let schema = req_str(&doc, "schema")?;
        if schema != SCHEMA {
            return Err(ReproError::new(format!(
                "unsupported schema `{schema}` (expected `{SCHEMA}`)"
            )));
        }
        let seed: u64 = req_str(&doc, "seed")?
            .parse()
            .map_err(|_| ReproError::new("`seed` is not a u64"))?;
        let errors = decode_errors(req(&doc, "errors")?)?;
        let network = decode_network(req(&doc, "network")?)?;
        Ok(Repro {
            law: req_str(&doc, "law")?.to_string(),
            seed,
            errors,
            violation: req_str(&doc, "violation")?.to_string(),
            shrink_steps: req_u64(&doc, "shrink_steps")?,
            network,
        })
    }
}

fn req<'a>(v: &'a Value, key: &str) -> Result<&'a Value, ReproError> {
    v.get(key)
        .ok_or_else(|| ReproError::new(format!("missing `{key}`")))
}

fn req_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, ReproError> {
    req(v, key)?
        .as_str()
        .ok_or_else(|| ReproError::new(format!("`{key}` is not a string")))
}

fn req_u64(v: &Value, key: &str) -> Result<u64, ReproError> {
    let n = req(v, key)?
        .as_f64()
        .ok_or_else(|| ReproError::new(format!("`{key}` is not a number")))?;
    if n < 0.0 || n.fract() != 0.0 || n >= 9_007_199_254_740_992.0 {
        return Err(ReproError::new(format!(
            "`{key}` is not an exact unsigned integer"
        )));
    }
    Ok(n as u64)
}

fn req_arr<'a>(v: &'a Value, key: &str) -> Result<&'a [Value], ReproError> {
    match req(v, key)? {
        Value::Arr(items) => Ok(items),
        _ => Err(ReproError::new(format!("`{key}` is not an array"))),
    }
}

fn decode_errors(v: &Value) -> Result<ErrorSpec, ReproError> {
    match req_str(v, "kind")? {
        "none" => Ok(ErrorSpec::None),
        "sporadic" => Ok(ErrorSpec::Sporadic {
            interval: Time::from_ns(req_u64(v, "interval_ns")?),
        }),
        "burst" => Ok(ErrorSpec::Burst {
            burst_len: req_u64(v, "burst_len")?,
            intra_gap: Time::from_ns(req_u64(v, "intra_gap_ns")?),
            inter_burst: Time::from_ns(req_u64(v, "inter_burst_ns")?),
        }),
        other => Err(ReproError::new(format!("unknown error kind `{other}`"))),
    }
}

fn decode_network(v: &Value) -> Result<CanNetwork, ReproError> {
    let backend = decode_backend(v)?;
    let mut net = CanNetwork::new(req_u64(v, "bit_rate")?).with_backend(backend);
    for node in req_arr(v, "nodes")? {
        let controller = match req_str(node, "controller")? {
            "full" => ControllerType::FullCan,
            "basic" => ControllerType::BasicCan,
            "fifo" => ControllerType::FifoQueue {
                depth: req_u64(node, "depth")?
                    .try_into()
                    .map_err(|_| ReproError::new("fifo `depth` out of range"))?,
            },
            other => return Err(ReproError::new(format!("unknown controller `{other}`"))),
        };
        net.add_node(Node::new(req_str(node, "name")?, controller));
    }
    let node_count = net.nodes().len();
    for m in req_arr(v, "messages")? {
        let raw =
            u32::try_from(req_u64(m, "id")?).map_err(|_| ReproError::new("`id` out of range"))?;
        let id = match req_str(m, "frame")? {
            "standard" => CanId::standard(raw),
            "extended" => CanId::extended(raw),
            other => return Err(ReproError::new(format!("unknown frame kind `{other}`"))),
        }
        .map_err(|e| ReproError::new(e.to_string()))?;
        let kind = match req_str(m, "activation")? {
            "periodic" => ActivationKind::Periodic,
            "sporadic" => ActivationKind::Sporadic,
            other => return Err(ReproError::new(format!("unknown activation `{other}`"))),
        };
        let activation = EventModel::new(
            kind,
            Time::from_ns(req_u64(m, "period_ns")?),
            Time::from_ns(req_u64(m, "jitter_ns")?),
            Time::from_ns(req_u64(m, "dmin_ns")?),
        );
        let deadline = match req_str(m, "deadline")? {
            "period" => DeadlinePolicy::Period,
            "min_rearrival" => DeadlinePolicy::MinReArrival,
            "explicit" => DeadlinePolicy::Explicit(Time::from_ns(req_u64(m, "deadline_ns")?)),
            other => return Err(ReproError::new(format!("unknown deadline `{other}`"))),
        };
        let sender = req_u64(m, "sender")? as usize;
        if sender >= node_count {
            return Err(ReproError::new(format!(
                "message sender {sender} exceeds node count {node_count}"
            )));
        }
        let dlc = req_u64(m, "dlc")?;
        let max_payload = backend.backend().max_payload_bytes();
        if !(1..=u64::from(max_payload)).contains(&dlc) {
            return Err(ReproError::new(format!(
                "dlc {dlc} out of range 1..={max_payload} for backend `{backend}`"
            )));
        }
        let dlc = match backend {
            BackendConfig::Can => Dlc::new(dlc as u8),
            BackendConfig::CanFd(_) => {
                let rounded = Dlc::fd(dlc as u8);
                if u64::from(rounded.bytes()) != dlc {
                    return Err(ReproError::new(format!(
                        "dlc {dlc} is not on the FD payload step table"
                    )));
                }
                rounded
            }
        };
        net.add_message(CanMessage {
            name: req_str(m, "name")?.to_string(),
            id,
            dlc,
            activation,
            deadline,
            sender,
        });
    }
    Ok(net)
}

/// Reads the optional `backend` field of a network object; absent
/// means classic CAN (the schema predates backends).
fn decode_backend(v: &Value) -> Result<BackendConfig, ReproError> {
    let Some(name) = v.get("backend") else {
        return Ok(BackendConfig::Can);
    };
    match name.as_str() {
        Some("can") => Ok(BackendConfig::Can),
        Some("can-fd") => {
            let ratio = match v.get("data_ratio") {
                None => CanFd::DEFAULT_DATA_RATIO,
                Some(_) => u32::try_from(req_u64(v, "data_ratio")?)
                    .map_err(|_| ReproError::new("`data_ratio` out of range"))?,
            };
            if ratio == 0 {
                return Err(ReproError::new("`data_ratio` must be positive"));
            }
            Ok(BackendConfig::CanFd(CanFd::new(ratio)))
        }
        Some(other) => Err(ReproError::new(format!("unknown backend `{other}`"))),
        None => Err(ReproError::new("`backend` is not a string")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{random_network, NetShape};

    fn sample(seed: u64) -> Repro {
        Repro {
            law: "sim-never-exceeds-analysis".into(),
            seed,
            errors: ErrorSpec::Burst {
                burst_len: 2,
                intra_gap: Time::from_us(200),
                inter_burst: Time::from_ms(25),
            },
            violation: "max_response 1.2ms > wcrt 1.1ms for `m0`".into(),
            shrink_steps: 7,
            network: random_network(&NetShape::mixed(), seed),
        }
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        for seed in [0u64, 3, u64::MAX] {
            let repro = sample(seed);
            let decoded = Repro::from_json(&repro.to_json()).expect("roundtrip");
            assert_eq!(decoded, repro);
        }
    }

    #[test]
    fn fd_networks_roundtrip_with_their_backend() {
        for seed in [0u64, 7, 19] {
            let mut repro = sample(seed);
            repro.network = random_network(&NetShape::fd(), seed);
            let json = repro.to_json();
            assert!(json.contains("\"backend\":\"can-fd\""));
            assert!(json.contains("\"data_ratio\":4"));
            let decoded = Repro::from_json(&json).expect("FD roundtrip");
            assert_eq!(decoded, repro);
            assert_eq!(decoded.network.backend(), BackendConfig::can_fd());
        }
        // Classic documents never mention the backend, so files written
        // before the field existed stay decodable (and ours stay
        // readable by older tools).
        assert!(!sample(3).to_json().contains("backend"));
    }

    #[test]
    fn fd_payloads_off_the_step_table_are_rejected() {
        let mut repro = sample(2);
        repro.network = random_network(&NetShape::fd().messages(1), 4);
        repro.network.messages_mut()[0].dlc = Dlc::fd(16);
        let doc = repro.to_json().replace("\"dlc\":16", "\"dlc\":13");
        let err = Repro::from_json(&doc).expect_err("13 is not an FD step");
        assert!(err.to_string().contains("step table"));
        let doc = repro.to_json().replace("\"dlc\":16", "\"dlc\":65");
        let err = Repro::from_json(&doc).expect_err("65 exceeds FD payloads");
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn replay_of_a_sound_network_passes() {
        let mut repro = sample(5);
        repro.errors = ErrorSpec::None;
        repro.replay().expect("sound network replays clean");
        // Unknown law names are a typed error listing the catalogue —
        // never a silent fallback to some other check.
        repro.law = "retired-law".into();
        let err = repro.replay().expect_err("unknown law is rejected");
        assert_eq!(
            err,
            ReplayError::UnknownLaw(UnknownLawError {
                name: "retired-law".into()
            })
        );
        assert!(err.to_string().contains("unknown law `retired-law`"));
        assert!(err.to_string().contains("jitter-monotonicity"));
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(Repro::from_json("{").is_err());
        assert!(Repro::from_json("{\"schema\":\"carta.repro.v0\"}")
            .unwrap_err()
            .to_string()
            .contains("unsupported schema"));
        let mut repro = sample(1);
        repro.seed = 42;
        let doc = repro.to_json().replace("\"seed\":\"42\"", "\"seed\":\"x\"");
        assert!(Repro::from_json(&doc).is_err());
    }

    #[test]
    fn file_names_are_stable() {
        assert_eq!(
            sample(9).file_name(),
            "sim-never-exceeds-analysis-seed9.json"
        );
    }
}
