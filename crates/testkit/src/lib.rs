//! # carta-testkit
//!
//! The single source of randomized verification across the carta
//! workspace. The paper's core claim is a *soundness* claim — analytic
//! worst-case response times must dominate anything a real bus (or a
//! faithful simulator) can produce — and this crate turns that claim,
//! plus the monotonicity/dominance structure behind it, into reusable
//! machinery:
//!
//! * [`gen`] — seeded, size-parameterized generators for networks,
//!   gateway chains, task sets and engine variants, exposed both as
//!   plain [`rand::rngs::StdRng`] constructors and as `proptest`
//!   strategies,
//! * [`oracle`] — the differential [`DiffOracle`](oracle::DiffOracle)
//!   running `carta-sim` against the analysis (routed through
//!   [`Evaluator::evaluate_batch`](carta_engine::evaluator::Evaluator)
//!   so the engine cache itself is under test), with greedy shrinking
//!   to a minimal counterexample,
//! * [`laws`] — the metamorphic [`Law`](laws::Law) catalogue (jitter
//!   monotonicity, priority-raise dominance, error-model dominance,
//!   bit-rate scaling, incremental == full, overlay == rebuilt, load
//!   vs schedulability, sim ≤ analysis, prob ≤ worst case),
//! * [`chaos`] — the fault-injection harness:
//!   [`FaultPlan`](carta_engine::prelude::FaultPlan)-armed evaluators
//!   plus the resilience laws `degraded-is-sound` and
//!   `fault-isolation`,
//! * [`repro`] — replayable JSON counterexample files
//!   (`carta.repro.v1`) with the originating seed,
//! * [`runner`] — the fuzz loop behind the `carta fuzz` CLI command,
//!   reporting `fuzz.*` metrics through `carta-obs`.
//!
//! ```
//! use carta_testkit::prelude::*;
//!
//! let eval = Evaluator::default();
//! let net = random_network(&NetShape::bus(), 42);
//! DiffOracle::default()
//!     .check(&eval, &net, ErrorSpec::None, 42)
//!     .expect("analysis dominates simulation");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chaos;
pub mod gen;
pub mod laws;
pub mod oracle;
pub mod repro;
pub mod runner;

/// Convenient single import for the common types of this crate.
pub mod prelude {
    pub use crate::chaos::{
        chaotic_evaluator, flooded, DegradedIsSound, FaultIsolation, DEGRADED_LAW, ISOLATION_LAW,
    };
    pub use crate::gen::{
        chains, networks, random_chain, random_network, random_scenario, random_task_set,
        random_variant, GatewayChain, NetShape,
    };
    pub use crate::laws::{
        all_laws, law_by_name, law_names, pointwise_le, wcrts, Law, LawCase,
        ProbDominatesWorstCase, PROB_LAW,
    };
    pub use crate::oracle::{shrink_case, DiffOracle, Shrunk, Violation, ORACLE_LAW};
    pub use crate::repro::{ReplayError, Repro};
    pub use crate::runner::{run_fuzz, FuzzConfig, FuzzReport, LawOutcome, UnknownLawError};
    pub use carta_engine::prelude::{
        BaseSystem, ErrorSpec, Evaluator, FaultPlan, Parallelism, Scenario, SystemVariant,
    };
}
