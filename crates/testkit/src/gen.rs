//! Seeded scenario generators.
//!
//! Every randomized test in the workspace used to carry its own copy of
//! a `random_network_with` helper; the distributions live here once,
//! parameterized by a [`NetShape`]. All constructors are pure functions
//! of their seed, so any generated system can be rebuilt from the seed
//! alone — the property the repro files and the proptest seed hints
//! rely on.

use carta_can::backend::BackendConfig;
use carta_can::controller::ControllerType;
use carta_can::frame::Dlc;
use carta_can::message::{CanId, CanMessage};
use carta_can::network::{CanNetwork, Node};
use carta_core::time::Time;
use carta_ecu::prelude::{Priority, Task};
use carta_engine::prelude::{BaseSystem, JitterOverlay, Scenario, SystemVariant};
use proptest::test_runner::TestRng;
use proptest::Strategy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Exclusive upper bound on the seeds drawn by the proptest strategies
/// ([`networks`], [`chains`]), matching the `seed in 0u64..10_000`
/// ranges the migrated tests used.
pub const STRATEGY_SEEDS: u64 = 10_000;

/// The size and distribution parameters of a generated [`CanNetwork`].
///
/// Ranges are inclusive on both ends; `max_jitter_pct` is an exclusive
/// upper bound on the per-message jitter (as an integer percentage of
/// its period), with `0` meaning jitter-free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetShape {
    /// Candidate bus bit rates (bits/s), sampled uniformly.
    pub bit_rates: Vec<u64>,
    /// Inclusive range of node counts.
    pub node_range: (usize, usize),
    /// Inclusive range of message counts.
    pub message_range: (usize, usize),
    /// Candidate activation periods in milliseconds.
    pub periods_ms: Vec<u64>,
    /// Inclusive range of payload lengths in bytes.
    pub dlc_range: (u8, u8),
    /// Exclusive upper bound on jitter as a percentage of the period.
    pub max_jitter_pct: u64,
    /// Mix fullCAN, basicCAN and FIFO controllers (fullCAN-only when
    /// false).
    pub mixed_controllers: bool,
    /// First CAN identifier handed out.
    pub id_base: u32,
    /// Identifier distance between consecutive messages.
    pub id_stride: u32,
    /// Bus backend of the generated networks. Payloads are built with
    /// [`Dlc::fd`] on a CAN FD backend (rounding up to the FD step
    /// table) and [`Dlc::new`] on classic CAN, so `dlc_range` may span
    /// the full 1–64 bytes only when the backend allows it.
    pub backend: BackendConfig,
}

impl NetShape {
    /// The general single-bus corpus: 125/250/500 kbit/s, 2–4 fullCAN
    /// nodes, 3–9 messages with periods of 5–100 ms and up to 40 %
    /// jitter (the historical `tests/sim_vs_analysis.rs` distribution).
    pub fn bus() -> Self {
        NetShape {
            bit_rates: vec![125_000, 250_000, 500_000],
            node_range: (2, 4),
            message_range: (3, 9),
            periods_ms: vec![5, 10, 20, 50, 100],
            dlc_range: (1, 8),
            max_jitter_pct: 40,
            mixed_controllers: false,
            id_base: 0x100,
            id_stride: 8,
            backend: BackendConfig::Can,
        }
    }

    /// [`NetShape::bus`] with mixed fullCAN/basicCAN/FIFO controllers,
    /// exercising the conservative controller analysis against the
    /// register/queue-faithful simulator.
    pub fn mixed() -> Self {
        NetShape {
            mixed_controllers: true,
            ..Self::bus()
        }
    }

    /// Two fullCAN nodes on a slow bus, moderate jitter — the
    /// historical `tests/analysis_properties.rs` distribution for
    /// monotonicity checks.
    pub fn two_node() -> Self {
        NetShape {
            bit_rates: vec![125_000, 250_000],
            node_range: (2, 2),
            message_range: (3, 9),
            periods_ms: vec![5, 10, 20, 50],
            dlc_range: (1, 8),
            max_jitter_pct: 30,
            mixed_controllers: false,
            id_base: 0x100,
            id_stride: 16,
            backend: BackendConfig::Can,
        }
    }

    /// Small, tight nets on a 100 kbit/s bus: four messages whose
    /// periods barely fit, so feasible and infeasible identifier
    /// assignments both occur — the brute-force-vs-Audsley corpus.
    pub fn tight() -> Self {
        NetShape {
            bit_rates: vec![100_000],
            node_range: (1, 1),
            message_range: (4, 4),
            periods_ms: vec![5, 6, 8, 12],
            dlc_range: (4, 8),
            max_jitter_pct: 35,
            mixed_controllers: false,
            id_base: 0x100,
            id_stride: 16,
            backend: BackendConfig::Can,
        }
    }

    /// [`NetShape::bus`] on the default CAN FD backend with payloads
    /// spanning the full 1–64 byte FD step table.
    pub fn fd() -> Self {
        NetShape {
            dlc_range: (1, 64),
            backend: BackendConfig::can_fd(),
            ..Self::bus()
        }
    }

    /// Pins the message count to exactly `count`.
    pub fn messages(mut self, count: usize) -> Self {
        self.message_range = (count, count);
        self
    }

    /// Replaces the bus backend. On a CAN FD backend the payload range
    /// widens to the full FD step table (1–64 bytes) unless the shape
    /// already asked for something narrower than the classic 1–8.
    pub fn with_backend(mut self, backend: BackendConfig) -> Self {
        if !matches!(backend, BackendConfig::Can) && self.dlc_range == (1, 8) {
            self.dlc_range = (1, 64);
        }
        self.backend = backend;
        self
    }
}

/// Builds a random, structurally valid network from a seed and shape.
/// Deterministic: the same `(shape, seed)` pair always yields the same
/// network.
pub fn random_network(shape: &NetShape, seed: u64) -> CanNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let bit_rate = shape.bit_rates[rng.gen_range(0..shape.bit_rates.len())];
    let mut net = CanNetwork::new(bit_rate).with_backend(shape.backend);
    let nodes = rng.gen_range(shape.node_range.0..=shape.node_range.1);
    for n in 0..nodes {
        let controller = if shape.mixed_controllers {
            match rng.gen_range(0..3) {
                0 => ControllerType::FullCan,
                1 => ControllerType::BasicCan,
                _ => ControllerType::FifoQueue {
                    depth: rng.gen_range(2..5),
                },
            }
        } else {
            ControllerType::FullCan
        };
        net.add_node(Node::new(format!("N{n}"), controller));
    }
    let count = rng.gen_range(shape.message_range.0..=shape.message_range.1);
    for k in 0..count {
        let period = Time::from_ms(shape.periods_ms[rng.gen_range(0..shape.periods_ms.len())]);
        let jitter = if shape.max_jitter_pct == 0 {
            Time::ZERO
        } else {
            period.percent(rng.gen_range(0..shape.max_jitter_pct))
        };
        // Draw first, then round: the classic path keeps its exact
        // historical RNG stream, and FD payloads snap up to the step
        // table without extra draws.
        let bytes = rng.gen_range(shape.dlc_range.0..=shape.dlc_range.1);
        let dlc = if matches!(shape.backend, BackendConfig::Can) {
            Dlc::new(bytes)
        } else {
            Dlc::fd(bytes)
        };
        net.add_message(CanMessage::new(
            format!("m{k}"),
            CanId::standard(shape.id_base + shape.id_stride * k as u32).expect("valid id"),
            dlc,
            period,
            jitter,
            rng.gen_range(0..nodes),
        ));
    }
    net
}

/// A two-bus gateway topology: the first message of `bus1` (`fwd_src`)
/// is routed through a gateway task onto the first message of `bus2`
/// (`fwd_dst`); the rest is background traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct GatewayChain {
    /// The upstream bus (500 kbit/s; carries `fwd_src`).
    pub bus1: CanNetwork,
    /// The downstream bus (250 kbit/s; carries `fwd_dst`).
    pub bus2: CanNetwork,
    /// Best-case gateway processing delay.
    pub gw_c_min: Time,
    /// Worst-case gateway processing delay.
    pub gw_c_max: Time,
}

impl GatewayChain {
    /// The gateway's routing task with this chain's processing budget.
    pub fn route_task(&self) -> Task {
        Task::periodic(
            "route",
            Priority(1),
            Time::from_ms(10),
            self.gw_c_min,
            self.gw_c_max,
        )
    }
}

/// Builds a random gateway chain (the historical
/// `tests/system_sim_vs_analysis.rs` distribution): a jittery forwarded
/// stream plus 2–4 upstream and 1–3 downstream background messages.
pub fn random_chain(seed: u64) -> GatewayChain {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut bus1 = CanNetwork::new(500_000);
    let ems = bus1.add_node(Node::new("EMS", ControllerType::FullCan));
    bus1.add_message(CanMessage::new(
        "fwd_src",
        CanId::standard(0x120).expect("valid"),
        Dlc::new(8),
        Time::from_ms(10),
        Time::from_ms(rng.gen_range(0..3)),
        ems,
    ));
    for k in 0..rng.gen_range(2..5) {
        let period = Time::from_ms(*[5u64, 10, 20].get(rng.gen_range(0..3usize)).unwrap());
        bus1.add_message(CanMessage::new(
            format!("bg1_{k}"),
            CanId::standard(0x200 + 16 * k).expect("valid"),
            Dlc::new(rng.gen_range(2..=8)),
            period,
            period.percent(rng.gen_range(0..25)),
            ems,
        ));
    }

    let mut bus2 = CanNetwork::new(250_000);
    let gw = bus2.add_node(Node::new("GW", ControllerType::FullCan));
    let esp = bus2.add_node(Node::new("ESP", ControllerType::FullCan));
    bus2.add_message(CanMessage::new(
        "fwd_dst",
        CanId::standard(0x130).expect("valid"),
        Dlc::new(8),
        Time::from_ms(10),
        Time::ZERO, // derived by propagation
        gw,
    ));
    for k in 0..rng.gen_range(1..4) {
        let period = Time::from_ms(*[10u64, 20, 50].get(rng.gen_range(0..3usize)).unwrap());
        bus2.add_message(CanMessage::new(
            format!("bg2_{k}"),
            CanId::standard(0x300 + 16 * k).expect("valid"),
            Dlc::new(rng.gen_range(2..=8)),
            period,
            period.percent(rng.gen_range(0..25)),
            esp,
        ));
    }
    GatewayChain {
        bus1,
        bus2,
        gw_c_min: Time::from_us(30),
        gw_c_max: Time::from_us(150),
    }
}

/// A random periodic ECU task set of `count` tasks whose total
/// utilization stays below one half (so generated systems remain in the
/// analyzable regime).
pub fn random_task_set(seed: u64, count: usize) -> Vec<Task> {
    assert!(count > 0, "task set must be non-empty");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7461_736b); // "task"
    (0..count)
        .map(|k| {
            let period = Time::from_ms(*[5u64, 10, 20, 50].get(rng.gen_range(0..4usize)).unwrap());
            let budget_us = (period.as_ns() / 1_000) / (2 * count as u64);
            let c_max = Time::from_us(rng.gen_range(50..budget_us.max(52)));
            let c_min = Time::from_us(rng.gen_range(10..=c_max.as_ns() / 1_000));
            Task::periodic(
                format!("t{k}"),
                Priority(k as u32 + 1),
                period,
                c_min,
                c_max,
            )
        })
        .collect()
}

/// A random named scenario (stuffing, error model, deadline override).
pub fn random_scenario(seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5ce0);
    match rng.gen_range(0..4) {
        0 => Scenario::best_case(),
        1 => Scenario::worst_case(),
        2 => Scenario::sporadic_errors(Time::from_ms(
            *[5u64, 10, 20, 50].get(rng.gen_range(0..4usize)).unwrap(),
        )),
        _ => Scenario::best_case_period_deadline(),
    }
}

/// A random [`SystemVariant`] over `base`: a random scenario plus,
/// each with probability one half, a jitter overlay and an identifier
/// permutation.
pub fn random_variant(base: &Arc<BaseSystem>, seed: u64) -> SystemVariant {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7a61);
    let mut variant = SystemVariant::new(Arc::clone(base), random_scenario(seed));
    if rng.gen_bool(0.5) {
        let overlay = match rng.gen_range(0..3) {
            0 => JitterOverlay::UniformRatio(rng.gen_range(0..=60) as f64 / 100.0),
            1 => JitterOverlay::AssumedUnknownRatio(rng.gen_range(0..=60) as f64 / 100.0),
            _ => JitterOverlay::Scale(rng.gen_range(0..=250) as f64 / 100.0),
        };
        variant = variant.with_jitter(overlay);
    }
    if rng.gen_bool(0.5) {
        let n = base.network().messages().len();
        variant = variant.with_permutation(Arc::new(random_permutation(&mut rng, n)));
    }
    variant
}

/// Fisher–Yates shuffle of `0..n`.
fn random_permutation(rng: &mut StdRng, n: usize) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        perm.swap(i, rng.gen_range(0..=i));
    }
    perm
}

/// Proptest strategy yielding `(seed, network)` pairs for a shape. The
/// seed is recorded through [`proptest::seeds`], so a failing property
/// prints it and `carta fuzz --seed <n>` can rebuild the exact network.
#[derive(Debug, Clone)]
pub struct NetworkStrategy {
    shape: NetShape,
}

/// Strategy over [`random_network`] draws for `shape`.
pub fn networks(shape: NetShape) -> NetworkStrategy {
    NetworkStrategy { shape }
}

impl Strategy for NetworkStrategy {
    type Value = (u64, CanNetwork);

    fn generate(&self, rng: &mut TestRng) -> (u64, CanNetwork) {
        let seed = rng.below(STRATEGY_SEEDS);
        proptest::seeds::record(seed);
        (seed, random_network(&self.shape, seed))
    }
}

/// Proptest strategy yielding `(seed, chain)` pairs; seeds are recorded
/// like [`networks`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ChainStrategy;

/// Strategy over [`random_chain`] draws.
pub fn chains() -> ChainStrategy {
    ChainStrategy
}

impl Strategy for ChainStrategy {
    type Value = (u64, GatewayChain);

    fn generate(&self, rng: &mut TestRng) -> (u64, GatewayChain) {
        let seed = rng.below(STRATEGY_SEEDS);
        proptest::seeds::record(seed);
        (seed, random_chain(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn networks_are_deterministic_and_valid() {
        for shape in [
            NetShape::bus(),
            NetShape::mixed(),
            NetShape::two_node(),
            NetShape::tight(),
            NetShape::fd(),
        ] {
            for seed in 0..24 {
                let net = random_network(&shape, seed);
                net.validate().expect("generated network is valid");
                assert_eq!(net, random_network(&shape, seed), "same seed, same net");
                assert!(net.messages().len() >= shape.message_range.0);
                assert!(net.messages().len() <= shape.message_range.1);
            }
        }
    }

    #[test]
    fn fd_shapes_carry_the_backend_and_step_table_payloads() {
        use carta_can::backend::FD_PAYLOAD_STEPS;
        for seed in 0..24 {
            let net = random_network(&NetShape::fd(), seed);
            assert_eq!(net.backend(), BackendConfig::can_fd());
            for m in net.messages() {
                assert!(
                    FD_PAYLOAD_STEPS.contains(&m.dlc.bytes()),
                    "payload {} is not an FD step",
                    m.dlc.bytes()
                );
            }
        }
        // The classic stream is untouched by the backend plumbing: a
        // bus-shaped FD net clamped back to 8-byte payloads draws the
        // same structure as the classic bus shape.
        let fd_small = NetShape {
            dlc_range: (1, 8),
            backend: BackendConfig::can_fd(),
            ..NetShape::bus()
        };
        for seed in 0..8 {
            let fd = random_network(&fd_small, seed);
            let classic = random_network(&NetShape::bus(), seed);
            assert_eq!(fd.clone().with_backend(BackendConfig::Can), classic);
        }
    }

    #[test]
    fn with_backend_widens_only_the_default_payload_range() {
        let fd = NetShape::bus().with_backend(BackendConfig::can_fd());
        assert_eq!(fd.dlc_range, (1, 64));
        let tight = NetShape::tight().with_backend(BackendConfig::can_fd());
        assert_eq!(tight.dlc_range, (4, 8));
        let classic = NetShape::bus().with_backend(BackendConfig::Can);
        assert_eq!(classic.dlc_range, (1, 8));
    }

    #[test]
    fn message_count_can_be_pinned() {
        let net = random_network(&NetShape::two_node().messages(6), 3);
        assert_eq!(net.messages().len(), 6);
        assert_eq!(net.nodes().len(), 2);
    }

    #[test]
    fn chains_are_deterministic_and_valid() {
        for seed in 0..12 {
            let chain = random_chain(seed);
            chain.bus1.validate().expect("bus1 valid");
            chain.bus2.validate().expect("bus2 valid");
            assert_eq!(chain, random_chain(seed));
            assert_eq!(chain.bus1.messages()[0].name, "fwd_src");
            assert_eq!(chain.bus2.messages()[0].name, "fwd_dst");
        }
    }

    #[test]
    fn task_sets_stay_under_half_utilization() {
        for seed in 0..12 {
            let tasks = random_task_set(seed, 5);
            assert_eq!(tasks.len(), 5);
            let u: f64 = tasks
                .iter()
                .map(|t| t.c_max.as_ns() as f64 / t.activation.period().as_ns() as f64)
                .sum();
            assert!(u < 0.5, "utilization {u} too high");
        }
    }

    #[test]
    fn variants_are_deterministic() {
        let base = BaseSystem::new(random_network(&NetShape::bus(), 5));
        for seed in 0..24 {
            let a = random_variant(&base, seed);
            let b = random_variant(&base, seed);
            assert_eq!(a.key(), b.key());
            a.materialize().validate().expect("variant stays valid");
        }
    }

    #[test]
    fn strategies_record_their_seeds() {
        proptest::seeds::reset();
        let mut rng = proptest::test_runner::TestRng::from_seed(11);
        let (seed, net) = networks(NetShape::bus()).generate(&mut rng);
        assert_eq!(net, random_network(&NetShape::bus(), seed));
        let (chain_seed, chain) = chains().generate(&mut rng);
        assert_eq!(chain, random_chain(chain_seed));
        assert_eq!(proptest::seeds::recorded(), vec![seed, chain_seed]);
        proptest::seeds::reset();
    }
}
