//! The differential sim-vs-analysis oracle and the greedy shrinker.
//!
//! The oracle evaluates a network twice through the engine — once
//! plainly, once through the identifier-permutation overlay that
//! exercises the incremental-RTA path — then simulates the same system
//! and checks the paper's soundness claim: nothing the simulator
//! observes may exceed the analytic bounds. A violation is shrunk
//! greedily (drop messages, zero jitter, shrink payloads, simplify the
//! error process) to a minimal counterexample and packaged as a
//! replayable [`Repro`].

use crate::repro::Repro;
use carta_can::controller::ControllerType;
use carta_can::frame::{Dlc, StuffingMode};
use carta_can::network::CanNetwork;
use carta_core::event_model::EventModel;
use carta_core::time::Time;
use carta_engine::prelude::{
    BaseSystem, DeadlineOverride, ErrorSpec, Evaluator, Scenario, SystemVariant,
};
use carta_sim::prelude::{
    simulate, BurstInjection, NoInjection, PeriodicInjection, SimConfig, SimStuffing,
};
use std::fmt;
use std::sync::Arc;

/// The law name under which the oracle reports violations (also a
/// member of [`crate::laws::all_laws`]).
pub const ORACLE_LAW: &str = "sim-never-exceeds-analysis";

/// A broken invariant: which law failed and how.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Name of the violated law.
    pub law: String,
    /// Human-readable description of the failure.
    pub detail: String,
}

impl Violation {
    /// Creates a violation of `law` with the given detail.
    pub fn new(law: impl Into<String>, detail: impl Into<String>) -> Self {
        Violation {
            law: law.into(),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.law, self.detail)
    }
}

impl std::error::Error for Violation {}

/// Differential oracle comparing the simulator against the analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiffOracle {
    /// Simulation horizon (longer horizons observe more instances).
    pub sim_horizon: Time,
}

impl Default for DiffOracle {
    fn default() -> Self {
        DiffOracle {
            sim_horizon: Time::from_s(3),
        }
    }
}

impl DiffOracle {
    /// Checks one network: analysis (plain and via the permutation
    /// overlay, both through [`Evaluator::evaluate_batch`] so the cache
    /// and incremental paths are under test) must dominate a seeded
    /// simulation.
    ///
    /// # Errors
    ///
    /// Returns the first [`Violation`] found.
    ///
    /// # Panics
    ///
    /// Panics if `net` fails validation — the oracle's contract is
    /// structurally valid inputs (everything [`crate::gen`] produces).
    pub fn check(
        &self,
        eval: &Evaluator,
        net: &CanNetwork,
        errors: ErrorSpec,
        seed: u64,
    ) -> Result<(), Violation> {
        let scenario = Scenario {
            name: "diff-oracle".into(),
            stuffing: StuffingMode::WorstCase,
            errors,
            deadline: DeadlineOverride::Keep,
        };
        let base = BaseSystem::new(net.clone());
        let plain = SystemVariant::new(Arc::clone(&base), scenario.clone());
        // The identity permutation materializes to the very same
        // network but routes the evaluation through the permutation /
        // incremental-RTA machinery — its report must be identical.
        let identity = Arc::new(net.priority_order());
        let permuted = SystemVariant::new(base, scenario).with_permutation(identity);
        let mut results = eval.evaluate_batch(&[plain, permuted]).into_iter();
        let report = results
            .next()
            .expect("batch of two")
            .expect("oracle networks are analyzable");
        let perm_report = results
            .next()
            .expect("batch of two")
            .expect("oracle networks are analyzable");
        for (a, b) in report.messages.iter().zip(perm_report.messages.iter()) {
            if a.outcome != b.outcome || a.blocking != b.blocking {
                return Err(Violation::new(
                    ORACLE_LAW,
                    format!(
                        "engine permutation path diverged for `{}`: {:?} vs {:?} (seed {seed})",
                        a.name, a.outcome, b.outcome
                    ),
                ));
            }
        }

        let sim_config = SimConfig {
            horizon: self.sim_horizon,
            seed,
            stuffing: SimStuffing::Random,
            record_trace: false,
        };
        // Injection processes stay within the analytical error model's
        // bound (periodic at interval + margin ≤ sporadic; the burst
        // process is the model's exact worst-case realization).
        let sim = match errors {
            ErrorSpec::None => simulate(net, &NoInjection, &sim_config),
            ErrorSpec::Sporadic { interval } => simulate(
                net,
                &PeriodicInjection {
                    interval: interval + Time::from_us(300),
                    phase: Time::from_us(seed % 9_000),
                },
                &sim_config,
            ),
            ErrorSpec::Burst {
                burst_len,
                intra_gap,
                inter_burst,
            } => simulate(
                net,
                &BurstInjection {
                    burst_len,
                    intra_gap,
                    inter_burst,
                    phase: Time::from_us(seed % 9_000),
                },
                &sim_config,
            ),
        };

        let with_errors = errors != ErrorSpec::None;
        for m in &report.messages {
            let stats = sim.by_name(&m.name).expect("every message is simulated");
            if let (Some(observed), Some(bound)) = (stats.max_response, m.outcome.wcrt()) {
                if observed > bound {
                    return Err(Violation::new(
                        ORACLE_LAW,
                        format!(
                            "`{}` observed response {observed} exceeds analytic WCRT {bound} \
                             (seed {seed}, errors {errors:?})",
                            m.name
                        ),
                    ));
                }
            }
            if let (Some(observed), Some(bound)) = (stats.min_response, m.outcome.bcrt()) {
                if observed < bound {
                    return Err(Violation::new(
                        ORACLE_LAW,
                        format!(
                            "`{}` observed response {observed} below analytic BCRT {bound} \
                             (seed {seed}, errors {errors:?})",
                            m.name
                        ),
                    ));
                }
            }
            // A message the analysis proves loss-free must not be
            // overwritten in an error-free simulation (FIFO senders
            // drop by queue overflow, a different loss mechanism).
            let fifo_sender = matches!(
                net.controller_of(&net.messages()[m.index]),
                ControllerType::FifoQueue { .. }
            );
            if !with_errors && !m.misses_deadline() && !fifo_sender && stats.overwritten != 0 {
                return Err(Violation::new(
                    ORACLE_LAW,
                    format!(
                        "`{}` lost {} instances despite its proven deadline (seed {seed})",
                        m.name, stats.overwritten
                    ),
                ));
            }
        }
        Ok(())
    }

    /// Like [`DiffOracle::check`], but a violation is shrunk to a
    /// minimal counterexample and returned as a replayable [`Repro`].
    ///
    /// # Errors
    ///
    /// Returns the minimized [`Repro`] if the oracle finds a violation.
    pub fn check_and_shrink(
        &self,
        eval: &Evaluator,
        net: &CanNetwork,
        errors: ErrorSpec,
        seed: u64,
    ) -> Result<(), Box<Repro>> {
        let violation = match self.check(eval, net, errors, seed) {
            Ok(()) => return Ok(()),
            Err(v) => v,
        };
        let shrunk = shrink_case(net, errors, violation, |n, e| {
            self.check(eval, n, e, seed).err()
        });
        Err(Box::new(Repro {
            law: ORACLE_LAW.into(),
            seed,
            errors: shrunk.errors,
            violation: shrunk.violation.detail,
            shrink_steps: shrunk.steps,
            network: shrunk.network,
        }))
    }
}

/// A minimized counterexample produced by [`shrink_case`].
#[derive(Debug, Clone)]
pub struct Shrunk {
    /// The smallest still-violating network found.
    pub network: CanNetwork,
    /// The (possibly simplified) error specification.
    pub errors: ErrorSpec,
    /// The violation reported on the minimized case.
    pub violation: Violation,
    /// Number of accepted shrink steps.
    pub steps: u64,
}

/// Greedily shrinks a violating case to a local minimum: repeatedly
/// drop messages, zero jitters, halve payloads and simplify the error
/// process, keeping each candidate only if `violates` still reports a
/// violation, until a full pass makes no progress.
pub fn shrink_case<F>(
    net: &CanNetwork,
    errors: ErrorSpec,
    violation: Violation,
    violates: F,
) -> Shrunk
where
    F: Fn(&CanNetwork, ErrorSpec) -> Option<Violation>,
{
    let mut best_net = net.clone();
    let mut best_errors = errors;
    let mut best_v = violation;
    let mut steps = 0u64;
    loop {
        let mut progressed = false;

        // 1. Drop messages (keeping at least one).
        let mut i = 0;
        while best_net.messages().len() > 1 && i < best_net.messages().len() {
            let cand = without_message(&best_net, i);
            match violates(&cand, best_errors) {
                Some(v) => {
                    best_net = cand;
                    best_v = v;
                    steps += 1;
                    progressed = true;
                }
                None => i += 1,
            }
        }

        // 2. Zero jitters.
        for i in 0..best_net.messages().len() {
            let activation = best_net.messages()[i].activation;
            if activation.jitter().is_zero() {
                continue;
            }
            let mut cand = best_net.clone();
            cand.messages_mut()[i].activation = EventModel::new(
                activation.kind(),
                activation.period(),
                Time::ZERO,
                activation.dmin(),
            );
            if let Some(v) = violates(&cand, best_errors) {
                best_net = cand;
                best_v = v;
                steps += 1;
                progressed = true;
            }
        }

        // 3. Shrink payloads (halving, floor one byte). Halved FD
        //    payloads snap back up to the step table, so guard against
        //    a "shrink" that rounds to the same length.
        for i in 0..best_net.messages().len() {
            loop {
                let bytes = best_net.messages()[i].dlc.bytes();
                if bytes <= 1 {
                    break;
                }
                let halved = Dlc::fd(bytes / 2);
                if halved.bytes() >= bytes {
                    break;
                }
                let mut cand = best_net.clone();
                cand.messages_mut()[i].dlc = halved;
                match violates(&cand, best_errors) {
                    Some(v) => {
                        best_net = cand;
                        best_v = v;
                        steps += 1;
                        progressed = true;
                    }
                    None => break,
                }
            }
        }

        // 4. Simplify the error process: no errors at all, or a single
        //    error per burst window.
        let simpler: Vec<ErrorSpec> = match best_errors {
            ErrorSpec::None => Vec::new(),
            ErrorSpec::Sporadic { .. } => vec![ErrorSpec::None],
            ErrorSpec::Burst {
                intra_gap,
                inter_burst,
                ..
            } => vec![
                ErrorSpec::None,
                ErrorSpec::Burst {
                    burst_len: 1,
                    intra_gap,
                    inter_burst,
                },
            ],
        };
        for cand_errors in simpler {
            if cand_errors == best_errors {
                continue;
            }
            if let Some(v) = violates(&best_net, cand_errors) {
                best_errors = cand_errors;
                best_v = v;
                steps += 1;
                progressed = true;
                break;
            }
        }

        if !progressed {
            break;
        }
    }
    Shrunk {
        network: best_net,
        errors: best_errors,
        violation: best_v,
        steps,
    }
}

/// A copy of `net` without message `i` (nodes and backend untouched).
fn without_message(net: &CanNetwork, i: usize) -> CanNetwork {
    let mut out = CanNetwork::new(net.bit_rate()).with_backend(net.backend());
    for node in net.nodes() {
        out.add_node(node.clone());
    }
    for (j, m) in net.messages().iter().enumerate() {
        if j != i {
            out.add_message(m.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{random_network, NetShape};

    #[test]
    fn oracle_accepts_sound_networks() {
        let eval = Evaluator::default();
        let oracle = DiffOracle::default();
        for seed in 0..6 {
            let net = random_network(&NetShape::bus(), seed);
            oracle
                .check(&eval, &net, ErrorSpec::None, seed)
                .expect("sound analysis passes");
        }
        let net = random_network(&NetShape::mixed(), 3);
        oracle
            .check(
                &eval,
                &net,
                ErrorSpec::Sporadic {
                    interval: Time::from_ms(10),
                },
                3,
            )
            .expect("sound analysis passes with errors");
    }

    #[test]
    fn oracle_accepts_sound_fd_networks() {
        let eval = Evaluator::default();
        let oracle = DiffOracle::default();
        for seed in 0..6 {
            let net = random_network(&NetShape::fd(), seed);
            oracle
                .check(&eval, &net, ErrorSpec::None, seed)
                .expect("sound FD analysis passes");
        }
        let net = random_network(&NetShape::fd(), 3);
        oracle
            .check(
                &eval,
                &net,
                ErrorSpec::Sporadic {
                    interval: Time::from_ms(10),
                },
                3,
            )
            .expect("sound FD analysis passes with errors");
    }

    #[test]
    fn shrinking_fd_payloads_stays_on_the_step_table() {
        use carta_can::backend::{BackendConfig, FD_PAYLOAD_STEPS};
        // Synthetic predicate that always "violates": the shrinker
        // drives payloads to the floor without ever leaving the table.
        let net = random_network(&NetShape::fd().messages(3), 11);
        let violates = |_n: &CanNetwork, _e: ErrorSpec| Some(Violation::new("synthetic", "always"));
        let shrunk = shrink_case(
            &net,
            ErrorSpec::None,
            Violation::new("synthetic", "seed case"),
            violates,
        );
        assert_eq!(shrunk.network.backend(), BackendConfig::can_fd());
        for m in shrunk.network.messages() {
            assert!(FD_PAYLOAD_STEPS.contains(&m.dlc.bytes()));
        }
    }

    #[test]
    fn shrinker_reaches_a_local_minimum() {
        // A synthetic predicate: "violates" whenever the net still has
        // a message named m0 together with at least one other message —
        // the shrinker must reduce to exactly two messages, zero
        // jitter, one-byte payloads and no errors.
        let net = random_network(&NetShape::bus().messages(7), 9);
        let violates = |n: &CanNetwork, _e: ErrorSpec| {
            (n.message_by_name("m0").is_some() && n.messages().len() >= 2)
                .then(|| Violation::new("synthetic", "still violating"))
        };
        let shrunk = shrink_case(
            &net,
            ErrorSpec::Sporadic {
                interval: Time::from_ms(10),
            },
            Violation::new("synthetic", "seed case"),
            violates,
        );
        assert_eq!(shrunk.network.messages().len(), 2);
        assert!(shrunk.network.message_by_name("m0").is_some());
        assert_eq!(shrunk.errors, ErrorSpec::None);
        assert!(shrunk.steps > 0);
        for m in shrunk.network.messages() {
            assert!(m.activation.jitter().is_zero());
            assert_eq!(m.dlc.bytes(), 1);
        }
    }
}
