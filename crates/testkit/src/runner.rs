//! The fuzz loop behind `carta fuzz`.
//!
//! For every selected law the runner generates a corpus of networks
//! (seed-derived, alternating homogeneous and mixed-controller shapes,
//! cycling through error models), checks the law on each, and on the
//! first violation shrinks the case and stops that law with a
//! replayable [`Repro`]. Progress is reported through `carta-obs`
//! `fuzz.*` counters when metrics are enabled.

use crate::gen::{random_network, NetShape};
use crate::laws::{all_laws, law_by_name, law_names, Law, LawCase};
use crate::oracle::shrink_case;
use crate::repro::Repro;
use carta_can::backend::BackendConfig;
use carta_core::time::Time;
use carta_engine::prelude::{ErrorSpec, Evaluator, Parallelism};
use carta_obs::metrics::{self, Counter};
use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock};

/// Configuration of one fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Base seed; case 0 of every law uses it verbatim, so a seed
    /// printed by a failing proptest strategy replays directly.
    pub seed: u64,
    /// Cases to run per law.
    pub cases: u64,
    /// Law names to check (`None` = the whole catalogue).
    pub laws: Option<Vec<String>>,
    /// Parallelism of the engine evaluator under test.
    pub parallelism: Parallelism,
    /// Bus backend of the generated corpus. A CAN FD backend widens
    /// payloads to the full FD step table (see
    /// [`NetShape::with_backend`]).
    pub backend: BackendConfig,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 2006,
            cases: 64,
            laws: None,
            parallelism: Parallelism::from_env(),
            backend: BackendConfig::Can,
        }
    }
}

/// Result of fuzzing one law.
#[derive(Debug, Clone)]
pub struct LawOutcome {
    /// The law's stable name.
    pub law: String,
    /// Cases executed (stops early on the first violation).
    pub cases_run: u64,
    /// The shrunk counterexample, if the law was violated.
    pub repro: Option<Repro>,
}

/// Result of a whole fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// The base seed the run started from.
    pub seed: u64,
    /// Per-law outcomes, in catalogue order.
    pub outcomes: Vec<LawOutcome>,
}

impl FuzzReport {
    /// `true` if no law was violated.
    pub fn passed(&self) -> bool {
        self.outcomes.iter().all(|o| o.repro.is_none())
    }

    /// The outcomes that carry a counterexample.
    pub fn violations(&self) -> impl Iterator<Item = &LawOutcome> {
        self.outcomes.iter().filter(|o| o.repro.is_some())
    }
}

/// A law name passed to [`run_fuzz`] that is not in the catalogue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownLawError {
    /// The unrecognized name.
    pub name: String,
}

impl fmt::Display for UnknownLawError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown law `{}`; known laws: {}",
            self.name,
            law_names().join(", ")
        )
    }
}

impl std::error::Error for UnknownLawError {}

struct FuzzMetrics {
    laws: Arc<Counter>,
    cases: Arc<Counter>,
    violations: Arc<Counter>,
    shrink_steps: Arc<Counter>,
}

fn fuzz_metrics() -> &'static FuzzMetrics {
    static HANDLES: OnceLock<FuzzMetrics> = OnceLock::new();
    HANDLES.get_or_init(|| {
        let registry = metrics::global();
        FuzzMetrics {
            laws: registry.counter("fuzz.laws"),
            cases: registry.counter("fuzz.cases"),
            violations: registry.counter("fuzz.violations"),
            shrink_steps: registry.counter("fuzz.shrink_steps"),
        }
    })
}

/// The error model of case `case` (cycled so every law sees error-free,
/// calm and stormy sporadic conditions).
fn case_errors(case: u64) -> ErrorSpec {
    match case % 3 {
        0 => ErrorSpec::None,
        1 => ErrorSpec::Sporadic {
            interval: Time::from_ms(10),
        },
        _ => ErrorSpec::Sporadic {
            interval: Time::from_ms(20),
        },
    }
}

/// Derives the seed of case `case` for `law` from the base seed.
fn mix_seed(seed: u64, law: &str, case: u64) -> u64 {
    let mut h = DefaultHasher::new();
    seed.hash(&mut h);
    law.hash(&mut h);
    case.hash(&mut h);
    h.finish()
}

/// Runs the fuzz loop.
///
/// # Errors
///
/// Returns [`UnknownLawError`] if `config.laws` names a law that is not
/// in the catalogue. Violations are *not* errors — they are reported as
/// repros inside the [`FuzzReport`].
pub fn run_fuzz(config: &FuzzConfig) -> Result<FuzzReport, UnknownLawError> {
    let laws: Vec<Box<dyn Law>> = match &config.laws {
        None => all_laws(),
        Some(names) => names
            .iter()
            .map(|n| law_by_name(n).ok_or_else(|| UnknownLawError { name: n.clone() }))
            .collect::<Result<_, _>>()?,
    };
    let eval = Evaluator::new(config.parallelism);
    let mut outcomes = Vec::with_capacity(laws.len());
    for law in &laws {
        if metrics::enabled() {
            fuzz_metrics().laws.inc();
        }
        let mut cases_run = 0;
        let mut repro = None;
        for case in 0..config.cases {
            // Case 0 uses the base seed verbatim: `carta fuzz --seed N`
            // replays exactly the network a proptest failure reported.
            let seed = if case == 0 {
                config.seed
            } else {
                mix_seed(config.seed, law.name(), case)
            };
            let shape = if case % 2 == 0 {
                NetShape::bus()
            } else {
                NetShape::mixed()
            }
            .with_backend(config.backend);
            let errors = case_errors(case);
            let net = random_network(&shape, seed);
            cases_run += 1;
            if metrics::enabled() {
                fuzz_metrics().cases.inc();
            }
            if let Err(violation) = law.check(&net, &LawCase { seed, errors }, &eval) {
                let shrunk = shrink_case(&net, errors, violation, |n, e| {
                    law.check(n, &LawCase { seed, errors: e }, &eval).err()
                });
                if metrics::enabled() {
                    fuzz_metrics().violations.inc();
                    fuzz_metrics().shrink_steps.add(shrunk.steps);
                }
                repro = Some(Repro {
                    law: law.name().to_string(),
                    seed,
                    errors: shrunk.errors,
                    violation: shrunk.violation.detail,
                    shrink_steps: shrunk.steps,
                    network: shrunk.network,
                });
                break;
            }
        }
        outcomes.push(LawOutcome {
            law: law.name().to_string(),
            cases_run,
            repro,
        });
    }
    Ok(FuzzReport {
        seed: config.seed,
        outcomes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_passes_every_law() {
        let report = run_fuzz(&FuzzConfig {
            seed: 2006,
            cases: 2,
            laws: None,
            parallelism: Parallelism::sequential(),
            backend: BackendConfig::Can,
        })
        .expect("catalogue names are valid");
        assert!(report.passed(), "violations: {:?}", report.outcomes);
        assert_eq!(report.outcomes.len(), all_laws().len());
        assert!(report.outcomes.iter().all(|o| o.cases_run == 2));
        assert_eq!(report.violations().count(), 0);
    }

    #[test]
    fn small_fd_run_passes_every_law() {
        let report = run_fuzz(&FuzzConfig {
            seed: 2006,
            cases: 2,
            laws: None,
            parallelism: Parallelism::sequential(),
            backend: BackendConfig::can_fd(),
        })
        .expect("catalogue names are valid");
        assert!(report.passed(), "violations: {:?}", report.outcomes);
        assert_eq!(report.outcomes.len(), all_laws().len());
    }

    #[test]
    fn law_filter_is_honored() {
        let report = run_fuzz(&FuzzConfig {
            seed: 7,
            cases: 1,
            laws: Some(vec!["load-schedulability".into()]),
            parallelism: Parallelism::sequential(),
            backend: BackendConfig::Can,
        })
        .expect("known law");
        assert_eq!(report.outcomes.len(), 1);
        assert_eq!(report.outcomes[0].law, "load-schedulability");
    }

    #[test]
    fn unknown_laws_are_rejected_up_front() {
        let err = run_fuzz(&FuzzConfig {
            laws: Some(vec!["no-such-law".into()]),
            ..FuzzConfig::default()
        })
        .expect_err("unknown law");
        assert_eq!(err.name, "no-such-law");
        assert!(err.to_string().contains("jitter-monotonicity"));
    }

    #[test]
    fn case_seeds_differ_between_laws_but_share_case_zero() {
        assert_ne!(mix_seed(1, "a", 1), mix_seed(1, "b", 1));
        assert_ne!(mix_seed(1, "a", 1), mix_seed(2, "a", 1));
    }
}
