//! The metamorphic law catalogue.
//!
//! Each [`Law`] states a relation the analysis stack must satisfy
//! between *related* inputs — monotonicity, dominance or equivalence —
//! so no ground-truth response times are needed to check it. The fuzz
//! runner feeds every law a corpus of generated networks; a violation
//! is shrunk and persisted as a repro file.

use crate::gen::random_variant;
use crate::oracle::{DiffOracle, Violation, ORACLE_LAW};
use carta_can::backend::BackendConfig;
use carta_can::compiled::{CompiledBus, RtaWorkspace};
use carta_can::error_model::ErrorModel;
use carta_can::frame::{Dlc, StuffingMode};
use carta_can::message::CanId;
use carta_can::network::CanNetwork;
use carta_can::rta::{analyze_bus, analyze_bus_incremental, hp_index_sets, AnalysisConfig};
use carta_can::rta::{BusReport, MessageReport};
use carta_core::time::Time;
use carta_engine::prelude::{
    BaseSystem, DeadlineOverride, ErrorSpec, Evaluator, Scenario, SystemVariant,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// One fuzz case: the seed that generated the network (laws derive
/// their own perturbations from it) and the ambient error model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LawCase {
    /// Seed of the generated network; also drives law-internal choices.
    pub seed: u64,
    /// Error specification the law analyzes (and simulates) under.
    pub errors: ErrorSpec,
}

/// A metamorphic property of the analysis stack.
pub trait Law: Send + Sync {
    /// Stable kebab-case name (used by `carta fuzz --laws` and repro
    /// files).
    fn name(&self) -> &'static str;

    /// Checks the law on one generated network.
    ///
    /// # Errors
    ///
    /// Returns a [`Violation`] describing the broken relation.
    fn check(&self, net: &CanNetwork, case: &LawCase, eval: &Evaluator) -> Result<(), Violation>;
}

/// The WCRT column of a report (`None` = unbounded/overload).
pub fn wcrts(report: &BusReport) -> Vec<Option<Time>> {
    report.messages.iter().map(|m| m.outcome.wcrt()).collect()
}

/// `a` is pointwise at most `b`, treating `None` (unbounded) as +∞.
pub fn pointwise_le(a: &[Option<Time>], b: &[Option<Time>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| match (x, y) {
            (_, None) => true,
            (None, Some(_)) => false,
            (Some(x), Some(y)) => x <= y,
        })
}

/// All laws in the catalogue, in presentation order.
pub fn all_laws() -> Vec<Box<dyn Law>> {
    vec![
        Box::new(JitterMonotonicity),
        Box::new(PriorityRaiseDominance),
        Box::new(ErrorModelDominance),
        Box::new(BitRateScaling),
        Box::new(IncrementalEqualsFull),
        Box::new(CompiledEqualsNaive),
        Box::new(OverlayEqualsRebuilt),
        Box::new(LoadSchedulability),
        Box::new(FdDominatesClassic),
        Box::new(SimNeverExceedsAnalysis::default()),
        Box::new(ProbDominatesWorstCase),
        Box::new(crate::chaos::DegradedIsSound::default()),
        Box::new(crate::chaos::FaultIsolation),
    ]
}

/// Looks a law up by its stable name.
pub fn law_by_name(name: &str) -> Option<Box<dyn Law>> {
    all_laws().into_iter().find(|l| l.name() == name)
}

/// The stable names of every law, in presentation order.
pub fn law_names() -> Vec<&'static str> {
    all_laws().iter().map(|l| l.name()).collect()
}

fn analyzed(net: &CanNetwork, model: &dyn ErrorModel) -> BusReport {
    analyze_bus(net, model, &AnalysisConfig::default()).expect("generated networks are analyzable")
}

/// Raising one message's activation jitter must not decrease any WCRT.
#[derive(Debug, Clone, Copy, Default)]
pub struct JitterMonotonicity;

impl Law for JitterMonotonicity {
    fn name(&self) -> &'static str {
        "jitter-monotonicity"
    }

    fn check(&self, net: &CanNetwork, case: &LawCase, _eval: &Evaluator) -> Result<(), Violation> {
        let model = case.errors.model();
        let before = analyzed(net, model.as_ref());
        let mut bumped = net.clone();
        let idx = (case.seed as usize) % bumped.messages().len();
        let m = &mut bumped.messages_mut()[idx];
        let activation = m.activation;
        let extra = activation.period().percent(1 + case.seed % 25);
        m.activation = carta_core::event_model::EventModel::new(
            activation.kind(),
            activation.period(),
            activation.jitter() + extra,
            activation.dmin(),
        );
        let after = analyzed(&bumped, model.as_ref());
        if pointwise_le(&wcrts(&before), &wcrts(&after)) {
            Ok(())
        } else {
            Err(Violation::new(
                self.name(),
                format!(
                    "raising jitter of `{}` by {extra} decreased a WCRT (seed {})",
                    net.messages()[idx].name,
                    case.seed
                ),
            ))
        }
    }
}

/// Swapping a message's identifier with the next-stronger one must not
/// worsen *that message's* WCRT (its interference set shrinks by at
/// least as much as its blocking can grow, for every controller type).
#[derive(Debug, Clone, Copy, Default)]
pub struct PriorityRaiseDominance;

impl Law for PriorityRaiseDominance {
    fn name(&self) -> &'static str {
        "priority-raise-dominance"
    }

    fn check(&self, net: &CanNetwork, case: &LawCase, _eval: &Evaluator) -> Result<(), Violation> {
        let order = net.priority_order();
        if order.len() < 2 {
            return Ok(());
        }
        let rank = 1 + (case.seed as usize) % (order.len() - 1);
        let (stronger, weaker) = (order[rank - 1], order[rank]);
        let model = case.errors.model();
        let before = analyzed(net, model.as_ref());
        let mut raised = net.clone();
        let (id_hi, id_lo) = (raised.messages()[stronger].id, raised.messages()[weaker].id);
        raised.messages_mut()[stronger].id = id_lo;
        raised.messages_mut()[weaker].id = id_hi;
        let after = analyzed(&raised, model.as_ref());
        let was = before.messages[weaker].outcome.wcrt();
        let now = after.messages[weaker].outcome.wcrt();
        let worsened = match (now, was) {
            (None, Some(_)) => true,
            (Some(n), Some(w)) => n > w,
            _ => false,
        };
        if worsened {
            Err(Violation::new(
                self.name(),
                format!(
                    "raising `{}` one priority rank worsened its WCRT from {was:?} to {now:?} \
                     (seed {})",
                    net.messages()[weaker].name,
                    case.seed
                ),
            ))
        } else {
            Ok(())
        }
    }
}

/// Error-model dominance: no errors ≤ sporadic(T) ≤ a burst model that
/// allows at least one hit per T (checked through the evaluator, so the
/// engine cache serves all three scenarios).
#[derive(Debug, Clone, Copy, Default)]
pub struct ErrorModelDominance;

impl Law for ErrorModelDominance {
    fn name(&self) -> &'static str {
        "error-model-dominance"
    }

    fn check(&self, net: &CanNetwork, case: &LawCase, eval: &Evaluator) -> Result<(), Violation> {
        let interval = Time::from_ms(*[5u64, 10, 20].get(case.seed as usize % 3).unwrap());
        let base = BaseSystem::new(net.clone());
        let scen = |errors: ErrorSpec| Scenario {
            name: "error-dominance".into(),
            stuffing: StuffingMode::WorstCase,
            errors,
            deadline: DeadlineOverride::Keep,
        };
        let variants = [
            SystemVariant::new(Arc::clone(&base), scen(ErrorSpec::None)),
            SystemVariant::new(Arc::clone(&base), scen(ErrorSpec::Sporadic { interval })),
            SystemVariant::new(
                base,
                scen(ErrorSpec::Burst {
                    burst_len: 2,
                    intra_gap: Time::from_us(200),
                    inter_burst: interval,
                }),
            ),
        ];
        let reports: Vec<_> = eval
            .evaluate_batch(&variants)
            .into_iter()
            .map(|r| r.expect("generated networks are analyzable"))
            .collect();
        let (none, sporadic, burst) = (&reports[0], &reports[1], &reports[2]);
        if !pointwise_le(&wcrts(none), &wcrts(sporadic)) {
            return Err(Violation::new(
                self.name(),
                format!("sporadic({interval}) errors lowered a WCRT below the error-free bound"),
            ));
        }
        if !pointwise_le(&wcrts(sporadic), &wcrts(burst)) {
            return Err(Violation::new(
                self.name(),
                format!(
                    "burst errors (2 per {interval}) fell below sporadic({interval}) — dominance \
                     violated"
                ),
            ));
        }
        Ok(())
    }
}

/// Doubling the bus bit rate must not increase any WCRT.
#[derive(Debug, Clone, Copy, Default)]
pub struct BitRateScaling;

impl Law for BitRateScaling {
    fn name(&self) -> &'static str {
        "bit-rate-scaling"
    }

    fn check(&self, net: &CanNetwork, case: &LawCase, _eval: &Evaluator) -> Result<(), Violation> {
        let model = case.errors.model();
        let slow = analyzed(net, model.as_ref());
        let fast = analyzed(&at_bit_rate(net, net.bit_rate() * 2), model.as_ref());
        if pointwise_le(&wcrts(&fast), &wcrts(&slow)) {
            Ok(())
        } else {
            Err(Violation::new(
                self.name(),
                format!(
                    "doubling the bit rate from {} bit/s increased a WCRT (seed {})",
                    net.bit_rate(),
                    case.seed
                ),
            ))
        }
    }
}

/// Incremental re-analysis after an identifier permutation must be
/// bit-identical to a full analysis of the permuted network.
#[derive(Debug, Clone, Copy, Default)]
pub struct IncrementalEqualsFull;

impl Law for IncrementalEqualsFull {
    fn name(&self) -> &'static str {
        "incremental-equals-full"
    }

    fn check(&self, net: &CanNetwork, case: &LawCase, _eval: &Evaluator) -> Result<(), Violation> {
        let model = case.errors.model();
        let config = AnalysisConfig::default();
        let previous =
            analyze_bus(net, model.as_ref(), &config).expect("generated networks are analyzable");
        let hp = hp_index_sets(net);
        let mut rng = StdRng::seed_from_u64(case.seed ^ 0x1d);
        let mut ids: Vec<CanId> = net.messages().iter().map(|m| m.id).collect();
        for i in (1..ids.len()).rev() {
            ids.swap(i, rng.gen_range(0..=i));
        }
        let mut permuted = net.clone();
        for (m, id) in permuted.messages_mut().iter_mut().zip(ids) {
            m.id = id;
        }
        let (incremental, _) =
            analyze_bus_incremental(&permuted, model.as_ref(), &config, &previous, &hp)
                .expect("generated networks are analyzable");
        let full = analyze_bus(&permuted, model.as_ref(), &config)
            .expect("generated networks are analyzable");
        for (a, b) in incremental.messages.iter().zip(full.messages.iter()) {
            if !same_report_row(a, b) {
                return Err(Violation::new(
                    self.name(),
                    format!(
                        "incremental RTA diverged from the full analysis for `{}`: {:?} vs {:?} \
                         (seed {})",
                        a.name, a.outcome, b.outcome, case.seed
                    ),
                ));
            }
        }
        Ok(())
    }
}

/// The compiled RTA kernel must be invisible in the results: solving a
/// parameter sequence through precompiled tables with one shared,
/// warm-started workspace — and a permuted variant through
/// [`CompiledBus::reordered`] tables, both incrementally and cold —
/// is bit-identical to a fresh `analyze_bus` of each network.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompiledEqualsNaive;

impl CompiledEqualsNaive {
    fn same_report(
        &self,
        fast: &BusReport,
        fresh: &BusReport,
        what: &str,
        seed: u64,
    ) -> Result<(), Violation> {
        let rows_match = fast.messages.len() == fresh.messages.len()
            && fast
                .messages
                .iter()
                .zip(fresh.messages.iter())
                .all(|(a, b)| same_report_row(a, b));
        if rows_match && fast.error_model == fresh.error_model && fast.stuffing == fresh.stuffing {
            Ok(())
        } else {
            Err(Violation::new(
                self.name(),
                format!("compiled solve diverged from the naive analysis at {what} (seed {seed})"),
            ))
        }
    }
}

impl Law for CompiledEqualsNaive {
    fn name(&self) -> &'static str {
        "compiled-equals-naive"
    }

    fn check(&self, net: &CanNetwork, case: &LawCase, _eval: &Evaluator) -> Result<(), Violation> {
        let scenario = Scenario {
            name: "compiled-equals-naive".into(),
            stuffing: StuffingMode::WorstCase,
            errors: case.errors,
            deadline: DeadlineOverride::Keep,
        };
        let model = scenario.errors.model();
        let config = scenario.analysis_config();
        let compiled =
            CompiledBus::compile(net, config.stuffing).expect("generated networks are analyzable");
        let base = BaseSystem::new(net.clone());
        let mut ws = RtaWorkspace::new();
        // A non-monotone jitter sequence: warm starts engage where the
        // dominance gate allows and must fall back to cold where not.
        let mut last: Option<(CanNetwork, BusReport)> = None;
        for ratio in [0.0, 0.1, 0.3, 0.05] {
            let point = SystemVariant::new(Arc::clone(&base), scenario.clone())
                .with_jitter_ratio(ratio)
                .materialize();
            let fast = compiled.solve(&point, model.as_ref(), &config, &mut ws);
            let fresh = analyze_bus(&point, model.as_ref(), &config)
                .expect("generated networks are analyzable");
            self.same_report(&fast, &fresh, &format!("jitter ratio {ratio}"), case.seed)?;
            last = Some((point, fast));
        }
        // Permutation variant: the reordered tables must agree with a
        // fresh analysis, both when diffing against the previous report
        // and when solving cold.
        let (last_net, last_report) = last.expect("sequence is non-empty");
        let mut rng = StdRng::seed_from_u64(case.seed ^ 0x5c);
        let mut ids: Vec<CanId> = last_net.messages().iter().map(|m| m.id).collect();
        for i in (1..ids.len()).rev() {
            ids.swap(i, rng.gen_range(0..=i));
        }
        let mut permuted = last_net.clone();
        for (m, id) in permuted.messages_mut().iter_mut().zip(ids) {
            m.id = id;
        }
        let reordered = compiled.reordered(&permuted);
        let fresh = analyze_bus(&permuted, model.as_ref(), &config)
            .expect("generated networks are analyzable");
        let (incremental, _) = reordered.solve_incremental(
            &permuted,
            model.as_ref(),
            &config,
            &last_report,
            compiled.hp_sets(),
        );
        self.same_report(&incremental, &fresh, "permutation (incremental)", case.seed)?;
        let cold = reordered.solve(&permuted, model.as_ref(), &config, &mut RtaWorkspace::new());
        self.same_report(&cold, &fresh, "permutation (cold)", case.seed)
    }
}

/// Evaluating a variant through the engine (overlays + cache) must be
/// bit-identical to analyzing the materialized network directly.
#[derive(Debug, Clone, Copy, Default)]
pub struct OverlayEqualsRebuilt;

impl Law for OverlayEqualsRebuilt {
    fn name(&self) -> &'static str {
        "overlay-equals-rebuilt"
    }

    fn check(&self, net: &CanNetwork, case: &LawCase, eval: &Evaluator) -> Result<(), Violation> {
        let base = BaseSystem::new(net.clone());
        let variant = random_variant(&base, case.seed);
        let engine = eval
            .evaluate(&variant)
            .expect("generated variants are analyzable");
        let rebuilt = variant.materialize();
        let scenario = variant.scenario();
        let direct = analyze_bus(
            &rebuilt,
            scenario.errors.model().as_ref(),
            &scenario.analysis_config(),
        )
        .expect("generated variants are analyzable");
        for (a, b) in engine.messages.iter().zip(direct.messages.iter()) {
            if !same_report_row(a, b) {
                return Err(Violation::new(
                    self.name(),
                    format!(
                        "engine overlay evaluation diverged from the rebuilt network for `{}`: \
                         {:?} vs {:?} (seed {})",
                        a.name, a.outcome, b.outcome, case.seed
                    ),
                ));
            }
        }
        Ok(())
    }
}

/// A schedulable verdict is only consistent with a bus load at or below
/// 100 % — utilization strictly above capacity must surface as overload
/// or a deadline miss, never as "schedulable".
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadSchedulability;

impl Law for LoadSchedulability {
    fn name(&self) -> &'static str {
        "load-schedulability"
    }

    fn check(&self, net: &CanNetwork, case: &LawCase, _eval: &Evaluator) -> Result<(), Violation> {
        let report = analyzed(net, case.errors.model().as_ref());
        let utilization = net.load(StuffingMode::WorstCase).utilization();
        if report.schedulable() && utilization > 1.0 + 1e-9 {
            Err(Violation::new(
                self.name(),
                format!(
                    "analysis reports schedulable at {:.1} % bus load (seed {})",
                    utilization * 100.0,
                    case.seed
                ),
            ))
        } else {
            Ok(())
        }
    }
}

/// At the same payloads, a CAN FD bus (data phase at twice the nominal
/// rate or faster) must not report a larger WCRT than classic CAN for
/// any message: every FD frame is strictly shorter on the wire (the FD
/// nominal phase is shorter than the classic header/trailer, and the
/// data+CRC phase runs at the higher rate), so every demand term of the
/// busy-window recurrence shrinks.
#[derive(Debug, Clone, Copy, Default)]
pub struct FdDominatesClassic;

impl Law for FdDominatesClassic {
    fn name(&self) -> &'static str {
        "fd-dominates-classic-at-same-payload"
    }

    fn check(&self, net: &CanNetwork, case: &LawCase, _eval: &Evaluator) -> Result<(), Violation> {
        let model = case.errors.model();
        // Same payloads on both buses: clamp to the classic 8-byte cap
        // (FD-generated networks may carry larger frames).
        let mut classic = net.clone();
        classic.set_backend(BackendConfig::Can);
        for m in classic.messages_mut() {
            if m.dlc.bytes() > 8 {
                m.dlc = Dlc::new(8);
            }
        }
        let mut fd = classic.clone();
        fd.set_backend(BackendConfig::can_fd());
        let slow = analyzed(&classic, model.as_ref());
        let fast = analyzed(&fd, model.as_ref());
        if pointwise_le(&wcrts(&fast), &wcrts(&slow)) {
            Ok(())
        } else {
            Err(Violation::new(
                self.name(),
                format!(
                    "CAN FD exceeded classic CAN at the same payload under {} (seed {})",
                    BackendConfig::can_fd(),
                    case.seed
                ),
            ))
        }
    }
}

/// The differential oracle as a law: simulated response times never
/// exceed the analytic bounds (and the engine's permutation path agrees
/// with the plain one).
#[derive(Debug, Clone, Copy, Default)]
pub struct SimNeverExceedsAnalysis {
    oracle: DiffOracle,
}

impl Law for SimNeverExceedsAnalysis {
    fn name(&self) -> &'static str {
        ORACLE_LAW
    }

    fn check(&self, net: &CanNetwork, case: &LawCase, eval: &Evaluator) -> Result<(), Violation> {
        self.oracle.check(eval, net, case.errors, case.seed)
    }
}

/// Name of the probabilistic dominance law, shared with CI and docs.
pub const PROB_LAW: &str = "prob-dominates-worst-case";

/// The probabilistic analysis never escapes the deterministic envelope:
/// every distribution's support stays within `[bcrt, wcrt]` (up to one
/// binning quantum at the top), its CDF reaches one at the worst-case
/// bound, total mass is conserved, and a message the deterministic
/// analysis proves schedulable carries zero miss probability.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProbDominatesWorstCase;

impl Law for ProbDominatesWorstCase {
    fn name(&self) -> &'static str {
        PROB_LAW
    }

    fn check(&self, net: &CanNetwork, case: &LawCase, eval: &Evaluator) -> Result<(), Violation> {
        let scenario = Scenario {
            name: "prob-dominance".into(),
            stuffing: StuffingMode::WorstCase,
            errors: case.errors,
            deadline: DeadlineOverride::Keep,
        };
        let variant = SystemVariant::new(BaseSystem::new(net.clone()), scenario);
        let det = eval
            .evaluate(&variant)
            .expect("generated networks are analyzable");
        let prob = eval
            .evaluate_prob(&variant)
            .expect("generated networks are analyzable");
        let quantum = prob.quantum;
        let fail = |detail: String| Err(Violation::new(self.name(), detail));
        for (row, prow) in det.messages.iter().zip(prob.messages.iter()) {
            match (row.outcome.wcrt(), prow.outcome.dist()) {
                (Some(wcrt), Some(dist)) => {
                    let bcrt = row.outcome.bcrt().unwrap_or(Time::ZERO);
                    let top = dist.pmf.support_max();
                    if top >= wcrt + quantum {
                        return fail(format!(
                            "`{}`: support max {top} exceeds quantized WCRT ({wcrt} + quantum \
                             {quantum}) (seed {})",
                            row.name, case.seed
                        ));
                    }
                    if (dist.pmf.cdf_at(top) - 1.0).abs() > 1e-6 {
                        return fail(format!(
                            "`{}`: CDF at the support max is {} — mass leaked past the worst \
                             case (seed {})",
                            row.name,
                            dist.pmf.cdf_at(top),
                            case.seed
                        ));
                    }
                    if dist.pmf.support_min() < bcrt {
                        return fail(format!(
                            "`{}`: support min {} undercuts the BCRT {bcrt} (seed {})",
                            row.name,
                            dist.pmf.support_min(),
                            case.seed
                        ));
                    }
                    if (dist.pmf.total_mass() - 1.0).abs() > 1e-6 {
                        return fail(format!(
                            "`{}`: total mass {} is not conserved (seed {})",
                            row.name,
                            dist.pmf.total_mass(),
                            case.seed
                        ));
                    }
                    if wcrt <= row.deadline && dist.miss_probability != 0.0 {
                        return fail(format!(
                            "`{}`: deterministically schedulable (WCRT {wcrt} ≤ deadline {}) \
                             yet miss probability is {} (seed {})",
                            row.name, row.deadline, dist.miss_probability, case.seed
                        ));
                    }
                }
                (None, None) => {} // both diverged — consistent
                (Some(_), None) => {
                    return fail(format!(
                        "`{}`: deterministic analysis bounded, probabilistic reported overload \
                         (seed {})",
                        row.name, case.seed
                    ));
                }
                (None, Some(_)) => {
                    return fail(format!(
                        "`{}`: deterministic analysis diverged, probabilistic produced a \
                         distribution (seed {})",
                        row.name, case.seed
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Everything a per-message report row exposes that must match between
/// two equivalent evaluations.
fn same_report_row(a: &MessageReport, b: &MessageReport) -> bool {
    a.name == b.name
        && a.id == b.id
        && a.c_max == b.c_max
        && a.c_min == b.c_min
        && a.blocking == b.blocking
        && a.deadline == b.deadline
        && a.outcome == b.outcome
        && a.instances == b.instances
}

/// A copy of `net` at a different bit rate (same backend).
fn at_bit_rate(net: &CanNetwork, bit_rate: u64) -> CanNetwork {
    let mut out = CanNetwork::new(bit_rate).with_backend(net.backend());
    for node in net.nodes() {
        out.add_node(node.clone());
    }
    for m in net.messages() {
        out.add_message(m.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{random_network, NetShape};

    #[test]
    fn catalogue_has_stable_unique_names() {
        let names = law_names();
        assert_eq!(names.len(), 13);
        assert!(law_by_name(PROB_LAW).is_some());
        assert!(law_by_name("compiled-equals-naive").is_some());
        assert!(law_by_name("fd-dominates-classic-at-same-payload").is_some());
        assert!(law_by_name(crate::chaos::DEGRADED_LAW).is_some());
        assert!(law_by_name(crate::chaos::ISOLATION_LAW).is_some());
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "law names must be unique");
        assert!(names.contains(&ORACLE_LAW));
        assert!(law_by_name("jitter-monotonicity").is_some());
        assert!(law_by_name("nope").is_none());
    }

    #[test]
    fn laws_hold_on_a_small_corpus() {
        let eval = Evaluator::default();
        let laws = all_laws();
        for seed in 0..4u64 {
            for shape in [NetShape::bus(), NetShape::mixed()] {
                let net = random_network(&shape, seed);
                let case = LawCase {
                    seed,
                    errors: if seed % 2 == 0 {
                        ErrorSpec::None
                    } else {
                        ErrorSpec::Sporadic {
                            interval: Time::from_ms(10),
                        }
                    },
                };
                for law in &laws {
                    law.check(&net, &case, &eval).unwrap_or_else(|v| {
                        panic!("law {} violated on seed {seed}: {v}", law.name())
                    });
                }
            }
        }
    }

    #[test]
    fn pointwise_le_treats_none_as_infinity() {
        let t = |ms| Some(Time::from_ms(ms));
        assert!(pointwise_le(&[t(1), None], &[t(2), None]));
        assert!(pointwise_le(&[t(1)], &[None]));
        assert!(!pointwise_le(&[None], &[t(1)]));
        assert!(!pointwise_le(&[t(3)], &[t(2)]));
        assert!(!pointwise_le(&[t(1)], &[t(1), t(2)]), "length mismatch");
    }
}
