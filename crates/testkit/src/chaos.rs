//! The chaos harness: fault-injection hooks and the resilience laws.
//!
//! The engine's [`FaultPlan`] arms an [`Evaluator`] to panic, force a
//! divergence or report an injected `InvalidModel` at a chosen point of
//! a batch. This module turns those hooks into two metamorphic laws:
//!
//! * [`DegradedIsSound`] — flooding a bus with an unschedulable
//!   lowest-priority message must *degrade* the report (the flood is
//!   diagnosed, everything else keeps bounds) without ever producing a
//!   bound below the flood-free analysis, and the surviving bounds must
//!   still dominate a bus simulation,
//! * [`FaultIsolation`] — one faulted point in a batch must leave every
//!   other point bit-identical to a clean evaluation, and retrying the
//!   faulted point must heal (no poisoned cache, no corrupted
//!   warm-start state).
//!
//! Both are members of [`crate::laws::all_laws`], so `carta fuzz`
//! exercises them over the whole generated corpus.

use crate::laws::{pointwise_le, wcrts, Law, LawCase};
use crate::oracle::{DiffOracle, Violation};
use carta_can::compiled::CompiledBus;
use carta_can::controller::ControllerType;
use carta_can::frame::{Dlc, StuffingMode};
use carta_can::message::{CanId, CanMessage};
use carta_can::network::{CanNetwork, Node};
use carta_can::rta::{analyze_bus, AnalysisConfig, BusReport};
use carta_core::analysis::AnalysisError;
use carta_core::time::Time;
use carta_engine::prelude::{
    BaseSystem, DeadlineOverride, Evaluator, FaultPlan, Scenario, SystemVariant,
};
use std::sync::Arc;

/// Stable name of the [`DegradedIsSound`] law.
pub const DEGRADED_LAW: &str = "degraded-is-sound";

/// Stable name of the [`FaultIsolation`] law.
pub const ISOLATION_LAW: &str = "fault-isolation";

/// A sequential evaluator with `plan` armed: fault point `N` counts
/// *uncached* analyses, so with one worker the N-th submitted variant
/// of a batch is the one that faults — the deterministic setup every
/// chaos check wants.
pub fn chaotic_evaluator(plan: FaultPlan) -> Evaluator {
    Evaluator::builder().jobs(1).faults(plan).build()
}

/// The CAN identifier of the injected flood message: weaker than
/// everything [`crate::gen`] hands out, so the flood sits at the bottom
/// of the arbitration order and only *blocks* (never interferes with)
/// the original messages.
const FLOOD_ID: u32 = 0x7FA;

/// A copy of `net` with an unschedulable lowest-priority flood message
/// appended: eight bytes every 50 µs demands several times the capacity
/// of even a 1 Mbit/s bus, so the flood's priority level is guaranteed
/// to diverge. The flood gets its own fullCAN node — a basicCAN or
/// FIFO sender would conservatively fold the flood into its
/// queue-mates' (and, for FIFO, the whole bus's) interference and
/// overload *every* level, defeating the point of a lowest-priority
/// probe.
pub fn flooded(net: &CanNetwork) -> CanNetwork {
    let mut out = net.clone();
    let sender = out.add_node(Node::new("flood_node", ControllerType::FullCan));
    out.add_message(CanMessage::new(
        "flood",
        CanId::standard(FLOOD_ID).expect("valid id"),
        Dlc::new(8),
        Time::from_us(50),
        Time::ZERO,
        sender,
    ));
    out
}

/// Degraded-mode soundness: an overloaded priority level is diagnosed,
/// not escalated, and every bound that survives is still a sound upper
/// bound.
///
/// The law injects a flood message (see [`flooded`]) below every
/// generated message and checks four things against the flood-free
/// analysis:
///
/// 1. the flooded report is degraded and the flood itself carries a
///    diagnostic naming its priority level and interference set,
/// 2. no original message's WCRT *improved* under the extra load
///    (monotonicity, with unbounded treated as +∞),
/// 3. originals that do not see the flood in their compiled
///    interference set (fullCAN senders stronger than the flood —
///    basicCAN/FIFO senders conservatively absorb other nodes'
///    lower-priority traffic) and whose blocking is unchanged are
///    bit-identical — divergence below them is invisible,
/// 4. the degraded report still dominates a short bus simulation
///    (via [`DiffOracle`]), i.e. the surviving bounds are not just
///    present but *sound*.
#[derive(Debug, Clone, Copy)]
pub struct DegradedIsSound {
    oracle: DiffOracle,
}

impl Default for DegradedIsSound {
    fn default() -> Self {
        DegradedIsSound {
            // The flooded bus is saturated, so a short horizon already
            // observes back-to-back worst-case frames; 3 s would just
            // burn fuzz time.
            oracle: DiffOracle {
                sim_horizon: Time::from_ms(500),
            },
        }
    }
}

impl Law for DegradedIsSound {
    fn name(&self) -> &'static str {
        DEGRADED_LAW
    }

    fn check(&self, net: &CanNetwork, case: &LawCase, eval: &Evaluator) -> Result<(), Violation> {
        let model = case.errors.model();
        let config = AnalysisConfig::default();
        let plain =
            analyze_bus(net, model.as_ref(), &config).expect("generated networks are analyzable");
        let flooded_net = flooded(net);
        let report = analyze_bus(&flooded_net, model.as_ref(), &config)
            .expect("a flooded network is still analyzable — degraded, not an error");

        self.flood_is_diagnosed(net, &report, case.seed)?;
        self.originals_are_monotone_and_isolated(net, &flooded_net, &plain, &report, case.seed)?;
        // Soundness of the surviving bounds against the simulator (the
        // oracle skips unbounded messages: +∞ dominates everything).
        self.oracle
            .check(eval, &flooded_net, case.errors, case.seed)
            .map_err(|v| {
                Violation::new(
                    self.name(),
                    format!("degraded report unsound: {}", v.detail),
                )
            })
    }
}

impl DegradedIsSound {
    fn flood_is_diagnosed(
        &self,
        net: &CanNetwork,
        report: &BusReport,
        seed: u64,
    ) -> Result<(), Violation> {
        if !report.is_degraded() {
            return Err(Violation::new(
                self.name(),
                format!(
                    "a flood demanding multiples of the bus capacity was not diagnosed (seed {seed})"
                ),
            ));
        }
        let flood = report
            .by_name("flood")
            .expect("the injected flood is reported");
        let Some(diag) = flood.outcome.diagnostic() else {
            return Err(Violation::new(
                self.name(),
                format!("the flood itself kept bounds despite infeasible demand (seed {seed})"),
            ));
        };
        if diag.priority_level != net.messages().len() {
            return Err(Violation::new(
                self.name(),
                format!(
                    "flood diagnostic reports priority level {} but {} stronger messages exist \
                     (seed {seed})",
                    diag.priority_level,
                    net.messages().len()
                ),
            ));
        }
        if diag.interference.is_empty() && !net.messages().is_empty() {
            return Err(Violation::new(
                self.name(),
                format!("flood diagnostic carries an empty interference set (seed {seed})"),
            ));
        }
        Ok(())
    }

    fn originals_are_monotone_and_isolated(
        &self,
        net: &CanNetwork,
        flooded_net: &CanNetwork,
        plain: &BusReport,
        report: &BusReport,
        seed: u64,
    ) -> Result<(), Violation> {
        let n = net.messages().len();
        let flooded_originals: Vec<Option<Time>> = wcrts(report).into_iter().take(n).collect();
        if !pointwise_le(&wcrts(plain), &flooded_originals) {
            return Err(Violation::new(
                self.name(),
                format!("an original message's WCRT improved under the flood (seed {seed})"),
            ));
        }
        let compiled = CompiledBus::compile(flooded_net, StuffingMode::WorstCase)
            .expect("flooded network compiles");
        let flood_idx = n;
        for (i, (a, b)) in plain
            .messages
            .iter()
            .zip(report.messages.iter())
            .enumerate()
        {
            // A message whose interference set excludes the flood only
            // feels it through blocking; if the flood did not raise its
            // blocking either, the row must be untouched — divergence
            // below is invisible above.
            let sees_flood = compiled.interference_sets()[i].contains(&flood_idx);
            if !sees_flood && a.blocking == b.blocking && a != b {
                return Err(Violation::new(
                    self.name(),
                    format!(
                        "`{}` changed under the flood despite identical blocking and no \
                         interference path: {:?} vs {:?} (seed {seed})",
                        a.name, a.outcome, b.outcome
                    ),
                ));
            }
        }
        Ok(())
    }
}

/// Fault isolation: a single poisoned point of a batch never leaks into
/// its neighbours, the cache, or the warm-start state.
///
/// The law evaluates an eight-point jitter grid twice — once on a clean
/// sequential evaluator, once on a fault-armed one that panics, reports
/// an injected `InvalidModel` or forces a divergence at a seed-chosen
/// point — and checks that
///
/// 1. exactly the faulted point differs, with the fault kind the plan
///    asked for,
/// 2. every other point is bit-identical to the clean evaluation,
/// 3. retrying the faulted point on the *same* armed evaluator heals:
///    the retry is bit-identical to the clean result (nothing poisoned
///    entered the memo cache, the panicked workspace was discarded).
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultIsolation;

/// Which fault the plan arms for a given case seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultKind {
    Panic,
    Invalid,
    Diverge,
}

impl Law for FaultIsolation {
    fn name(&self) -> &'static str {
        ISOLATION_LAW
    }

    fn check(&self, net: &CanNetwork, case: &LawCase, _eval: &Evaluator) -> Result<(), Violation> {
        const POINTS: u64 = 8;
        let scenario = Scenario {
            name: "fault-isolation".into(),
            stuffing: StuffingMode::WorstCase,
            errors: case.errors,
            deadline: DeadlineOverride::Keep,
        };
        let base = BaseSystem::new(net.clone());
        let variants: Vec<SystemVariant> = (0..POINTS)
            .map(|k| {
                SystemVariant::new(Arc::clone(&base), scenario.clone())
                    .with_jitter_ratio(k as f64 * 0.05)
            })
            .collect();

        let baseline: Vec<Arc<BusReport>> = chaotic_evaluator(FaultPlan::default())
            .evaluate_batch(&variants)
            .into_iter()
            .map(|r| r.expect("generated networks are analyzable"))
            .collect();

        let at = case.seed % POINTS;
        let kind = match case.seed % 3 {
            0 => FaultKind::Panic,
            1 => FaultKind::Invalid,
            _ => FaultKind::Diverge,
        };
        let plan = match kind {
            FaultKind::Panic => FaultPlan {
                panic_at: Some(at),
                ..FaultPlan::default()
            },
            FaultKind::Invalid => FaultPlan {
                invalid_at: Some(at),
                ..FaultPlan::default()
            },
            FaultKind::Diverge => FaultPlan {
                diverge_at: Some(at),
                ..FaultPlan::default()
            },
        };
        let armed = chaotic_evaluator(plan);
        let results = armed.evaluate_batch(&variants);

        for (i, result) in results.iter().enumerate() {
            if i as u64 == at {
                self.faulted_point_matches(kind, result, at, case.seed)?;
                continue;
            }
            match result {
                Ok(report) if **report == *baseline[i] => {}
                Ok(_) => {
                    return Err(Violation::new(
                        self.name(),
                        format!(
                            "point {i} differs from the clean evaluation although the fault was \
                             armed at point {at} (seed {})",
                            case.seed
                        ),
                    ));
                }
                Err(err) => {
                    return Err(Violation::new(
                        self.name(),
                        format!(
                            "point {i} failed ({err}) although the fault was armed at point {at} \
                             (seed {})",
                            case.seed
                        ),
                    ));
                }
            }
        }

        // The fault fired exactly once and nothing poisoned was cached:
        // a retry on the same evaluator must match a fresh evaluation.
        match armed.evaluate(&variants[at as usize]) {
            Ok(report) if *report == *baseline[at as usize] => Ok(()),
            Ok(_) => Err(Violation::new(
                self.name(),
                format!(
                    "retry of the faulted point {at} is not bit-identical to a clean evaluation \
                     (seed {})",
                    case.seed
                ),
            )),
            Err(err) => Err(Violation::new(
                self.name(),
                format!(
                    "retry of the faulted point {at} still fails: {err} (seed {})",
                    case.seed
                ),
            )),
        }
    }
}

impl FaultIsolation {
    fn faulted_point_matches(
        &self,
        kind: FaultKind,
        result: &Result<Arc<BusReport>, AnalysisError>,
        at: u64,
        seed: u64,
    ) -> Result<(), Violation> {
        let ok = match (kind, result) {
            (FaultKind::Panic, Err(AnalysisError::Panicked { .. })) => true,
            (FaultKind::Invalid, Err(AnalysisError::InvalidModel(_))) => true,
            // A forced divergence is *not* an error: the point comes
            // back as a degraded report with every message diagnosed.
            (FaultKind::Diverge, Ok(report)) => report.is_degraded(),
            _ => false,
        };
        if ok {
            Ok(())
        } else {
            Err(Violation::new(
                self.name(),
                format!(
                    "point {at} did not fail as {kind:?} was armed: got {result:?} (seed {seed})"
                ),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{random_network, NetShape};
    use carta_engine::prelude::ErrorSpec;

    #[test]
    fn flooding_always_overloads() {
        for seed in 0..6 {
            let net = flooded(&random_network(&NetShape::bus(), seed));
            let report = analyze_bus(
                &net,
                ErrorSpec::None.model().as_ref(),
                &AnalysisConfig::default(),
            )
            .expect("degraded, not an error");
            assert!(report.is_degraded());
            assert!(report
                .by_name("flood")
                .expect("flood reported")
                .outcome
                .diagnostic()
                .is_some());
        }
    }

    #[test]
    fn chaos_laws_hold_on_a_small_corpus() {
        let eval = Evaluator::default();
        for law in [
            Box::new(DegradedIsSound::default()) as Box<dyn Law>,
            Box::new(FaultIsolation),
        ] {
            // Seeds 0..3 cover all three fault kinds of FaultIsolation.
            for seed in 0..3u64 {
                let net = random_network(&NetShape::bus(), seed);
                let case = LawCase {
                    seed,
                    errors: ErrorSpec::None,
                };
                law.check(&net, &case, &eval)
                    .unwrap_or_else(|v| panic!("law {} violated on seed {seed}: {v}", law.name()));
            }
        }
    }
}
