//! End-to-end sensitivity check: an intentionally-broken analysis
//! (blocking term dropped via the hidden `test_mutations` hook) must be
//! caught by the differential oracle, shrunk to a tiny counterexample,
//! survive a JSON round trip, and replay clean once the fault is gone.
//!
//! Kept as a single `#[test]` in its own binary: the fault hook is
//! process-global, so nothing else may run concurrently with it.

use carta_can::rta::test_mutations;
use carta_testkit::prelude::*;

#[test]
fn dropped_blocking_term_is_caught_and_shrunk() {
    test_mutations::set_drop_blocking(true);
    let oracle = DiffOracle::default();
    let mut caught = None;
    for seed in 0..48u64 {
        // A fresh evaluator per seed: the cache must not serve reports
        // computed under a different mutation state.
        let eval = Evaluator::default();
        let net = random_network(&NetShape::bus(), seed);
        if let Err(repro) = oracle.check_and_shrink(&eval, &net, ErrorSpec::None, seed) {
            caught = Some(repro);
            break;
        }
    }
    test_mutations::set_drop_blocking(false);

    let repro = caught.expect(
        "dropping the blocking term must be observable within 48 seeds — \
         the oracle lost its teeth",
    );
    assert!(
        repro.network.messages().len() <= 4,
        "shrinker left {} messages (steps: {}): {}",
        repro.network.messages().len(),
        repro.shrink_steps,
        repro.violation
    );
    assert_eq!(repro.law, ORACLE_LAW);

    // The counterexample must survive serialization untouched...
    let decoded = Repro::from_json(&repro.to_json()).expect("repro roundtrips");
    assert_eq!(decoded, *repro);

    // ...and replay clean now that the analysis is sound again.
    decoded
        .replay()
        .expect("with the fault disabled the repro must pass");
}
