//! Hostile-input properties: every malformed model an integrator can
//! plausibly feed the stack — zero periods, dead buses, duplicate
//! identifiers, non-numeric jitter assumptions — must come back as a
//! structured [`AnalysisError::InvalidModel`] diagnosis, and extreme
//! but *valid* inputs (jitter far above the period) must analyze to a
//! sound verdict. Nothing here may ever panic.

use carta_core::analysis::AnalysisError;
use carta_core::time::Time;
use carta_engine::prelude::{BaseSystem, Evaluator, JitterOverlay, Scenario, SystemVariant};
use carta_testkit::prelude::{networks, NetShape};
use proptest::prelude::*;

/// One full-stack evaluation of `net` under the worst-case scenario.
fn evaluate(net: &carta_can::network::CanNetwork) -> Result<(), AnalysisError> {
    let base = BaseSystem::new(net.clone());
    Evaluator::default()
        .evaluate(&SystemVariant::new(base, Scenario::worst_case()))
        .map(|_| ())
}

fn is_invalid(result: &Result<(), AnalysisError>) -> bool {
    matches!(result, Err(AnalysisError::InvalidModel(_)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn zero_period_is_diagnosed_not_a_panic((seed, net) in networks(NetShape::bus())) {
        let mut net = net;
        let k = seed as usize % net.messages().len();
        let m = &mut net.messages_mut()[k];
        let activation = m.activation;
        m.activation = carta_core::event_model::EventModel::new(
            activation.kind(),
            Time::ZERO,
            activation.jitter(),
            Time::ZERO,
        );
        prop_assert!(is_invalid(&evaluate(&net)));
    }

    #[test]
    fn zero_bit_rate_is_diagnosed_not_a_panic((_seed, net) in networks(NetShape::bus())) {
        let mut dead = carta_can::network::CanNetwork::new(0);
        for node in net.nodes() {
            dead.add_node(node.clone());
        }
        for m in net.messages() {
            dead.add_message(m.clone());
        }
        prop_assert!(is_invalid(&evaluate(&dead)));
    }

    #[test]
    fn empty_bus_is_diagnosed_not_a_panic((_seed, net) in networks(NetShape::bus())) {
        let mut empty = carta_can::network::CanNetwork::new(net.bit_rate());
        for node in net.nodes() {
            empty.add_node(node.clone());
        }
        prop_assert!(is_invalid(&evaluate(&empty)));
    }

    #[test]
    fn duplicate_can_ids_are_diagnosed_not_a_panic((seed, net) in networks(NetShape::bus())) {
        let mut net = net;
        let n = net.messages().len();
        let src = seed as usize % n;
        let dst = (src + 1) % n;
        let id = net.messages()[src].id;
        net.messages_mut()[dst].id = id;
        prop_assert!(is_invalid(&evaluate(&net)));
    }

    #[test]
    fn non_numeric_jitter_overlays_are_diagnosed(
        (_seed, net) in networks(NetShape::bus()),
        value_pick in 0usize..4,
        kind_pick in 0usize..3,
    ) {
        let hostile = [f64::NAN, f64::NEG_INFINITY, f64::INFINITY, -0.25][value_pick];
        let overlay = match kind_pick {
            0 => JitterOverlay::UniformRatio(hostile),
            1 => JitterOverlay::AssumedUnknownRatio(hostile),
            _ => JitterOverlay::Scale(hostile),
        };
        let base = BaseSystem::new(net);
        let result = Evaluator::default()
            .evaluate(&SystemVariant::new(base, Scenario::worst_case()).with_jitter(overlay));
        prop_assert!(matches!(result, Err(AnalysisError::InvalidModel(_))));
    }

    #[test]
    fn jitter_far_above_the_period_still_analyzes((seed, net) in networks(NetShape::bus())) {
        // Valid-but-extreme: release jitter hundreds of periods long is
        // a legal event model. The analysis must terminate with a sound
        // verdict (bounded or diagnosed divergence), never panic.
        let mut net = net;
        let k = seed as usize % net.messages().len();
        let m = &mut net.messages_mut()[k];
        let activation = m.activation;
        m.activation = carta_core::event_model::EventModel::new(
            activation.kind(),
            activation.period(),
            Time::from_ns(activation.period().as_ns().saturating_mul(500)),
            activation.dmin(),
        );
        prop_assert!(evaluate(&net).is_ok());
    }
}
