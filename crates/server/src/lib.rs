//! `carta-server`: multi-tenant analysis-as-a-service over
//! `carta.api.v1`.
//!
//! The server is a thin shell around [`carta_api::Handler`] — it owns
//! **no analysis logic**. What it adds is the service layer the
//! library deliberately does not have:
//!
//! * an HTTP/1.1 + JSON transport built on `std::net` alone
//!   ([`http`]) — like the `shims/` crates, no registry access means
//!   no hyper, and the API surface (three routes, JSON bodies) does
//!   not need one,
//! * per-tenant [`Evaluator`](carta_engine::prelude::Evaluator) pools
//!   with memo-cache quotas and LRU tenant eviction ([`tenant`]),
//! * admission control and load shedding ([`server`]): a tenant over
//!   its window budget has heavy requests shed with
//!   `admission.shed`/429 while `analyze` degrades to an immediate
//!   partial report — mirroring on the service level what the
//!   degraded-mode RTA does on the bus level,
//! * `GET /v1/metrics` in the same `carta.metrics.v1` document the
//!   CLI's `--metrics-json` writes, extended with the `server.*`
//!   counters,
//! * production lifecycle hardening ([`server`], [`state`]): graceful
//!   drain on SIGTERM/`stop()` with cooperative cancellation of
//!   in-flight work, per-request `deadline_ms` budgets, bearer-token
//!   tenant auth, HTTP/1.1 keep-alive with per-connection caps, and
//!   crash-safe session persistence (fsync-before-ack JSONL replayed
//!   on boot).
//!
//! ```no_run
//! use carta_server::{Server, ServerConfig};
//!
//! let server = Server::bind(ServerConfig::from_env())?;
//! eprintln!("listening on {}", server.local_addr()?);
//! server.run()?;
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Panic-free service surface: a malformed request must surface as a
// typed error, never a crash. Tests may still unwrap.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod config;
pub mod http;
pub mod server;
pub mod state;
pub mod tenant;

pub use config::ServerConfig;
pub use server::{request_shutdown, Server, ServerHandle};
pub use state::{SessionRecord, StateLog};
pub use tenant::{Admission, TenantPool};
