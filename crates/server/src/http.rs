//! A deliberately small HTTP/1.1 subset over `std::net`, in the same
//! no-registry spirit as the `shims/` crates: request line, headers,
//! `Content-Length` bodies, keep-alive with per-connection caps.
//! Exactly what `carta.api.v1` needs — JSON bodies over POST/GET — and
//! nothing a service behind a reverse proxy does not.
//!
//! Hostile input is handled deterministically rather than by
//! connection drop: a truncated body, a stalled (slow-loris) header
//! section, a `Transfer-Encoding` header, or conflicting
//! `Content-Length`s each map to [`HttpError::Malformed`] so the
//! server can answer a well-formed `400` with a stable error code.

use std::io::{self, BufRead, Write};

/// Hard ceiling on the request line plus headers, independent of the
/// configurable body limit.
const MAX_HEAD: usize = 16 * 1024;

/// One parsed request.
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// Uppercase method (`GET`, `POST`, ...), as received.
    pub method: String,
    /// Request path, query string stripped.
    pub path: String,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The raw body (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// First header with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked for the connection to be closed after
    /// this response (`Connection: close`).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed (or went idle past the socket timeout) before
    /// sending a request line — nothing to answer.
    Closed,
    /// Transport failure.
    Io(io::Error),
    /// Syntactically invalid request (maps to `400`). Includes
    /// truncated bodies and mid-request stalls: a peer that *started*
    /// a request owes us the rest of it within the read timeout.
    Malformed(String),
    /// Declared body larger than the configured ceiling (maps to
    /// `413`).
    BodyTooLarge {
        /// The declared `Content-Length`.
        declared: usize,
        /// The configured ceiling.
        limit: usize,
    },
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
            HttpError::BodyTooLarge { declared, limit } => {
                write!(
                    f,
                    "request body of {declared} bytes exceeds the {limit}-byte limit"
                )
            }
        }
    }
}

impl std::error::Error for HttpError {}

/// A read error that means "the peer stalled", which the socket
/// timeout converts into `WouldBlock`/`TimedOut`.
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Reads one request from `reader`.
///
/// # Errors
///
/// [`HttpError::Closed`] on a clean EOF (or an idle timeout) before
/// the first request byte, [`HttpError::Malformed`] on bad syntax,
/// mid-request stalls, and truncated bodies,
/// [`HttpError::BodyTooLarge`] when `Content-Length` exceeds
/// `max_body`.
pub fn read_request<R: BufRead>(reader: &mut R, max_body: usize) -> Result<HttpRequest, HttpError> {
    let mut consumed = 0usize;
    let line = match read_line(reader, MAX_HEAD, &mut consumed) {
        Ok(line) => line,
        // Timeout before any byte: an idle keep-alive connection, not
        // an attack. After the first byte it is a slow-loris head.
        Err(HttpError::Io(e)) if is_timeout(&e) && consumed == 0 => return Err(HttpError::Closed),
        Err(HttpError::Io(e)) if is_timeout(&e) => {
            return Err(HttpError::Malformed(
                "request head stalled past the read timeout".into(),
            ))
        }
        Err(e) => return Err(e),
    };
    if line.is_empty() {
        return Err(HttpError::Closed);
    }
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request line".into()))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("request line without a target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("request line without a version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!(
            "unsupported version `{version}`"
        )));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut headers = Vec::new();
    let mut head_bytes = line.len();
    loop {
        let line = match read_line(reader, MAX_HEAD, &mut consumed) {
            Ok(line) => line,
            Err(HttpError::Io(e)) if is_timeout(&e) => {
                return Err(HttpError::Malformed(
                    "header section stalled past the read timeout".into(),
                ))
            }
            Err(e) => return Err(e),
        };
        if line.is_empty() {
            break;
        }
        head_bytes += line.len();
        if head_bytes > MAX_HEAD {
            return Err(HttpError::Malformed("header section too large".into()));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("header without a colon: `{line}`")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    // Chunked (or any other) transfer coding is out of scope; honoring
    // `Content-Length` while a `Transfer-Encoding` header is present
    // is the classic request-smuggling setup, so the combination — and
    // the coding itself — is rejected outright.
    if headers.iter().any(|(n, _)| n == "transfer-encoding") {
        return Err(HttpError::Malformed(
            "transfer-encoding is not supported; send a content-length body".into(),
        ));
    }
    let mut lengths = headers.iter().filter(|(n, _)| n == "content-length");
    let content_length = match lengths.next() {
        None => 0,
        Some((_, v)) => {
            if lengths.next().is_some() {
                return Err(HttpError::Malformed(
                    "multiple content-length headers".into(),
                ));
            }
            v.parse::<usize>()
                .map_err(|_| HttpError::Malformed(format!("invalid content-length `{v}`")))?
        }
    };
    if content_length > max_body {
        return Err(HttpError::BodyTooLarge {
            declared: content_length,
            limit: max_body,
        });
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof || is_timeout(&e) {
            HttpError::Malformed(format!(
                "body truncated: content-length declared {content_length} bytes"
            ))
        } else {
            HttpError::Io(e)
        }
    })?;
    Ok(HttpRequest {
        method,
        path,
        headers,
        body,
    })
}

/// Reads one CRLF- (or bare-LF-) terminated line, without the
/// terminator. `consumed` counts every byte read, so the caller can
/// tell an idle connection (timeout at 0 bytes) from a stalled one.
fn read_line<R: BufRead>(
    reader: &mut R,
    limit: usize,
    consumed: &mut usize,
) -> Result<String, HttpError> {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match reader.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => {
                *consumed += 1;
                if byte[0] == b'\n' {
                    break;
                }
                buf.push(byte[0]);
                if buf.len() > limit {
                    return Err(HttpError::Malformed("line too long".into()));
                }
            }
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf).map_err(|_| HttpError::Malformed("non-UTF-8 header bytes".into()))
}

/// The standard reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        401 => "Unauthorized",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes one complete response and flushes. `keep_alive` selects the
/// `connection` header; `extra` headers (e.g. `retry-after`) are
/// emitted verbatim after it.
///
/// # Errors
///
/// Propagates transport errors; callers treat them as "peer went
/// away" and drop the connection.
pub fn write_response<W: Write>(
    writer: &mut W,
    status: u16,
    content_type: &str,
    body: &str,
    keep_alive: bool,
    extra: &[(&str, &str)],
) -> io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    write!(
        writer,
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: {connection}\r\n",
        reason(status),
        body.len()
    )?;
    for (name, value) in extra {
        write!(writer, "{name}: {value}\r\n")?;
    }
    writer.write_all(b"\r\n")?;
    writer.write_all(body.as_bytes())?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<HttpRequest, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()), 1024)
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(
            "POST /v1/requests?x=1 HTTP/1.1\r\nHost: localhost\r\nX-Carta-Tenant: oem\r\ncontent-length: 4\r\n\r\nbody",
        )
        .expect("parses");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/requests");
        assert_eq!(req.header("x-carta-tenant"), Some("oem"));
        assert_eq!(req.body, b"body");
        assert!(!req.wants_close());
    }

    #[test]
    fn connection_close_is_honored() {
        let req = parse("GET /v1/metrics HTTP/1.1\r\nConnection: Close\r\n\r\n").expect("parses");
        assert!(req.wants_close());
    }

    #[test]
    fn get_without_length_has_empty_body() {
        let req = parse("GET /v1/metrics HTTP/1.1\r\n\r\n").expect("parses");
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
    }

    #[test]
    fn oversized_body_is_rejected_before_reading_it() {
        let err = parse("POST /v1/requests HTTP/1.1\r\ncontent-length: 99999\r\n\r\n")
            .expect_err("too large");
        assert!(matches!(
            err,
            HttpError::BodyTooLarge {
                declared: 99999,
                limit: 1024
            }
        ));
    }

    #[test]
    fn clean_eof_is_closed_and_garbage_is_malformed() {
        assert!(matches!(parse(""), Err(HttpError::Closed)));
        assert!(matches!(
            parse("what\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / SPDY/3\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn truncated_body_is_malformed_not_dropped() {
        let err = parse("POST /v1/requests HTTP/1.1\r\ncontent-length: 10\r\n\r\nshort")
            .expect_err("truncated");
        match err {
            HttpError::Malformed(what) => assert!(what.contains("truncated"), "{what}"),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn transfer_encoding_is_rejected() {
        let err = parse(
            "POST /v1/requests HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n",
        )
        .expect_err("chunked");
        match err {
            HttpError::Malformed(what) => assert!(what.contains("transfer-encoding"), "{what}"),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn conflicting_content_lengths_are_rejected() {
        let err = parse(
            "POST /v1/requests HTTP/1.1\r\ncontent-length: 4\r\ncontent-length: 4\r\n\r\nbody",
        )
        .expect_err("duplicate lengths");
        assert!(matches!(err, HttpError::Malformed(_)));
    }

    #[test]
    fn responses_carry_length_and_connection_mode() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            429,
            "application/json",
            "{}",
            false,
            &[("retry-after", "1")],
        )
        .expect("writes");
        let text = String::from_utf8(out).expect("utf-8");
        assert!(
            text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{text}"
        );
        assert!(text.contains("content-length: 2\r\n"), "{text}");
        assert!(text.contains("connection: close\r\n"), "{text}");
        assert!(text.contains("retry-after: 1\r\n"), "{text}");
        assert!(text.ends_with("{}"), "{text}");

        let mut out = Vec::new();
        write_response(&mut out, 200, "application/json", "{}", true, &[]).expect("writes");
        let text = String::from_utf8(out).expect("utf-8");
        assert!(text.contains("connection: keep-alive\r\n"), "{text}");
    }
}
