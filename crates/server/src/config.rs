//! Server tuning knobs, every one overridable through a
//! `CARTA_SERVER_*` environment variable so deployments never need a
//! config file.

use std::str::FromStr;

/// All server tuning knobs with their defaults.
///
/// [`ServerConfig::from_env`] reads each field from the
/// `CARTA_SERVER_*` variable named in its doc comment; unset or
/// unparsable variables fall back to the default (a service must come
/// up even with a typo in its unit file — the effective config is what
/// `/v1/metrics` consumers observe, not what the environment claims).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`CARTA_SERVER_ADDR`). Use port `0` to let the
    /// OS pick — tests do.
    pub addr: String,
    /// Connection-handling worker threads (`CARTA_SERVER_WORKERS`).
    pub workers: usize,
    /// Per-tenant evaluator parallelism in jobs
    /// (`CARTA_SERVER_JOBS`). Tenants share the machine, so the
    /// default is sequential; raise it on dedicated hardware.
    pub jobs: usize,
    /// Per-tenant evaluator memo-cache quota in entries
    /// (`CARTA_SERVER_CACHE_QUOTA`). The engine's LRU keyed by base
    /// fingerprint evicts within a tenant once the quota is hit.
    pub cache_quota: usize,
    /// Resident tenant limit (`CARTA_SERVER_MAX_TENANTS`). The
    /// least-recently-used tenant — evaluator cache, sessions and all —
    /// is evicted beyond this.
    pub max_tenants: usize,
    /// Uploaded sessions kept per tenant
    /// (`CARTA_SERVER_MAX_SESSIONS`); oldest-first eviction beyond.
    pub max_sessions: usize,
    /// Request body ceiling in bytes (`CARTA_SERVER_MAX_BODY`).
    pub max_body: usize,
    /// Admission window length in milliseconds
    /// (`CARTA_SERVER_WINDOW_MS`).
    pub window_ms: u64,
    /// Requests one tenant may spend per window
    /// (`CARTA_SERVER_BUDGET`) before pressure handling kicks in:
    /// heavy requests are shed, `analyze` degrades.
    pub budget: u32,
    /// Fixpoint-iteration budget for degraded-mode `analyze`
    /// (`CARTA_SERVER_DEGRADED_ITERATIONS`). Deliberately tiny: the
    /// point of the degraded report is an immediate partial answer
    /// whose unconverged messages carry diagnostics, not a cheap way
    /// around admission control.
    pub degraded_iterations: u64,
    /// Graceful-drain budget in milliseconds (`CARTA_SERVER_DRAIN_MS`).
    /// On SIGTERM / `stop()` the server stops accepting, waits up to
    /// this long for in-flight requests, then cancels the stragglers
    /// cooperatively and exits 0 either way.
    pub drain_ms: u64,
    /// Session persistence directory (`CARTA_SERVER_STATE_DIR`).
    /// When set, every acked session upload is appended to
    /// `sessions.jsonl` in this directory and fsync'd before the `201`
    /// goes out; the log is replayed on boot so a crash never loses an
    /// acked session. Unset (the default) keeps sessions memory-only.
    pub state_dir: Option<String>,
    /// Bearer-token auth map (`CARTA_SERVER_TOKENS`), formatted as
    /// `token1=tenant1,token2=tenant2`. When non-empty, every request
    /// must carry `authorization: bearer <token>`; the token picks the
    /// tenant and the `x-carta-tenant` header is only honored if it
    /// names the same tenant. When empty (the default) the server
    /// trusts `x-carta-tenant`, preserving pre-auth behavior.
    pub tokens: Vec<(String, String)>,
    /// Requests served per connection before the server closes it
    /// (`CARTA_SERVER_KEEPALIVE_MAX`). Caps how long one client can
    /// monopolize a worker thread under HTTP/1.1 keep-alive.
    pub keepalive_max: u32,
    /// Idle timeout between keep-alive requests in milliseconds
    /// (`CARTA_SERVER_IDLE_MS`). A connection that sends nothing for
    /// this long is closed.
    pub idle_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7006".into(),
            workers: 4,
            jobs: 1,
            cache_quota: 4096,
            max_tenants: 8,
            max_sessions: 16,
            max_body: 1 << 20,
            window_ms: 1000,
            budget: 32,
            degraded_iterations: 4,
            drain_ms: 5000,
            state_dir: None,
            tokens: Vec::new(),
            keepalive_max: 64,
            idle_ms: 5000,
        }
    }
}

impl ServerConfig {
    /// The defaults overridden by whatever `CARTA_SERVER_*` variables
    /// are set (and parsable) in the environment.
    pub fn from_env() -> Self {
        let d = ServerConfig::default();
        ServerConfig {
            addr: std::env::var("CARTA_SERVER_ADDR").unwrap_or(d.addr),
            workers: env_parse("CARTA_SERVER_WORKERS", d.workers).max(1),
            jobs: env_parse("CARTA_SERVER_JOBS", d.jobs).max(1),
            cache_quota: env_parse("CARTA_SERVER_CACHE_QUOTA", d.cache_quota).max(1),
            max_tenants: env_parse("CARTA_SERVER_MAX_TENANTS", d.max_tenants).max(1),
            max_sessions: env_parse("CARTA_SERVER_MAX_SESSIONS", d.max_sessions).max(1),
            max_body: env_parse("CARTA_SERVER_MAX_BODY", d.max_body).max(1024),
            window_ms: env_parse("CARTA_SERVER_WINDOW_MS", d.window_ms).max(1),
            budget: env_parse("CARTA_SERVER_BUDGET", d.budget).max(1),
            degraded_iterations: env_parse(
                "CARTA_SERVER_DEGRADED_ITERATIONS",
                d.degraded_iterations,
            )
            .max(1),
            drain_ms: env_parse("CARTA_SERVER_DRAIN_MS", d.drain_ms),
            state_dir: std::env::var("CARTA_SERVER_STATE_DIR")
                .ok()
                .filter(|v| !v.is_empty()),
            tokens: std::env::var("CARTA_SERVER_TOKENS")
                .map(|v| parse_tokens(&v))
                .unwrap_or(d.tokens),
            keepalive_max: env_parse("CARTA_SERVER_KEEPALIVE_MAX", d.keepalive_max).max(1),
            idle_ms: env_parse("CARTA_SERVER_IDLE_MS", d.idle_ms).max(1),
        }
    }

    /// The tenant a bearer token maps to, if auth is configured and
    /// the token is known.
    pub fn tenant_for_token(&self, token: &str) -> Option<&str> {
        self.tokens
            .iter()
            .find(|(t, _)| t == token)
            .map(|(_, tenant)| tenant.as_str())
    }

    /// Whether bearer-token auth is enforced (any token configured).
    pub fn auth_enabled(&self) -> bool {
        !self.tokens.is_empty()
    }
}

/// Parses `token1=tenant1,token2=tenant2`; entries without a `=` or
/// with an empty side are skipped rather than failing the boot.
fn parse_tokens(raw: &str) -> Vec<(String, String)> {
    raw.split(',')
        .filter_map(|entry| {
            let (token, tenant) = entry.trim().split_once('=')?;
            let (token, tenant) = (token.trim(), tenant.trim());
            if token.is_empty() || tenant.is_empty() {
                None
            } else {
                Some((token.to_string(), tenant.to_string()))
            }
        })
        .collect()
}

fn env_parse<T: FromStr + Copy>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ServerConfig::default();
        assert!(c.workers >= 1);
        assert!(c.budget >= 1);
        assert!(c.degraded_iterations >= 1);
        assert!(c.max_body >= 1024);
        assert!(c.keepalive_max >= 1);
        assert!(c.state_dir.is_none());
        assert!(!c.auth_enabled());
    }

    #[test]
    fn token_map_parses_and_skips_malformed_entries() {
        let tokens = parse_tokens("alpha=oem-1, beta = supplier-2 ,junk,=x,y=");
        assert_eq!(tokens.len(), 2);
        let config = ServerConfig {
            tokens,
            ..ServerConfig::default()
        };
        assert!(config.auth_enabled());
        assert_eq!(config.tenant_for_token("alpha"), Some("oem-1"));
        assert_eq!(config.tenant_for_token("beta"), Some("supplier-2"));
        assert_eq!(config.tenant_for_token("junk"), None);
    }
}
