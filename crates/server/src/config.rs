//! Server tuning knobs, every one overridable through a
//! `CARTA_SERVER_*` environment variable so deployments never need a
//! config file.

use std::str::FromStr;

/// All server tuning knobs with their defaults.
///
/// [`ServerConfig::from_env`] reads each field from the
/// `CARTA_SERVER_*` variable named in its doc comment; unset or
/// unparsable variables fall back to the default (a service must come
/// up even with a typo in its unit file — the effective config is what
/// `/v1/metrics` consumers observe, not what the environment claims).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`CARTA_SERVER_ADDR`). Use port `0` to let the
    /// OS pick — tests do.
    pub addr: String,
    /// Connection-handling worker threads (`CARTA_SERVER_WORKERS`).
    pub workers: usize,
    /// Per-tenant evaluator parallelism in jobs
    /// (`CARTA_SERVER_JOBS`). Tenants share the machine, so the
    /// default is sequential; raise it on dedicated hardware.
    pub jobs: usize,
    /// Per-tenant evaluator memo-cache quota in entries
    /// (`CARTA_SERVER_CACHE_QUOTA`). The engine's LRU keyed by base
    /// fingerprint evicts within a tenant once the quota is hit.
    pub cache_quota: usize,
    /// Resident tenant limit (`CARTA_SERVER_MAX_TENANTS`). The
    /// least-recently-used tenant — evaluator cache, sessions and all —
    /// is evicted beyond this.
    pub max_tenants: usize,
    /// Uploaded sessions kept per tenant
    /// (`CARTA_SERVER_MAX_SESSIONS`); oldest-first eviction beyond.
    pub max_sessions: usize,
    /// Request body ceiling in bytes (`CARTA_SERVER_MAX_BODY`).
    pub max_body: usize,
    /// Admission window length in milliseconds
    /// (`CARTA_SERVER_WINDOW_MS`).
    pub window_ms: u64,
    /// Requests one tenant may spend per window
    /// (`CARTA_SERVER_BUDGET`) before pressure handling kicks in:
    /// heavy requests are shed, `analyze` degrades.
    pub budget: u32,
    /// Fixpoint-iteration budget for degraded-mode `analyze`
    /// (`CARTA_SERVER_DEGRADED_ITERATIONS`). Deliberately tiny: the
    /// point of the degraded report is an immediate partial answer
    /// whose unconverged messages carry diagnostics, not a cheap way
    /// around admission control.
    pub degraded_iterations: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7006".into(),
            workers: 4,
            jobs: 1,
            cache_quota: 4096,
            max_tenants: 8,
            max_sessions: 16,
            max_body: 1 << 20,
            window_ms: 1000,
            budget: 32,
            degraded_iterations: 4,
        }
    }
}

impl ServerConfig {
    /// The defaults overridden by whatever `CARTA_SERVER_*` variables
    /// are set (and parsable) in the environment.
    pub fn from_env() -> Self {
        let d = ServerConfig::default();
        ServerConfig {
            addr: std::env::var("CARTA_SERVER_ADDR").unwrap_or(d.addr),
            workers: env_parse("CARTA_SERVER_WORKERS", d.workers).max(1),
            jobs: env_parse("CARTA_SERVER_JOBS", d.jobs).max(1),
            cache_quota: env_parse("CARTA_SERVER_CACHE_QUOTA", d.cache_quota).max(1),
            max_tenants: env_parse("CARTA_SERVER_MAX_TENANTS", d.max_tenants).max(1),
            max_sessions: env_parse("CARTA_SERVER_MAX_SESSIONS", d.max_sessions).max(1),
            max_body: env_parse("CARTA_SERVER_MAX_BODY", d.max_body).max(1024),
            window_ms: env_parse("CARTA_SERVER_WINDOW_MS", d.window_ms).max(1),
            budget: env_parse("CARTA_SERVER_BUDGET", d.budget).max(1),
            degraded_iterations: env_parse(
                "CARTA_SERVER_DEGRADED_ITERATIONS",
                d.degraded_iterations,
            )
            .max(1),
        }
    }
}

fn env_parse<T: FromStr + Copy>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ServerConfig::default();
        assert!(c.workers >= 1);
        assert!(c.budget >= 1);
        assert!(c.degraded_iterations >= 1);
        assert!(c.max_body >= 1024);
    }
}
