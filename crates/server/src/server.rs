//! The HTTP front door: routing, admission handling, and the
//! worker-pool accept loop.
//!
//! Three routes:
//!
//! * `POST /v1/tenants/<tenant>/sessions` — upload a K-Matrix CSV,
//!   get a session id back,
//! * `POST /v1/requests` — one `carta.api.v1` request envelope
//!   (tenant from the `x-carta-tenant` header, default `public`);
//!   uploaded matrices are referenced with the
//!   `{"kind": "session", "id": "s1"}` model source,
//! * `GET /v1/metrics` — the `carta.metrics.v1` document since server
//!   start, including the `server.*` counters.
//!
//! Failure policy: an analysis outcome is **never** a 500. Divergence
//! comes back as a degraded 200 report, model and request problems as
//! their `carta.api.v1` error codes, and even a panicking worker is
//! caught (`Evaluator::evaluate_batch` already contains analysis
//! panics; the route layer adds a second `catch_unwind` so the
//! process survives anything else too).

use crate::config::ServerConfig;
use crate::http::{self, HttpError, HttpRequest};
use crate::tenant::{Admission, TenantPool};
use carta_api::handler::{load_matrix, load_network};
use carta_api::prelude::{AnalyzeReport, ApiError, ErrorCode, Handler, Model, Request, Response};
use carta_api::wire;
use carta_can::rta::{analyze_bus, AnalysisConfig};
use carta_obs::json::ObjectBuilder;
use carta_obs::metrics::{self, MetricsSnapshot};
use carta_obs::report::{metrics_json, Derived};
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// State shared by every connection worker.
#[derive(Debug)]
struct Shared {
    config: ServerConfig,
    pool: TenantPool,
    started: Instant,
    baseline: MetricsSnapshot,
    shutdown: AtomicBool,
}

/// A bound (not yet serving) server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listen socket and switches the global metrics
    /// registry on (the `/v1/metrics` endpoint reports deltas against
    /// the snapshot taken here).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        metrics::set_enabled(true);
        let listener = TcpListener::bind(&config.addr)?;
        let shared = Arc::new(Shared {
            pool: TenantPool::new(config.clone()),
            config,
            started: Instant::now(),
            baseline: metrics::global().snapshot(),
            shutdown: AtomicBool::new(false),
        });
        Ok(Server { listener, shared })
    }

    /// The bound address (the OS-chosen port when the config asked
    /// for `:0`).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until [`ServerHandle::stop`] (or a listener error).
    /// Accepted connections are fanned out to a fixed pool of worker
    /// threads; the accept loop itself never parses a byte.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O failures other than shutdown.
    pub fn run(self) -> io::Result<()> {
        let (tx, rx) = channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let workers: Vec<JoinHandle<()>> = (0..self.shared.config.workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(&self.shared);
                thread::Builder::new()
                    .name(format!("carta-server-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &rx))
                    .unwrap_or_else(|e| panic!("cannot spawn worker thread: {e}"))
            })
            .collect();
        for stream in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(stream) => {
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                // Transient accept errors (e.g. a peer resetting
                // mid-handshake) must not take the service down.
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::ConnectionReset
                            | io::ErrorKind::ConnectionAborted
                            | io::ErrorKind::Interrupted
                    ) => {}
                Err(e) => return Err(e),
            }
        }
        drop(tx);
        for worker in workers {
            let _ = worker.join();
        }
        Ok(())
    }

    /// Runs the accept loop on a background thread, returning a
    /// handle for the test harness (and a graceful `stop`).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let shared = Arc::clone(&self.shared);
        let thread = thread::Builder::new()
            .name("carta-server-accept".into())
            .spawn(move || self.run())?;
        Ok(ServerHandle {
            addr,
            shared,
            thread: Some(thread),
        })
    }
}

/// A running server spawned with [`Server::spawn`].
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    thread: Option<JoinHandle<io::Result<()>>>,
}

impl ServerHandle {
    /// Where the server listens.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals shutdown, unblocks the accept loop and joins it.
    pub fn stop(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // One throwaway connection unblocks the blocking accept.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn worker_loop(shared: &Shared, rx: &Arc<Mutex<Receiver<TcpStream>>>) {
    loop {
        let stream = {
            let Ok(guard) = rx.lock() else { return };
            guard.recv()
        };
        match stream {
            Ok(stream) => handle_connection(shared, stream),
            Err(_) => return, // accept loop gone: shutdown
        }
    }
}

fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    // A stalled peer must not pin a worker forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let (status, body) = match http::read_request(&mut reader, shared.config.max_body) {
        Ok(req) => dispatch(shared, &req),
        Err(HttpError::Closed | HttpError::Io(_)) => return,
        Err(err @ HttpError::BodyTooLarge { .. }) => (
            413,
            wire::encode_error(&ApiError::new(ErrorCode::QuotaExceeded, err.to_string())),
        ),
        Err(err @ HttpError::Malformed(_)) => error_response(&ApiError::request(err.to_string())),
    };
    let _ = http::write_response(&mut stream, status, "application/json", &body);
    let _ = stream.flush();
}

/// Routes one request; panics anywhere below become a 500 here, and
/// the worker (and process) live on.
fn dispatch(shared: &Shared, req: &HttpRequest) -> (u16, String) {
    catch_unwind(AssertUnwindSafe(|| route(shared, req))).unwrap_or_else(|_| {
        metrics::global().counter("server.requests.panicked").inc();
        error_response(&ApiError::internal(
            "request handling panicked; the server is still up",
        ))
    })
}

fn route(shared: &Shared, req: &HttpRequest) -> (u16, String) {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/requests") => handle_api(shared, req),
        ("GET", "/v1/metrics") => (200, metrics_document(shared)),
        ("GET", "/v1/healthz") => (
            200,
            ObjectBuilder::new()
                .string("schema", wire::SCHEMA)
                .bool("ok", true)
                .string("kind", "healthz")
                .build(),
        ),
        ("POST", path) => match session_upload_tenant(path) {
            Some(tenant) => handle_upload(shared, tenant, &req.body),
            None => not_found(path),
        },
        (_, path @ ("/v1/requests" | "/v1/metrics" | "/v1/healthz")) => (
            405,
            wire::encode_error(&ApiError::request(format!(
                "method `{}` not allowed on `{path}`",
                req.method
            ))),
        ),
        (_, path) => not_found(path),
    }
}

/// `/v1/tenants/<tenant>/sessions` → `<tenant>`.
fn session_upload_tenant(path: &str) -> Option<&str> {
    path.strip_prefix("/v1/tenants/")?.strip_suffix("/sessions")
}

fn not_found(path: &str) -> (u16, String) {
    (
        404,
        wire::encode_error(&ApiError::request(format!("unknown route `{path}`"))),
    )
}

fn error_response(err: &ApiError) -> (u16, String) {
    (err.code.http_status(), wire::encode_error(err))
}

fn handle_upload(shared: &Shared, tenant: &str, body: &[u8]) -> (u16, String) {
    if let Err(err) = TenantPool::validate_tenant(tenant) {
        return error_response(&err);
    }
    let csv = match std::str::from_utf8(body) {
        Ok(text) => text,
        Err(_) => {
            return error_response(&ApiError::request("session body is not UTF-8 K-Matrix CSV"))
        }
    };
    // Reject junk at the door so `session` model sources can only
    // name parsable matrices.
    if let Err(err) = load_matrix(&carta_api::prelude::ModelSource::Csv(csv.to_string())) {
        return error_response(&err);
    }
    let id = shared.pool.put_session(tenant, csv.to_string());
    metrics::global().counter("server.sessions.uploaded").inc();
    let result = ObjectBuilder::new()
        .string("id", &id)
        .string("tenant", tenant)
        .build();
    let body = ObjectBuilder::new()
        .string("schema", wire::SCHEMA)
        .bool("ok", true)
        .string("kind", "session")
        .raw("result", &result)
        .build();
    (201, body)
}

fn handle_api(shared: &Shared, req: &HttpRequest) -> (u16, String) {
    let tenant = req.header("x-carta-tenant").unwrap_or("public").to_string();
    if let Err(err) = TenantPool::validate_tenant(&tenant) {
        return error_response(&err);
    }
    let text = match std::str::from_utf8(&req.body) {
        Ok(text) => text,
        Err(_) => return error_response(&ApiError::request("request body is not UTF-8")),
    };
    let resolve = |id: &str| shared.pool.session(&tenant, id).map(|csv| (*csv).clone());
    let request = match wire::decode_request(text, &resolve) {
        Ok(request) => request,
        Err(err) => return error_response(&err),
    };
    let (handler, admission) = shared.pool.checkout(&tenant);
    match admission {
        Admission::Granted => serve(&handler, &request),
        Admission::Pressure if request.is_heavy() => {
            metrics::global().counter("server.requests.shed").inc();
            error_response(&ApiError::new(
                ErrorCode::AdmissionShed,
                format!(
                    "tenant `{tenant}` is over its admission budget of {} requests per {} ms; \
                     heavy request `{}` shed — retry next window",
                    shared.config.budget,
                    shared.config.window_ms,
                    request.kind()
                ),
            ))
        }
        Admission::Pressure => match &request {
            // `analyze` under pressure still answers, but with a
            // strangled iteration budget: whatever converges keeps its
            // bounds, the rest carries diagnostics, and the report is
            // marked degraded. A flooding tenant gets an honest
            // partial answer, never a 500 and never a free full run.
            Request::Analyze { model, scenario } => {
                metrics::global().counter("server.requests.degraded").inc();
                match degraded_analyze(model, *scenario, shared.config.degraded_iterations) {
                    Ok(resp) => (200, wire::encode_response(&resp)),
                    Err(err) => error_response(&err),
                }
            }
            _ => serve(&handler, &request),
        },
    }
}

fn serve(handler: &Handler, request: &Request) -> (u16, String) {
    metrics::global().counter("server.requests.accepted").inc();
    match handler.handle(request) {
        Ok(resp) => (200, wire::encode_response(&resp)),
        Err(err) => error_response(&err),
    }
}

/// The admission-pressure `analyze` path: a direct `analyze_bus` run
/// whose per-message fixpoints are capped at `max_iterations`, so the
/// answer is immediate and partial rather than queued or shed.
fn degraded_analyze(
    model: &Model,
    scenario: carta_api::prelude::ScenarioSpec,
    max_iterations: u64,
) -> Result<Response, ApiError> {
    let net = load_network(model)?;
    let scenario = scenario.to_scenario();
    let prepared = scenario.apply(&net);
    let config = AnalysisConfig {
        max_iterations,
        ..scenario.analysis_config()
    };
    let error_model = scenario.errors.model();
    let report = analyze_bus(&prepared, error_model.as_ref(), &config)?;
    Ok(Response::Analyze(AnalyzeReport {
        scenario: scenario.name,
        report: Arc::new(report),
    }))
}

fn metrics_document(shared: &Shared) -> String {
    let wall_s = shared.started.elapsed().as_secs_f64();
    let delta = metrics::global().snapshot().delta(&shared.baseline);
    let derived = Derived::from_delta(&delta, wall_s);
    metrics_json("server", wall_s, &delta, &derived)
}

#[cfg(test)]
mod tests {
    use super::*;
    use carta_api::prelude::ScenarioSpec;

    fn shared() -> Shared {
        let config = ServerConfig {
            addr: "127.0.0.1:0".into(),
            ..ServerConfig::default()
        };
        Shared {
            pool: TenantPool::new(config.clone()),
            config,
            started: Instant::now(),
            baseline: MetricsSnapshot {
                values: Default::default(),
            },
            shutdown: AtomicBool::new(false),
        }
    }

    fn post(path: &str, body: &str) -> HttpRequest {
        HttpRequest {
            method: "POST".into(),
            path: path.into(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    #[test]
    fn unknown_routes_are_404_with_api_error_envelopes() {
        let shared = shared();
        let (status, body) = route(&shared, &post("/v2/everything", ""));
        assert_eq!(status, 404);
        let err = wire::decode_error(&body).expect("error envelope");
        assert_eq!(err.code, ErrorCode::RequestInvalid);
        assert!(err.message.contains("unknown route"), "{}", err.message);
    }

    #[test]
    fn wrong_method_is_405() {
        let shared = shared();
        let mut req = post("/v1/metrics", "");
        req.method = "DELETE".into();
        let (status, _) = route(&shared, &req);
        assert_eq!(status, 405);
    }

    #[test]
    fn session_upload_rejects_junk_and_accepts_a_matrix() {
        let shared = shared();
        let (status, body) = route(&shared, &post("/v1/tenants/oem/sessions", "not,a,kmatrix"));
        assert_eq!(status, 422, "{body}");
        let csv = match Handler::default()
            .handle(&Request::Generate { seed: 42 })
            .expect("generates")
        {
            Response::Matrix { csv } => csv,
            other => panic!("wrong kind {}", other.kind()),
        };
        let (status, body) = route(&shared, &post("/v1/tenants/oem/sessions", &csv));
        assert_eq!(status, 201, "{body}");
        assert!(body.contains("\"id\":\"s1\""), "{body}");
        assert!(shared.pool.session("oem", "s1").is_some());
    }

    #[test]
    fn degraded_analyze_is_partial_but_never_an_error() {
        let resp = degraded_analyze(&Model::case_study(), ScenarioSpec::Worst, 1)
            .expect("degraded, not an error");
        match resp {
            Response::Analyze(a) => {
                assert!(
                    a.report.is_degraded(),
                    "a 1-iteration budget cannot converge 64 messages"
                );
                assert!(a.report.diagnostics().count() > 0);
            }
            other => panic!("wrong kind {}", other.kind()),
        }
    }

    #[test]
    fn tenant_path_parsing_is_exact() {
        assert_eq!(
            session_upload_tenant("/v1/tenants/oem/sessions"),
            Some("oem")
        );
        assert_eq!(session_upload_tenant("/v1/tenants/oem/other"), None);
        assert_eq!(session_upload_tenant("/v1/tenants//sessions"), Some(""));
        assert!(TenantPool::validate_tenant("").is_err());
    }
}
