//! The HTTP front door: routing, admission handling, auth, the
//! keep-alive worker pool, and the graceful-drain lifecycle.
//!
//! Three routes:
//!
//! * `POST /v1/tenants/<tenant>/sessions` — upload a K-Matrix CSV,
//!   get a session id back (fsync'd to the state log first when
//!   `CARTA_SERVER_STATE_DIR` is set),
//! * `POST /v1/requests` — one `carta.api.v1` request envelope
//!   (tenant from the bearer token when auth is configured, else the
//!   `x-carta-tenant` header, default `public`); an optional
//!   top-level `deadline_ms` bounds the evaluation cooperatively,
//! * `GET /v1/metrics` — the `carta.metrics.v1` document since server
//!   start, including the `server.*` counters.
//!
//! Failure policy: an analysis outcome is **never** a 500. Divergence
//! comes back as a degraded 200 report, model and request problems as
//! their `carta.api.v1` error codes, and even a panicking worker is
//! caught (`Evaluator::evaluate_batch` already contains analysis
//! panics; the route layer adds a second `catch_unwind` so the
//! process survives anything else too).
//!
//! Lifecycle: `stop()` (or SIGTERM via [`request_shutdown`]) starts a
//! drain — the listener stops accepting, requests that arrive on
//! already-open connections get `503 server.unavailable`, in-flight
//! requests get up to `drain_ms` to finish, stragglers are cancelled
//! cooperatively through the shared [`CancelToken`], and the process
//! exits 0. A client-supplied `deadline_ms` rides the same token as a
//! child deadline, so "this request ran out of time" (`504
//! request.deadline_exceeded`) and "the server is going away" (`503
//! server.unavailable`) stay distinct on the wire.

use crate::config::ServerConfig;
use crate::http::{self, HttpError, HttpRequest};
use crate::state::{SessionRecord, StateLog};
use crate::tenant::{Admission, TenantPool};
use carta_api::handler::{load_matrix, load_network};
use carta_api::prelude::{AnalyzeReport, ApiError, ErrorCode, Handler, Model, Request, Response};
use carta_api::wire;
use carta_can::rta::{analyze_bus, AnalysisConfig};
use carta_engine::prelude::CancelToken;
use carta_obs::json::ObjectBuilder;
use carta_obs::metrics::{self, MetricsSnapshot};
use carta_obs::report::{metrics_json, Derived};
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// How often the accept loop wakes to poll the shutdown flag; also
/// the granularity of the drain wait.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Process-global shutdown request, set from the SIGTERM/SIGINT
/// handler in the binary. A signal handler may only do
/// async-signal-safe work; a single atomic store qualifies, so this is
/// the entire cross-thread surface of the signal path.
static GLOBAL_SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Requests a graceful drain of every server in this process. Safe to
/// call from a signal handler.
pub fn request_shutdown() {
    GLOBAL_SHUTDOWN.store(true, Ordering::SeqCst);
}

/// One response, ready to be written: status, JSON body, and any
/// extra headers (`retry-after` on shed requests).
#[derive(Debug)]
struct Reply {
    status: u16,
    body: String,
    headers: Vec<(String, String)>,
}

impl Reply {
    fn new(status: u16, body: String) -> Reply {
        Reply {
            status,
            body,
            headers: Vec::new(),
        }
    }
}

/// State shared by every connection worker.
#[derive(Debug)]
struct Shared {
    config: ServerConfig,
    pool: TenantPool,
    started: Instant,
    baseline: MetricsSnapshot,
    shutdown: AtomicBool,
    /// Set once the drain begins: stop serving *new* requests.
    draining: AtomicBool,
    /// Requests currently between dispatch entry and response write.
    inflight: AtomicU64,
    /// Root of every per-request cancellation token; `cancel()`ed when
    /// the drain budget runs out.
    drain: CancelToken,
    /// The fsync'd session log, when persistence is configured.
    state: Option<Mutex<StateLog>>,
}

impl Shared {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || GLOBAL_SHUTDOWN.load(Ordering::SeqCst)
    }
}

/// A bound (not yet serving) server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listen socket, switches the global metrics registry
    /// on (the `/v1/metrics` endpoint reports deltas against the
    /// snapshot taken here), and — when `state_dir` is configured —
    /// replays the session log so every previously acked upload
    /// resolves again.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure and state-log I/O errors (a server
    /// that cannot honor its durability contract must not come up).
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        metrics::set_enabled(true);
        let listener = TcpListener::bind(&config.addr)?;
        let pool = TenantPool::new(config.clone());
        let state = match &config.state_dir {
            None => None,
            Some(dir) => {
                let (log, records, stats) = StateLog::open(std::path::Path::new(dir))?;
                for record in records {
                    pool.restore_session(&record.tenant, &record.id, record.csv);
                }
                metrics::global()
                    .counter("server.state.replayed")
                    .add(stats.replayed);
                metrics::global()
                    .counter("server.state.truncated_bytes")
                    .add(stats.truncated_bytes);
                Some(Mutex::new(log))
            }
        };
        let shared = Arc::new(Shared {
            pool,
            config,
            started: Instant::now(),
            baseline: metrics::global().snapshot(),
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            inflight: AtomicU64::new(0),
            drain: CancelToken::new(),
            state,
        });
        Ok(Server { listener, shared })
    }

    /// The bound address (the OS-chosen port when the config asked
    /// for `:0`).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until [`ServerHandle::stop`] or [`request_shutdown`],
    /// then drains: in-flight requests get up to `drain_ms` to finish
    /// before the shared token cancels them cooperatively. Returns
    /// `Ok(())` on a completed drain either way — a graceful stop is
    /// exit 0, never an error.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O failures other than shutdown.
    pub fn run(self) -> io::Result<()> {
        let (tx, rx) = channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let workers: Vec<JoinHandle<()>> = (0..self.shared.config.workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(&self.shared);
                thread::Builder::new()
                    .name(format!("carta-server-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &rx))
                    .unwrap_or_else(|e| panic!("cannot spawn worker thread: {e}"))
            })
            .collect();
        // Nonblocking accept + poll keeps the loop responsive to the
        // shutdown flag without the old throwaway self-connection.
        self.listener.set_nonblocking(true)?;
        while !self.shared.shutdown_requested() {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    // Accepted sockets must be blocking regardless of
                    // what they inherit from the listener.
                    let _ = stream.set_nonblocking(false);
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL_INTERVAL),
                // Transient accept errors (e.g. a peer resetting
                // mid-handshake) must not take the service down.
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::ConnectionReset
                            | io::ErrorKind::ConnectionAborted
                            | io::ErrorKind::Interrupted
                    ) => {}
                Err(e) => return Err(e),
            }
        }
        // Drain: no new requests, bounded wait for in-flight ones,
        // then cooperative cancellation of the stragglers.
        self.shared.draining.store(true, Ordering::SeqCst);
        let deadline = Instant::now() + Duration::from_millis(self.shared.config.drain_ms);
        while self.shared.inflight.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            thread::sleep(POLL_INTERVAL);
        }
        let stragglers = self.shared.inflight.load(Ordering::SeqCst);
        if stragglers > 0 {
            metrics::global()
                .counter("server.drain.cancelled")
                .add(stragglers);
            self.shared.drain.cancel();
        }
        drop(tx);
        for worker in workers {
            let _ = worker.join();
        }
        metrics::global().counter("server.drain.completed").inc();
        Ok(())
    }

    /// Runs the accept loop on a background thread, returning a
    /// handle for the test harness (and a graceful `stop`).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let shared = Arc::clone(&self.shared);
        let thread = thread::Builder::new()
            .name("carta-server-accept".into())
            .spawn(move || self.run())?;
        Ok(ServerHandle {
            addr,
            shared,
            thread: Some(thread),
        })
    }
}

/// A running server spawned with [`Server::spawn`].
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    thread: Option<JoinHandle<io::Result<()>>>,
}

impl ServerHandle {
    /// Where the server listens.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals shutdown and joins the accept loop, which performs the
    /// full graceful drain before returning.
    pub fn stop(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn worker_loop(shared: &Shared, rx: &Arc<Mutex<Receiver<TcpStream>>>) {
    loop {
        let stream = {
            let Ok(guard) = rx.lock() else { return };
            guard.recv()
        };
        match stream {
            Ok(stream) => handle_connection(shared, stream),
            Err(_) => return, // accept loop gone: shutdown
        }
    }
}

/// Serves up to `keepalive_max` requests off one connection. The read
/// timeout doubles as the keep-alive idle timeout: a quiet peer is
/// closed, a peer that stalls *mid-request* gets a deterministic 400
/// (see `http::read_request`).
fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(shared.config.idle_ms)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    for served in 0..shared.config.keepalive_max {
        let (reply, keep_alive) = match http::read_request(&mut reader, shared.config.max_body) {
            Ok(req) => {
                if served > 0 {
                    metrics::global().counter("server.keepalive.reused").inc();
                }
                if shared.draining() {
                    // The drain contract: connections opened before the
                    // drain finish their *current* request; anything
                    // arriving after is told to go elsewhere.
                    (unavailable_reply(), false)
                } else {
                    let reply = dispatch(shared, &req);
                    let keep = !req.wants_close()
                        && served + 1 < shared.config.keepalive_max
                        && !shared.draining();
                    (reply, keep)
                }
            }
            Err(HttpError::Closed | HttpError::Io(_)) => return,
            Err(err @ HttpError::BodyTooLarge { .. }) => (
                Reply::new(
                    413,
                    wire::encode_error(&ApiError::new(ErrorCode::QuotaExceeded, err.to_string())),
                ),
                false,
            ),
            // Hostile or broken framing: answer a well-formed 400,
            // then close — the connection's byte stream can no longer
            // be trusted for another request.
            Err(err @ HttpError::Malformed(_)) => {
                metrics::global().counter("server.requests.malformed").inc();
                (error_reply(&ApiError::request(err.to_string())), false)
            }
        };
        let headers: Vec<(&str, &str)> = reply
            .headers
            .iter()
            .map(|(n, v)| (n.as_str(), v.as_str()))
            .collect();
        if http::write_response(
            &mut stream,
            reply.status,
            "application/json",
            &reply.body,
            keep_alive,
            &headers,
        )
        .is_err()
        {
            return;
        }
        let _ = stream.flush();
        if !keep_alive {
            return;
        }
    }
}

fn unavailable_reply() -> Reply {
    error_reply(&ApiError::new(
        ErrorCode::Unavailable,
        "server is draining for shutdown; retry against another instance",
    ))
}

/// Routes one request; panics anywhere below become a 500 here, and
/// the worker (and process) live on. The in-flight gauge brackets
/// exactly this scope — it is what the drain waits on.
fn dispatch(shared: &Shared, req: &HttpRequest) -> Reply {
    shared.inflight.fetch_add(1, Ordering::SeqCst);
    let reply = catch_unwind(AssertUnwindSafe(|| route(shared, req))).unwrap_or_else(|_| {
        metrics::global().counter("server.requests.panicked").inc();
        error_reply(&ApiError::internal(
            "request handling panicked; the server is still up",
        ))
    });
    shared.inflight.fetch_sub(1, Ordering::SeqCst);
    reply
}

fn route(shared: &Shared, req: &HttpRequest) -> Reply {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/requests") => handle_api(shared, req),
        ("GET", "/v1/metrics") => Reply::new(200, metrics_document(shared)),
        ("GET", "/v1/healthz") => Reply::new(
            200,
            ObjectBuilder::new()
                .string("schema", wire::SCHEMA)
                .bool("ok", true)
                .string("kind", "healthz")
                .build(),
        ),
        ("POST", path) => match session_upload_tenant(path) {
            Some(tenant) => handle_upload(shared, tenant, req),
            None => not_found(path),
        },
        (_, path @ ("/v1/requests" | "/v1/metrics" | "/v1/healthz")) => Reply::new(
            405,
            wire::encode_error(&ApiError::request(format!(
                "method `{}` not allowed on `{path}`",
                req.method
            ))),
        ),
        (_, path) => not_found(path),
    }
}

/// `/v1/tenants/<tenant>/sessions` → `<tenant>`.
fn session_upload_tenant(path: &str) -> Option<&str> {
    path.strip_prefix("/v1/tenants/")?.strip_suffix("/sessions")
}

fn not_found(path: &str) -> Reply {
    Reply::new(
        404,
        wire::encode_error(&ApiError::request(format!("unknown route `{path}`"))),
    )
}

fn error_reply(err: &ApiError) -> Reply {
    Reply::new(err.code.http_status(), wire::encode_error(err))
}

/// The tenant a request's bearer token authorizes, when auth is
/// configured.
///
/// # Errors
///
/// `401 auth.required` for a missing/non-bearer/unknown credential.
fn bearer_tenant<'a>(shared: &'a Shared, req: &HttpRequest) -> Result<&'a str, ApiError> {
    let denied = |message: String| {
        metrics::global().counter("server.auth.denied").inc();
        ApiError::new(ErrorCode::Unauthenticated, message)
    };
    let Some(auth) = req.header("authorization") else {
        return Err(denied(
            "missing credentials; send `Authorization: Bearer <token>`".into(),
        ));
    };
    let Some((scheme, token)) = auth.split_once(' ') else {
        return Err(denied("malformed authorization header".into()));
    };
    if !scheme.eq_ignore_ascii_case("bearer") {
        return Err(denied(format!(
            "unsupported authorization scheme `{scheme}`; use `Bearer`"
        )));
    }
    shared
        .config
        .tenant_for_token(token.trim())
        .ok_or_else(|| denied("unknown bearer token".into()))
}

/// Resolves the acting tenant for an API request. With auth
/// configured the token decides; an `x-carta-tenant` header is then
/// only accepted when it agrees (`403 auth.forbidden` otherwise).
/// Without auth the header is trusted as before.
fn api_tenant(shared: &Shared, req: &HttpRequest) -> Result<String, ApiError> {
    if !shared.config.auth_enabled() {
        return Ok(req.header("x-carta-tenant").unwrap_or("public").to_string());
    }
    let tenant = bearer_tenant(shared, req)?;
    if let Some(claimed) = req.header("x-carta-tenant") {
        if claimed != tenant {
            metrics::global().counter("server.auth.denied").inc();
            return Err(ApiError::new(
                ErrorCode::Forbidden,
                format!("token is not authorized for tenant `{claimed}`"),
            ));
        }
    }
    Ok(tenant.to_string())
}

fn handle_upload(shared: &Shared, tenant: &str, req: &HttpRequest) -> Reply {
    if shared.config.auth_enabled() {
        match bearer_tenant(shared, req) {
            Err(err) => return error_reply(&err),
            Ok(authorized) if authorized != tenant => {
                metrics::global().counter("server.auth.denied").inc();
                return error_reply(&ApiError::new(
                    ErrorCode::Forbidden,
                    format!("token is not authorized for tenant `{tenant}`"),
                ));
            }
            Ok(_) => {}
        }
    }
    if let Err(err) = TenantPool::validate_tenant(tenant) {
        return error_reply(&err);
    }
    let csv = match std::str::from_utf8(&req.body) {
        Ok(text) => text,
        Err(_) => return error_reply(&ApiError::request("session body is not UTF-8 K-Matrix CSV")),
    };
    // Reject junk at the door so `session` model sources can only
    // name parsable matrices.
    if let Err(err) = load_matrix(&carta_api::prelude::ModelSource::Csv(csv.to_string())) {
        return error_reply(&err);
    }
    let id = shared.pool.put_session(tenant, csv.to_string());
    // Durability before acknowledgement: the 201 must not leave until
    // the record is on stable storage.
    if let Some(state) = &shared.state {
        let record = SessionRecord {
            tenant: tenant.to_string(),
            id: id.clone(),
            csv: csv.to_string(),
        };
        let appended = {
            let mut log = match state.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            log.append(&record)
        };
        if let Err(e) = appended {
            metrics::global()
                .counter("server.state.append_failed")
                .inc();
            return error_reply(&ApiError::internal(format!(
                "session could not be persisted: {e}; upload not acknowledged"
            )));
        }
        metrics::global().counter("server.state.appended").inc();
    }
    metrics::global().counter("server.sessions.uploaded").inc();
    let result = ObjectBuilder::new()
        .string("id", &id)
        .string("tenant", tenant)
        .build();
    let body = ObjectBuilder::new()
        .string("schema", wire::SCHEMA)
        .bool("ok", true)
        .string("kind", "session")
        .raw("result", &result)
        .build();
    Reply::new(201, body)
}

fn handle_api(shared: &Shared, req: &HttpRequest) -> Reply {
    let tenant = match api_tenant(shared, req) {
        Ok(tenant) => tenant,
        Err(err) => return error_reply(&err),
    };
    if let Err(err) = TenantPool::validate_tenant(&tenant) {
        return error_reply(&err);
    }
    let text = match std::str::from_utf8(&req.body) {
        Ok(text) => text,
        Err(_) => return error_reply(&ApiError::request("request body is not UTF-8")),
    };
    let resolve = |id: &str| shared.pool.session(&tenant, id).map(|csv| (*csv).clone());
    let (request, deadline_ms) = match wire::decode_envelope(text, &resolve) {
        Ok(decoded) => decoded,
        Err(err) => return error_reply(&err),
    };
    // Every evaluation runs under a child of the drain token: a
    // client deadline tightens it, a server drain cancels it, and the
    // engine polls it at chunk boundaries either way.
    let cancel = shared
        .drain
        .child_with_deadline(deadline_ms.map(Duration::from_millis));
    let (handler, admission) = shared.pool.checkout(&tenant);
    let handler = handler.scoped_cancel(cancel);
    let reply = match admission {
        Admission::Granted => serve(&handler, &request),
        Admission::Pressure { retry_after_ms } if request.is_heavy() => {
            metrics::global().counter("server.requests.shed").inc();
            metrics::global().counter("server.retry_after_hints").inc();
            let mut reply = error_reply(&ApiError::new(
                ErrorCode::AdmissionShed,
                format!(
                    "tenant `{tenant}` is over its admission budget of {} requests per {} ms; \
                     heavy request `{}` shed — retry next window",
                    shared.config.budget,
                    shared.config.window_ms,
                    request.kind()
                ),
            ));
            // `Retry-After` is in whole seconds; round the window
            // remainder up so clients never retry early.
            reply.headers.push((
                "retry-after".into(),
                retry_after_ms.div_ceil(1000).to_string(),
            ));
            reply
        }
        Admission::Pressure { .. } => match &request {
            // `analyze` under pressure still answers, but with a
            // strangled iteration budget: whatever converges keeps its
            // bounds, the rest carries diagnostics, and the report is
            // marked degraded. A flooding tenant gets an honest
            // partial answer, never a 500 and never a free full run.
            Request::Analyze { model, scenario } => {
                metrics::global().counter("server.requests.degraded").inc();
                match degraded_analyze(model, *scenario, shared.config.degraded_iterations) {
                    Ok(resp) => Reply::new(200, wire::encode_response(&resp)),
                    Err(err) => error_reply(&err),
                }
            }
            _ => serve(&handler, &request),
        },
    };
    remap_cancellation(shared, reply)
}

/// A cancelled evaluation surfaces as `DeadlineExceeded`; when the
/// *drain* (not the client's deadline) tripped the token, the honest
/// answer is `503 server.unavailable` — the request didn't run out of
/// time, the server went away.
fn remap_cancellation(shared: &Shared, reply: Reply) -> Reply {
    if reply.status != ErrorCode::DeadlineExceeded.http_status() {
        return reply;
    }
    let Some(err) = wire::decode_error(&reply.body) else {
        return reply;
    };
    if err.code != ErrorCode::DeadlineExceeded {
        return reply;
    }
    if shared.drain.is_cancelled() {
        return error_reply(&ApiError::new(
            ErrorCode::Unavailable,
            "evaluation cancelled by server drain; retry against another instance",
        ));
    }
    metrics::global()
        .counter("server.requests.deadline_exceeded")
        .inc();
    error_reply(&ApiError::new(
        ErrorCode::DeadlineExceeded,
        format!(
            "{} (completed points are unaffected; retry with a larger `deadline_ms`)",
            err.message
        ),
    ))
}

fn serve(handler: &Handler, request: &Request) -> Reply {
    metrics::global().counter("server.requests.accepted").inc();
    match handler.handle(request) {
        Ok(resp) => Reply::new(200, wire::encode_response(&resp)),
        Err(err) => error_reply(&err),
    }
}

/// The admission-pressure `analyze` path: a direct `analyze_bus` run
/// whose per-message fixpoints are capped at `max_iterations`, so the
/// answer is immediate and partial rather than queued or shed.
fn degraded_analyze(
    model: &Model,
    scenario: carta_api::prelude::ScenarioSpec,
    max_iterations: u64,
) -> Result<Response, ApiError> {
    let net = load_network(model)?;
    let scenario = scenario.to_scenario();
    let prepared = scenario.apply(&net);
    let config = AnalysisConfig {
        max_iterations,
        ..scenario.analysis_config()
    };
    let error_model = scenario.errors.model();
    let report = analyze_bus(&prepared, error_model.as_ref(), &config)?;
    Ok(Response::Analyze(AnalyzeReport {
        scenario: scenario.name,
        report: Arc::new(report),
    }))
}

fn metrics_document(shared: &Shared) -> String {
    let wall_s = shared.started.elapsed().as_secs_f64();
    let delta = metrics::global().snapshot().delta(&shared.baseline);
    let derived = Derived::from_delta(&delta, wall_s);
    metrics_json("server", wall_s, &delta, &derived)
}

#[cfg(test)]
mod tests {
    use super::*;
    use carta_api::prelude::ScenarioSpec;

    fn shared_with(config: ServerConfig) -> Shared {
        Shared {
            pool: TenantPool::new(config.clone()),
            config,
            started: Instant::now(),
            baseline: MetricsSnapshot {
                values: Default::default(),
            },
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            inflight: AtomicU64::new(0),
            drain: CancelToken::new(),
            state: None,
        }
    }

    fn shared() -> Shared {
        shared_with(ServerConfig {
            addr: "127.0.0.1:0".into(),
            ..ServerConfig::default()
        })
    }

    fn post(path: &str, body: &str) -> HttpRequest {
        HttpRequest {
            method: "POST".into(),
            path: path.into(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn with_header(mut req: HttpRequest, name: &str, value: &str) -> HttpRequest {
        req.headers.push((name.into(), value.into()));
        req
    }

    fn generated_csv() -> String {
        match Handler::default()
            .handle(&Request::Generate { seed: 42 })
            .expect("generates")
        {
            Response::Matrix { csv } => csv,
            other => panic!("wrong kind {}", other.kind()),
        }
    }

    #[test]
    fn unknown_routes_are_404_with_api_error_envelopes() {
        let shared = shared();
        let reply = route(&shared, &post("/v2/everything", ""));
        assert_eq!(reply.status, 404);
        let err = wire::decode_error(&reply.body).expect("error envelope");
        assert_eq!(err.code, ErrorCode::RequestInvalid);
        assert!(err.message.contains("unknown route"), "{}", err.message);
    }

    #[test]
    fn wrong_method_is_405() {
        let shared = shared();
        let mut req = post("/v1/metrics", "");
        req.method = "DELETE".into();
        let reply = route(&shared, &req);
        assert_eq!(reply.status, 405);
    }

    #[test]
    fn session_upload_rejects_junk_and_accepts_a_matrix() {
        let shared = shared();
        let reply = route(&shared, &post("/v1/tenants/oem/sessions", "not,a,kmatrix"));
        assert_eq!(reply.status, 422, "{}", reply.body);
        let csv = generated_csv();
        let reply = route(&shared, &post("/v1/tenants/oem/sessions", &csv));
        assert_eq!(reply.status, 201, "{}", reply.body);
        assert!(reply.body.contains("\"id\":\"s1\""), "{}", reply.body);
        assert!(shared.pool.session("oem", "s1").is_some());
    }

    #[test]
    fn degraded_analyze_is_partial_but_never_an_error() {
        let resp = degraded_analyze(&Model::case_study(), ScenarioSpec::Worst, 1)
            .expect("degraded, not an error");
        match resp {
            Response::Analyze(a) => {
                assert!(
                    a.report.is_degraded(),
                    "a 1-iteration budget cannot converge 64 messages"
                );
                assert!(a.report.diagnostics().count() > 0);
            }
            other => panic!("wrong kind {}", other.kind()),
        }
    }

    #[test]
    fn tenant_path_parsing_is_exact() {
        assert_eq!(
            session_upload_tenant("/v1/tenants/oem/sessions"),
            Some("oem")
        );
        assert_eq!(session_upload_tenant("/v1/tenants/oem/other"), None);
        assert_eq!(session_upload_tenant("/v1/tenants//sessions"), Some(""));
        assert!(TenantPool::validate_tenant("").is_err());
    }

    #[test]
    fn auth_gates_api_and_uploads_with_stable_codes() {
        let shared = shared_with(ServerConfig {
            addr: "127.0.0.1:0".into(),
            tokens: vec![("sekrit".into(), "oem".into())],
            ..ServerConfig::default()
        });
        // No credentials: 401 auth.required.
        let reply = route(&shared, &post("/v1/requests", "{}"));
        assert_eq!(reply.status, 401, "{}", reply.body);
        let err = wire::decode_error(&reply.body).expect("envelope");
        assert_eq!(err.code, ErrorCode::Unauthenticated);
        // Wrong token: still 401.
        let req = with_header(post("/v1/requests", "{}"), "authorization", "Bearer nope");
        assert_eq!(route(&shared, &req).status, 401);
        // Right token but claiming another tenant: 403 auth.forbidden.
        let req = with_header(
            with_header(post("/v1/requests", "{}"), "authorization", "Bearer sekrit"),
            "x-carta-tenant",
            "rival",
        );
        let reply = route(&shared, &req);
        assert_eq!(reply.status, 403, "{}", reply.body);
        assert_eq!(
            wire::decode_error(&reply.body).expect("envelope").code,
            ErrorCode::Forbidden
        );
        // Upload path: token tenant must match the path tenant.
        let csv = generated_csv();
        let req = with_header(
            post("/v1/tenants/rival/sessions", &csv),
            "authorization",
            "bearer sekrit",
        );
        assert_eq!(route(&shared, &req).status, 403);
        let req = with_header(
            post("/v1/tenants/oem/sessions", &csv),
            "authorization",
            "Bearer sekrit",
        );
        assert_eq!(route(&shared, &req).status, 201);
        // Without auth configured the tenant header is trusted as
        // before (compatibility with pre-auth deployments).
        let open = shared_with(ServerConfig {
            addr: "127.0.0.1:0".into(),
            ..ServerConfig::default()
        });
        let req = with_header(post("/v1/requests", "{}"), "x-carta-tenant", "anyone");
        // Malformed body, but it got past auth: 400, not 401.
        assert_eq!(route(&open, &req).status, 400);
    }

    #[test]
    fn shed_requests_carry_a_retry_after_hint() {
        let shared = shared_with(ServerConfig {
            addr: "127.0.0.1:0".into(),
            budget: 1,
            window_ms: 60_000,
            ..ServerConfig::default()
        });
        let body = wire::encode_request(&Request::Analyze {
            model: Model::case_study(),
            scenario: ScenarioSpec::Worst,
        });
        // First request spends the budget (cheap `load` would too, but
        // analyze is heavy so the second one is shed, not degraded).
        let body_opt = wire::encode_request(&Request::Optimize {
            model: Model::case_study(),
            population: 4,
            generations: 1,
            emit_csv: false,
        });
        let _ = route(&shared, &post("/v1/requests", &body));
        let reply = route(&shared, &post("/v1/requests", &body_opt));
        assert_eq!(reply.status, 429, "{}", reply.body);
        let retry = reply
            .headers
            .iter()
            .find(|(n, _)| n == "retry-after")
            .map(|(_, v)| v.clone())
            .expect("retry-after header");
        let seconds: u64 = retry.parse().expect("whole seconds");
        assert!((1..=60).contains(&seconds), "retry-after {seconds}s");
    }

    #[test]
    fn zero_deadline_maps_to_504_deadline_exceeded() {
        let shared = shared();
        let body = wire::encode_request_with_deadline(
            &Request::Analyze {
                model: Model::case_study(),
                scenario: ScenarioSpec::Worst,
            },
            Some(0),
        );
        let reply = route(&shared, &post("/v1/requests", &body));
        assert_eq!(reply.status, 504, "{}", reply.body);
        let err = wire::decode_error(&reply.body).expect("envelope");
        assert_eq!(err.code, ErrorCode::DeadlineExceeded);
        assert_eq!(err.code.as_str(), "request.deadline_exceeded");
        // Without a deadline the same request succeeds.
        let body = wire::encode_request(&Request::Analyze {
            model: Model::case_study(),
            scenario: ScenarioSpec::Worst,
        });
        let reply = route(&shared, &post("/v1/requests", &body));
        assert_eq!(reply.status, 200, "{}", reply.body);
    }

    #[test]
    fn drain_cancellation_reports_unavailable_not_timeout() {
        let shared = shared();
        shared.drain.cancel();
        let body = wire::encode_request_with_deadline(
            &Request::Analyze {
                model: Model::case_study(),
                scenario: ScenarioSpec::Worst,
            },
            Some(60_000),
        );
        let reply = route(&shared, &post("/v1/requests", &body));
        assert_eq!(reply.status, 503, "{}", reply.body);
        assert_eq!(
            wire::decode_error(&reply.body).expect("envelope").code,
            ErrorCode::Unavailable
        );
    }
}
