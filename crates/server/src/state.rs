//! Crash-safe session persistence: an append-only JSONL log
//! (`carta.state.v1`) under `CARTA_SERVER_STATE_DIR`.
//!
//! The durability contract is *fsync-before-ack*: a session upload is
//! appended and `sync_data`'d before the `201` leaves the server, so
//! any session a client saw acked survives `kill -9`. The converse
//! also holds — a crash mid-append leaves a torn final line, which
//! replay detects and truncates away (the client never saw an ack for
//! it, so dropping it is correct, and the log is again well-formed for
//! the next append).
//!
//! One line per acked upload:
//!
//! ```json
//! {"v":"carta.state.v1","tenant":"oem-1","id":"s3","csv":"..."}
//! ```

use carta_obs::json::{self, ObjectBuilder};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Schema tag each log line must carry.
pub const STATE_SCHEMA: &str = "carta.state.v1";

/// File name of the session log inside the state directory.
const LOG_FILE: &str = "sessions.jsonl";

/// One acked session upload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionRecord {
    /// Owning tenant.
    pub tenant: String,
    /// Session id within the tenant (`s1`, `s2`, ...).
    pub id: String,
    /// The uploaded K-Matrix CSV.
    pub csv: String,
}

/// What replay found on boot.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplayStats {
    /// Well-formed records restored.
    pub replayed: u64,
    /// Bytes of torn/corrupt tail truncated away.
    pub truncated_bytes: u64,
}

/// The open append-only session log.
#[derive(Debug)]
pub struct StateLog {
    file: File,
    path: PathBuf,
}

impl StateLog {
    /// Opens (creating if needed) the log under `dir`, replays every
    /// committed record, and truncates any torn tail so subsequent
    /// appends extend a well-formed log.
    ///
    /// # Errors
    ///
    /// I/O failures creating the directory or opening the file. A
    /// corrupt tail is *not* an error — it is the expected crash
    /// artifact and is repaired here.
    pub fn open(dir: &Path) -> io::Result<(StateLog, Vec<SessionRecord>, ReplayStats)> {
        fs::create_dir_all(dir)?;
        let path = dir.join(LOG_FILE);
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&path)?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;
        let (records, keep_bytes) = replay(&raw);
        let mut stats = ReplayStats {
            replayed: records.len() as u64,
            truncated_bytes: (raw.len() - keep_bytes) as u64,
        };
        if keep_bytes < raw.len() {
            file.set_len(keep_bytes as u64)?;
            file.sync_data()?;
            stats.truncated_bytes = (raw.len() - keep_bytes) as u64;
        }
        Ok((StateLog { file, path }, records, stats))
    }

    /// Appends one record and forces it to stable storage. Callers
    /// must not ack the upload until this returns `Ok`.
    ///
    /// # Errors
    ///
    /// The underlying write or `sync_data` failure; the caller should
    /// fail the upload rather than ack a record that may not survive.
    pub fn append(&mut self, record: &SessionRecord) -> io::Result<()> {
        let line = ObjectBuilder::new()
            .string("v", STATE_SCHEMA)
            .string("tenant", &record.tenant)
            .string("id", &record.id)
            .string("csv", &record.csv)
            .build();
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.sync_data()
    }

    /// Where the log lives (diagnostics).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Parses the raw log, returning the committed records and the byte
/// length of the well-formed prefix. Anything past the first torn or
/// corrupt line is dropped: crashes only tear the tail, and a record
/// that never finished its fsync was never acked.
fn replay(raw: &[u8]) -> (Vec<SessionRecord>, usize) {
    let mut records = Vec::new();
    let mut offset = 0usize;
    while offset < raw.len() {
        let Some(nl) = raw[offset..].iter().position(|&b| b == b'\n') else {
            break; // torn tail: no terminating newline
        };
        let line = &raw[offset..offset + nl];
        let Some(record) = parse_line(line) else {
            break; // corrupt line: truncate from here
        };
        records.push(record);
        offset += nl + 1;
    }
    (records, offset)
}

fn parse_line(line: &[u8]) -> Option<SessionRecord> {
    let text = std::str::from_utf8(line).ok()?;
    let value = json::parse(text).ok()?;
    if value.get("v")?.as_str()? != STATE_SCHEMA {
        return None;
    }
    Some(SessionRecord {
        tenant: value.get("tenant")?.as_str()?.to_string(),
        id: value.get("id")?.as_str()?.to_string(),
        csv: value.get("csv")?.as_str()?.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("carta-state-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn record(tenant: &str, id: &str, csv: &str) -> SessionRecord {
        SessionRecord {
            tenant: tenant.into(),
            id: id.into(),
            csv: csv.into(),
        }
    }

    #[test]
    fn appends_survive_reopen() {
        let dir = tmp_dir("roundtrip");
        let (mut log, restored, _) = StateLog::open(&dir).expect("open");
        assert!(restored.is_empty());
        log.append(&record("oem", "s1", "a,b\n1,2"))
            .expect("append");
        log.append(&record("oem", "s2", "quoted \"csv\""))
            .expect("append");
        drop(log);
        let (_, restored, stats) = StateLog::open(&dir).expect("reopen");
        assert_eq!(restored.len(), 2);
        assert_eq!(restored[0], record("oem", "s1", "a,b\n1,2"));
        assert_eq!(restored[1], record("oem", "s2", "quoted \"csv\""));
        assert_eq!(stats.replayed, 2);
        assert_eq!(stats.truncated_bytes, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_log_stays_appendable() {
        let dir = tmp_dir("torn");
        let (mut log, _, _) = StateLog::open(&dir).expect("open");
        log.append(&record("oem", "s1", "good")).expect("append");
        let path = log.path().to_path_buf();
        drop(log);
        // Simulate a crash mid-append: a partial line with no newline.
        let mut file = OpenOptions::new()
            .append(true)
            .open(&path)
            .expect("open raw");
        file.write_all(br#"{"v":"carta.state.v1","tenant":"oem","id":"s2","csv":"trunc"#)
            .expect("tear");
        drop(file);
        let (mut log, restored, stats) = StateLog::open(&dir).expect("reopen");
        assert_eq!(restored.len(), 1, "torn record dropped");
        assert_eq!(stats.replayed, 1);
        assert!(stats.truncated_bytes > 0);
        // The repaired log accepts appends and replays cleanly again.
        log.append(&record("oem", "s2", "retry")).expect("append");
        drop(log);
        let (_, restored, stats) = StateLog::open(&dir).expect("reopen 2");
        assert_eq!(restored.len(), 2);
        assert_eq!(stats.truncated_bytes, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_line_truncates_everything_after_it() {
        let dir = tmp_dir("corrupt");
        let (mut log, _, _) = StateLog::open(&dir).expect("open");
        log.append(&record("oem", "s1", "keep")).expect("append");
        let path = log.path().to_path_buf();
        drop(log);
        let mut file = OpenOptions::new()
            .append(true)
            .open(&path)
            .expect("open raw");
        file.write_all(b"not json at all\n").expect("corrupt");
        file.write_all(br#"{"v":"carta.state.v1","tenant":"oem","id":"s3","csv":"after"}"#)
            .expect("after");
        file.write_all(b"\n").expect("nl");
        drop(file);
        let (_, restored, stats) = StateLog::open(&dir).expect("reopen");
        assert_eq!(restored.len(), 1);
        assert_eq!(restored[0].id, "s1");
        assert!(stats.truncated_bytes > 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_schema_lines_stop_replay() {
        let dir = tmp_dir("schema");
        fs::create_dir_all(&dir).expect("mkdir");
        fs::write(
            dir.join(LOG_FILE),
            "{\"v\":\"carta.state.v2\",\"tenant\":\"t\",\"id\":\"s1\",\"csv\":\"x\"}\n",
        )
        .expect("seed");
        let (_, restored, stats) = StateLog::open(&dir).expect("open");
        assert!(restored.is_empty());
        assert!(stats.truncated_bytes > 0);
        let _ = fs::remove_dir_all(&dir);
    }
}
