//! Per-tenant state: pooled evaluators with cache quotas, uploaded
//! K-Matrix sessions, and the admission window that decides when a
//! tenant is under pressure.
//!
//! One tenant = one [`Handler`] whose [`Evaluator`] carries a bounded
//! memo cache (`cache_quota` entries, evicted LRU inside the engine,
//! keyed by the base-system fingerprint). Tenants themselves are also
//! an LRU set: beyond `max_tenants` the least-recently-used tenant is
//! dropped wholesale — evaluator cache, sessions, window — which is
//! exactly the "per-tenant cache eviction" the
//! `server.tenants.evicted` counter records. One misbehaving tenant
//! can therefore exhaust neither memory (quotas) nor compute
//! (admission window) for the others.

use crate::config::ServerConfig;
use carta_api::prelude::{ApiError, Handler};
use carta_engine::prelude::{Evaluator, Parallelism};
use carta_obs::metrics;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Admission verdict for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Within the tenant's window budget: serve normally.
    Granted,
    /// Over budget: shed heavy requests, degrade `analyze`.
    Pressure {
        /// Milliseconds until the tenant's admission window resets —
        /// the honest `Retry-After` hint for a shed response.
        retry_after_ms: u64,
    },
}

/// One resident tenant.
#[derive(Debug)]
struct TenantState {
    handler: Handler,
    /// Uploaded K-Matrix CSVs, oldest first.
    sessions: Vec<(String, Arc<String>)>,
    next_session: u64,
    window_start: Instant,
    spent: u32,
    last_used: u64,
}

impl TenantState {
    fn new(config: &ServerConfig, now: Instant, clock: u64) -> Self {
        let evaluator = Evaluator::builder()
            .parallelism(Parallelism::new(config.jobs))
            .cache_capacity(config.cache_quota)
            .build();
        TenantState {
            handler: Handler::with_evaluator(Arc::new(evaluator), Parallelism::new(config.jobs)),
            sessions: Vec::new(),
            next_session: 1,
            window_start: now,
            spent: 0,
            last_used: clock,
        }
    }
}

#[derive(Debug)]
struct Inner {
    tenants: HashMap<String, TenantState>,
    clock: u64,
}

/// The tenant registry shared by every connection worker.
#[derive(Debug)]
pub struct TenantPool {
    config: ServerConfig,
    inner: Mutex<Inner>,
}

impl TenantPool {
    /// An empty pool with the given knobs.
    pub fn new(config: ServerConfig) -> Self {
        TenantPool {
            config,
            inner: Mutex::new(Inner {
                tenants: HashMap::new(),
                clock: 0,
            }),
        }
    }

    /// Rejects tenant names that could not appear in a path segment or
    /// would make quota accounting ambiguous.
    ///
    /// # Errors
    ///
    /// [`carta_api::prelude::ErrorCode::RequestInvalid`] for empty,
    /// overlong or non `[A-Za-z0-9._-]` names.
    pub fn validate_tenant(name: &str) -> Result<(), ApiError> {
        let ok = !name.is_empty()
            && name.len() <= 64
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'));
        if ok {
            Ok(())
        } else {
            Err(ApiError::request(format!(
                "invalid tenant name `{name}` (1-64 chars of [A-Za-z0-9._-])"
            )))
        }
    }

    /// The tenant's handler plus this request's admission verdict, in
    /// one lock acquisition. Creates the tenant on first contact and
    /// bumps its LRU position; the handler is cloned out (its
    /// evaluator is an `Arc`) so no analysis runs under the pool lock.
    pub fn checkout(&self, tenant: &str) -> (Handler, Admission) {
        let now = Instant::now();
        let mut inner = self.locked();
        let state = Self::touch(&mut inner, &self.config, tenant, now);
        if now.duration_since(state.window_start) >= Duration::from_millis(self.config.window_ms) {
            state.window_start = now;
            state.spent = 0;
        }
        state.spent = state.spent.saturating_add(1);
        let admission = if state.spent > self.config.budget {
            let window = Duration::from_millis(self.config.window_ms);
            let elapsed = now.duration_since(state.window_start);
            let remaining = window.saturating_sub(elapsed).as_millis() as u64;
            Admission::Pressure {
                retry_after_ms: remaining.max(1),
            }
        } else {
            Admission::Granted
        };
        let handler = state.handler.clone();
        drop(inner);
        self.evict_over_limit();
        (handler, admission)
    }

    /// Stores an uploaded K-Matrix CSV under a fresh session id
    /// (`s1`, `s2`, ...), evicting the tenant's oldest session beyond
    /// the per-tenant quota.
    pub fn put_session(&self, tenant: &str, csv: String) -> String {
        let now = Instant::now();
        let mut inner = self.locked();
        let state = Self::touch(&mut inner, &self.config, tenant, now);
        let id = format!("s{}", state.next_session);
        state.next_session += 1;
        state.sessions.push((id.clone(), Arc::new(csv)));
        let mut evicted = 0u64;
        while state.sessions.len() > self.config.max_sessions {
            state.sessions.remove(0);
            evicted += 1;
        }
        drop(inner);
        if evicted > 0 {
            metrics::global()
                .counter("server.sessions.evicted")
                .add(evicted);
        }
        self.evict_over_limit();
        id
    }

    /// Re-installs a session replayed from the persistence log under
    /// its *original* id, bumping the tenant's id counter past it so
    /// fresh uploads never collide with restored ones. Duplicate ids
    /// (an upload replayed twice) keep the last occurrence.
    pub fn restore_session(&self, tenant: &str, id: &str, csv: String) {
        let now = Instant::now();
        let mut inner = self.locked();
        let state = Self::touch(&mut inner, &self.config, tenant, now);
        if let Some(slot) = state.sessions.iter_mut().find(|(sid, _)| sid == id) {
            slot.1 = Arc::new(csv);
        } else {
            state.sessions.push((id.to_string(), Arc::new(csv)));
            while state.sessions.len() > self.config.max_sessions {
                state.sessions.remove(0);
            }
        }
        if let Some(n) = id.strip_prefix('s').and_then(|n| n.parse::<u64>().ok()) {
            state.next_session = state.next_session.max(n + 1);
        }
    }

    /// The CSV stored under `id` for `tenant`, if still resident.
    pub fn session(&self, tenant: &str, id: &str) -> Option<Arc<String>> {
        let inner = self.locked();
        inner
            .tenants
            .get(tenant)?
            .sessions
            .iter()
            .find(|(sid, _)| sid == id)
            .map(|(_, csv)| Arc::clone(csv))
    }

    /// Resident tenant count (test observability).
    pub fn tenant_count(&self) -> usize {
        self.locked().tenants.len()
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, Inner> {
        match self.inner.lock() {
            Ok(guard) => guard,
            // A worker panicking while holding the lock cannot corrupt
            // the map (every critical section completes its mutation
            // before calling out); keep serving.
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn touch<'a>(
        inner: &'a mut Inner,
        config: &ServerConfig,
        tenant: &str,
        now: Instant,
    ) -> &'a mut TenantState {
        inner.clock += 1;
        let clock = inner.clock;
        let state = inner
            .tenants
            .entry(tenant.to_string())
            .or_insert_with(|| TenantState::new(config, now, clock));
        state.last_used = clock;
        state
    }

    /// Drops least-recently-used tenants (and with them their
    /// evaluator caches) until the resident set fits `max_tenants`.
    fn evict_over_limit(&self) {
        let mut evicted = 0u64;
        {
            let mut inner = self.locked();
            while inner.tenants.len() > self.config.max_tenants {
                let Some(coldest) = inner
                    .tenants
                    .iter()
                    .min_by_key(|(_, s)| s.last_used)
                    .map(|(name, _)| name.clone())
                else {
                    break;
                };
                inner.tenants.remove(&coldest);
                evicted += 1;
            }
        }
        if evicted > 0 {
            metrics::global()
                .counter("server.tenants.evicted")
                .add(evicted);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(budget: u32, max_tenants: usize, max_sessions: usize) -> TenantPool {
        TenantPool::new(ServerConfig {
            budget,
            max_tenants,
            max_sessions,
            window_ms: 60_000,
            ..ServerConfig::default()
        })
    }

    #[test]
    fn budget_exhaustion_flips_to_pressure_per_tenant() {
        let pool = pool(2, 8, 16);
        assert_eq!(pool.checkout("a").1, Admission::Granted);
        assert_eq!(pool.checkout("a").1, Admission::Granted);
        match pool.checkout("a").1 {
            Admission::Pressure { retry_after_ms } => {
                assert!(retry_after_ms >= 1);
                assert!(retry_after_ms <= 60_000, "bounded by the window");
            }
            Admission::Granted => panic!("third request should hit pressure"),
        }
        // An unrelated tenant has its own window.
        assert_eq!(pool.checkout("b").1, Admission::Granted);
    }

    #[test]
    fn restored_sessions_keep_ids_and_advance_the_counter() {
        let pool = pool(32, 8, 16);
        pool.restore_session("a", "s4", "replayed".into());
        pool.restore_session("a", "s4", "replayed-again".into());
        assert_eq!(
            pool.session("a", "s4").as_deref().map(String::as_str),
            Some("replayed-again"),
            "duplicate replay keeps the last write"
        );
        let fresh = pool.put_session("a", "new".into());
        assert_eq!(fresh, "s5", "fresh ids never collide with restored ones");
    }

    #[test]
    fn sessions_store_resolve_and_evict_oldest_first() {
        let pool = pool(32, 8, 2);
        let s1 = pool.put_session("a", "one".into());
        let s2 = pool.put_session("a", "two".into());
        assert_eq!(
            pool.session("a", &s1).as_deref().map(String::as_str),
            Some("one")
        );
        let s3 = pool.put_session("a", "three".into());
        assert_eq!(pool.session("a", &s1), None, "oldest evicted");
        assert!(pool.session("a", &s2).is_some());
        assert!(pool.session("a", &s3).is_some());
        assert_eq!(pool.session("b", &s2), None, "sessions are tenant-scoped");
    }

    #[test]
    fn coldest_tenant_is_evicted_beyond_the_limit() {
        let pool = pool(32, 2, 16);
        pool.checkout("a");
        pool.checkout("b");
        pool.checkout("a"); // b is now coldest
        pool.checkout("c");
        assert_eq!(pool.tenant_count(), 2);
        let sid = pool.put_session("b", "csv".into());
        assert!(
            pool.session("b", &sid).is_some(),
            "an evicted tenant re-registers from scratch"
        );
    }

    #[test]
    fn tenant_names_are_validated() {
        assert!(TenantPool::validate_tenant("oem-1.prod").is_ok());
        assert!(TenantPool::validate_tenant("").is_err());
        assert!(TenantPool::validate_tenant("a/b").is_err());
        assert!(TenantPool::validate_tenant(&"x".repeat(65)).is_err());
    }

    #[test]
    fn evaluators_are_pooled_per_tenant() {
        let pool = pool(32, 8, 16);
        let (h1, _) = pool.checkout("a");
        let (h2, _) = pool.checkout("a");
        assert!(Arc::ptr_eq(h1.evaluator(), h2.evaluator()));
        let (h3, _) = pool.checkout("b");
        assert!(!Arc::ptr_eq(h1.evaluator(), h3.evaluator()));
    }
}
