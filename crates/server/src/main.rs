//! The `carta-server` binary: bind from `CARTA_SERVER_*` environment
//! variables (see [`carta_server::ServerConfig`]) and serve until
//! killed.

use carta_server::{Server, ServerConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let config = ServerConfig::from_env();
    let server = match Server::bind(config.clone()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", config.addr);
            return ExitCode::from(66);
        }
    };
    match server.local_addr() {
        Ok(addr) => eprintln!(
            "carta-server listening on http://{addr} \
             (POST /v1/requests, POST /v1/tenants/<t>/sessions, GET /v1/metrics)"
        ),
        Err(e) => eprintln!("carta-server listening (local_addr unavailable: {e})"),
    }
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: accept loop failed: {e}");
            ExitCode::from(70)
        }
    }
}
