//! The `carta-server` binary: bind from `CARTA_SERVER_*` environment
//! variables (see [`carta_server::ServerConfig`]) and serve until
//! stopped. SIGTERM/SIGINT start a graceful drain (finish or cancel
//! in-flight requests within `CARTA_SERVER_DRAIN_MS`) and the process
//! exits 0 — orchestrators see a clean stop, not a crash.

use carta_server::{request_shutdown, Server, ServerConfig};
use std::process::ExitCode;

#[cfg(unix)]
mod signals {
    /// `sighandler_t` is pointer-sized on every Unix Rust targets; a
    /// raw `signal(2)` binding avoids a libc dependency.
    type SigHandler = extern "C" fn(i32);
    extern "C" {
        fn signal(signum: i32, handler: SigHandler) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_sig: i32) {
        // Only async-signal-safe work here: one atomic store.
        carta_server::request_shutdown();
    }

    pub fn install() {
        // SAFETY: `on_signal` is a plain extern "C" fn that performs a
        // single atomic store — async-signal-safe by construction.
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }
}

fn main() -> ExitCode {
    #[cfg(unix)]
    signals::install();
    let config = ServerConfig::from_env();
    let server = match Server::bind(config.clone()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", config.addr);
            return ExitCode::from(66);
        }
    };
    match server.local_addr() {
        Ok(addr) => eprintln!(
            "carta-server listening on http://{addr} \
             (POST /v1/requests, POST /v1/tenants/<t>/sessions, GET /v1/metrics)"
        ),
        Err(e) => eprintln!("carta-server listening (local_addr unavailable: {e})"),
    }
    match server.run() {
        Ok(()) => {
            eprintln!("carta-server drained cleanly");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: accept loop failed: {e}");
            // Belt and braces: make sure a second signal still stops
            // any sibling server in-process.
            request_shutdown();
            ExitCode::from(70)
        }
    }
}
