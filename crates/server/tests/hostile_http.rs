//! Hostile-transport tests: the server must answer malformed, stalled
//! or smuggling-shaped HTTP with a deterministic, well-formed `400`
//! (stable `request.invalid` code) and a closed connection — never a
//! hang, never a silent drop, never a 500.

use carta_server::{Server, ServerConfig, ServerHandle};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Short idle timeout so stall tests finish quickly.
const IDLE_MS: u64 = 300;

fn start() -> ServerHandle {
    Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        idle_ms: IDLE_MS,
        ..ServerConfig::default()
    })
    .expect("binds")
    .spawn()
    .expect("spawns")
}

/// Sends raw bytes, returns everything the server answers until it
/// closes the connection.
fn raw_exchange(addr: SocketAddr, payload: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connects");
    stream.write_all(payload).expect("writes");
    let mut raw = String::new();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    stream.read_to_string(&mut raw).expect("reads to close");
    raw
}

#[test]
fn truncated_body_gets_a_400_not_a_dropped_connection() {
    let server = start();
    let raw = raw_exchange(
        server.addr(),
        b"POST /v1/requests HTTP/1.1\r\nhost: x\r\ncontent-length: 100\r\n\r\nonly a few bytes",
    );
    assert!(raw.starts_with("HTTP/1.1 400 "), "{raw}");
    assert!(raw.contains("request.invalid"), "{raw}");
    assert!(raw.contains("truncated"), "{raw}");
    assert!(raw.contains("connection: close"), "{raw}");
    server.stop();
}

#[test]
fn bad_and_conflicting_content_lengths_are_400() {
    let server = start();
    let addr = server.addr();
    let raw = raw_exchange(
        addr,
        b"POST /v1/requests HTTP/1.1\r\nhost: x\r\ncontent-length: banana\r\n\r\n",
    );
    assert!(raw.starts_with("HTTP/1.1 400 "), "{raw}");
    assert!(raw.contains("invalid content-length"), "{raw}");
    let raw = raw_exchange(
        addr,
        b"POST /v1/requests HTTP/1.1\r\nhost: x\r\ncontent-length: 4\r\ncontent-length: 4\r\n\r\nbody",
    );
    assert!(raw.starts_with("HTTP/1.1 400 "), "{raw}");
    assert!(raw.contains("multiple content-length"), "{raw}");
    server.stop();
}

#[test]
fn chunked_junk_is_rejected_not_smuggled() {
    let server = start();
    // A classic smuggling shape: Transfer-Encoding alongside a
    // Content-Length, followed by oversized chunked garbage. The
    // server must refuse the framing outright.
    let mut payload = Vec::from(
        &b"POST /v1/requests HTTP/1.1\r\nhost: x\r\ntransfer-encoding: chunked\r\ncontent-length: 4\r\n\r\n"[..],
    );
    payload.extend_from_slice(&b"ffffffff\r\n".repeat(64));
    let raw = raw_exchange(server.addr(), &payload);
    assert!(raw.starts_with("HTTP/1.1 400 "), "{raw}");
    assert!(raw.contains("transfer-encoding"), "{raw}");
    server.stop();
}

#[test]
fn slow_loris_head_is_cut_off_with_a_400() {
    let server = start();
    let mut stream = TcpStream::connect(server.addr()).expect("connects");
    // Start a request head, then stall forever: the server must give
    // up after its idle/read timeout, answer, and close.
    stream
        .write_all(b"GET /v1/healthz HTTP/1.1\r\nhost: carta\r\nx-slow:")
        .expect("writes a partial head");
    let started = Instant::now();
    let mut raw = String::new();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    stream.read_to_string(&mut raw).expect("reads to close");
    let waited = started.elapsed();
    assert!(raw.starts_with("HTTP/1.1 400 "), "{raw}");
    assert!(raw.contains("stalled"), "{raw}");
    assert!(
        waited < Duration::from_secs(10),
        "the stall was bounded by the read timeout, waited {waited:?}"
    );
    server.stop();
}

#[test]
fn idle_connections_are_reaped_silently() {
    let server = start();
    let stream = TcpStream::connect(server.addr()).expect("connects");
    // Send nothing at all: an idle keep-alive slot, not an attack —
    // the server closes it without wasting a response.
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .get_ref()
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let n = reader.read_line(&mut line).expect("clean EOF");
    assert_eq!(n, 0, "server closed without a response: {line}");
    server.stop();
}

#[test]
fn pipelining_stops_at_the_first_malformed_request() {
    let server = start();
    let stream = TcpStream::connect(server.addr()).expect("connects");
    let mut writer = stream.try_clone().expect("clones");
    // Three interleaved pipelined requests; the second has broken
    // framing. The first must be answered normally, the second gets
    // the 400, and the connection closes before the third — a
    // poisoned byte stream must not be resynchronized by guesswork.
    writer
        .write_all(
            b"GET /v1/healthz HTTP/1.1\r\nhost: x\r\n\r\n\
              POST /v1/requests HTTP/1.1\r\nno-colon-header\r\n\r\n\
              GET /v1/metrics HTTP/1.1\r\nhost: x\r\n\r\n",
        )
        .expect("writes pipeline");
    let mut reader = BufReader::new(stream);
    reader
        .get_ref()
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut raw = String::new();
    reader.read_to_string(&mut raw).expect("reads to close");
    // Responses are concatenated on the wire (JSON bodies carry no
    // trailing newline), so scan for status lines as substrings.
    let statuses: Vec<u16> = raw
        .match_indices("HTTP/1.1 ")
        .filter_map(|(i, _)| raw[i + 9..].split_whitespace().next()?.parse().ok())
        .collect();
    assert_eq!(
        statuses,
        vec![200, 400],
        "third request never answered: {raw}"
    );
    server.stop();
}
