//! End-to-end service tests over a real socket: two tenants, session
//! upload, `carta.api.v1` round-trips, admission shedding, degraded
//! analyze under pressure, tenant isolation, and the `/v1/metrics`
//! document.
//!
//! Every test spins its own server on an ephemeral port (`:0`) with a
//! 60 s admission window so budget arithmetic is deterministic.

use carta_api::prelude::{ErrorCode, Handler, Model, Request, Response, ScenarioSpec};
use carta_api::wire;
use carta_engine::prelude::Parallelism;
use carta_obs::json::{self, Value};
use carta_server::{Server, ServerConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

fn start(budget: u32) -> ServerHandle {
    start_with(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        window_ms: 60_000,
        budget,
        ..ServerConfig::default()
    })
}

fn start_with(config: ServerConfig) -> ServerHandle {
    Server::bind(config)
        .expect("binds an ephemeral port")
        .spawn()
        .expect("accept loop spawns")
}

/// One request over a fresh connection. Sends `connection: close` so
/// the keep-alive server closes after the response and `read_to_string`
/// terminates; keep-alive itself is exercised by dedicated tests.
fn http(
    addr: SocketAddr,
    method: &str,
    path: &str,
    tenant: Option<&str>,
    body: &str,
) -> (u16, String) {
    let (status, _headers, body) = http_full(addr, method, path, tenant, body);
    (status, body)
}

/// Like [`http`] but also returns the raw header block for tests that
/// assert on response headers (`retry-after`).
fn http_full(
    addr: SocketAddr,
    method: &str,
    path: &str,
    tenant: Option<&str>,
    body: &str,
) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connects");
    let tenant_header = tenant
        .map(|t| format!("x-carta-tenant: {t}\r\n"))
        .unwrap_or_default();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nhost: carta\r\nconnection: close\r\n{tenant_header}content-length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("writes the request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("reads to close");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let (headers, body) = raw
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .unwrap_or_default();
    (status, headers, body)
}

fn generate_csv(seed: u64) -> String {
    match Handler::new(Parallelism::sequential())
        .handle(&Request::Generate { seed })
        .expect("generates")
    {
        Response::Matrix { csv } => csv,
        other => panic!("wrong response kind {}", other.kind()),
    }
}

fn upload(addr: SocketAddr, tenant: &str, csv: &str) -> String {
    let (status, body) = http(
        addr,
        "POST",
        &format!("/v1/tenants/{tenant}/sessions"),
        None,
        csv,
    );
    assert_eq!(status, 201, "{body}");
    let doc = json::parse(&body).expect("valid session envelope");
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some(wire::SCHEMA)
    );
    assert_eq!(doc.get("ok").and_then(Value::as_bool), Some(true));
    doc.get("result")
        .and_then(|r| r.get("id"))
        .and_then(Value::as_str)
        .expect("session id")
        .to_string()
}

fn analyze_session_body(id: &str) -> String {
    format!(
        r#"{{"schema":"carta.api.v1","request":"analyze","params":{{"model":{{"source":{{"kind":"session","id":"{id}"}}}},"scenario":"worst"}}}}"#
    )
}

#[test]
fn uploaded_session_analysis_is_bit_identical_to_a_direct_evaluator_run() {
    let server = start(32);
    let addr = server.addr();
    let csv = generate_csv(42);
    let id = upload(addr, "oem", &csv);

    let (status, body) = http(
        addr,
        "POST",
        "/v1/requests",
        Some("oem"),
        &analyze_session_body(&id),
    );
    assert_eq!(status, 200, "{body}");
    let doc = json::parse(&body).expect("valid response envelope");
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some(wire::SCHEMA)
    );
    assert_eq!(doc.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(doc.get("kind").and_then(Value::as_str), Some("analyze"));

    let over_the_wire = wire::decode_analyze(&body).expect("decodes");
    let direct = match Handler::new(Parallelism::sequential())
        .handle(&Request::Analyze {
            model: Model::from_csv(csv),
            scenario: ScenarioSpec::Worst,
        })
        .expect("analyzes directly")
    {
        Response::Analyze(a) => a,
        other => panic!("wrong response kind {}", other.kind()),
    };
    assert_eq!(
        over_the_wire, direct,
        "the server's report must round-trip bit-identically"
    );
    assert!(!over_the_wire.report.is_degraded());
    server.stop();
}

#[test]
fn flooding_tenant_degrades_and_sheds_while_the_other_tenant_is_untouched() {
    // Budget 2: the third and later requests of a window are pressure.
    let server = start(2);
    let addr = server.addr();

    // The "supplier" tenant uploads a flooded matrix: the appended row
    // is the same unschedulable lowest-priority probe
    // `carta_testkit::chaos::flooded` injects (id 0x7FA, 8 bytes every
    // 50 time units — several times the bus capacity).
    let mut flooded_csv = generate_csv(7);
    flooded_csv.push_str("flood,0x7fa,0,8,50,,,EMS,TCU\n");
    let flooded_id = upload(addr, "supplier", &flooded_csv);

    // Request 1 (within budget): a full analysis — degraded because
    // the *model* is overloaded, with the flood diagnosed.
    let (status, body) = http(
        addr,
        "POST",
        "/v1/requests",
        Some("supplier"),
        &analyze_session_body(&flooded_id),
    );
    assert_eq!(
        status, 200,
        "an overloaded model is a report, not an error: {body}"
    );
    let report = wire::decode_analyze(&body).expect("decodes");
    assert!(report.report.is_degraded());
    assert!(
        report.report.diagnostics().count() >= 1,
        "the flood carries a diagnostic"
    );
    assert!(
        body.contains("\"diagnostic\""),
        "diagnostics are serialized: {body}"
    );

    // Request 2 burns the rest of the budget.
    let (status, _) = http(
        addr,
        "POST",
        "/v1/requests",
        Some("supplier"),
        &analyze_session_body(&flooded_id),
    );
    assert_eq!(status, 200);

    // Request 3 is over budget and heavy: shed with `admission.shed`.
    let loss_body = format!(
        r#"{{"schema":"carta.api.v1","request":"loss","params":{{"model":{{"source":{{"kind":"session","id":"{flooded_id}"}}}},"scenario":"worst"}}}}"#
    );
    let (status, headers, body) =
        http_full(addr, "POST", "/v1/requests", Some("supplier"), &loss_body);
    assert_eq!(status, 429, "{body}");
    let err = wire::decode_error(&body).expect("error envelope");
    assert_eq!(err.code, ErrorCode::AdmissionShed);
    assert!(err.message.contains("admission budget"), "{}", err.message);
    // The shed response tells the client when the window resets.
    let retry = headers
        .lines()
        .find_map(|l| l.strip_prefix("retry-after: "))
        .expect("retry-after header on 429");
    let seconds: u64 = retry.trim().parse().expect("whole seconds");
    assert!((1..=60).contains(&seconds), "retry-after {seconds}s");

    // Request 4 is over budget but `analyze`: an immediate partial
    // report under a strangled iteration budget — DEGRADED, not 429.
    let (status, body) = http(
        addr,
        "POST",
        "/v1/requests",
        Some("supplier"),
        &analyze_session_body(&flooded_id),
    );
    assert_eq!(
        status, 200,
        "pressure analyze degrades instead of shedding: {body}"
    );
    let partial = wire::decode_analyze(&body).expect("decodes");
    assert!(partial.report.is_degraded());

    // The "oem" tenant has its own window, evaluator and sessions: a
    // clean matrix analyzes fully and matches a direct run bit for
    // bit, flood or no flood next door.
    let clean_csv = generate_csv(42);
    let clean_id = upload(addr, "oem", &clean_csv);
    let (status, body) = http(
        addr,
        "POST",
        "/v1/requests",
        Some("oem"),
        &analyze_session_body(&clean_id),
    );
    assert_eq!(status, 200, "{body}");
    let oem_report = wire::decode_analyze(&body).expect("decodes");
    assert!(!oem_report.report.is_degraded());
    let direct = match Handler::new(Parallelism::sequential())
        .handle(&Request::Analyze {
            model: Model::from_csv(clean_csv),
            scenario: ScenarioSpec::Worst,
        })
        .expect("analyzes directly")
    {
        Response::Analyze(a) => a,
        other => panic!("wrong response kind {}", other.kind()),
    };
    assert_eq!(oem_report, direct);

    // The process survived all of it: metrics and health still serve,
    // and the counters saw the shed and the degradation.
    let (status, body) = http(addr, "GET", "/v1/metrics", None, "");
    assert_eq!(status, 200);
    let doc = json::parse(&body).expect("valid metrics document");
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some("carta.metrics.v1")
    );
    let metric = |name: &str| {
        doc.get("metrics")
            .and_then(|m| m.get(name))
            .and_then(Value::as_f64)
            .unwrap_or(0.0)
    };
    assert!(metric("server.requests.accepted") >= 3.0, "{body}");
    assert!(metric("server.requests.shed") >= 1.0, "{body}");
    assert!(metric("server.requests.degraded") >= 1.0, "{body}");
    assert!(metric("server.sessions.uploaded") >= 2.0, "{body}");
    let (status, _) = http(addr, "GET", "/v1/healthz", None, "");
    assert_eq!(status, 200);
    server.stop();
}

#[test]
fn the_error_surface_uses_stable_codes_and_statuses() {
    let server = start(32);
    let addr = server.addr();

    // Unknown session → 404 session.not_found.
    let (status, body) = http(
        addr,
        "POST",
        "/v1/requests",
        Some("oem"),
        &analyze_session_body("s99"),
    );
    assert_eq!(status, 404, "{body}");
    let err = wire::decode_error(&body).expect("error envelope");
    assert_eq!(err.code, ErrorCode::SessionNotFound);
    assert!(
        err.message.contains("unknown session `s99`"),
        "{}",
        err.message
    );

    // Sessions are tenant-scoped: another tenant's id does not leak.
    let id = upload(addr, "oem", &generate_csv(42));
    let (status, _) = http(
        addr,
        "POST",
        "/v1/requests",
        Some("supplier"),
        &analyze_session_body(&id),
    );
    assert_eq!(status, 404);

    // Malformed JSON → 400 request.invalid.
    let (status, body) = http(addr, "POST", "/v1/requests", None, "{nope");
    assert_eq!(status, 400);
    let err = wire::decode_error(&body).expect("error envelope");
    assert_eq!(err.code, ErrorCode::RequestInvalid);

    // Wrong schema → 400 with the expected-schema message.
    let (status, body) = http(
        addr,
        "POST",
        "/v1/requests",
        None,
        r#"{"schema":"carta.api.v2","request":"analyze"}"#,
    );
    assert_eq!(status, 400);
    assert!(body.contains("unsupported schema"), "{body}");

    // Junk CSV upload → 422 model.invalid, and nothing is stored.
    let (status, body) = http(
        addr,
        "POST",
        "/v1/tenants/oem/sessions",
        None,
        "not,a,kmatrix",
    );
    assert_eq!(status, 422, "{body}");
    let err = wire::decode_error(&body).expect("error envelope");
    assert_eq!(err.code, ErrorCode::ModelInvalid);

    // Bad tenant names and unknown routes.
    let (status, _) = http(addr, "POST", "/v1/tenants/a%2Fb/sessions", None, "x,y");
    assert_eq!(status, 400);
    let (status, _) = http(addr, "GET", "/v2/everything", None, "");
    assert_eq!(status, 404);
    server.stop();
}

/// Reads one HTTP response off a persistent connection: status, the
/// raw header block, and a body of exactly `content-length` bytes.
fn read_response<R: std::io::BufRead>(reader: &mut R) -> (u16, String, String) {
    let mut head = String::new();
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("reads header line");
        assert!(n > 0, "connection closed mid-response");
        if line == "\r\n" || line == "\n" {
            break;
        }
        head.push_str(&line);
    }
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("content-length: "))
        .expect("content-length header")
        .trim()
        .parse()
        .expect("numeric length");
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body).expect("reads body");
    (status, head, String::from_utf8(body).expect("utf-8 body"))
}

#[test]
fn keep_alive_serves_many_requests_on_one_connection() {
    let server = start(32);
    let addr = server.addr();
    let stream = TcpStream::connect(addr).expect("connects");
    let mut writer = stream.try_clone().expect("clones");
    let mut reader = std::io::BufReader::new(stream);
    for _ in 0..3 {
        write!(writer, "GET /v1/healthz HTTP/1.1\r\nhost: carta\r\n\r\n").expect("writes");
        let (status, head, body) = read_response(&mut reader);
        assert_eq!(status, 200, "{body}");
        assert!(head.contains("connection: keep-alive"), "{head}");
    }
    // Pipelined requests (both written before either response is
    // read) are answered in order on the same connection.
    write!(
        writer,
        "GET /v1/healthz HTTP/1.1\r\nhost: carta\r\n\r\nGET /v1/metrics HTTP/1.1\r\nhost: carta\r\n\r\n"
    )
    .expect("writes pipelined");
    let (status, _, body) = read_response(&mut reader);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("healthz"), "{body}");
    let (status, _, body) = read_response(&mut reader);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("carta.metrics.v1"), "{body}");
    // An explicit `connection: close` is honored.
    write!(
        writer,
        "GET /v1/healthz HTTP/1.1\r\nhost: carta\r\nconnection: close\r\n\r\n"
    )
    .expect("writes");
    let (status, head, _) = read_response(&mut reader);
    assert_eq!(status, 200);
    assert!(head.contains("connection: close"), "{head}");
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut reader, &mut rest).expect("EOF after close");
    assert!(rest.is_empty(), "nothing after the final response");
    server.stop();
}

#[test]
fn bearer_auth_is_enforced_on_the_wire() {
    let server = start_with(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        window_ms: 60_000,
        budget: 32,
        tokens: vec![("sekrit".into(), "oem".into())],
        ..ServerConfig::default()
    });
    let addr = server.addr();
    let body = r#"{"schema":"carta.api.v1","request":"generate","params":{"seed":1}}"#;

    // No credentials: 401 auth.required.
    let (status, raw) = http(addr, "POST", "/v1/requests", None, body);
    assert_eq!(status, 401, "{raw}");
    let err = wire::decode_error(&raw).expect("error envelope");
    assert_eq!(err.code, ErrorCode::Unauthenticated);
    assert_eq!(err.code.as_str(), "auth.required");

    // Valid bearer token: served as the token's tenant.
    let mut stream = TcpStream::connect(addr).expect("connects");
    write!(
        stream,
        "POST /v1/requests HTTP/1.1\r\nhost: carta\r\nconnection: close\r\nauthorization: Bearer sekrit\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("writes");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("reads");
    assert!(raw.starts_with("HTTP/1.1 200 "), "{raw}");

    // Valid token claiming another tenant: 403 auth.forbidden.
    let mut stream = TcpStream::connect(addr).expect("connects");
    write!(
        stream,
        "POST /v1/requests HTTP/1.1\r\nhost: carta\r\nconnection: close\r\nauthorization: Bearer sekrit\r\nx-carta-tenant: rival\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("writes");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("reads");
    assert!(raw.starts_with("HTTP/1.1 403 "), "{raw}");
    assert!(raw.contains("auth.forbidden"), "{raw}");
    server.stop();
}

#[test]
fn a_zero_deadline_returns_504_with_the_stable_code() {
    let server = start(32);
    let addr = server.addr();
    let body = wire::encode_request_with_deadline(
        &Request::Analyze {
            model: Model::case_study(),
            scenario: ScenarioSpec::Worst,
        },
        Some(0),
    );
    let (status, raw) = http(addr, "POST", "/v1/requests", Some("oem"), &body);
    assert_eq!(status, 504, "{raw}");
    let err = wire::decode_error(&raw).expect("error envelope");
    assert_eq!(err.code, ErrorCode::DeadlineExceeded);
    assert_eq!(err.code.as_str(), "request.deadline_exceeded");

    // A generous deadline changes nothing about the result.
    let relaxed = wire::encode_request_with_deadline(
        &Request::Analyze {
            model: Model::case_study(),
            scenario: ScenarioSpec::Worst,
        },
        Some(60_000),
    );
    let (status, with_deadline) = http(addr, "POST", "/v1/requests", Some("oem"), &relaxed);
    assert_eq!(status, 200, "{with_deadline}");
    let plain = wire::encode_request(&Request::Analyze {
        model: Model::case_study(),
        scenario: ScenarioSpec::Worst,
    });
    let (status, without_deadline) = http(addr, "POST", "/v1/requests", Some("oem"), &plain);
    assert_eq!(status, 200);
    assert_eq!(
        with_deadline, without_deadline,
        "an unexpired deadline must not perturb the report"
    );
    server.stop();
}

#[test]
fn graceful_drain_rejects_new_requests_with_503_and_stops_cleanly() {
    let server = start_with(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        window_ms: 60_000,
        budget: 32,
        idle_ms: 400,
        drain_ms: 2000,
        ..ServerConfig::default()
    });
    let addr = server.addr();
    // A keep-alive connection opened before the drain.
    let stream = TcpStream::connect(addr).expect("connects");
    let mut writer = stream.try_clone().expect("clones");
    let mut reader = std::io::BufReader::new(stream);
    write!(writer, "GET /v1/healthz HTTP/1.1\r\nhost: carta\r\n\r\n").expect("writes");
    let (status, _, _) = read_response(&mut reader);
    assert_eq!(status, 200);

    let stopper = std::thread::spawn(move || server.stop());
    // Give the accept loop a few poll intervals to flip to draining.
    std::thread::sleep(std::time::Duration::from_millis(200));
    write!(writer, "GET /v1/healthz HTTP/1.1\r\nhost: carta\r\n\r\n").expect("writes");
    let (status, head, body) = read_response(&mut reader);
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("server.unavailable"), "{body}");
    assert!(head.contains("connection: close"), "{head}");
    stopper.join().expect("drain completes");
}

#[test]
fn oversized_bodies_are_refused_before_being_read() {
    let server = start(32);
    let addr = server.addr();
    let mut stream = TcpStream::connect(addr).expect("connects");
    // Claim a body far over the limit and send none of it: the server
    // must answer 413 from the header alone.
    write!(
        stream,
        "POST /v1/requests HTTP/1.1\r\nhost: carta\r\ncontent-length: 999999999\r\n\r\n"
    )
    .expect("writes");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("reads");
    assert!(raw.starts_with("HTTP/1.1 413 "), "{raw}");
    assert!(raw.contains("quota.exceeded"), "{raw}");
    server.stop();
}
