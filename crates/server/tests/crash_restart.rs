//! Crash-restart recovery against the real `carta-server` binary:
//! upload sessions with persistence on, `SIGKILL` the process, tear
//! the log tail the way an interrupted append would, restart on the
//! same state dir, and require that every *acked* session resolves
//! with a bit-identical analysis while the torn tail is truncated.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// The server under test, killed hard on drop so a failing assert
/// never leaks a process.
struct ServerProc {
    child: Child,
    addr: String,
}

impl ServerProc {
    fn launch(state_dir: &std::path::Path) -> ServerProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_carta-server"))
            .env("CARTA_SERVER_ADDR", "127.0.0.1:0")
            .env("CARTA_SERVER_STATE_DIR", state_dir)
            .env("CARTA_SERVER_WORKERS", "2")
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawns carta-server");
        // The binary prints its actual (OS-chosen) address on stderr;
        // parse it fresh on every launch so restarts never race a
        // lingering socket on a fixed port.
        let stderr = child.stderr.take().expect("piped stderr");
        let mut lines = BufReader::new(stderr).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("stderr open until the listen line")
                .expect("readable stderr");
            if let Some(rest) = line.split("listening on http://").nth(1) {
                break rest
                    .split_whitespace()
                    .next()
                    .expect("address token")
                    .to_string();
            }
        };
        // Keep draining stderr so the child never blocks on a full pipe.
        std::thread::spawn(move || for _ in lines {});
        ServerProc { child, addr }
    }

    fn kill_hard(&mut self) {
        let _ = self.child.kill(); // SIGKILL on unix: no drain, no fsync flush
        let _ = self.child.wait();
    }

    /// One `connection: close` request; returns status and body.
    fn request(&self, method: &str, path: &str, tenant: Option<&str>, body: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(&self.addr).expect("connects");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        let tenant_header = tenant
            .map(|t| format!("x-carta-tenant: {t}\r\n"))
            .unwrap_or_default();
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nhost: carta\r\nconnection: close\r\n{tenant_header}content-length: {}\r\n\r\n{body}",
            body.len()
        )
        .expect("writes");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("reads");
        let status = raw
            .split_whitespace()
            .nth(1)
            .expect("status line")
            .parse()
            .expect("numeric status");
        let body = raw
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        self.kill_hard();
    }
}

fn session_id(body: &str) -> String {
    let doc = carta_obs::json::parse(body).expect("session envelope");
    doc.get("result")
        .and_then(|r| r.get("id"))
        .and_then(carta_obs::json::Value::as_str)
        .expect("session id")
        .to_string()
}

fn analyze_body(id: &str) -> String {
    format!(
        r#"{{"schema":"carta.api.v1","request":"analyze","params":{{"model":{{"source":{{"kind":"session","id":"{id}"}}}},"scenario":"worst"}}}}"#
    )
}

#[test]
fn acked_sessions_survive_sigkill_and_torn_tails_are_truncated() {
    let state_dir = std::env::temp_dir().join(format!("carta-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_dir);

    // Generate distinct matrices through the API itself.
    let mut server = ServerProc::launch(&state_dir);
    let mut acked: Vec<(String, String, String)> = Vec::new(); // (id, csv, report)
    for seed in [11u64, 22, 33] {
        let (status, body) = server.request(
            "POST",
            "/v1/requests",
            Some("oem"),
            &format!(
                r#"{{"schema":"carta.api.v1","request":"generate","params":{{"seed":{seed}}}}}"#
            ),
        );
        assert_eq!(status, 200, "{body}");
        let csv = carta_obs::json::parse(&body)
            .expect("matrix envelope")
            .get("result")
            .and_then(|r| r.get("csv"))
            .and_then(carta_obs::json::Value::as_str)
            .expect("csv")
            .to_string();
        let (status, body) = server.request("POST", "/v1/tenants/oem/sessions", None, &csv);
        assert_eq!(status, 201, "ack required before the crash: {body}");
        let id = session_id(&body);
        let (status, report) =
            server.request("POST", "/v1/requests", Some("oem"), &analyze_body(&id));
        assert_eq!(status, 200, "{report}");
        acked.push((id, csv, report));
    }

    // Crash hard, then simulate the torn append a mid-write SIGKILL
    // leaves behind: a partial JSONL line with no newline.
    server.kill_hard();
    let log_path = state_dir.join("sessions.jsonl");
    let committed_len = std::fs::metadata(&log_path).expect("log exists").len();
    let mut log = std::fs::OpenOptions::new()
        .append(true)
        .open(&log_path)
        .expect("opens log");
    log.write_all(br#"{"v":"carta.state.v1","tenant":"oem","id":"s4","csv":"never-ack"#)
        .expect("tears the tail");
    drop(log);

    // Restart on the same state dir.
    let server = ServerProc::launch(&state_dir);

    // Every acked session resolves, and its analysis is bit-identical
    // on the wire to the pre-crash run.
    for (id, _, before) in &acked {
        let (status, after) =
            server.request("POST", "/v1/requests", Some("oem"), &analyze_body(id));
        assert_eq!(status, 200, "acked session {id} lost: {after}");
        assert_eq!(
            &after, before,
            "post-restart analysis of {id} must be bit-identical"
        );
    }

    // The torn (never-acked) record is gone — both from the API and
    // from the repaired log file.
    let (status, body) = server.request("POST", "/v1/requests", Some("oem"), &analyze_body("s4"));
    assert_eq!(status, 404, "torn session must not resurrect: {body}");
    assert_eq!(
        std::fs::metadata(&log_path).expect("log exists").len(),
        committed_len,
        "replay truncated the log back to its committed prefix"
    );

    // Fresh uploads continue the id sequence past the restored ones.
    let (status, body) = server.request("POST", "/v1/tenants/oem/sessions", None, &acked[0].1);
    assert_eq!(status, 201, "{body}");
    assert_eq!(session_id(&body), "s4", "ids continue after restore");

    drop(server);
    let _ = std::fs::remove_dir_all(&state_dir);
}
