//! CSV import/export of K-Matrices.
//!
//! The format is a plain comma-separated table, one message per row,
//! preceded by two metadata lines — exactly the kind of export OEMs
//! circulate in practice:
//!
//! ```csv
//! #kmatrix,powertrain,500000
//! #node,EMS,fullCAN
//! #node,TCU,basicCAN
//! name,id,extended,dlc,period_us,jitter_us,deadline_us,sender,receivers
//! rpm,0x100,0,8,10000,1000,,EMS,TCU|ICL
//! gear,0x1A0,0,2,20000,,15000,TCU,EMS
//! ```
//!
//! Empty `jitter_us` means *unknown* (the paper's common case), empty
//! `deadline_us` means *minimum re-arrival time*.

use crate::model::{KMatrix, KNode, KRow};
use std::error::Error;
use std::fmt;

/// Parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseKMatrixError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseKMatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseKMatrixError {}

const HEADER: &str = "name,id,extended,dlc,period_us,jitter_us,deadline_us,sender,receivers";

/// Serializes a matrix to the CSV format above.
pub fn to_csv(matrix: &KMatrix) -> String {
    let mut out = String::new();
    out.push_str(&format!("#kmatrix,{},{}\n", matrix.name, matrix.bit_rate));
    for node in &matrix.nodes {
        out.push_str(&format!("#node,{},{}\n", node.name, node.controller));
    }
    out.push_str(HEADER);
    out.push('\n');
    for row in &matrix.rows {
        out.push_str(&format!(
            "{},{:#x},{},{},{},{},{},{},{}\n",
            row.name,
            row.id,
            u8::from(row.extended),
            row.dlc,
            row.period_us,
            row.jitter_us.map(|j| j.to_string()).unwrap_or_default(),
            row.deadline_us.map(|d| d.to_string()).unwrap_or_default(),
            row.sender,
            row.receivers.join("|"),
        ));
    }
    out
}

/// Parses the CSV format above.
///
/// # Errors
///
/// Returns a [`ParseKMatrixError`] pointing at the first malformed
/// line.
pub fn from_csv(text: &str) -> Result<KMatrix, ParseKMatrixError> {
    let mut name = None;
    let mut bit_rate = 0u64;
    let mut nodes = Vec::new();
    let mut rows = Vec::new();
    let mut saw_header = false;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let err = |message: String| ParseKMatrixError {
            line: line_no,
            message,
        };
        if let Some(meta) = line.strip_prefix("#kmatrix,") {
            let mut it = meta.splitn(2, ',');
            name = Some(it.next().unwrap_or_default().to_string());
            bit_rate = it
                .next()
                .and_then(|v| v.trim().parse().ok())
                .ok_or_else(|| err("missing or invalid bit rate".into()))?;
        } else if let Some(node) = line.strip_prefix("#node,") {
            let mut it = node.splitn(2, ',');
            let n = it.next().unwrap_or_default().to_string();
            let c = it
                .next()
                .ok_or_else(|| err("node line needs a controller".into()))?
                .to_string();
            nodes.push(KNode {
                name: n,
                controller: c,
            });
        } else if line.starts_with('#') {
            continue; // comment
        } else if line == HEADER {
            saw_header = true;
        } else {
            if !saw_header {
                return Err(err("message row before header".into()));
            }
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != 9 {
                return Err(err(format!("expected 9 fields, found {}", fields.len())));
            }
            let id_str = fields[1].trim();
            let id = if let Some(hex) = id_str
                .strip_prefix("0x")
                .or_else(|| id_str.strip_prefix("0X"))
            {
                u32::from_str_radix(hex, 16)
            } else {
                id_str.parse()
            }
            .map_err(|_| err(format!("invalid identifier `{id_str}`")))?;
            let extended = match fields[2].trim() {
                "0" | "false" => false,
                "1" | "true" => true,
                other => return Err(err(format!("invalid extended flag `{other}`"))),
            };
            let parse_u64 = |s: &str, what: &str| -> Result<u64, ParseKMatrixError> {
                s.trim()
                    .parse()
                    .map_err(|_| err(format!("invalid {what} `{s}`")))
            };
            let parse_opt = |s: &str, what: &str| -> Result<Option<u64>, ParseKMatrixError> {
                let s = s.trim();
                if s.is_empty() {
                    Ok(None)
                } else {
                    parse_u64(s, what).map(Some)
                }
            };
            rows.push(KRow {
                name: fields[0].trim().to_string(),
                id,
                extended,
                dlc: fields[3]
                    .trim()
                    .parse()
                    .map_err(|_| err(format!("invalid dlc `{}`", fields[3])))?,
                period_us: parse_u64(fields[4], "period")?,
                jitter_us: parse_opt(fields[5], "jitter")?,
                deadline_us: parse_opt(fields[6], "deadline")?,
                sender: fields[7].trim().to_string(),
                receivers: fields[8]
                    .split('|')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(String::from)
                    .collect(),
            });
        }
    }

    let name = name.ok_or(ParseKMatrixError {
        line: 1,
        message: "missing #kmatrix metadata line".into(),
    })?;
    Ok(KMatrix {
        name,
        bit_rate,
        nodes,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
#kmatrix,powertrain,500000
#node,EMS,fullCAN
#node,TCU,basicCAN
# free-form comment
name,id,extended,dlc,period_us,jitter_us,deadline_us,sender,receivers
rpm,0x100,0,8,10000,1000,,EMS,TCU|ICL
gear,0x1A0,0,2,20000,,15000,TCU,EMS
";

    #[test]
    fn roundtrip() {
        let m = from_csv(SAMPLE).expect("parses");
        assert_eq!(m.name, "powertrain");
        assert_eq!(m.bit_rate, 500_000);
        assert_eq!(m.nodes.len(), 2);
        assert_eq!(m.rows.len(), 2);
        assert_eq!(m.rows[0].jitter_us, Some(1000));
        assert_eq!(
            m.rows[0].receivers,
            vec!["TCU".to_string(), "ICL".to_string()]
        );
        assert_eq!(m.rows[1].jitter_us, None);
        assert_eq!(m.rows[1].deadline_us, Some(15000));

        let csv = to_csv(&m);
        let m2 = from_csv(&csv).expect("reparses");
        assert_eq!(m, m2);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let bad = SAMPLE.replace("0x100", "0xZZ");
        let err = from_csv(&bad).expect_err("bad id");
        assert_eq!(err.line, 6);
        assert!(err.to_string().contains("identifier"));

        let bad = SAMPLE.replace(",8,10000", ",8"); // field count
        let err = from_csv(&bad).expect_err("short row");
        assert!(err.message.contains("fields"));

        let err = from_csv("name,id\n").expect_err("no metadata");
        assert!(
            err.message.contains("message row before header") || err.message.contains("#kmatrix")
        );

        let err = from_csv("").expect_err("empty");
        assert!(err.message.contains("#kmatrix"));
    }

    #[test]
    fn decimal_ids_and_boolean_flags() {
        let text = "\
#kmatrix,x,125000
#node,A,fullCAN
name,id,extended,dlc,period_us,jitter_us,deadline_us,sender,receivers
m,256,true,4,5000,,,A,
";
        let m = from_csv(text).expect("parses");
        assert_eq!(m.rows[0].id, 256);
        assert!(m.rows[0].extended);
        assert!(m.rows[0].receivers.is_empty());
    }

    mod properties {
        use super::super::*;
        use crate::model::{KMatrix, KNode, KRow};
        use proptest::prelude::*;

        fn arb_name() -> impl Strategy<Value = String> {
            "[a-z][a-z0-9_]{0,14}".prop_map(String::from)
        }

        fn arb_row(nodes: Vec<String>) -> impl Strategy<Value = KRow> {
            (
                arb_name(),
                0u32..0x800,
                any::<bool>(),
                0u8..=8,
                1u64..10_000_000,
                proptest::option::of(0u64..1_000_000),
                proptest::option::of(1u64..10_000_000),
                0usize..nodes.len().max(1),
                proptest::collection::vec(0usize..nodes.len().max(1), 0..3),
            )
                .prop_map(
                    move |(name, id, ext, dlc, period, jitter, deadline, s, rs)| KRow {
                        name,
                        id,
                        extended: ext,
                        dlc,
                        period_us: period,
                        jitter_us: jitter,
                        deadline_us: deadline,
                        sender: nodes[s].clone(),
                        receivers: rs.iter().map(|&r| nodes[r].clone()).collect(),
                    },
                )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn csv_roundtrip_is_lossless(
                bus_name in arb_name(),
                bit_rate in 1u64..2_000_000,
                rows in proptest::collection::vec(
                    arb_row(vec!["A".into(), "B".into(), "GW".into()]),
                    0..12,
                ),
            ) {
                let matrix = KMatrix {
                    name: bus_name,
                    bit_rate,
                    nodes: vec![
                        KNode { name: "A".into(), controller: "fullCAN".into() },
                        KNode { name: "B".into(), controller: "basicCAN".into() },
                        KNode { name: "GW".into(), controller: "FIFO(4)".into() },
                    ],
                    rows,
                };
                let text = to_csv(&matrix);
                let back = from_csv(&text).expect("own output parses");
                prop_assert_eq!(matrix, back);
            }
        }
    }

    #[test]
    fn converts_after_parse() {
        let net = from_csv(SAMPLE)
            .expect("parses")
            .to_network()
            .expect("converts");
        assert_eq!(net.messages().len(), 2);
        assert_eq!(net.bit_rate(), 500_000);
    }
}
