//! The K-Matrix data model.
//!
//! The K-Matrix (Kommunikationsmatrix) is the artifact the paper's OEM
//! actually possesses (Sec. 3.3): the *static* description of every bus
//! message — identifier, length, period, sender, receivers — while the
//! dynamic properties (jitters) are known only for a few messages.

use carta_can::controller::ControllerType;
use carta_can::frame::Dlc;
use carta_can::message::{CanId, CanMessage, DeadlinePolicy};
use carta_can::network::{CanNetwork, Node};
use carta_core::event_model::EventModel;
use carta_core::time::Time;
use std::error::Error;
use std::fmt;

/// One message row of the K-Matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KRow {
    /// Message name.
    pub name: String,
    /// Raw CAN identifier.
    pub id: u32,
    /// `true` for a 29-bit identifier.
    pub extended: bool,
    /// Data length code (0–8 bytes).
    pub dlc: u8,
    /// Period in microseconds.
    pub period_us: u64,
    /// Send jitter in microseconds; `None` when unknown (the common
    /// case in early design, per the paper).
    pub jitter_us: Option<u64>,
    /// Explicit deadline in microseconds, if any.
    pub deadline_us: Option<u64>,
    /// Sending node name.
    pub sender: String,
    /// Receiving node names.
    pub receivers: Vec<String>,
}

/// A node entry of the K-Matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KNode {
    /// Node name.
    pub name: String,
    /// Controller type: `"fullCAN"`, `"basicCAN"` or `"FIFO(n)"`.
    pub controller: String,
}

/// A complete communication matrix for one bus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KMatrix {
    /// Matrix (bus) name.
    pub name: String,
    /// Bus speed in bits per second.
    pub bit_rate: u64,
    /// Attached nodes.
    pub nodes: Vec<KNode>,
    /// Message rows.
    pub rows: Vec<KRow>,
}

/// Why a K-Matrix could not be converted into a [`CanNetwork`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConvertKMatrixError {
    /// A row's identifier is out of range for its format.
    BadId {
        /// Message name.
        row: String,
    },
    /// A row's DLC exceeds 8.
    BadDlc {
        /// Message name.
        row: String,
    },
    /// A row's period is zero.
    BadPeriod {
        /// Message name.
        row: String,
    },
    /// A row names a sender that is not in the node list.
    UnknownSender {
        /// Message name.
        row: String,
        /// The unknown sender.
        sender: String,
    },
    /// A node's controller string is not recognized.
    BadController {
        /// Node name.
        node: String,
        /// The unparsable controller string.
        value: String,
    },
}

impl fmt::Display for ConvertKMatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConvertKMatrixError::BadId { row } => write!(f, "row `{row}`: identifier out of range"),
            ConvertKMatrixError::BadDlc { row } => write!(f, "row `{row}`: DLC exceeds 8"),
            ConvertKMatrixError::BadPeriod { row } => write!(f, "row `{row}`: zero period"),
            ConvertKMatrixError::UnknownSender { row, sender } => {
                write!(f, "row `{row}`: unknown sender `{sender}`")
            }
            ConvertKMatrixError::BadController { node, value } => {
                write!(f, "node `{node}`: unknown controller type `{value}`")
            }
        }
    }
}

impl Error for ConvertKMatrixError {}

/// Parses a controller label as written by
/// [`ControllerType::label`](carta_can::controller::ControllerType::label).
pub fn parse_controller(s: &str) -> Option<ControllerType> {
    match s {
        "fullCAN" => Some(ControllerType::FullCan),
        "basicCAN" => Some(ControllerType::BasicCan),
        other => {
            let inner = other.strip_prefix("FIFO(")?.strip_suffix(')')?;
            inner
                .parse()
                .ok()
                .map(|depth| ControllerType::FifoQueue { depth })
        }
    }
}

impl KMatrix {
    /// Builds the analyzable [`CanNetwork`], treating unknown jitters
    /// as zero (they are filled in by what-if assumptions downstream).
    ///
    /// # Errors
    ///
    /// See [`ConvertKMatrixError`].
    pub fn to_network(&self) -> Result<CanNetwork, ConvertKMatrixError> {
        let mut net = CanNetwork::new(self.bit_rate);
        for node in &self.nodes {
            let controller = parse_controller(&node.controller).ok_or_else(|| {
                ConvertKMatrixError::BadController {
                    node: node.name.clone(),
                    value: node.controller.clone(),
                }
            })?;
            net.add_node(Node::new(node.name.clone(), controller));
        }
        for row in &self.rows {
            let id = if row.extended {
                CanId::extended(row.id)
            } else {
                CanId::standard(row.id)
            }
            .map_err(|_| ConvertKMatrixError::BadId {
                row: row.name.clone(),
            })?;
            if row.dlc > 8 {
                return Err(ConvertKMatrixError::BadDlc {
                    row: row.name.clone(),
                });
            }
            if row.period_us == 0 {
                return Err(ConvertKMatrixError::BadPeriod {
                    row: row.name.clone(),
                });
            }
            let sender = self
                .nodes
                .iter()
                .position(|n| n.name == row.sender)
                .ok_or_else(|| ConvertKMatrixError::UnknownSender {
                    row: row.name.clone(),
                    sender: row.sender.clone(),
                })?;
            let activation = EventModel::periodic_with_jitter(
                Time::from_us(row.period_us),
                Time::from_us(row.jitter_us.unwrap_or(0)),
            );
            let deadline = match row.deadline_us {
                Some(d) => DeadlinePolicy::Explicit(Time::from_us(d)),
                None => DeadlinePolicy::MinReArrival,
            };
            let msg = CanMessage {
                name: row.name.clone(),
                id,
                dlc: Dlc::new(row.dlc),
                activation,
                deadline,
                sender,
            };
            net.add_message(msg);
        }
        Ok(net)
    }

    /// Number of rows with a known jitter.
    pub fn known_jitter_count(&self) -> usize {
        self.rows.iter().filter(|r| r.jitter_us.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_matrix() -> KMatrix {
        KMatrix {
            name: "pt".into(),
            bit_rate: 500_000,
            nodes: vec![
                KNode {
                    name: "EMS".into(),
                    controller: "fullCAN".into(),
                },
                KNode {
                    name: "TCU".into(),
                    controller: "basicCAN".into(),
                },
            ],
            rows: vec![
                KRow {
                    name: "rpm".into(),
                    id: 0x100,
                    extended: false,
                    dlc: 8,
                    period_us: 10_000,
                    jitter_us: Some(1_000),
                    deadline_us: None,
                    sender: "EMS".into(),
                    receivers: vec!["TCU".into()],
                },
                KRow {
                    name: "gear".into(),
                    id: 0x1A0,
                    extended: false,
                    dlc: 2,
                    period_us: 20_000,
                    jitter_us: None,
                    deadline_us: Some(15_000),
                    sender: "TCU".into(),
                    receivers: vec!["EMS".into()],
                },
            ],
        }
    }

    #[test]
    fn converts_to_network() {
        let net = simple_matrix().to_network().expect("convertible");
        assert_eq!(net.nodes().len(), 2);
        assert_eq!(net.messages().len(), 2);
        let (_, rpm) = net.message_by_name("rpm").expect("present");
        assert_eq!(rpm.activation.jitter(), Time::from_ms(1));
        let (_, gear) = net.message_by_name("gear").expect("present");
        assert_eq!(gear.activation.jitter(), Time::ZERO);
        assert_eq!(gear.resolved_deadline(), Time::from_ms(15));
        assert_eq!(simple_matrix().known_jitter_count(), 1);
    }

    #[test]
    fn conversion_errors() {
        let mut m = simple_matrix();
        m.rows[0].id = 0x800;
        assert!(matches!(
            m.to_network(),
            Err(ConvertKMatrixError::BadId { .. })
        ));

        let mut m = simple_matrix();
        m.rows[0].dlc = 9;
        assert!(matches!(
            m.to_network(),
            Err(ConvertKMatrixError::BadDlc { .. })
        ));

        let mut m = simple_matrix();
        m.rows[0].period_us = 0;
        assert!(matches!(
            m.to_network(),
            Err(ConvertKMatrixError::BadPeriod { .. })
        ));

        let mut m = simple_matrix();
        m.rows[0].sender = "GHOST".into();
        assert!(matches!(
            m.to_network(),
            Err(ConvertKMatrixError::UnknownSender { .. })
        ));

        let mut m = simple_matrix();
        m.nodes[0].controller = "magicCAN".into();
        let err = m.to_network().expect_err("bad controller");
        assert!(err.to_string().contains("magicCAN"));
    }

    #[test]
    fn controller_parsing_roundtrip() {
        for c in [
            ControllerType::FullCan,
            ControllerType::BasicCan,
            ControllerType::FifoQueue { depth: 4 },
        ] {
            assert_eq!(parse_controller(&c.label()), Some(c));
        }
        assert_eq!(parse_controller("FIFO(x)"), None);
        assert_eq!(parse_controller("FIFO(4"), None);
        assert_eq!(parse_controller(""), None);
    }

    #[test]
    fn extended_ids_supported() {
        let mut m = simple_matrix();
        m.rows[0].extended = true;
        m.rows[0].id = 0x18FF_0000;
        let net = m.to_network().expect("convertible");
        assert_eq!(net.messages()[0].id.raw(), 0x18FF_0000);
    }
}
