//! Synthetic power-train case-study generator.
//!
//! The paper analyzes "a real-world power train CAN bus from the
//! automotive industry … several ECUs including gateways … each sending
//! and receiving a total number of more than 50 messages", with jitters
//! known for only a few messages ("typically in the range of 10–30 % of
//! the message's period"). The real K-Matrix is proprietary, so this
//! module generates a deterministic synthetic matrix that matches every
//! *disclosed* structural property:
//!
//! * 8 nodes including two gateways, mixed controller types,
//! * 64 messages with periods from the standard automotive set
//!   (5 ms – 1 s), DLCs 1–8, standard 11-bit identifiers,
//! * identifiers *mostly* rate-monotonic but with deliberate legacy
//!   inversions (the optimization experiment of Sec. 4.3 needs room to
//!   improve),
//! * a known-jitter subset (default 25 % of messages) drawn uniformly
//!   from 10–30 % of the period,
//! * ≈ 55–60 % worst-case bus load at 500 kbit/s — comfortably above
//!   every OEM's "critical load limit" debate (Sec. 3.1) yet analyzable.
//!
//! Generation is a pure function of the seed; the same seed always
//! yields byte-identical matrices.

use crate::model::{KMatrix, KNode, KRow};

/// Deterministic split-mix/xorshift generator so the crate needs no
/// external RNG dependency and results are reproducible forever.
#[derive(Debug, Clone)]
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo + 1)
    }
}

/// Configuration of the synthetic case study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaseStudyConfig {
    /// RNG seed (default 42).
    pub seed: u64,
    /// Bus speed in bits per second (default 500 kbit/s, as in the
    /// paper's Figure 1).
    pub bit_rate: u64,
    /// Fraction of messages with a known jitter (default 0.25).
    pub known_jitter_fraction: f64,
    /// Number of random cross-bucket identifier swaps emulating legacy
    /// ID allocations (default 10).
    pub id_inversions: usize,
}

impl Default for CaseStudyConfig {
    fn default() -> Self {
        CaseStudyConfig {
            seed: 42,
            bit_rate: 500_000,
            known_jitter_fraction: 0.25,
            id_inversions: 10,
        }
    }
}

// All case-study nodes use fullCAN controllers: the sound analysis of
// basicCAN's unrevokable TX register charges essentially unbounded
// priority inversion to any node that also sends low-priority traffic,
// which no schedulable power-train design would accept (see the
// `ablation_controllers` bench for the quantified effect).
const NODES: [(&str, &str); 8] = [
    ("EMS", "fullCAN"),
    ("TCU", "fullCAN"),
    ("ESP", "fullCAN"),
    ("ABS", "fullCAN"),
    ("EPS", "fullCAN"),
    ("ICL", "fullCAN"),
    ("GW_BODY", "fullCAN"),
    ("GW_CHAS", "fullCAN"),
];

/// (period in ms, number of messages) — 64 rows total, weighted toward
/// the fast control loops of a power train.
const PERIOD_BUCKETS: [(u64, usize); 8] = [
    (5, 5),
    (10, 9),
    (20, 11),
    (50, 12),
    (100, 12),
    (200, 8),
    (500, 4),
    (1000, 3),
];

const SIGNAL_STEMS: [&str; 16] = [
    "engine_rpm",
    "throttle_pos",
    "coolant_temp",
    "gear_state",
    "clutch_torque",
    "wheel_speed",
    "yaw_rate",
    "brake_pressure",
    "steering_angle",
    "lambda_probe",
    "boost_pressure",
    "fuel_rate",
    "oil_temp",
    "battery_voltage",
    "diag_status",
    "gateway_fwd",
];

/// Generates the power-train K-Matrix for the given configuration.
pub fn powertrain_kmatrix(config: &CaseStudyConfig) -> KMatrix {
    let mut rng = Rng::new(config.seed);
    let nodes: Vec<KNode> = NODES
        .iter()
        .map(|(n, c)| KNode {
            name: (*n).to_string(),
            controller: (*c).to_string(),
        })
        .collect();

    // Lay out the rows fastest-first so the initial (pre-inversion)
    // identifier assignment is rate-monotonic.
    let mut rows = Vec::new();
    let mut stem_use = [0usize; SIGNAL_STEMS.len()];
    for &(period_ms, count) in &PERIOD_BUCKETS {
        for _ in 0..count {
            let stem_idx = rng.below(SIGNAL_STEMS.len() as u64) as usize;
            stem_use[stem_idx] += 1;
            let name = format!("{}_{}", SIGNAL_STEMS[stem_idx], stem_use[stem_idx]);
            let dlc = [8u8, 8, 8, 8, 8, 6, 4, 2][rng.below(8) as usize];
            let sender_idx = rng.below(NODES.len() as u64) as usize;
            let mut receivers = Vec::new();
            let n_recv = rng.range(1, 3) as usize;
            while receivers.len() < n_recv {
                let r = rng.below(NODES.len() as u64) as usize;
                let candidate = NODES[r].0.to_string();
                if r != sender_idx && !receivers.contains(&candidate) {
                    receivers.push(candidate);
                }
            }
            rows.push(KRow {
                name,
                id: 0, // assigned below
                extended: false,
                dlc,
                period_us: period_ms * 1000,
                jitter_us: None,
                deadline_us: None,
                sender: NODES[sender_idx].0.to_string(),
                receivers,
            });
        }
    }

    // Rate-monotonic base identifiers with gaps (0x100, 0x108, …).
    for (rank, row) in rows.iter_mut().enumerate() {
        row.id = 0x100 + (rank as u32) * 8 + 1;
    }
    // Legacy inversions: swap identifiers of random pairs from
    // different but *nearby* period buckets (ratio at most 5). This
    // mirrors real legacy allocations — suboptimal, visibly harmful
    // under jitter, yet not so broken that the zero-jitter system
    // already fails (the paper's experiment 1 verifies all deadlines
    // at zero jitter).
    let n = rows.len() as u64;
    let mut swaps = 0;
    let mut attempts = 0;
    while swaps < config.id_inversions && attempts < 10_000 {
        attempts += 1;
        let a = rng.below(n) as usize;
        let b = rng.below(n) as usize;
        let (lo, hi) = if rows[a].period_us <= rows[b].period_us {
            (rows[a].period_us, rows[b].period_us)
        } else {
            (rows[b].period_us, rows[a].period_us)
        };
        if lo != hi && hi <= lo * 5 {
            let tmp = rows[a].id;
            rows[a].id = rows[b].id;
            rows[b].id = tmp;
            swaps += 1;
        }
    }

    // Known jitters for a subset: 10–30 % of the period.
    let total = rows.len();
    let known = ((total as f64) * config.known_jitter_fraction).round() as usize;
    let mut assigned = 0;
    while assigned < known {
        let i = rng.below(total as u64) as usize;
        if rows[i].jitter_us.is_none() {
            let pct = rng.range(10, 30);
            rows[i].jitter_us = Some(rows[i].period_us * pct / 100);
            assigned += 1;
        }
    }

    KMatrix {
        name: "powertrain".into(),
        bit_rate: config.bit_rate,
        nodes,
        rows,
    }
}

/// The default case-study matrix (seed 42) used throughout the
/// experiments and benches.
pub fn powertrain_default() -> KMatrix {
    powertrain_kmatrix(&CaseStudyConfig::default())
}

/// A signal forwarded from the power-train bus onto the body bus by
/// the gateway.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForwardedSignal {
    /// Message name on the power-train bus.
    pub powertrain_message: String,
    /// Message name of the forwarded copy on the body bus.
    pub body_message: String,
}

/// A two-bus topology: the power-train matrix, a body bus behind the
/// `GW_BODY` gateway, and the forwarding table — the multi-resource
/// system the compositional engine of `carta-core` exists for.
#[derive(Debug, Clone, PartialEq)]
pub struct DualBusCaseStudy {
    /// The 500 kbit/s power-train matrix.
    pub powertrain: KMatrix,
    /// The 250 kbit/s body matrix (forwarded rows included, sent by
    /// `GW_BODY`).
    pub body: KMatrix,
    /// Which power-train messages the gateway forwards.
    pub forwarded: Vec<ForwardedSignal>,
}

/// Generates the dual-bus case study: the standard power-train matrix
/// plus a lighter 250 kbit/s body bus that receives four forwarded
/// power-train signals through `GW_BODY`.
pub fn dual_bus_case_study(config: &CaseStudyConfig) -> DualBusCaseStudy {
    let powertrain = powertrain_kmatrix(config);
    let mut rng = Rng::new(config.seed ^ 0xB0D7);

    let body_nodes = ["GW_BODY", "BCM", "DOOR_FL", "HVAC", "LIGHT"];
    let nodes: Vec<KNode> = body_nodes
        .iter()
        .map(|n| KNode {
            name: (*n).to_string(),
            controller: "fullCAN".into(),
        })
        .collect();

    // Local body traffic: comfort-domain periods.
    let mut rows = Vec::new();
    let stems = [
        "door_state",
        "hvac_temp",
        "light_status",
        "window_pos",
        "lock_cmd",
        "seat_pos",
    ];
    let mut stem_use = [0usize; 6];
    for (rank, &(period_ms, count)) in [(20u64, 4usize), (50, 6), (100, 6), (200, 4), (500, 4)]
        .iter()
        .enumerate()
    {
        let _ = rank;
        for _ in 0..count {
            let s = rng.below(stems.len() as u64) as usize;
            stem_use[s] += 1;
            let sender_idx = 1 + rng.below((body_nodes.len() - 1) as u64) as usize;
            rows.push(KRow {
                name: format!("{}_{}", stems[s], stem_use[s]),
                id: 0,
                extended: false,
                dlc: [8u8, 6, 4, 2][rng.below(4) as usize],
                period_us: period_ms * 1000,
                jitter_us: None,
                deadline_us: None,
                sender: body_nodes[sender_idx].to_string(),
                receivers: vec!["BCM".to_string()],
            });
        }
    }

    // Forwarded power-train signals: the four fastest rows become
    // gateway-sent copies on the body bus. Their jitter is *derived*
    // by the compositional analysis, not assumed, so the matrix keeps
    // it unknown.
    let mut fastest: Vec<&KRow> = powertrain.rows.iter().collect();
    fastest.sort_by_key(|r| (r.period_us, r.name.clone()));
    let mut forwarded = Vec::new();
    for src in fastest.iter().take(4) {
        let body_name = format!("{}_fwd", src.name);
        rows.push(KRow {
            name: body_name.clone(),
            id: 0,
            extended: false,
            dlc: src.dlc,
            period_us: src.period_us,
            jitter_us: None,
            deadline_us: None,
            sender: "GW_BODY".to_string(),
            receivers: vec!["BCM".to_string(), "HVAC".to_string()],
        });
        forwarded.push(ForwardedSignal {
            powertrain_message: src.name.clone(),
            body_message: body_name,
        });
    }

    // Rate-monotonic identifiers on the body bus (no legacy burden).
    rows.sort_by(|a, b| (a.period_us, &a.name).cmp(&(b.period_us, &b.name)));
    for (rank, row) in rows.iter_mut().enumerate() {
        row.id = 0x200 + (rank as u32) * 4;
    }

    DualBusCaseStudy {
        powertrain,
        body: KMatrix {
            name: "body".into(),
            bit_rate: 250_000,
            nodes,
            rows,
        },
        forwarded,
    }
}

/// The default dual-bus case study (seed 42).
pub fn dual_bus_default() -> DualBusCaseStudy {
    dual_bus_case_study(&CaseStudyConfig::default())
}

/// Generates a synthetic stress matrix of `message_count` messages at
/// approximately `target_load` (worst-case-stuffed utilization, as a
/// fraction) on a 500 kbit/s bus — the scaling workload for benchmarks
/// and robustness tests. Identifiers are rate-monotonic; jitters are
/// 10 % of each period.
///
/// # Panics
///
/// Panics if `message_count` is zero or `target_load` is not in
/// `(0, 2]` (above 2 the fastest periods collapse below one frame
/// time).
pub fn stress_kmatrix(seed: u64, message_count: usize, target_load: f64) -> KMatrix {
    assert!(message_count > 0, "need at least one message");
    assert!(
        target_load > 0.0 && target_load <= 2.0,
        "target load must be in (0, 2]"
    );
    let mut rng = Rng::new(seed ^ 0x57E5);
    let bit_rate = 500_000u64;
    let periods_ms = [5u64, 10, 20, 50, 100, 200];
    let mut rows = Vec::with_capacity(message_count);
    for k in 0..message_count {
        let dlc = [8u8, 8, 6, 4][rng.below(4) as usize];
        let period_ms = periods_ms[rng.below(periods_ms.len() as u64) as usize];
        rows.push(KRow {
            name: format!("stress_{k}"),
            id: 0,
            extended: false,
            dlc,
            period_us: period_ms * 1000,
            jitter_us: Some(period_ms * 100), // 10 %
            deadline_us: None,
            sender: format!("N{}", k % 8),
            receivers: vec![format!("N{}", (k + 1) % 8)],
        });
    }
    // Scale all periods so the worst-case-stuffed load hits the target.
    let demand_bps: f64 = rows
        .iter()
        .map(|r| (55.0 + 10.0 * f64::from(r.dlc)) / (r.period_us as f64 / 1e6))
        .sum();
    let current = demand_bps / bit_rate as f64;
    let factor = current / target_load;
    for r in &mut rows {
        r.period_us = ((r.period_us as f64 * factor).round() as u64).max(300);
        r.jitter_us = Some(r.period_us / 10);
    }
    // Rate-monotonic identifiers.
    rows.sort_by(|a, b| (a.period_us, &a.name).cmp(&(b.period_us, &b.name)));
    for (rank, row) in rows.iter_mut().enumerate() {
        row.id = 0x080 + rank as u32;
    }
    KMatrix {
        name: format!("stress_{message_count}m_{:.0}pct", target_load * 100.0),
        bit_rate,
        nodes: (0..8)
            .map(|n| KNode {
                name: format!("N{n}"),
                controller: "fullCAN".into(),
            })
            .collect(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carta_can::frame::StuffingMode;

    #[test]
    fn deterministic_per_seed() {
        let a = powertrain_kmatrix(&CaseStudyConfig::default());
        let b = powertrain_kmatrix(&CaseStudyConfig::default());
        assert_eq!(a, b);
        let c = powertrain_kmatrix(&CaseStudyConfig {
            seed: 7,
            ..CaseStudyConfig::default()
        });
        assert_ne!(a, c);
    }

    #[test]
    fn matches_disclosed_structure() {
        let m = powertrain_default();
        assert_eq!(m.nodes.len(), 8);
        assert!(m.rows.len() > 50, "paper: more than 50 messages");
        assert_eq!(m.rows.len(), 64);
        assert!(m.nodes.iter().any(|n| n.name.starts_with("GW_")));
        // Jitter known for roughly a quarter, in 10–30 % of period.
        let known = m.known_jitter_count();
        assert_eq!(known, 16);
        for r in &m.rows {
            if let Some(j) = r.jitter_us {
                assert!(j * 100 >= r.period_us * 10, "{}: jitter below 10 %", r.name);
                assert!(j * 100 <= r.period_us * 30, "{}: jitter above 30 %", r.name);
            }
            assert!(r.dlc >= 1 && r.dlc <= 8);
            assert!(!r.receivers.is_empty());
            assert_ne!(r.sender, r.receivers[0]);
        }
    }

    #[test]
    fn network_is_valid_and_load_is_moderate() {
        let net = powertrain_default().to_network().expect("convertible");
        net.validate().expect("structurally valid");
        let load = net.load(StuffingMode::WorstCase).utilization_percent();
        assert!(
            (40.0..75.0).contains(&load),
            "worst-case load should be substantial but analyzable, got {load:.1} %"
        );
        let best = net.load(StuffingMode::None).utilization_percent();
        assert!(best < load);
    }

    #[test]
    fn identifiers_unique_and_mostly_rate_monotonic() {
        let m = powertrain_default();
        let mut ids: Vec<u32> = m.rows.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), m.rows.len(), "identifiers must be unique");
        // Count rate-monotonic violations: pairs where a slower message
        // has a lower (stronger) identifier. There must be some
        // (legacy inversions), but not a majority.
        let mut violations = 0;
        let mut pairs = 0;
        for a in &m.rows {
            for b in &m.rows {
                if a.period_us < b.period_us {
                    pairs += 1;
                    if a.id > b.id {
                        violations += 1;
                    }
                }
            }
        }
        assert!(violations > 0, "generator should plant inversions");
        assert!(violations * 4 < pairs, "inversions must stay a minority");
    }

    #[test]
    fn dual_bus_structure() {
        let d = dual_bus_default();
        assert_eq!(d.powertrain, powertrain_default());
        let body = d.body.to_network().expect("convertible");
        body.validate().expect("valid");
        assert_eq!(d.forwarded.len(), 4);
        for f in &d.forwarded {
            assert!(d
                .powertrain
                .rows
                .iter()
                .any(|r| r.name == f.powertrain_message));
            let (_, m) = body.message_by_name(&f.body_message).expect("present");
            assert_eq!(d.body.nodes[m.sender].name, "GW_BODY");
        }
        // The body bus carries a moderate comfort-domain load.
        let load = body.load(StuffingMode::WorstCase).utilization();
        assert!((0.2..0.65).contains(&load), "body load {load}");
        // Deterministic.
        assert_eq!(d, dual_bus_default());
    }

    #[test]
    fn stress_matrix_hits_its_load_target() {
        for (count, target) in [(32usize, 0.4f64), (64, 0.6), (128, 0.75)] {
            let m = stress_kmatrix(1, count, target);
            assert_eq!(m.rows.len(), count);
            let net = m.to_network().expect("convertible");
            net.validate().expect("valid");
            let load = net.load(StuffingMode::WorstCase).utilization();
            assert!(
                (load - target).abs() < 0.05,
                "{count} msgs: load {load:.3} vs target {target}"
            );
        }
        assert_eq!(stress_kmatrix(1, 16, 0.5), stress_kmatrix(1, 16, 0.5));
        assert_ne!(stress_kmatrix(1, 16, 0.5), stress_kmatrix(2, 16, 0.5));
    }

    #[test]
    fn csv_roundtrip_of_generated_matrix() {
        let m = powertrain_default();
        let text = crate::csv::to_csv(&m);
        let back = crate::csv::from_csv(&text).expect("parses");
        assert_eq!(m, back);
    }
}
