//! # carta-kmatrix
//!
//! The K-Matrix layer of the `carta` workspace: the static
//! communication matrix that is the OEM's primary input to network
//! integration (paper Sec. 3.3), with CSV import/export and the
//! deterministic synthetic power-train case study replacing the
//! paper's proprietary matrix.
//!
//! ```
//! use carta_kmatrix::prelude::*;
//! use carta_can::frame::StuffingMode;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let matrix = powertrain_default();
//! let network = matrix.to_network()?;
//! println!("bus load: {:.1} %", network.load(StuffingMode::WorstCase).utilization_percent());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Panic-free library surface: a malformed model must surface as a
// typed error, never a crash. Tests and benches may still unwrap.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod csv;
pub mod generator;
pub mod lint;
pub mod model;

/// Convenient single import for the common types of this crate.
pub mod prelude {
    pub use crate::csv::{from_csv, to_csv, ParseKMatrixError};
    pub use crate::generator::{
        dual_bus_case_study, dual_bus_default, powertrain_default, powertrain_kmatrix,
        stress_kmatrix, CaseStudyConfig, DualBusCaseStudy, ForwardedSignal,
    };
    pub use crate::lint::{lint, Finding, Severity};
    pub use crate::model::{ConvertKMatrixError, KMatrix, KNode, KRow};
}
