//! K-Matrix linting: the structural review an integrator runs before
//! any timing analysis.
//!
//! Everything here is advisory — the hard validity checks live in
//! [`KMatrix::to_network`] and
//! [`CanNetwork::validate`](carta_can::network::CanNetwork::validate).
//! The lints flag the patterns that *cause* the paper's integration
//! problems: legacy priority inversions, heavyweight low-priority
//! frames, senders hogging the matrix, unknown jitters.

use crate::model::KMatrix;
use std::collections::BTreeMap;
use std::fmt;

/// Severity of a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational.
    Info,
    /// Likely to cause analysis pessimism or integration friction.
    Warning,
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Severity.
    pub severity: Severity,
    /// Short category slug (stable across releases).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Info => "info",
            Severity::Warning => "WARN",
        };
        write!(f, "[{sev}] {}: {}", self.rule, self.message)
    }
}

/// Runs all lints over a matrix.
pub fn lint(matrix: &KMatrix) -> Vec<Finding> {
    let mut findings = Vec::new();
    rate_monotonic_inversions(matrix, &mut findings);
    unknown_jitters(matrix, &mut findings);
    zero_payloads(matrix, &mut findings);
    sender_concentration(matrix, &mut findings);
    id_space_usage(matrix, &mut findings);
    findings.sort_by(|a, b| b.severity.cmp(&a.severity).then(a.rule.cmp(b.rule)));
    findings
}

/// Pairs where a slower message outranks a faster one — the legacy
/// allocations the paper's Sec. 4.3 optimization repairs.
fn rate_monotonic_inversions(matrix: &KMatrix, out: &mut Vec<Finding>) {
    let mut count = 0usize;
    let mut example = None;
    for a in &matrix.rows {
        for b in &matrix.rows {
            if a.period_us < b.period_us && a.id > b.id {
                count += 1;
                if example.is_none() {
                    example = Some((a.name.clone(), b.name.clone()));
                }
            }
        }
    }
    if let Some((fast, slow)) = example {
        out.push(Finding {
            severity: Severity::Warning,
            rule: "rate-inversion",
            message: format!(
                "{count} message pair(s) have a slower message outranking a faster one \
                 (e.g. `{slow}` above `{fast}`); consider `carta audsley`/`carta optimize`"
            ),
        });
    }
}

fn unknown_jitters(matrix: &KMatrix, out: &mut Vec<Finding>) {
    let unknown = matrix.rows.iter().filter(|r| r.jitter_us.is_none()).count();
    if unknown > 0 {
        out.push(Finding {
            severity: Severity::Info,
            rule: "unknown-jitter",
            message: format!(
                "{unknown} of {} messages have no published send jitter; analyses will \
                 run on assumptions until supplier datasheets arrive",
                matrix.rows.len()
            ),
        });
    }
}

fn zero_payloads(matrix: &KMatrix, out: &mut Vec<Finding>) {
    for r in matrix.rows.iter().filter(|r| r.dlc == 0) {
        out.push(Finding {
            severity: Severity::Info,
            rule: "empty-payload",
            message: format!("`{}` carries no data bytes (heartbeat?)", r.name),
        });
    }
}

/// A single sender owning most of the matrix is an integration risk
/// (its datasheet gates everything).
fn sender_concentration(matrix: &KMatrix, out: &mut Vec<Finding>) {
    if matrix.rows.is_empty() {
        return;
    }
    let mut per_sender: BTreeMap<&str, usize> = BTreeMap::new();
    for r in &matrix.rows {
        *per_sender.entry(r.sender.as_str()).or_default() += 1;
    }
    if let Some((sender, n)) = per_sender.iter().max_by_key(|(_, n)| **n) {
        if *n * 2 > matrix.rows.len() {
            out.push(Finding {
                severity: Severity::Warning,
                rule: "sender-concentration",
                message: format!(
                    "`{sender}` sends {n} of {} messages — one supplier gates the \
                     whole integration",
                    matrix.rows.len()
                ),
            });
        }
    }
}

fn id_space_usage(matrix: &KMatrix, out: &mut Vec<Finding>) {
    let extended = matrix.rows.iter().filter(|r| r.extended).count();
    if extended > 0 && extended < matrix.rows.len() {
        out.push(Finding {
            severity: Severity::Info,
            rule: "mixed-id-formats",
            message: format!(
                "{extended} extended and {} standard identifiers share the bus; extended \
                 frames pay 25 arbitration bits extra",
                matrix.rows.len() - extended
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::powertrain_default;
    use crate::model::{KNode, KRow};

    fn row(name: &str, id: u32, period_us: u64, sender: &str) -> KRow {
        KRow {
            name: name.into(),
            id,
            extended: false,
            dlc: 8,
            period_us,
            jitter_us: Some(0),
            deadline_us: None,
            sender: sender.into(),
            receivers: vec![],
        }
    }

    fn matrix(rows: Vec<KRow>) -> KMatrix {
        KMatrix {
            name: "m".into(),
            bit_rate: 500_000,
            nodes: vec![
                KNode {
                    name: "A".into(),
                    controller: "fullCAN".into(),
                },
                KNode {
                    name: "B".into(),
                    controller: "fullCAN".into(),
                },
            ],
            rows,
        }
    }

    #[test]
    fn detects_rate_inversion() {
        let m = matrix(vec![
            row("fast", 0x300, 5_000, "A"),
            row("slow", 0x100, 100_000, "B"),
        ]);
        let findings = lint(&m);
        assert!(findings.iter().any(|f| f.rule == "rate-inversion"));
        let f = findings
            .iter()
            .find(|f| f.rule == "rate-inversion")
            .expect("found");
        assert!(f.message.contains("slow"));
        assert_eq!(f.severity, Severity::Warning);
        assert!(f.to_string().starts_with("[WARN]"));
    }

    #[test]
    fn clean_matrix_produces_no_warnings() {
        let m = matrix(vec![
            row("fast", 0x100, 5_000, "A"),
            row("slow", 0x300, 100_000, "B"),
        ]);
        let findings = lint(&m);
        assert!(
            findings.iter().all(|f| f.severity == Severity::Info),
            "{findings:?}"
        );
    }

    #[test]
    fn flags_unknown_jitter_and_concentration() {
        let mut rows: Vec<KRow> = (0..6)
            .map(|k| row(&format!("m{k}"), 0x100 + k, 10_000 + u64::from(k), "A"))
            .collect();
        rows[0].jitter_us = None;
        rows[1].jitter_us = None;
        let findings = lint(&matrix(rows));
        let uj = findings
            .iter()
            .find(|f| f.rule == "unknown-jitter")
            .expect("found");
        assert!(uj.message.contains("2 of 6"));
        assert!(findings.iter().any(|f| f.rule == "sender-concentration"));
    }

    #[test]
    fn flags_mixed_formats_and_empty_payloads() {
        let mut rows = vec![
            row("a", 0x100, 10_000, "A"),
            row("hb", 0x200, 1_000_000, "B"),
        ];
        rows[1].dlc = 0;
        rows[1].extended = true;
        let findings = lint(&matrix(rows));
        assert!(findings.iter().any(|f| f.rule == "empty-payload"));
        assert!(findings.iter().any(|f| f.rule == "mixed-id-formats"));
    }

    #[test]
    fn case_study_lints_as_designed() {
        // The generator plants inversions (for the optimizer) and
        // unknown jitters (as the paper describes) — the linter must
        // surface both.
        let findings = lint(&powertrain_default());
        assert!(findings.iter().any(|f| f.rule == "rate-inversion"));
        assert!(findings.iter().any(|f| f.rule == "unknown-jitter"));
    }
}
