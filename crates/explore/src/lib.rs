//! # carta-explore
//!
//! The "what-if" layer of the `carta` workspace — the capability the
//! paper calls the decisive advantage of analysis over simulation and
//! test: exploring "a huge number of possibilities including a variety
//! of jitter distributions, different error models, and many more …
//! within minutes" (Sec. 4/5).
//!
//! * [`scenario`] — named assumption bundles (best case, worst case,
//!   sporadic errors, …),
//! * [`jitter`] — jitter-assumption transforms for sweep axes,
//! * [`sensitivity`] — response-vs-jitter curves, robust/sensitive
//!   classification and slack search (Figure 4, Sec. 4.1),
//! * [`loss`] — message-loss curves (Figure 5, Sec. 4.2),
//! * [`extensibility`] — "how many more ECUs fit" and the
//!   diagnosis/flashing stream of Figure 3,
//! * [`sweeps`] — the [`Sweeps`](sweeps::Sweeps) trait exposing every
//!   exploration as a method on the engine's `Evaluator`.
//!
//! ```
//! use carta_explore::prelude::*;
//! use carta_kmatrix::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = powertrain_default().to_network()?;
//! let eval = Evaluator::default();
//! let curve = eval.loss_vs_jitter(&net, &Scenario::best_case(), &[0.0, 0.25])?;
//! assert_eq!(curve.points[0].missed, 0); // exp. 1: zero jitter, all fine
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Panic-free library surface: a malformed model must surface as a
// typed error, never a crash. Tests and benches may still unwrap.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod buffers;
pub mod diff;
pub mod extensibility;
pub mod loss;
pub mod network_choice;
pub mod sensitivity;
pub mod sweeps;

// Scenarios and jitter transforms moved into `carta-engine` (they are
// part of the evaluation engine's cache keys); re-exported here so
// `carta_explore::scenario::Scenario` etc. keep working.
pub use carta_engine::jitter;
pub use carta_engine::scenario;

/// Convenient single import for the common types of this crate.
pub mod prelude {
    pub use crate::buffers::TxBufferNeed;
    pub use crate::diff::{diff_reports, AnalysisDiff, DeltaRow, VerdictChange};
    pub use crate::extensibility::{with_additional_ecus, with_diagnostic_stream, EcuTemplate};
    pub use crate::jitter::{with_assumed_unknown_jitter, with_jitter_ratio, with_scaled_jitter};
    pub use crate::loss::{paper_jitter_grid, LossCurve, LossPoint, ProbLossCurve, ProbLossPoint};
    pub use crate::network_choice::{cheapest_sufficient, BitRateOption};
    pub use crate::scenario::{DeadlineOverride, ErrorSpec, Scenario};
    pub use crate::sensitivity::{SensitivityClass, SensitivitySeries};
    pub use crate::sweeps::Sweeps;
    pub use carta_engine::prelude::{CacheStats, Evaluator, EvaluatorBuilder, Parallelism};
}
