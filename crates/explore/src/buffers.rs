//! Buffer dimensioning from analysis results.
//!
//! The paper's Section 1 lists "buffer under- and over-flows" among the
//! hard-to-find timing problems, and Section 5 names gateway "queue
//! configuration" as an OEM-tunable parameter. Both questions reduce to
//! arrival-curve arithmetic once the response-time analysis has run:
//!
//! * a **sender-side** queue never overflows if it holds as many
//!   instances as can be simultaneously pending — `η⁺(WCRT)` of the
//!   message's own activation model;
//! * a **receiver/gateway-side** queue drained every `drain_period`
//!   never overflows if it holds the peak arrivals of one drain window
//!   plus the backlog admissible while one drain is in flight —
//!   conservatively `Σ η⁺_out(drain_period + WCRT_out)` over the
//!   streams it consumes.

use crate::scenario::Scenario;
use carta_can::network::CanNetwork;
use carta_can::rta::ResponseOutcome;
use carta_core::analysis::AnalysisError;
use carta_core::time::Time;
use carta_engine::prelude::{BaseSystem, Evaluator, SystemVariant};

/// Sender-side queue requirement of one message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxBufferNeed {
    /// Message name.
    pub message: String,
    /// Instances that can be pending simultaneously; `None` when the
    /// message has no bounded response (overload — no finite buffer
    /// suffices).
    pub depth: Option<u64>,
}

/// Computes per-message sender-queue depths under `scenario`.
///
/// A depth of 1 means the classic single buffer never overwrites; a
/// larger depth is what a fullCAN mailbox set or driver queue must hold
/// to make the "message loss" of the paper's Section 4.2 impossible
/// even past the deadline.
///
/// Shared body of [`crate::sweeps::Sweeps::required_tx_depths`],
/// sharing the evaluator's memoized analysis with other queries over
/// the same network and scenario (the underlying report is computed
/// once).
pub(crate) fn required_tx_depths_impl(
    eval: &Evaluator,
    net: &CanNetwork,
    scenario: &Scenario,
) -> Result<Vec<TxBufferNeed>, AnalysisError> {
    let report = eval.evaluate(&SystemVariant::new(
        BaseSystem::new(net.clone()),
        scenario.clone(),
    ))?;
    Ok(report
        .messages
        .iter()
        .map(|m| {
            let depth = match &m.outcome {
                ResponseOutcome::Bounded(b) => Some(
                    net.messages()[m.index]
                        .activation
                        .eta_plus(b.worst())
                        .max(1),
                ),
                ResponseOutcome::Overload(_) => None,
            };
            TxBufferNeed {
                message: m.name.to_string(),
                depth,
            }
        })
        .collect())
}

/// Peak number of frames a node can receive within `drain_period` plus
/// one worst-case arrival backlog — the queue depth a gateway or
/// application task draining at that period must provision.
///
/// Returns `None` if any consumed stream has no bounded response.
///
/// Shared body of [`crate::sweeps::Sweeps::required_rx_depth`] —
/// dimension several nodes and drain periods from one memoized
/// analysis.
pub(crate) fn required_rx_depth_impl(
    eval: &Evaluator,
    net: &CanNetwork,
    scenario: &Scenario,
    node: usize,
    drain_period: Time,
) -> Result<Option<u64>, AnalysisError> {
    if net.nodes().get(node).is_none() {
        return Err(AnalysisError::InvalidModel(format!(
            "node index {node} out of range"
        )));
    }
    let report = eval.evaluate(&SystemVariant::new(
        BaseSystem::new(net.clone()),
        scenario.clone(),
    ))?;
    let mut total = 0u64;
    for m in &report.messages {
        let msg = &net.messages()[m.index];
        // `receivers` are not modeled on CanMessage; a node consumes a
        // stream if it is not the sender (broadcast bus). Callers with
        // K-Matrix receiver lists should pre-filter; the broadcast
        // assumption is conservative.
        if msg.sender == node {
            continue;
        }
        match &m.outcome {
            ResponseOutcome::Bounded(b) => {
                let out = msg.activation.propagate(b.best(), b.worst(), m.c_min);
                total += out.eta_plus(drain_period.saturating_add(b.worst()));
            }
            ResponseOutcome::Overload(_) => return Ok(None),
        }
    }
    Ok(Some(total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use carta_can::controller::ControllerType;
    use carta_can::frame::Dlc;
    use carta_can::message::{CanId, CanMessage};
    use carta_can::network::Node;
    use carta_core::event_model::EventModel;

    fn net() -> CanNetwork {
        let mut net = CanNetwork::new(250_000);
        let a = net.add_node(Node::new("A", ControllerType::FullCan));
        let gw = net.add_node(Node::new("GW", ControllerType::FullCan));
        let _ = gw;
        net.add_message(CanMessage::new(
            "fast",
            CanId::standard(0x100).expect("valid"),
            Dlc::new(8),
            Time::from_ms(5),
            Time::from_ms(1),
            a,
        ));
        net.add_message(CanMessage::new(
            "slow",
            CanId::standard(0x300).expect("valid"),
            Dlc::new(8),
            Time::from_ms(50),
            Time::ZERO,
            a,
        ));
        net
    }

    use crate::sweeps::Sweeps;

    #[test]
    fn single_buffer_suffices_on_a_light_bus() {
        let needs = Evaluator::default()
            .required_tx_depths(&net(), &Scenario::best_case())
            .expect("valid");
        for n in &needs {
            assert_eq!(
                n.depth,
                Some(1),
                "{}: light bus, short responses",
                n.message
            );
        }
    }

    #[test]
    fn bursty_activation_needs_deeper_queues() {
        let mut n = net();
        // A burst sender: 4 queuings within ~1 ms, every 40 ms.
        n.messages_mut()[0].activation =
            EventModel::burst(Time::from_ms(40), 4, Time::from_us(300));
        let needs = Evaluator::default()
            .required_tx_depths(&n, &Scenario::best_case())
            .expect("valid");
        let fast = needs.iter().find(|x| x.message == "fast").expect("present");
        assert!(
            fast.depth.expect("bounded") >= 2,
            "burst needs depth: {fast:?}"
        );
    }

    #[test]
    fn overloaded_messages_have_no_finite_depth() {
        let mut n = net();
        n.messages_mut()[1].activation = EventModel::periodic(Time::from_us(400)); // > 100 %
        let needs = Evaluator::default()
            .required_tx_depths(&n, &Scenario::best_case())
            .expect("valid");
        let slow = needs.iter().find(|x| x.message == "slow").expect("present");
        assert_eq!(slow.depth, None);
    }

    #[test]
    fn rx_depth_scales_with_drain_period() {
        let n = net();
        let eval = Evaluator::default();
        let quick = eval
            .required_rx_depth(&n, &Scenario::best_case(), 1, Time::from_ms(5))
            .expect("valid")
            .expect("bounded");
        let lazy = eval
            .required_rx_depth(&n, &Scenario::best_case(), 1, Time::from_ms(50))
            .expect("valid")
            .expect("bounded");
        assert!(lazy > quick);
        // Draining every 5 ms: at most two fast frames + one slow can
        // land in a window (5 ms + small response).
        assert!((2..=4).contains(&quick), "quick = {quick}");
        // Out-of-range node is an error.
        assert!(eval
            .required_rx_depth(&n, &Scenario::best_case(), 9, Time::from_ms(5))
            .is_err());
    }
}
