//! Upfront network-choice exploration.
//!
//! "OEMs can evaluate different network choices upfront and use our
//! SymTA/S technology to dimension optimized and robust buses with
//! known extensibility" (paper, Sec. 6). This module sweeps candidate
//! bus speeds for a fixed communication matrix and reports, per
//! candidate: load, schedulability, jitter slack and ECU headroom —
//! the decision table an OEM would put next to the wiring-cost table.

use crate::extensibility::{max_additional_ecus_impl, EcuTemplate};
use crate::scenario::Scenario;
use crate::sensitivity::max_schedulable_jitter_impl;
use carta_can::frame::StuffingMode;
use carta_can::network::CanNetwork;
use carta_core::analysis::AnalysisError;
use carta_engine::prelude::{BaseSystem, Evaluator, SystemVariant};

/// Evaluation of one candidate bus speed.
#[derive(Debug, Clone, PartialEq)]
pub struct BitRateOption {
    /// Candidate speed in bits per second.
    pub bit_rate: u64,
    /// Worst-case-stuffed utilization.
    pub load: f64,
    /// `true` if every message meets its deadline under the scenario.
    pub schedulable: bool,
    /// Largest uniform jitter ratio the bus tolerates (`None` when
    /// already failing at zero jitter).
    pub jitter_slack: Option<f64>,
    /// How many template ECUs could still be added.
    pub ecu_headroom: usize,
}

/// Sweeps candidate bit rates for a fixed matrix.
///
/// Shared body of [`crate::sweeps::Sweeps::compare_bit_rates`]. The
/// whole decision table — schedulability check, jitter-slack search
/// and ECU-headroom search per candidate speed — runs through one
/// memoized evaluator, so repeated sweeps (or overlapping candidate
/// sets) reuse each other's analyses.
pub(crate) fn compare_bit_rates_impl(
    eval: &Evaluator,
    net: &CanNetwork,
    scenario: &Scenario,
    candidates: &[u64],
    template: &EcuTemplate,
) -> Result<Vec<BitRateOption>, AnalysisError> {
    let _span = carta_obs::span!("sweep.bit_rates", candidates = candidates.len());
    let mut options = Vec::with_capacity(candidates.len());
    for &bit_rate in candidates {
        let variant = retimed(net, bit_rate);
        let report = eval.evaluate(&SystemVariant::new(
            BaseSystem::new(variant.clone()),
            scenario.clone(),
        ))?;
        let schedulable = report.schedulable();
        let jitter_slack = if schedulable {
            max_schedulable_jitter_impl(eval, &variant, scenario, 1.0, 0.02)?
        } else {
            None
        };
        let ecu_headroom = if schedulable {
            max_additional_ecus_impl(eval, &variant, scenario, template, 64)?
        } else {
            0
        };
        options.push(BitRateOption {
            bit_rate,
            load: variant.load(StuffingMode::WorstCase).utilization(),
            schedulable,
            jitter_slack,
            ecu_headroom,
        });
    }
    crate::sweeps::record_sweep_points(candidates.len());
    Ok(options)
}

/// The same matrix on a different bus speed (backend carried over).
fn retimed(net: &CanNetwork, bit_rate: u64) -> CanNetwork {
    let mut out = CanNetwork::new(bit_rate).with_backend(net.backend());
    for n in net.nodes() {
        out.add_node(n.clone());
    }
    for m in net.messages() {
        out.add_message(m.clone());
    }
    out
}

/// The cheapest (slowest) candidate that is schedulable with at least
/// `min_slack` jitter reserve — the "dimensioning" answer.
pub fn cheapest_sufficient(options: &[BitRateOption], min_slack: f64) -> Option<&BitRateOption> {
    options
        .iter()
        .filter(|o| o.schedulable && o.jitter_slack.is_some_and(|s| s >= min_slack))
        .min_by_key(|o| o.bit_rate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use carta_can::controller::ControllerType;
    use carta_can::frame::Dlc;
    use carta_can::message::{CanId, CanMessage};
    use carta_can::network::Node;
    use carta_core::time::Time;

    fn matrix() -> CanNetwork {
        let mut net = CanNetwork::new(500_000); // speed is overridden by the sweep
        let a = net.add_node(Node::new("A", ControllerType::FullCan));
        for (k, period) in [10u64, 10, 20, 20, 50, 100].into_iter().enumerate() {
            net.add_message(CanMessage::new(
                format!("m{k}"),
                CanId::standard(0x100 + 16 * k as u32).expect("valid"),
                Dlc::new(8),
                Time::from_ms(period),
                Time::ZERO,
                a,
            ));
        }
        net
    }

    use crate::sweeps::Sweeps;

    #[test]
    fn sweep_orders_sensibly() {
        let options = Evaluator::default()
            .compare_bit_rates(
                &matrix(),
                &Scenario::worst_case(),
                &[50_000, 125_000, 250_000, 500_000],
                &EcuTemplate::default(),
            )
            .expect("valid");
        assert_eq!(options.len(), 4);
        // Load falls with speed.
        for w in options.windows(2) {
            assert!(w[0].load > w[1].load);
        }
        // Faster buses never lose schedulability that slower ones had.
        for w in options.windows(2) {
            assert!(!w[0].schedulable || w[1].schedulable);
        }
        // Headroom and slack grow with speed (weakly).
        let fast = options.last().expect("non-empty");
        assert!(fast.schedulable);
        assert!(fast.ecu_headroom >= options[1].ecu_headroom);
        // 50 kbit/s carries ~90 % raw load — unschedulable once burst
        // errors and non-preemption blocking are accounted for.
        assert!(options[0].load > 0.8);
        assert!(!options[0].schedulable);
        assert_eq!(options[0].ecu_headroom, 0);
        assert_eq!(options[0].jitter_slack, None);
    }

    #[test]
    fn dimensioning_picks_cheapest_sufficient() {
        let options = Evaluator::default()
            .compare_bit_rates(
                &matrix(),
                &Scenario::worst_case(),
                &[50_000, 125_000, 250_000, 500_000],
                &EcuTemplate::default(),
            )
            .expect("valid");
        let pick = cheapest_sufficient(&options, 0.25).expect("some candidate works");
        assert!(pick.schedulable);
        assert!(pick.jitter_slack.expect("slack computed") >= 0.25);
        // All cheaper candidates fail the slack requirement.
        for o in options.iter().filter(|o| o.bit_rate < pick.bit_rate) {
            assert!(!o.schedulable || o.jitter_slack.is_none_or(|s| s < 0.25));
        }
        // An impossible requirement yields no pick.
        assert!(cheapest_sufficient(&options, 2.0).is_none());
    }
}
