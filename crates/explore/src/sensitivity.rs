//! Sensitivity analysis — the paper's Section 4.1 / Figure 4.
//!
//! Two complementary views, both following Racu, Jersak & Ernst
//! (ref. \[9\] of the paper):
//!
//! * **curves** — worst-case response time of selected messages as a
//!   function of the assumed jitter ratio, classified into the paper's
//!   vocabulary: *robust*, *medium sensitivity*, *sensitive*, *very
//!   sensitive*;
//! * **slack search** — the largest jitter ratio a message (or the
//!   whole bus) tolerates before deadlines break, found by binary
//!   search.

use crate::scenario::Scenario;
use carta_can::network::CanNetwork;
use carta_core::analysis::AnalysisError;
use carta_core::time::Time;
use carta_engine::prelude::{BaseSystem, Evaluator, SystemVariant};
use std::fmt;

/// Response-vs-jitter series for one message.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivitySeries {
    /// Message name.
    pub message: String,
    /// `(jitter ratio, worst-case response)`; `None` = unbounded.
    pub points: Vec<(f64, Option<Time>)>,
}

/// The paper's Figure 4 classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SensitivityClass {
    /// Response time essentially flat over the sweep (growth < 15 %).
    Robust,
    /// Moderate growth (< 1.5×).
    Medium,
    /// Strong growth (< 2×).
    Sensitive,
    /// Explosive growth (≥ 2×) or loss of boundedness.
    VerySensitive,
}

impl fmt::Display for SensitivityClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SensitivityClass::Robust => "robust",
            SensitivityClass::Medium => "medium sensitivity",
            SensitivityClass::Sensitive => "sensitive",
            SensitivityClass::VerySensitive => "very sensitive",
        };
        f.write_str(s)
    }
}

impl SensitivitySeries {
    /// Classifies the series by the growth of its response time across
    /// the sweep.
    pub fn classify(&self) -> SensitivityClass {
        let bounded: Option<Vec<Time>> = self.points.iter().map(|(_, r)| *r).collect();
        let Some(bounded) = bounded else {
            // Losing boundedness anywhere in the sweep is the worst class.
            return SensitivityClass::VerySensitive;
        };
        let first = match bounded.first() {
            Some(f) if !f.is_zero() => f.as_ns() as f64,
            _ => return SensitivityClass::Robust,
        };
        let last = bounded[bounded.len() - 1].as_ns() as f64;
        let growth = last / first;
        if growth < 1.15 {
            SensitivityClass::Robust
        } else if growth < 1.5 {
            SensitivityClass::Medium
        } else if growth < 2.0 {
            SensitivityClass::Sensitive
        } else {
            SensitivityClass::VerySensitive
        }
    }
}

/// The message indices selected by an `only` filter, in network order.
fn select(net: &CanNetwork, only: Option<&[&str]>) -> Vec<usize> {
    net.messages()
        .iter()
        .enumerate()
        .filter(|(_, m)| only.is_none_or(|names| names.contains(&m.name.as_str())))
        .map(|(i, _)| i)
        .collect()
}

fn empty_series(net: &CanNetwork, selected: &[usize], capacity: usize) -> Vec<SensitivitySeries> {
    selected
        .iter()
        .map(|&i| SensitivitySeries {
            message: net.messages()[i].name.clone(),
            points: Vec::with_capacity(capacity),
        })
        .collect()
}

/// Shared body of [`crate::sweeps::Sweeps::response_vs_jitter`]: the
/// whole ratio grid is submitted as one batch (parallel under the
/// evaluator's [`carta_engine::prelude::Parallelism`]) and repeated
/// grid points hit its cache.
pub(crate) fn response_vs_jitter_impl(
    eval: &Evaluator,
    net: &CanNetwork,
    scenario: &Scenario,
    ratios: &[f64],
    only: Option<&[&str]>,
) -> Result<Vec<SensitivitySeries>, AnalysisError> {
    let _span = carta_obs::span!("sweep.sensitivity", points = ratios.len());
    let selected = select(net, only);
    let mut series = empty_series(net, &selected, ratios.len());
    let base = BaseSystem::new(net.clone());
    let variants: Vec<SystemVariant> = ratios
        .iter()
        .map(|&ratio| SystemVariant::new(base.clone(), scenario.clone()).with_jitter_ratio(ratio))
        .collect();
    let results = eval.evaluate_batch(&variants);
    if let Some(Err(err)) = results.first() {
        if results.iter().all(|r| r.is_err()) {
            return Err(err.clone());
        }
    }
    for (&ratio, result) in ratios.iter().zip(results) {
        match result {
            Ok(report) => {
                carta_obs::event!("sweep.point", ratio = ratio, missed = report.missed_count());
                for (k, &i) in selected.iter().enumerate() {
                    series[k]
                        .points
                        .push((ratio, report.messages[i].outcome.wcrt()));
                }
            }
            Err(err) => {
                // Classify, don't drop: a failed point counts as
                // unbounded for every message, pushing the affected
                // series into `VerySensitive`.
                carta_obs::event!("sweep.point.failed", ratio = ratio, error = err);
                for s in series.iter_mut() {
                    s.points.push((ratio, None));
                }
            }
        }
    }
    crate::sweeps::record_sweep_points(ratios.len());
    Ok(series)
}

/// Error-sensitivity: worst-case response of selected messages as the
/// sporadic error interval shrinks (more errors). The paper notes
/// "similar results have been obtained for error-sensitivity"
/// alongside the jitter curves of Figure 4.
///
/// `intervals` should be ordered calm → stormy (largest interval
/// first) so [`SensitivitySeries::classify`] reads growth correctly;
/// the series' x-values are the error intervals in milliseconds.
///
/// Shared body of [`crate::sweeps::Sweeps::response_vs_error_rate`];
/// the interval grid is one batch submission.
pub(crate) fn response_vs_error_rate_impl(
    eval: &Evaluator,
    net: &CanNetwork,
    stuffing: carta_can::frame::StuffingMode,
    intervals: &[Time],
    only: Option<&[&str]>,
) -> Result<Vec<SensitivitySeries>, AnalysisError> {
    let _span = carta_obs::span!("sweep.error_rate", points = intervals.len());
    let selected = select(net, only);
    let mut series = empty_series(net, &selected, intervals.len());
    let base = BaseSystem::new(net.clone());
    let variants: Vec<SystemVariant> = intervals
        .iter()
        .map(|&interval| {
            let scenario = Scenario {
                name: format!("errors every {interval}"),
                stuffing,
                errors: crate::scenario::ErrorSpec::Sporadic { interval },
                deadline: crate::scenario::DeadlineOverride::MinReArrival,
            };
            SystemVariant::new(base.clone(), scenario)
        })
        .collect();
    let results = eval.evaluate_batch(&variants);
    if let Some(Err(err)) = results.first() {
        if results.iter().all(|r| r.is_err()) {
            return Err(err.clone());
        }
    }
    for (&interval, result) in intervals.iter().zip(results) {
        match result {
            Ok(report) => {
                carta_obs::event!(
                    "sweep.point",
                    interval_ms = interval.as_ms_f64(),
                    missed = report.missed_count()
                );
                for (k, &i) in selected.iter().enumerate() {
                    series[k]
                        .points
                        .push((interval.as_ms_f64(), report.messages[i].outcome.wcrt()));
                }
            }
            Err(err) => {
                carta_obs::event!(
                    "sweep.point.failed",
                    interval_ms = interval.as_ms_f64(),
                    error = err
                );
                for s in series.iter_mut() {
                    s.points.push((interval.as_ms_f64(), None));
                }
            }
        }
    }
    crate::sweeps::record_sweep_points(intervals.len());
    Ok(series)
}

/// Binary-searches the largest jitter ratio in `[0, max_ratio]` at
/// which the bus is still fully schedulable under `scenario` — the
/// slack of the whole configuration in the Racu et al. sense. Returns
/// `None` if even zero jitter fails.
///
/// Shared body of [`crate::sweeps::Sweeps::max_schedulable_jitter`].
/// The probes are inherently sequential (each depends on the previous
/// verdict) but still benefit from the evaluator's cache when the
/// search revisits a ratio or runs after a sweep over the same grid.
pub(crate) fn max_schedulable_jitter_impl(
    eval: &Evaluator,
    net: &CanNetwork,
    scenario: &Scenario,
    max_ratio: f64,
    tolerance: f64,
) -> Result<Option<f64>, AnalysisError> {
    let _span = carta_obs::span!("sweep.jitter_slack", max_ratio = max_ratio);
    let base = BaseSystem::new(net.clone());
    let ok = |ratio: f64| -> Result<bool, AnalysisError> {
        let v = SystemVariant::new(base.clone(), scenario.clone()).with_jitter_ratio(ratio);
        Ok(eval.evaluate(&v)?.schedulable())
    };
    if !ok(0.0)? {
        return Ok(None);
    }
    if ok(max_ratio)? {
        return Ok(Some(max_ratio));
    }
    let (mut lo, mut hi) = (0.0f64, max_ratio);
    while hi - lo > tolerance.max(1e-6) {
        let mid = (lo + hi) / 2.0;
        if ok(mid)? {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(Some(lo))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweeps::Sweeps;
    use carta_can::controller::ControllerType;
    use carta_can::frame::Dlc;
    use carta_can::message::{CanId, CanMessage};
    use carta_can::network::Node;

    fn net() -> CanNetwork {
        let mut net = CanNetwork::new(125_000);
        let a = net.add_node(Node::new("A", ControllerType::FullCan));
        for (k, period) in [5u64, 5, 10, 10, 20, 20, 50, 50].into_iter().enumerate() {
            net.add_message(CanMessage::new(
                format!("m{k}"),
                CanId::standard(0x100 + 16 * k as u32).expect("valid"),
                Dlc::new(8),
                Time::from_ms(period),
                Time::ZERO,
                a,
            ));
        }
        net
    }

    #[test]
    fn series_are_monotone_and_priorities_differ() {
        let ratios = [0.0, 0.2, 0.4, 0.6];
        let series = Evaluator::default()
            .response_vs_jitter(&net(), &Scenario::best_case(), &ratios, None)
            .expect("valid");
        assert_eq!(series.len(), 8);
        for s in &series {
            for w in s.points.windows(2) {
                match (w[0].1, w[1].1) {
                    (Some(a), Some(b)) => {
                        assert!(b >= a, "{}: response must not shrink", s.message)
                    }
                    (Some(_), None) => {} // became unbounded: fine
                    (None, Some(_)) => panic!("{}: regained bound at higher jitter", s.message),
                    (None, None) => {}
                }
            }
        }
        // The top-priority message is robust; the bottom one is not.
        let top = series.iter().find(|s| s.message == "m0").expect("present");
        let bottom = series.iter().find(|s| s.message == "m7").expect("present");
        assert!(top.classify() <= bottom.classify());
        assert_eq!(top.classify(), SensitivityClass::Robust);
    }

    #[test]
    fn subset_selection() {
        let series = Evaluator::default()
            .response_vs_jitter(&net(), &Scenario::best_case(), &[0.0], Some(&["m2", "m5"]))
            .expect("valid");
        let names: Vec<&str> = series.iter().map(|s| s.message.as_str()).collect();
        assert_eq!(names, vec!["m2", "m5"]);
    }

    #[test]
    fn failed_point_classifies_as_very_sensitive() {
        use carta_engine::prelude::FaultPlan;
        let faulty = Evaluator::builder()
            .jobs(1)
            .faults(FaultPlan {
                panic_at: Some(1),
                ..FaultPlan::default()
            })
            .build();
        let series = faulty
            .response_vs_jitter(&net(), &Scenario::best_case(), &[0.0, 0.2, 0.4], None)
            .expect("isolated failure must not abort the sweep");
        for s in &series {
            assert_eq!(s.points.len(), 3, "{}: grid stays aligned", s.message);
            assert!(s.points[1].1.is_none(), "{}: failed point", s.message);
            assert_eq!(s.classify(), SensitivityClass::VerySensitive);
        }
    }

    #[test]
    fn classification_thresholds() {
        let mk = |first: u64, last: u64| SensitivitySeries {
            message: "x".into(),
            points: vec![
                (0.0, Some(Time::from_us(first))),
                (0.6, Some(Time::from_us(last))),
            ],
        };
        assert_eq!(mk(100, 110).classify(), SensitivityClass::Robust);
        assert_eq!(mk(100, 140).classify(), SensitivityClass::Medium);
        assert_eq!(mk(100, 180).classify(), SensitivityClass::Sensitive);
        assert_eq!(mk(100, 300).classify(), SensitivityClass::VerySensitive);
        let unbounded = SensitivitySeries {
            message: "x".into(),
            points: vec![(0.0, Some(Time::from_us(100))), (0.6, None)],
        };
        assert_eq!(unbounded.classify(), SensitivityClass::VerySensitive);
    }

    #[test]
    fn error_sensitivity_grows_with_error_rate() {
        use carta_can::frame::StuffingMode;
        // Calm -> stormy: 100 ms, 10 ms, 2 ms error intervals.
        let intervals = [Time::from_ms(100), Time::from_ms(10), Time::from_ms(2)];
        let eval = Evaluator::default();
        let series = eval
            .response_vs_error_rate(&net(), StuffingMode::WorstCase, &intervals, None)
            .expect("valid");
        assert_eq!(series.len(), 8);
        for s in &series {
            let mut last = Time::ZERO;
            for (_, r) in &s.points {
                match r {
                    Some(t) => {
                        assert!(
                            *t >= last,
                            "{}: response shrank with more errors",
                            s.message
                        );
                        last = *t;
                    }
                    None => break,
                }
            }
        }
        // A subset works too.
        let sub = eval
            .response_vs_error_rate(&net(), StuffingMode::WorstCase, &intervals, Some(&["m0"]))
            .expect("valid");
        assert_eq!(sub.len(), 1);
        assert_eq!(sub[0].points.len(), 3);
    }

    #[test]
    fn slack_search_brackets_the_break_point() {
        let n = net();
        let slack = Evaluator::default()
            .max_schedulable_jitter(&n, &Scenario::worst_case(), 1.0, 0.01)
            .expect("valid");
        match slack {
            Some(s) => {
                // Schedulable at the found ratio...
                let at = Scenario::worst_case()
                    .analyze(&crate::jitter::with_jitter_ratio(&n, s))
                    .expect("valid");
                assert!(at.schedulable());
                // ...and broken a bit above it (unless at the cap).
                if s < 0.99 {
                    let above = Scenario::worst_case()
                        .analyze(&crate::jitter::with_jitter_ratio(&n, s + 0.02))
                        .expect("valid");
                    assert!(!above.schedulable());
                }
            }
            None => {
                // Then it must already fail at zero.
                let at0 = Scenario::worst_case().analyze(&n).expect("valid");
                assert!(!at0.schedulable());
            }
        }
    }
}
