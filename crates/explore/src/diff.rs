//! Comparing two analyses — the change-review view of the iterative
//! refinement loop (paper Sec. 5.2: "the analysis can be repeated as
//! new design details become available ... newly appearing bottlenecks
//! can be discovered quickly").

use carta_can::rta::BusReport;
use carta_core::time::Time;
use std::fmt;

/// How one message's verdict moved between two analyses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerdictChange {
    /// Met the deadline before and after.
    StillOk,
    /// Lost before and after.
    StillLost,
    /// Newly missing its deadline — a *newly appearing bottleneck*.
    Regressed,
    /// Repaired by the change.
    Fixed,
}

impl fmt::Display for VerdictChange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VerdictChange::StillOk => "ok",
            VerdictChange::StillLost => "still lost",
            VerdictChange::Regressed => "REGRESSED",
            VerdictChange::Fixed => "fixed",
        };
        f.write_str(s)
    }
}

/// One message's delta.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaRow {
    /// Message name.
    pub message: String,
    /// WCRT before (`None` = unbounded).
    pub before: Option<Time>,
    /// WCRT after.
    pub after: Option<Time>,
    /// Verdict movement.
    pub change: VerdictChange,
}

impl DeltaRow {
    /// Signed WCRT delta in nanoseconds (`None` if either side is
    /// unbounded).
    pub fn delta_ns(&self) -> Option<i128> {
        Some(i128::from(self.after?.as_ns()) - i128::from(self.before?.as_ns()))
    }
}

/// The full comparison.
#[derive(Debug, Clone)]
pub struct AnalysisDiff {
    /// Per-message rows, in `before` order; messages present on only
    /// one side are skipped (use the counts below to notice).
    pub rows: Vec<DeltaRow>,
    /// Messages only in `before`.
    pub removed: Vec<String>,
    /// Messages only in `after`.
    pub added: Vec<String>,
}

impl AnalysisDiff {
    /// Messages that newly miss their deadline.
    pub fn regressions(&self) -> Vec<&DeltaRow> {
        self.rows
            .iter()
            .filter(|r| r.change == VerdictChange::Regressed)
            .collect()
    }

    /// Messages repaired by the change.
    pub fn fixes(&self) -> Vec<&DeltaRow> {
        self.rows
            .iter()
            .filter(|r| r.change == VerdictChange::Fixed)
            .collect()
    }

    /// `true` if nothing regressed.
    pub fn is_safe(&self) -> bool {
        self.regressions().is_empty()
    }
}

/// Compares two bus reports message by message (matched by name).
pub fn diff_reports(before: &BusReport, after: &BusReport) -> AnalysisDiff {
    let mut rows = Vec::new();
    let mut removed = Vec::new();
    for b in &before.messages {
        match after.by_name(&b.name) {
            None => removed.push(b.name.to_string()),
            Some(a) => {
                let change = match (b.misses_deadline(), a.misses_deadline()) {
                    (false, false) => VerdictChange::StillOk,
                    (true, true) => VerdictChange::StillLost,
                    (false, true) => VerdictChange::Regressed,
                    (true, false) => VerdictChange::Fixed,
                };
                rows.push(DeltaRow {
                    message: b.name.to_string(),
                    before: b.outcome.wcrt(),
                    after: a.outcome.wcrt(),
                    change,
                });
            }
        }
    }
    let added = after
        .messages
        .iter()
        .filter(|a| before.by_name(&a.name).is_none())
        .map(|a| a.name.to_string())
        .collect();
    AnalysisDiff {
        rows,
        removed,
        added,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jitter::with_jitter_ratio;
    use crate::scenario::Scenario;
    use carta_can::controller::ControllerType;
    use carta_can::frame::Dlc;
    use carta_can::message::{CanId, CanMessage};
    use carta_can::network::{CanNetwork, Node};

    fn net() -> CanNetwork {
        let mut net = CanNetwork::new(125_000);
        let a = net.add_node(Node::new("A", ControllerType::FullCan));
        for (k, period) in [5u64, 5, 10, 10, 20, 50].into_iter().enumerate() {
            net.add_message(CanMessage::new(
                format!("m{k}"),
                CanId::standard(0x100 + 16 * k as u32).expect("valid"),
                Dlc::new(8),
                Time::from_ms(period),
                Time::ZERO,
                a,
            ));
        }
        net
    }

    #[test]
    fn detects_regressions_from_added_jitter() {
        let before = Scenario::worst_case().analyze(&net()).expect("valid");
        let after = Scenario::worst_case()
            .analyze(&with_jitter_ratio(&net(), 0.5))
            .expect("valid");
        let diff = diff_reports(&before, &after);
        assert_eq!(diff.rows.len(), 6);
        assert!(diff.added.is_empty());
        assert!(diff.removed.is_empty());
        assert!(!diff.is_safe(), "50% jitter must regress something");
        for r in diff.regressions() {
            assert_eq!(r.change.to_string(), "REGRESSED");
            if let Some(d) = r.delta_ns() {
                assert!(d >= 0, "{}: WCRT cannot shrink with jitter", r.message);
            }
        }
    }

    #[test]
    fn detects_fixes_and_membership_changes() {
        // Lossy baseline, repaired by slowing the overloading stream.
        let mut lossy = net();
        lossy.messages_mut()[0].activation =
            carta_core::event_model::EventModel::periodic(Time::from_ms(2));
        let before = Scenario::worst_case().analyze(&lossy).expect("valid");
        assert!(before.missed_count() > 0);

        let mut repaired = net();
        repaired.messages_mut()[5].name = "renamed".into();
        let after = Scenario::worst_case().analyze(&repaired).expect("valid");
        let diff = diff_reports(&before, &after);
        assert!(!diff.fixes().is_empty());
        assert!(diff.is_safe());
        assert_eq!(diff.removed, vec!["m5".to_string()]);
        assert_eq!(diff.added, vec!["renamed".to_string()]);
    }
}
