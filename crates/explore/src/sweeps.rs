//! Evaluator-centric sweep API.
//!
//! Every exploration in this crate is a family of system variants
//! pushed through the same analysis, so the natural home for the
//! entry points is the [`Evaluator`]: it owns the memo cache and the
//! worker pool that make repeated and overlapping sweeps cheap. The
//! [`Sweeps`] extension trait hangs each exploration off the
//! evaluator as a method:
//!
//! ```
//! use carta_explore::prelude::*;
//! use carta_engine::prelude::Evaluator;
//!
//! # fn net() -> carta_can::network::CanNetwork {
//! #     let mut net = carta_can::network::CanNetwork::new(500_000);
//! #     let a = net.add_node(carta_can::network::Node::new(
//! #         "A",
//! #         carta_can::controller::ControllerType::FullCan,
//! #     ));
//! #     net.add_message(carta_can::message::CanMessage::new(
//! #         "m0",
//! #         carta_can::message::CanId::standard(0x100).unwrap(),
//! #         carta_can::frame::Dlc::new(8),
//! #         carta_core::time::Time::from_ms(10),
//! #         carta_core::time::Time::ZERO,
//! #         a,
//! #     ));
//! #     net
//! # }
//! let eval = Evaluator::default();
//! let curve = eval
//!     .loss_vs_jitter(&net(), &Scenario::worst_case(), &paper_jitter_grid())
//!     .expect("valid model");
//! assert_eq!(curve.points.len(), 13);
//! ```
//!
//! This trait is the only entry point to the sweeps (the free
//! functions that predated it have been removed); construct one
//! [`Evaluator`] (see
//! [`Evaluator::builder`](carta_engine::evaluator::EvaluatorBuilder))
//! and call these methods on it.

use crate::buffers::{required_rx_depth_impl, required_tx_depths_impl, TxBufferNeed};
use crate::extensibility::{max_additional_ecus_impl, EcuTemplate};
use crate::loss::{loss_vs_jitter_impl, prob_loss_vs_jitter_impl, LossCurve, ProbLossCurve};
use crate::network_choice::{compare_bit_rates_impl, BitRateOption};
use crate::scenario::Scenario;
use crate::sensitivity::{
    max_schedulable_jitter_impl, response_vs_error_rate_impl, response_vs_jitter_impl,
    SensitivitySeries,
};
use carta_can::frame::StuffingMode;
use carta_can::network::CanNetwork;
use carta_core::analysis::AnalysisError;
use carta_core::time::Time;
use carta_engine::prelude::Evaluator;

/// Exploration sweeps as [`Evaluator`] methods.
///
/// Implemented for [`Evaluator`] only; the trait exists so the sweep
/// entry points can live in this crate while the evaluator lives in
/// `carta-engine`. Bring it into scope (directly or via the prelude)
/// and call the sweeps on whichever evaluator — default, or tuned via
/// [`Evaluator::builder`] — the application already holds.
pub trait Sweeps {
    /// Loss curve over jitter ratios — the paper's Figure 5. See
    /// [`LossCurve`].
    ///
    /// # Errors
    ///
    /// Propagates [`AnalysisError`] from the bus analysis (per-message
    /// overload is *not* an error; overloaded messages count as lost).
    fn loss_vs_jitter(
        &self,
        net: &CanNetwork,
        scenario: &Scenario,
        ratios: &[f64],
    ) -> Result<LossCurve, AnalysisError>;

    /// Probabilistic loss curve over jitter ratios: each message
    /// contributes its convolution-derived deadline-miss probability
    /// instead of a binary verdict, so the curve sits inside the
    /// deterministic Figure 5 envelope. See [`ProbLossCurve`].
    ///
    /// # Errors
    ///
    /// Propagates [`AnalysisError`] from the bus analysis (per-message
    /// overload is *not* an error; overloaded messages count as lost
    /// with probability one).
    fn prob_loss_vs_jitter(
        &self,
        net: &CanNetwork,
        scenario: &Scenario,
        ratios: &[f64],
    ) -> Result<ProbLossCurve, AnalysisError>;

    /// Per-message worst-case response times over a grid of uniform
    /// jitter ratios — the paper's Figure 4.
    ///
    /// `only` restricts the reported series to the named messages
    /// (all messages when `None`); the analysis always covers the
    /// whole bus.
    ///
    /// # Errors
    ///
    /// Propagates [`AnalysisError`] from the bus analysis, including
    /// unknown names in `only`.
    fn response_vs_jitter(
        &self,
        net: &CanNetwork,
        scenario: &Scenario,
        ratios: &[f64],
        only: Option<&[&str]>,
    ) -> Result<Vec<SensitivitySeries>, AnalysisError>;

    /// Per-message worst-case response times over a grid of error
    /// inter-arrival times (smaller interval = harsher environment).
    ///
    /// # Errors
    ///
    /// Propagates [`AnalysisError`] from the bus analysis, including
    /// unknown names in `only`.
    fn response_vs_error_rate(
        &self,
        net: &CanNetwork,
        stuffing: StuffingMode,
        intervals: &[Time],
        only: Option<&[&str]>,
    ) -> Result<Vec<SensitivitySeries>, AnalysisError>;

    /// Largest uniform jitter ratio (within `0.0..=max_ratio`, to
    /// `tolerance`) under which every message still meets its
    /// deadline; `None` when the bus already fails at zero jitter.
    ///
    /// # Errors
    ///
    /// Propagates [`AnalysisError`] from the bus analysis.
    fn max_schedulable_jitter(
        &self,
        net: &CanNetwork,
        scenario: &Scenario,
        max_ratio: f64,
        tolerance: f64,
    ) -> Result<Option<f64>, AnalysisError>;

    /// Per-message sender-queue depths under `scenario`. See
    /// [`TxBufferNeed`].
    ///
    /// # Errors
    ///
    /// Propagates [`AnalysisError`] from the bus analysis.
    fn required_tx_depths(
        &self,
        net: &CanNetwork,
        scenario: &Scenario,
    ) -> Result<Vec<TxBufferNeed>, AnalysisError>;

    /// Receiver/gateway queue depth for `node` drained every
    /// `drain_period`; `None` when a consumed stream is overloaded.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::InvalidModel`] for an out-of-range
    /// node index and propagates errors from the bus analysis.
    fn required_rx_depth(
        &self,
        net: &CanNetwork,
        scenario: &Scenario,
        node: usize,
        drain_period: Time,
    ) -> Result<Option<u64>, AnalysisError>;

    /// Largest number of template ECUs (up to `cap`) that can be added
    /// while every message still meets its deadline.
    ///
    /// # Errors
    ///
    /// Propagates [`AnalysisError`] from the analysis or from
    /// identifier exhaustion.
    fn max_additional_ecus(
        &self,
        net: &CanNetwork,
        scenario: &Scenario,
        template: &EcuTemplate,
        cap: usize,
    ) -> Result<usize, AnalysisError>;

    /// Decision table over candidate bus speeds: load, schedulability,
    /// jitter slack and ECU headroom per candidate. See
    /// [`BitRateOption`].
    ///
    /// # Errors
    ///
    /// Propagates [`AnalysisError`] from the underlying analyses.
    fn compare_bit_rates(
        &self,
        net: &CanNetwork,
        scenario: &Scenario,
        candidates: &[u64],
        template: &EcuTemplate,
    ) -> Result<Vec<BitRateOption>, AnalysisError>;
}

impl Sweeps for Evaluator {
    fn loss_vs_jitter(
        &self,
        net: &CanNetwork,
        scenario: &Scenario,
        ratios: &[f64],
    ) -> Result<LossCurve, AnalysisError> {
        loss_vs_jitter_impl(self, net, scenario, ratios)
    }

    fn prob_loss_vs_jitter(
        &self,
        net: &CanNetwork,
        scenario: &Scenario,
        ratios: &[f64],
    ) -> Result<ProbLossCurve, AnalysisError> {
        prob_loss_vs_jitter_impl(self, net, scenario, ratios)
    }

    fn response_vs_jitter(
        &self,
        net: &CanNetwork,
        scenario: &Scenario,
        ratios: &[f64],
        only: Option<&[&str]>,
    ) -> Result<Vec<SensitivitySeries>, AnalysisError> {
        response_vs_jitter_impl(self, net, scenario, ratios, only)
    }

    fn response_vs_error_rate(
        &self,
        net: &CanNetwork,
        stuffing: StuffingMode,
        intervals: &[Time],
        only: Option<&[&str]>,
    ) -> Result<Vec<SensitivitySeries>, AnalysisError> {
        response_vs_error_rate_impl(self, net, stuffing, intervals, only)
    }

    fn max_schedulable_jitter(
        &self,
        net: &CanNetwork,
        scenario: &Scenario,
        max_ratio: f64,
        tolerance: f64,
    ) -> Result<Option<f64>, AnalysisError> {
        max_schedulable_jitter_impl(self, net, scenario, max_ratio, tolerance)
    }

    fn required_tx_depths(
        &self,
        net: &CanNetwork,
        scenario: &Scenario,
    ) -> Result<Vec<TxBufferNeed>, AnalysisError> {
        required_tx_depths_impl(self, net, scenario)
    }

    fn required_rx_depth(
        &self,
        net: &CanNetwork,
        scenario: &Scenario,
        node: usize,
        drain_period: Time,
    ) -> Result<Option<u64>, AnalysisError> {
        required_rx_depth_impl(self, net, scenario, node, drain_period)
    }

    fn max_additional_ecus(
        &self,
        net: &CanNetwork,
        scenario: &Scenario,
        template: &EcuTemplate,
        cap: usize,
    ) -> Result<usize, AnalysisError> {
        max_additional_ecus_impl(self, net, scenario, template, cap)
    }

    fn compare_bit_rates(
        &self,
        net: &CanNetwork,
        scenario: &Scenario,
        candidates: &[u64],
        template: &EcuTemplate,
    ) -> Result<Vec<BitRateOption>, AnalysisError> {
        compare_bit_rates_impl(self, net, scenario, candidates, template)
    }
}

/// Bumps the global sweep counters (`sweep.runs`, `sweep.points`) when
/// metrics collection is enabled. Called once per completed sweep by
/// the `*_impl` bodies.
pub(crate) fn record_sweep_points(points: usize) {
    if carta_obs::metrics::enabled() {
        let registry = carta_obs::metrics::global();
        registry.counter("sweep.runs").inc();
        registry.counter("sweep.points").add(points as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carta_can::controller::ControllerType;
    use carta_can::frame::Dlc;
    use carta_can::message::{CanId, CanMessage};
    use carta_can::network::Node;

    fn net() -> CanNetwork {
        let mut net = CanNetwork::new(500_000);
        let a = net.add_node(Node::new("A", ControllerType::FullCan));
        for (k, period) in [10u64, 20, 50].into_iter().enumerate() {
            net.add_message(CanMessage::new(
                format!("m{k}"),
                CanId::standard(0x100 + 16 * k as u32).expect("valid"),
                Dlc::new(8),
                Time::from_ms(period),
                Time::ZERO,
                a,
            ));
        }
        net
    }

    #[test]
    fn trait_methods_delegate_to_the_shared_impl() {
        let net = net();
        let scenario = Scenario::worst_case();
        let grid = [0.0, 0.1, 0.2];
        let eval = Evaluator::default();
        let via_trait = eval
            .loss_vs_jitter(&net, &scenario, &grid)
            .expect("valid model");
        let via_impl = loss_vs_jitter_impl(&eval, &net, &scenario, &grid).expect("valid model");
        assert_eq!(via_trait, via_impl);
    }

    #[test]
    fn sweep_counters_accumulate_when_enabled() {
        let was = carta_obs::metrics::enabled();
        carta_obs::metrics::set_enabled(true);
        let registry = carta_obs::metrics::global();
        let runs_before = registry.counter("sweep.runs").get();
        let points_before = registry.counter("sweep.points").get();
        Evaluator::default()
            .loss_vs_jitter(&net(), &Scenario::best_case(), &[0.0, 0.1])
            .expect("valid model");
        assert_eq!(registry.counter("sweep.runs").get(), runs_before + 1);
        assert_eq!(registry.counter("sweep.points").get(), points_before + 2);
        carta_obs::metrics::set_enabled(was);
    }
}
