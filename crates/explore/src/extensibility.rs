//! Extensibility headroom — the paper's integration questions "Can more
//! ECUs (and how many) be connected without overloading the bus? How
//! about diagnosis and ECU flashing?" (Sec. 2, Fig. 3).

use crate::scenario::Scenario;
use carta_can::frame::Dlc;
use carta_can::message::{CanId, CanMessage, DeadlinePolicy};
use carta_can::network::{CanNetwork, Node};
use carta_core::analysis::AnalysisError;
use carta_core::event_model::EventModel;
use carta_core::time::Time;
use carta_engine::prelude::{BaseSystem, Evaluator, SystemVariant};

/// Template for the traffic a prospective additional ECU would add.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EcuTemplate {
    /// Messages the new ECU sends.
    pub messages_per_ecu: usize,
    /// Their common period.
    pub period: Time,
    /// Payload size.
    pub dlc: u8,
    /// Raw identifier of the first added message; subsequent messages
    /// and ECUs count upward from here (keep above the existing ID
    /// range so existing traffic retains priority).
    pub base_id: u32,
}

impl Default for EcuTemplate {
    fn default() -> Self {
        EcuTemplate {
            messages_per_ecu: 6,
            period: Time::from_ms(100),
            dlc: 8,
            base_id: 0x500,
        }
    }
}

/// Returns a copy of the network with `count` template ECUs attached.
///
/// # Errors
///
/// Returns [`AnalysisError::InvalidModel`] if the identifier range
/// overflows the standard 11-bit space.
pub fn with_additional_ecus(
    net: &CanNetwork,
    template: &EcuTemplate,
    count: usize,
) -> Result<CanNetwork, AnalysisError> {
    let mut net = net.clone();
    for e in 0..count {
        let node = net.add_node(Node::new(format!("EXT{e}"), Default::default()));
        for k in 0..template.messages_per_ecu {
            let raw = template.base_id + (e * template.messages_per_ecu + k) as u32;
            let id = CanId::standard(raw).map_err(|err| {
                AnalysisError::InvalidModel(format!("extension identifier: {err}"))
            })?;
            net.add_message(CanMessage::new(
                format!("ext{e}_m{k}"),
                id,
                Dlc::new(template.dlc),
                template.period,
                Time::ZERO,
                node,
            ));
        }
    }
    Ok(net)
}

/// Binary-searches the largest number of template ECUs that can be
/// added while every message (old and new) still meets its deadline
/// under `scenario`.
///
/// Shared body of [`crate::sweeps::Sweeps::max_additional_ecus`]. Each
/// probe is a structurally different network (extra ECUs), so the win
/// of a shared evaluator is memoization across repeated searches —
/// e.g. the same count probed for several scenarios or templates
/// sharing a prefix.
pub(crate) fn max_additional_ecus_impl(
    eval: &Evaluator,
    net: &CanNetwork,
    scenario: &Scenario,
    template: &EcuTemplate,
    cap: usize,
) -> Result<usize, AnalysisError> {
    let _span = carta_obs::span!("sweep.ecu_headroom", cap = cap);
    let fits = |count: usize| -> Result<bool, AnalysisError> {
        let extended = with_additional_ecus(net, template, count)?;
        let v = SystemVariant::new(BaseSystem::new(extended), scenario.clone());
        Ok(eval.evaluate(&v)?.schedulable())
    };
    if !fits(0)? {
        return Ok(0);
    }
    let (mut lo, mut hi) = (0usize, cap);
    if fits(cap)? {
        return Ok(cap);
    }
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if fits(mid)? {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(lo)
}

/// Adds a diagnosis/flashing stream: a sporadic, low-priority,
/// full-length data stream hammering the bus every `min_gap` — the
/// "flashing & diagnosis" influence of the paper's Figure 3.
pub fn with_diagnostic_stream(net: &CanNetwork, min_gap: Time) -> CanNetwork {
    let mut net = net.clone();
    let node = net.add_node(Node::new("TESTER", Default::default()));
    // 0x7E0 is a valid 11-bit identifier by construction.
    #[allow(clippy::expect_used)]
    let id = CanId::standard(0x7E0).expect("fixed diagnostic id is valid");
    let msg = CanMessage {
        name: "diag_flash".into(),
        id,
        dlc: Dlc::new(8),
        activation: EventModel::sporadic(min_gap),
        deadline: DeadlinePolicy::Period,
        sender: node,
    };
    net.add_message(msg);
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use carta_can::controller::ControllerType;

    fn base_net() -> CanNetwork {
        let mut net = CanNetwork::new(500_000);
        let a = net.add_node(Node::new("A", ControllerType::FullCan));
        for (k, period) in [10u64, 20, 50].into_iter().enumerate() {
            net.add_message(CanMessage::new(
                format!("m{k}"),
                CanId::standard(0x100 + 16 * k as u32).expect("valid"),
                Dlc::new(8),
                Time::from_ms(period),
                Time::ZERO,
                a,
            ));
        }
        net
    }

    #[test]
    fn extension_adds_nodes_and_messages() {
        let net = with_additional_ecus(&base_net(), &EcuTemplate::default(), 2).expect("fits");
        assert_eq!(net.nodes().len(), 3);
        assert_eq!(net.messages().len(), 3 + 12);
        net.validate().expect("valid");
    }

    #[test]
    fn headroom_found_and_bounded() {
        let net = base_net();
        // Lightly loaded bus: some extensions fit, but a 5 ms flood of
        // 6 messages each does not fit forever.
        let template = EcuTemplate {
            period: Time::from_ms(5),
            ..EcuTemplate::default()
        };
        use crate::sweeps::Sweeps;
        let n = Evaluator::default()
            .max_additional_ecus(&net, &Scenario::worst_case(), &template, 64)
            .expect("valid");
        assert!(n >= 1, "at least one ECU should fit, got {n}");
        assert!(n < 64, "cannot fit unboundedly many");
        // One more than the maximum must break.
        let broken = with_additional_ecus(&net, &template, n + 1).expect("constructible");
        assert!(!Scenario::worst_case()
            .analyze(&broken)
            .expect("valid")
            .schedulable());
    }

    #[test]
    fn id_space_exhaustion_reported() {
        let template = EcuTemplate {
            base_id: 0x7FE,
            ..EcuTemplate::default()
        };
        assert!(matches!(
            with_additional_ecus(&base_net(), &template, 1),
            Err(AnalysisError::InvalidModel(_))
        ));
    }

    #[test]
    fn diagnostic_stream_degrades_but_low_priority() {
        let net = base_net();
        let before = Scenario::worst_case().analyze(&net).expect("valid");
        let with_diag = with_diagnostic_stream(&net, Time::from_ms(2));
        let after = Scenario::worst_case().analyze(&with_diag).expect("valid");
        // Existing messages only gain (at most) one frame of blocking;
        // they keep their deadlines on this light bus.
        for m in &before.messages {
            let a = after.by_name(&m.name).expect("still present");
            assert!(a.outcome.wcrt() >= m.outcome.wcrt());
            assert!(!a.misses_deadline());
        }
    }
}
