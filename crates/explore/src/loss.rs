//! Message-loss analysis — the paper's Figure 5.
//!
//! For each assumed jitter ratio, the bus is analyzed under a
//! [`Scenario`] and the fraction of messages that can miss their
//! deadline (and thus be overwritten in the sender's buffer — "lost")
//! is recorded.

use crate::scenario::Scenario;
use carta_can::network::CanNetwork;
use carta_core::analysis::AnalysisError;
use carta_engine::prelude::{BaseSystem, Evaluator, SystemVariant};

/// One point of a loss curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossPoint {
    /// Assumed jitter as a fraction of each message's period.
    pub jitter_ratio: f64,
    /// Messages that can miss their deadline.
    pub missed: usize,
    /// Total messages on the bus.
    pub total: usize,
    /// `true` when this point's analysis failed outright (e.g. a
    /// contained panic). Failed points are classified as fully lost —
    /// `missed == total` — rather than silently dropped, preserving
    /// the Figure 5 semantics that an unanalyzable configuration is an
    /// unsafe one.
    pub failed: bool,
}

impl LossPoint {
    /// Fraction of messages lost (the paper's y-axis).
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.missed as f64 / self.total as f64
        }
    }
}

/// A loss curve over jitter ratios, under one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct LossCurve {
    /// Scenario name.
    pub scenario: String,
    /// Curve points, in the order of the requested ratios.
    pub points: Vec<LossPoint>,
}

impl LossCurve {
    /// The largest jitter ratio at which no message is lost — the
    /// paper's optimized system achieves 0.25 here.
    pub fn zero_loss_up_to(&self) -> Option<f64> {
        let mut best = None;
        for p in &self.points {
            if p.missed == 0 {
                best = Some(best.map_or(p.jitter_ratio, |b: f64| b.max(p.jitter_ratio)));
            } else {
                break;
            }
        }
        best
    }

    /// The loss fraction at the given ratio, if sampled.
    pub fn fraction_at(&self, ratio: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| (p.jitter_ratio - ratio).abs() < 1e-9)
            .map(LossPoint::fraction)
    }
}

/// Shared body of [`crate::sweeps::Sweeps::loss_vs_jitter`]: the whole
/// ratio grid is one batch submission, so points are analyzed in
/// parallel and repeated grids (e.g. nominal vs. optimized system on
/// the same axis) hit the evaluator's cache.
pub(crate) fn loss_vs_jitter_impl(
    eval: &Evaluator,
    net: &CanNetwork,
    scenario: &Scenario,
    ratios: &[f64],
) -> Result<LossCurve, AnalysisError> {
    let _span = carta_obs::span!("sweep.loss", points = ratios.len());
    let base = BaseSystem::new(net.clone());
    let variants: Vec<SystemVariant> = ratios
        .iter()
        .map(|&ratio| SystemVariant::new(base.clone(), scenario.clone()).with_jitter_ratio(ratio))
        .collect();
    let results = eval.evaluate_batch(&variants);
    // A uniformly failing grid means the *base* model is broken: that
    // is a caller error, not a per-point classification.
    if let Some(Err(err)) = results.first() {
        if results.iter().all(|r| r.is_err()) {
            return Err(err.clone());
        }
    }
    let total = net.messages().len();
    let mut points = Vec::with_capacity(ratios.len());
    for (&ratio, result) in ratios.iter().zip(results) {
        let point = match result {
            Ok(report) => LossPoint {
                jitter_ratio: ratio,
                missed: report.missed_count(),
                total: report.messages.len(),
                failed: false,
            },
            Err(err) => {
                // Classify, don't drop: a point whose analysis died is
                // reported as fully lost so the curve stays aligned
                // with the requested grid.
                carta_obs::event!("sweep.point.failed", ratio = ratio, error = err);
                LossPoint {
                    jitter_ratio: ratio,
                    missed: total,
                    total,
                    failed: true,
                }
            }
        };
        carta_obs::event!(
            "sweep.point",
            ratio = ratio,
            missed = point.missed,
            total = point.total
        );
        points.push(point);
    }
    crate::sweeps::record_sweep_points(ratios.len());
    Ok(LossCurve {
        scenario: scenario.name.clone(),
        points,
    })
}

/// One point of a probabilistic loss curve: instead of the binary
/// lost/safe verdict of [`LossPoint`], each message contributes its
/// deadline-miss *probability* from the convolved response-time
/// distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbLossPoint {
    /// Assumed jitter as a fraction of each message's period.
    pub jitter_ratio: f64,
    /// Sum of per-message deadline-miss probabilities — the expected
    /// number of lost messages at this ratio.
    pub expected_missed: f64,
    /// Messages whose miss probability is ≈ 1 (lost for certain); this
    /// matches the deterministic Figure 5 "worst" envelope.
    pub certain_missed: usize,
    /// Messages with any non-negligible miss probability; this is the
    /// pessimistic edge of the confidence band.
    pub possible_missed: usize,
    /// Total messages on the bus.
    pub total: usize,
    /// `true` when this point's analysis failed outright; failed
    /// points are classified as fully lost, like [`LossPoint`].
    pub failed: bool,
}

impl ProbLossPoint {
    /// Expected fraction of messages lost (the probabilistic y-axis).
    pub fn expected_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.expected_missed / self.total as f64
        }
    }
}

/// A probabilistic loss curve over jitter ratios, under one scenario.
///
/// The deterministic [`LossCurve`] of the same scenario brackets this
/// curve: `certain_missed` ≤ `expected_missed` ≤ `possible_missed` ≤
/// the deterministic loss count at every ratio (a message the analysis
/// proves schedulable carries zero miss probability by construction).
#[derive(Debug, Clone, PartialEq)]
pub struct ProbLossCurve {
    /// Scenario name.
    pub scenario: String,
    /// Curve points, in the order of the requested ratios.
    pub points: Vec<ProbLossPoint>,
}

impl ProbLossCurve {
    /// The largest jitter ratio (scanning from the left) at which no
    /// message carries any miss probability — the probabilistic
    /// sharpening of [`LossCurve::zero_loss_up_to`].
    pub fn zero_risk_up_to(&self) -> Option<f64> {
        let mut best = None;
        for p in &self.points {
            if p.possible_missed == 0 && !p.failed {
                best = Some(best.map_or(p.jitter_ratio, |b: f64| b.max(p.jitter_ratio)));
            } else {
                break;
            }
        }
        best
    }

    /// The expected loss fraction at the given ratio, if sampled.
    pub fn expected_fraction_at(&self, ratio: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| (p.jitter_ratio - ratio).abs() < 1e-9)
            .map(ProbLossPoint::expected_fraction)
    }
}

/// Shared body of [`crate::sweeps::Sweeps::prob_loss_vs_jitter`]. The
/// deterministic halves of every point (error-free and full analyses)
/// are warmed through one parallel batch; the convolutions themselves
/// then run off the hot cache.
pub(crate) fn prob_loss_vs_jitter_impl(
    eval: &Evaluator,
    net: &CanNetwork,
    scenario: &Scenario,
    ratios: &[f64],
) -> Result<ProbLossCurve, AnalysisError> {
    let _span = carta_obs::span!("sweep.prob_loss", points = ratios.len());
    let base = BaseSystem::new(net.clone());
    let variants: Vec<SystemVariant> = ratios
        .iter()
        .map(|&ratio| SystemVariant::new(base.clone(), scenario.clone()).with_jitter_ratio(ratio))
        .collect();
    // Warm both deterministic legs of every point in parallel before
    // the (sequential, cheap) convolution pass.
    let warm: Vec<SystemVariant> = variants
        .iter()
        .flat_map(|v| {
            [
                v.clone(),
                v.clone()
                    .with_errors(carta_engine::scenario::ErrorSpec::None),
            ]
        })
        .collect();
    let _ = eval.evaluate_batch(&warm);
    let results: Vec<_> = variants.iter().map(|v| eval.evaluate_prob(v)).collect();
    if let Some(Err(err)) = results.first() {
        if results.iter().all(|r| r.is_err()) {
            return Err(err.clone());
        }
    }
    let total = net.messages().len();
    let mut points = Vec::with_capacity(ratios.len());
    for (&ratio, result) in ratios.iter().zip(results) {
        let point = match result {
            Ok(report) => ProbLossPoint {
                jitter_ratio: ratio,
                expected_missed: report.expected_missed(),
                certain_missed: report.certain_missed(),
                possible_missed: report.possible_missed(),
                total: report.messages.len(),
                failed: false,
            },
            Err(err) => {
                carta_obs::event!("sweep.point.failed", ratio = ratio, error = err);
                ProbLossPoint {
                    jitter_ratio: ratio,
                    expected_missed: total as f64,
                    certain_missed: total,
                    possible_missed: total,
                    total,
                    failed: true,
                }
            }
        };
        carta_obs::event!(
            "sweep.point",
            ratio = ratio,
            expected = point.expected_missed,
            total = point.total
        );
        points.push(point);
    }
    crate::sweeps::record_sweep_points(ratios.len());
    Ok(ProbLossCurve {
        scenario: scenario.name.clone(),
        points,
    })
}

/// The jitter grid of the paper's Figures 4 and 5: 0 % to 60 % in 5 %
/// steps.
pub fn paper_jitter_grid() -> Vec<f64> {
    (0..=12).map(|i| i as f64 * 0.05).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use carta_can::controller::ControllerType;
    use carta_can::frame::Dlc;
    use carta_can::message::{CanId, CanMessage};
    use carta_can::network::Node;
    use carta_core::time::Time;

    /// A moderately loaded 8-message bus where high jitter causes loss.
    fn loaded_net() -> CanNetwork {
        let mut net = CanNetwork::new(125_000);
        let a = net.add_node(Node::new("A", ControllerType::FullCan));
        let periods = [5u64, 5, 10, 10, 20, 20, 50, 50];
        for (k, period) in periods.into_iter().enumerate() {
            net.add_message(CanMessage::new(
                format!("m{k}"),
                CanId::standard(0x100 + 16 * k as u32).expect("valid"),
                Dlc::new(8),
                Time::from_ms(period),
                Time::ZERO,
                a,
            ));
        }
        net
    }

    #[test]
    fn grid_matches_paper_axis() {
        let grid = paper_jitter_grid();
        assert_eq!(grid.len(), 13);
        assert_eq!(grid[0], 0.0);
        assert!((grid[12] - 0.60).abs() < 1e-12);
        assert!((grid[5] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn loss_curve_monotone_and_worst_dominates_best() {
        use crate::sweeps::Sweeps;
        let net = loaded_net();
        let grid = paper_jitter_grid();
        let eval = Evaluator::default();
        let best = eval
            .loss_vs_jitter(&net, &Scenario::best_case(), &grid)
            .expect("valid");
        let worst = eval
            .loss_vs_jitter(&net, &Scenario::worst_case(), &grid)
            .expect("valid");
        for w in best.points.windows(2) {
            assert!(
                w[1].missed >= w[0].missed,
                "best-case curve must be monotone"
            );
        }
        for w in worst.points.windows(2) {
            assert!(
                w[1].missed >= w[0].missed,
                "worst-case curve must be monotone"
            );
        }
        for (b, w) in best.points.iter().zip(&worst.points) {
            assert!(w.missed >= b.missed, "worst case dominates at every ratio");
        }
        // No loss at zero jitter in the best case (sanity of the net).
        assert_eq!(best.points[0].missed, 0);
    }

    #[test]
    fn prob_curve_sits_inside_the_deterministic_envelope() {
        use crate::sweeps::Sweeps;
        let net = loaded_net();
        let grid = paper_jitter_grid();
        let eval = Evaluator::default();
        let det = eval
            .loss_vs_jitter(&net, &Scenario::worst_case(), &grid)
            .expect("valid");
        let prob = eval
            .prob_loss_vs_jitter(&net, &Scenario::worst_case(), &grid)
            .expect("valid");
        assert_eq!(prob.points.len(), grid.len());
        for (d, p) in det.points.iter().zip(&prob.points) {
            assert_eq!(p.total, d.total);
            assert!(!p.failed);
            assert!(p.certain_missed <= p.possible_missed);
            assert!(
                p.possible_missed <= d.missed,
                "a deterministically schedulable message must carry zero miss probability \
                 (ratio {}: {} possible vs {} deterministic)",
                p.jitter_ratio,
                p.possible_missed,
                d.missed
            );
            assert!(p.expected_missed >= 0.0);
            assert!(
                p.expected_missed <= d.missed as f64 + 1e-9,
                "expected losses cannot exceed the deterministic count"
            );
            assert!(p.expected_missed >= p.certain_missed as f64 - 1e-9);
        }
        // The risk-free prefix can only extend past the deterministic
        // zero-loss prefix, never shrink it.
        if let Some(z) = prob.zero_risk_up_to() {
            assert!(z >= det.zero_loss_up_to().unwrap_or(0.0) - 1e-9);
        }
        // And the probabilistic sweep hits the memo cache on repeat.
        let again = eval
            .prob_loss_vs_jitter(&net, &Scenario::worst_case(), &grid)
            .expect("valid");
        assert_eq!(again, prob, "prob sweeps are deterministic and cached");
    }

    #[test]
    fn failed_points_are_classified_not_dropped() {
        use crate::sweeps::Sweeps;
        use carta_engine::prelude::FaultPlan;
        let net = loaded_net();
        let grid = [0.0, 0.1, 0.2, 0.3];
        let clean = Evaluator::builder()
            .jobs(1)
            .build()
            .loss_vs_jitter(&net, &Scenario::worst_case(), &grid)
            .expect("valid");
        let faulty = Evaluator::builder()
            .jobs(1)
            .faults(FaultPlan {
                panic_at: Some(2),
                ..FaultPlan::default()
            })
            .build();
        let curve = faulty
            .loss_vs_jitter(&net, &Scenario::worst_case(), &grid)
            .expect("isolated failure must not abort the sweep");
        assert_eq!(curve.points.len(), grid.len(), "grid stays aligned");
        assert!(curve.points[2].failed);
        assert_eq!(curve.points[2].missed, curve.points[2].total);
        assert_eq!(curve.points[2].fraction(), 1.0);
        for i in [0, 1, 3] {
            assert_eq!(curve.points[i], clean.points[i], "point {i} untouched");
        }
        // A grid where *every* point fails reports the error instead.
        let broken = Evaluator::builder()
            .jobs(1)
            .faults(FaultPlan {
                invalid_at: Some(0),
                ..FaultPlan::default()
            })
            .build();
        assert!(broken
            .loss_vs_jitter(&net, &Scenario::worst_case(), &[0.0])
            .is_err());
    }

    #[test]
    fn zero_loss_prefix_detection() {
        let curve = LossCurve {
            scenario: "x".into(),
            points: vec![
                LossPoint {
                    jitter_ratio: 0.0,
                    missed: 0,
                    total: 10,
                    failed: false,
                },
                LossPoint {
                    jitter_ratio: 0.1,
                    missed: 0,
                    total: 10,
                    failed: false,
                },
                LossPoint {
                    jitter_ratio: 0.2,
                    missed: 2,
                    total: 10,
                    failed: false,
                },
                LossPoint {
                    jitter_ratio: 0.3,
                    missed: 0,
                    total: 10,
                    failed: false,
                }, // after a loss: ignored
            ],
        };
        assert_eq!(curve.zero_loss_up_to(), Some(0.1));
        assert_eq!(curve.fraction_at(0.2), Some(0.2));
        assert_eq!(curve.fraction_at(0.15), None);
        let empty = LossCurve {
            scenario: "e".into(),
            points: vec![],
        };
        assert_eq!(empty.zero_loss_up_to(), None);
    }

    #[test]
    fn loss_point_fraction() {
        let p = LossPoint {
            jitter_ratio: 0.1,
            missed: 3,
            total: 12,
            failed: false,
        };
        assert!((p.fraction() - 0.25).abs() < 1e-12);
        let z = LossPoint {
            jitter_ratio: 0.1,
            missed: 0,
            total: 0,
            failed: false,
        };
        assert_eq!(z.fraction(), 0.0);
    }
}
