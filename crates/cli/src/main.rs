//! `carta` — the command-line front end of the carta workspace.
//!
//! See `carta help` (or [`commands::help_text`]) for usage.

mod args;
mod commands;
mod obs;
mod render;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match args::ParsedArgs::parse(argv) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match commands::run(&parsed) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
