//! `carta` — the command-line front end of the carta workspace.
//!
//! See `carta help` (or [`carta_cli::commands::help_text`]) for usage.

use carta_cli::{args, commands};
use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match args::ParsedArgs::parse(argv) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match commands::run(&parsed) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(commands::exit_code_for(e.as_ref()))
        }
    }
}
