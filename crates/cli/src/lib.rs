//! Library surface of the `carta` CLI so integration tests (golden
//! output pins, metrics schema) can drive [`commands::run`] in-process
//! instead of spawning binaries.
//!
//! The binary in `main.rs` is a thin wrapper: parse `argv`, call
//! [`commands::run`], print, map the error to an exit code.

pub mod args;
pub mod commands;
pub mod obs;
pub mod render;
