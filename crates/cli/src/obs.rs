//! CLI observability plumbing: the global `--metrics`,
//! `--metrics-json <path>` and `--trace [<path>]` flags, and the
//! `carta trace` replay subcommand.
//!
//! Every command runs inside an [`ObsSession`]. When any of the flags
//! is present the session switches the global metrics registry on
//! (and/or installs a JSONL span sink), snapshots the registry before
//! the command, and reports the **delta** afterwards — so the numbers
//! describe this invocation, not the process lifetime.
//!
//! The `--metrics-json` document is the shared `carta.metrics.v1`
//! schema built by [`carta_obs::report`] (the server's `/v1/metrics`
//! endpoint emits the same shape).

use crate::args::{ParseArgsError, ParsedArgs};
use crate::render::Table;
use carta_obs::json::{self, Value};
use carta_obs::metrics::{self, MetricValue, MetricsSnapshot};
use carta_obs::report::{metrics_json, Derived};
use carta_obs::trace::JsonlSink;
use std::error::Error;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Where `--trace` writes when no path is given, and where
/// `carta trace` reads from by default.
pub fn default_trace_path() -> PathBuf {
    std::env::temp_dir().join("carta-last-trace.jsonl")
}

/// Observability state of one CLI invocation.
#[derive(Debug)]
pub struct ObsSession {
    print_table: bool,
    json_path: Option<PathBuf>,
    trace_path: Option<PathBuf>,
    before: MetricsSnapshot,
    start: Instant,
}

impl ObsSession {
    /// Reads the global observability flags and, when any is present,
    /// enables collection before the command runs.
    ///
    /// # Errors
    ///
    /// Returns an error for a valueless `--metrics-json` or when the
    /// trace sink file cannot be created.
    pub fn start(args: &ParsedArgs) -> Result<Self, Box<dyn Error>> {
        let print_table = args.has_flag("metrics");
        let json_path = match args.flag("metrics-json") {
            None => None,
            Some("") => {
                return Err(Box::new(ParseArgsError(
                    "--metrics-json needs a file path".into(),
                )))
            }
            Some(path) => Some(PathBuf::from(path)),
        };
        let trace_path = match args.flag("trace") {
            None => None,
            Some("") => Some(default_trace_path()),
            Some(path) => Some(PathBuf::from(path)),
        };
        if print_table || json_path.is_some() {
            metrics::set_enabled(true);
        }
        if let Some(path) = &trace_path {
            let sink = JsonlSink::create(path)
                .map_err(|e| ParseArgsError(format!("cannot create trace file: {e}")))?;
            carta_obs::trace::install(Arc::new(sink));
        }
        Ok(ObsSession {
            print_table,
            json_path,
            trace_path,
            before: metrics::global().snapshot(),
            start: Instant::now(),
        })
    }

    /// `true` when no observability flag was given (the session is a
    /// no-op and `finish` appends nothing).
    pub fn is_inert(&self) -> bool {
        !self.print_table && self.json_path.is_none() && self.trace_path.is_none()
    }

    /// Closes the session: flushes the trace sink, writes the JSON
    /// report and appends the human-readable metrics table and file
    /// notes to `out`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the JSON report.
    pub fn finish(self, command: &str, out: &mut String) -> Result<(), Box<dyn Error>> {
        if self.is_inert() {
            return Ok(());
        }
        let wall = self.start.elapsed();
        if let Some(path) = &self.trace_path {
            carta_obs::trace::uninstall();
            writeln!(
                out,
                "\ntrace written to {} (replay with `carta trace {}`)",
                path.display(),
                path.display()
            )?;
        }
        if !self.print_table && self.json_path.is_none() {
            return Ok(());
        }
        let delta = metrics::global().snapshot().delta(&self.before);
        let derived = Derived::from_delta(&delta, wall.as_secs_f64());
        if let Some(path) = &self.json_path {
            std::fs::write(
                path,
                metrics_json(command, wall.as_secs_f64(), &delta, &derived),
            )?;
            writeln!(out, "\nmetrics written to {}", path.display())?;
        }
        if self.print_table {
            out.push('\n');
            out.push_str(&metrics_table(wall.as_secs_f64(), &delta, &derived));
        }
        Ok(())
    }
}

/// Renders the human-readable `--metrics` table.
fn metrics_table(wall_s: f64, delta: &MetricsSnapshot, derived: &Derived) -> String {
    let mut table = Table::new(["metric", "value"]);
    for (name, value) in &delta.values {
        match value {
            MetricValue::Counter(v) => {
                table.row([name.clone(), v.to_string()]);
            }
            MetricValue::Gauge(v) => {
                table.row([name.clone(), format!("{v:.3}")]);
            }
            MetricValue::Histogram(h) => {
                if h.count == 0 {
                    continue;
                }
                table.row([
                    name.clone(),
                    format!(
                        "count {}  mean {:.1}  p50 {}  p99 {}  max {}",
                        h.count,
                        h.mean(),
                        h.p50,
                        h.p99,
                        h.max
                    ),
                ]);
            }
        }
    }
    table.row([
        "derived.cache_hit_rate".to_string(),
        format!("{:.1} %", derived.cache_hit_rate * 100.0),
    ]);
    table.row([
        "derived.points_per_s".to_string(),
        format!("{:.1}", derived.points_per_s),
    ]);
    table.row(["wall_ms".to_string(), format!("{:.1}", wall_s * 1000.0)]);
    format!("== metrics ==\n{}", table.render())
}

/// The `carta trace` subcommand: replays a JSONL trace written by
/// `--trace` as an indented, per-thread timeline.
///
/// # Errors
///
/// Returns an error when the file is missing or a line is not valid
/// trace JSON.
pub fn cmd_trace(args: &ParsedArgs) -> Result<String, Box<dyn Error>> {
    let default = default_trace_path();
    let path: &Path = match args.positional.first() {
        Some(p) => Path::new(p),
        None => &default,
    };
    let text = std::fs::read_to_string(path).map_err(|e| {
        ParseArgsError(format!(
            "cannot read trace `{}`: {e} (write one with any command plus --trace)",
            path.display()
        ))
    })?;
    let limit = args.numeric_flag("limit", usize::MAX)?;
    let mut out = String::new();
    let mut shown = 0usize;
    let mut total = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        total += 1;
        if shown >= limit {
            continue;
        }
        let event = json::parse(line).map_err(|e| {
            ParseArgsError(format!(
                "{}:{}: invalid trace line: {e}",
                path.display(),
                lineno + 1
            ))
        })?;
        writeln!(out, "{}", render_event(&event))?;
        shown += 1;
    }
    if shown < total {
        writeln!(out, "... {} more events (raise --limit)", total - shown)?;
    }
    if total == 0 {
        writeln!(out, "trace {} is empty", path.display())?;
    }
    Ok(out)
}

/// One replayed trace line: time, thread, indentation by span depth,
/// kind marker, name and fields.
fn render_event(event: &Value) -> String {
    let kind = event.get("kind").and_then(Value::as_str).unwrap_or("?");
    let name = event.get("name").and_then(Value::as_str).unwrap_or("?");
    let depth = event.get("depth").and_then(Value::as_f64).unwrap_or(0.0) as usize;
    let thread = event.get("thread").and_then(Value::as_str).unwrap_or("?");
    let t_us = event.get("t_ns").and_then(Value::as_f64).unwrap_or(0.0) / 1000.0;
    let marker = match kind {
        "enter" => ">",
        "exit" => "<",
        _ => "*",
    };
    let mut line = format!(
        "{t_us:>12.1} us  {thread:<12} {indent}{marker} {name}",
        indent = "  ".repeat(depth.min(20)),
    );
    if let Some(fields) = event.get("fields").and_then(Value::as_obj) {
        for (k, v) in fields {
            match v {
                Value::Str(s) => {
                    let _ = write!(line, " {k}={s}");
                }
                Value::Num(n) => {
                    let _ = write!(line, " {k}={}", json::number(*n));
                }
                other => {
                    let _ = write!(line, " {k}={other:?}");
                }
            }
        }
    }
    if let Some(dur) = event.get("dur_ns").and_then(Value::as_f64) {
        let _ = write!(line, " ({:.1} us)", dur / 1000.0);
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_table_includes_derived_rows() {
        let mut delta = MetricsSnapshot {
            values: Default::default(),
        };
        delta
            .values
            .insert("engine.cache.hits".into(), MetricValue::Counter(3));
        let derived = Derived::from_delta(&delta, 2.0);
        let table = metrics_table(2.0, &delta, &derived);
        assert!(table.contains("== metrics =="), "{table}");
        assert!(table.contains("engine.cache.hits"), "{table}");
        assert!(table.contains("derived.cache_hit_rate"), "{table}");
        assert!(table.contains("wall_ms"), "{table}");
    }

    #[test]
    fn event_rendering_is_indented_by_depth() {
        let line = render_event(
            &json::parse(
                r#"{"kind":"enter","name":"rta.bus","depth":2,"thread":"main","t_ns":1500,
                    "fields":{"msgs":64}}"#,
            )
            .expect("valid"),
        );
        assert!(line.contains("    > rta.bus"), "{line}");
        assert!(line.contains("msgs=64"), "{line}");
    }
}
