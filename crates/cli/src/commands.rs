//! The `carta` subcommands, routed through the shared `carta.api.v1`
//! layer: argv is parsed into a [`Request`], the [`Handler`] runs it,
//! and [`crate::render::render_response`] turns the [`Response`] into
//! text. Every command stays a pure function from parsed arguments to
//! the text it prints, so the full surface is unit testable without
//! spawning processes.

use crate::args::{ParseArgsError, ParsedArgs};
use crate::obs::ObsSession;
use crate::render::{render_fuzz, render_response};
use carta_api::prelude::{
    parse_backend, ApiError, ErrorCode, Handler, Model, ModelOptions, ModelSource, Request,
    Response, ScenarioSpec,
};
use carta_can::backend::BackendConfig;
use carta_engine::prelude::Parallelism;
use carta_obs::metrics::PhaseGuard;
use std::error::Error;
use std::fmt::Write as _;

type CmdResult = Result<String, Box<dyn Error>>;

/// Dispatches a parsed invocation inside an observability session
/// (the global `--metrics`, `--metrics-json` and `--trace` flags).
///
/// # Errors
///
/// Propagates I/O, parse and analysis errors as boxed errors whose
/// `Display` is the message shown to the user.
pub fn run(args: &ParsedArgs) -> CmdResult {
    let obs = ObsSession::start(args)?;
    let mut out = dispatch(args)?;
    obs.finish(&args.command, &mut out)?;
    Ok(out)
}

fn dispatch(args: &ParsedArgs) -> CmdResult {
    match args.command.as_str() {
        "help" | "--help" | "-h" => Ok(help_text()),
        "trace" => crate::obs::cmd_trace(args),
        // Fuzz owns repro-file I/O on top of the shared handler.
        "fuzz" => cmd_fuzz(args),
        _ => {
            let request = request_from(args)?;
            let handler = Handler::new(parallelism_from(args)?);
            let response = handler.handle(&request)?;
            let _phase = PhaseGuard::new("render");
            Ok(render_response(&response)?)
        }
    }
}

/// The `help` text.
pub fn help_text() -> String {
    "\
carta — compositional CAN timing analysis (SymTA/S-style)

USAGE: carta <command> [<kmatrix.csv>] [flags]

COMMANDS
  generate     emit the synthetic power-train K-Matrix CSV
                 --seed <n>
  load         bus-load (utilization) report
  analyze      worst-case response times per message
                 --scenario best|worst|sporadic:<ms>   (default worst)
                 --jitter <pct>          uniform jitter override
                 --assume-unknown <pct>  jitter for unknown messages
                 --backend can|can-fd    bus backend (default can)
                 --prob   convolution-based response-time distributions
                          and deadline-miss probabilities instead of
                          the worst/best-case bounds
  loss         message-loss curve over the 0–60 % jitter grid
                 --scenario ...
                 --prob   expected losses (sum of per-message miss
                          probabilities) with a certain/possible band
  sensitivity  response-vs-jitter classes per message
                 --message <name>        restrict to one message
  audsley      optimal (feasibility) identifier assignment
                 --scenario ... --jitter <pct>
  optimize     SPEA2 identifier optimization
                 --population <n> --generations <n> --emit-csv
  simulate     discrete-event simulation
                 --millis <n> --seed <n> --errors <ms> --gantt
  dimension    compare candidate bit rates
                 --rates <kbps,kbps,...>   (default 125,250,500,1000)
  lint         structural review of a K-Matrix
  diff         compare two matrices' analyses message by message
                 carta diff <before.csv> <after.csv> [--scenario ...]
  fuzz         randomized verification (metamorphic laws + the
               differential sim-vs-analysis oracle, shrinking failures)
                 --cases <n> --seed <n> --laws <name,name,...>
                 --backend can|can-fd    fuzz corpus backend
                 --repro <file>    replay a stored counterexample
                 --repro-dir <d>   where shrunk repros are written
                                   (default: fuzz-repros/)
  trace        replay the span trace of a previous --trace run
                 carta trace [<trace.jsonl>] [--limit <n>]

GLOBAL FLAGS
  --backend <b>        bus backend for every model-loading command:
                       can (classic, default) or can-fd (dual rate,
                       4x data phase, payloads to 64 bytes)
  --jobs <n>           worker threads for sweep/optimizer evaluation
                       (default: the CARTA_JOBS env var, else all cores)
  --metrics            append a metrics table (cache hit rate, RTA
                       iteration counts, per-phase wall times, ...)
  --metrics-json <p>   write the same metrics as JSON (schema
                       carta.metrics.v1) to <p>
  --trace [<p>]        record a span trace as JSONL (default path:
                       <tmp>/carta-last-trace.jsonl)

Use `-` as the K-Matrix path to analyze the built-in case study.
"
    .to_string()
}

/// Builds the API request for a subcommand; all file reads happen
/// here, so the handler itself never touches the filesystem.
fn request_from(args: &ParsedArgs) -> Result<Request, Box<dyn Error>> {
    Ok(match args.command.as_str() {
        "generate" => Request::Generate {
            seed: args.numeric_flag("seed", 42u64)?,
        },
        "load" => Request::Load {
            model: model_from(args)?,
        },
        "analyze" if args.has_flag("prob") => Request::ProbAnalyze {
            model: model_from(args)?,
            scenario: scenario_from(args)?,
        },
        "analyze" => Request::Analyze {
            model: model_from(args)?,
            scenario: scenario_from(args)?,
        },
        "loss" if args.has_flag("prob") => Request::ProbLoss {
            model: model_from(args)?,
            scenario: scenario_from(args)?,
        },
        "loss" => Request::Loss {
            model: model_from(args)?,
            scenario: scenario_from(args)?,
        },
        "sensitivity" => Request::Sensitivity {
            model: model_from(args)?,
            scenario: scenario_from(args)?,
            message: args.flag("message").map(str::to_string),
        },
        "audsley" => Request::Audsley {
            model: model_from(args)?,
            scenario: scenario_from(args)?,
        },
        "optimize" => Request::Optimize {
            model: model_from(args)?,
            population: args.numeric_flag("population", 60usize)?,
            generations: args.numeric_flag("generations", 40usize)?,
            emit_csv: args.has_flag("emit-csv"),
        },
        "simulate" => Request::Simulate {
            model: model_from(args)?,
            millis: args.numeric_flag("millis", 2_000u64)?,
            seed: args.numeric_flag("seed", 42u64)?,
            errors_ms: match args.flag("errors") {
                None => None,
                Some(ms) => Some(
                    ms.parse()
                        .map_err(|_| ParseArgsError(format!("invalid --errors `{ms}`")))?,
                ),
            },
            gantt: args.has_flag("gantt"),
        },
        "dimension" => Request::Dimension {
            model: model_from(args)?,
            scenario: scenario_from(args)?,
            rates: rates_from(args)?,
        },
        "lint" => Request::Lint {
            model: model_from(args)?,
        },
        "diff" => {
            let before_path = args.required_positional("two K-Matrix paths")?;
            let after_path = args
                .positional
                .get(1)
                .ok_or_else(|| ParseArgsError("diff needs two K-Matrix paths".into()))?;
            let options = options_from(args)?;
            Request::Diff {
                before: Model {
                    source: source_from(before_path)?,
                    options: options.clone(),
                },
                after: Model {
                    source: source_from(after_path)?,
                    options,
                },
                scenario: scenario_from(args)?,
            }
        }
        other => {
            return Err(Box::new(ParseArgsError(format!(
                "unknown command `{other}`; try `carta help`"
            ))))
        }
    })
}

/// Resolves a K-Matrix path into a model source: `-` is the built-in
/// case study, anything else is read as CSV here and shipped as text.
fn source_from(path: &str) -> Result<ModelSource, Box<dyn Error>> {
    if path == "-" {
        return Ok(ModelSource::CaseStudy { seed: 42 });
    }
    let text = std::fs::read_to_string(path)
        .map_err(|e| ApiError::io(format!("cannot read `{path}`: {e}")))?;
    Ok(ModelSource::Csv(text))
}

fn model_from(args: &ParsedArgs) -> Result<Model, Box<dyn Error>> {
    let path = args.required_positional("K-Matrix path (or `-`)")?;
    Ok(Model {
        source: source_from(path)?,
        options: options_from(args)?,
    })
}

fn options_from(args: &ParsedArgs) -> Result<ModelOptions, Box<dyn Error>> {
    Ok(ModelOptions {
        backend: backend_from(args)?,
        jitter_pct: pct_flag(args, "jitter")?,
        assume_unknown_pct: pct_flag(args, "assume-unknown")?,
    })
}

/// Resolves `--backend` (default classic CAN).
fn backend_from(args: &ParsedArgs) -> Result<BackendConfig, Box<dyn Error>> {
    match args.flag("backend") {
        None => Ok(BackendConfig::Can),
        Some(name) => Ok(parse_backend(name)?),
    }
}

fn pct_flag(args: &ParsedArgs, name: &str) -> Result<Option<f64>, Box<dyn Error>> {
    match args.flag(name) {
        None => Ok(None),
        Some(pct) => {
            Ok(Some(pct.parse().map_err(|_| {
                ParseArgsError(format!("invalid --{name} `{pct}`"))
            })?))
        }
    }
}

fn scenario_from(args: &ParsedArgs) -> Result<ScenarioSpec, Box<dyn Error>> {
    Ok(ScenarioSpec::parse(
        args.flag("scenario").unwrap_or("worst"),
    )?)
}

fn rates_from(args: &ParsedArgs) -> Result<Vec<u64>, Box<dyn Error>> {
    match args.flag("rates") {
        None => Ok(vec![125_000, 250_000, 500_000, 1_000_000]),
        Some(list) => list
            .split(',')
            .map(|s| {
                s.trim()
                    .parse::<u64>()
                    .map(|kbps| kbps * 1000)
                    .map_err(|_| {
                        Box::new(ParseArgsError(format!("invalid rate `{s}`"))) as Box<dyn Error>
                    })
            })
            .collect(),
    }
}

/// Resolves `--jobs` into [`Parallelism`] (flag, then `CARTA_JOBS`,
/// then all hardware threads).
fn parallelism_from(args: &ParsedArgs) -> Result<Parallelism, Box<dyn Error>> {
    let explicit = match args.flag("jobs") {
        None => None,
        Some(v) => Some(
            v.parse::<usize>()
                .map_err(|_| ParseArgsError(format!("invalid --jobs `{v}`")))?,
        ),
    };
    Ok(Parallelism::resolve(explicit))
}

/// Maps a command error to the process exit code via the shared
/// `carta.api.v1` error table; argument-parsing failures count as
/// invalid requests, anything unrecognized exits 1.
pub fn exit_code_for(err: &(dyn Error + 'static)) -> u8 {
    if let Some(api) = err.downcast_ref::<ApiError>() {
        return api.code.exit_code();
    }
    if err.downcast_ref::<ParseArgsError>().is_some() {
        return ErrorCode::RequestInvalid.exit_code();
    }
    1
}

fn unexpected(resp: &Response) -> Box<dyn Error> {
    Box::new(ApiError::internal(format!(
        "unexpected response kind `{}`",
        resp.kind()
    )))
}

fn cmd_fuzz(args: &ParsedArgs) -> CmdResult {
    let handler = Handler::new(parallelism_from(args)?);

    if let Some(path) = args.flag("repro") {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ApiError::io(format!("cannot read repro `{path}`: {e}")))?;
        let resp = handler.handle(&Request::FuzzReplay { repro_json: text })?;
        return match &resp {
            Response::FuzzReplay(r) => Ok(format!(
                "repro `{path}` ({}, seed {}) passes — the defect no longer reproduces\n",
                r.law, r.seed
            )),
            other => Err(unexpected(other)),
        };
    }

    let request = Request::Fuzz {
        cases: args.numeric_flag("cases", 64u64)?,
        seed: args.numeric_flag("seed", 2006u64)?,
        laws: args.flag("laws").map(|list| {
            list.split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect()
        }),
        backend: backend_from(args)?,
    };
    let resp = handler.handle(&request)?;
    let summary = match &resp {
        Response::Fuzz(summary) => summary,
        other => return Err(unexpected(other)),
    };
    let _phase = PhaseGuard::new("render");
    let mut out = render_fuzz(summary)?;
    if summary.report.passed() {
        return Ok(out);
    }
    let dir = std::path::Path::new(args.flag("repro-dir").unwrap_or("fuzz-repros"));
    std::fs::create_dir_all(dir)
        .map_err(|e| ApiError::io(format!("cannot create `{}`: {e}", dir.display())))?;
    for o in summary.report.violations() {
        let repro = o.repro.as_ref().expect("violations carry a repro");
        let path = dir.join(repro.file_name());
        std::fs::write(&path, repro.to_json())
            .map_err(|e| ApiError::io(format!("cannot write `{}`: {e}", path.display())))?;
        writeln!(out, "\n{}", repro.violation)?;
        writeln!(
            out,
            "  shrunk to {} message(s) in {} steps; replay with `carta fuzz --repro {}`",
            repro.network.messages().len(),
            repro.shrink_steps,
            path.display()
        )?;
    }
    Err(Box::new(ApiError::new(
        ErrorCode::FuzzViolation,
        format!("fuzz found violations\n{out}"),
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use carta_kmatrix::csv::from_csv;
    use carta_kmatrix::generator::{powertrain_kmatrix, CaseStudyConfig};

    fn run_line(line: &[&str]) -> CmdResult {
        run(&ParsedArgs::parse(line.iter().copied()).expect("parses"))
    }

    #[test]
    fn help_lists_all_commands() {
        let text = help_text();
        for cmd in [
            "generate",
            "load",
            "analyze",
            "loss",
            "sensitivity",
            "audsley",
            "optimize",
            "simulate",
            "dimension",
            "fuzz",
        ] {
            assert!(text.contains(cmd), "help misses `{cmd}`");
        }
        assert!(run_line(&["help"]).is_ok());
    }

    #[test]
    fn unknown_command_rejected() {
        let err = run_line(&["frobnicate"]).expect_err("unknown");
        assert!(err.to_string().contains("frobnicate"));
        assert_eq!(exit_code_for(err.as_ref()), 2);
    }

    #[test]
    fn generate_roundtrips_through_load() {
        let csv = run_line(&["generate", "--seed", "7"]).expect("generates");
        assert!(csv.starts_with("#kmatrix,powertrain"));
        let matrix = from_csv(&csv).expect("parses");
        assert_eq!(matrix.rows.len(), 64);
    }

    #[test]
    fn load_and_analyze_builtin() {
        let out = run_line(&["load", "-"]).expect("loads");
        assert!(out.contains("load (worst-case stuffing)"));
        assert!(out.contains("backend: can\n"), "{out}");
        let out = run_line(&["analyze", "-", "--scenario", "best"]).expect("analyzes");
        assert!(out.contains("0 of 64 messages can be lost"), "{out}");
        let out = run_line(&["analyze", "-", "--jitter", "40"]).expect("analyzes");
        assert!(out.contains("LOST"));
    }

    #[test]
    fn analyze_on_the_fd_backend_is_bounded() {
        // `--backend can` is the default spelled out.
        let classic = run_line(&["analyze", "-"]).expect("analyzes");
        let explicit = run_line(&["analyze", "-", "--backend", "can"]).expect("analyzes");
        assert_eq!(classic, explicit);
        let fd = run_line(&["analyze", "-", "--backend", "can-fd"]).expect("analyzes");
        assert!(!fd.contains("unbounded"), "{fd}");
        assert!(!fd.contains("DIVERGED"), "{fd}");
        assert!(fd.contains("0 of 64 messages can be lost"), "{fd}");
        assert_ne!(classic, fd, "FD must change the response times");
        let out = run_line(&["load", "-", "--backend", "can-fd"]).expect("loads");
        assert!(out.contains("backend: can-fd(x4)"), "{out}");
        let err = run_line(&["analyze", "-", "--backend", "flexray"]).expect_err("bad");
        assert!(err.to_string().contains("unknown backend `flexray`"));
        assert_eq!(exit_code_for(err.as_ref()), 2);
    }

    #[test]
    fn loss_curve_runs() {
        let out = run_line(&["loss", "-", "--scenario", "sporadic:10"]).expect("runs");
        assert!(out.lines().count() > 13);
        assert!(out.contains("jitter %"));
    }

    #[test]
    fn jobs_flag_accepted_and_validated() {
        let sequential = run_line(&["loss", "-", "--jobs", "1"]).expect("runs");
        let parallel = run_line(&["loss", "-", "--jobs", "4"]).expect("runs");
        assert_eq!(sequential, parallel, "job count must not change results");
        let err = run_line(&["loss", "-", "--jobs", "many"]).expect_err("invalid");
        assert!(err.to_string().contains("--jobs"));
    }

    #[test]
    fn sensitivity_subset() {
        let out = run_line(&["sensitivity", "-", "--message", "clutch_torque_1"]).expect("runs");
        assert!(out.contains("clutch_torque_1"));
        assert_eq!(out.lines().count(), 3); // header + rule + one row
    }

    #[test]
    fn audsley_on_builtin() {
        let out = run_line(&["audsley", "-", "--jitter", "25"]).expect("runs");
        assert!(out.contains("feasible assignment found"), "{out}");
    }

    #[test]
    fn simulate_with_gantt() {
        let out = run_line(&[
            "simulate", "-", "--millis", "100", "--errors", "7", "--gantt",
        ])
        .expect("runs");
        assert!(out.contains("observed utilization"));
        assert!(out.contains('|'));
    }

    #[test]
    fn dimension_custom_rates() {
        let out = run_line(&["dimension", "-", "--rates", "250,500"]).expect("runs");
        assert!(out.contains("250"));
        assert!(out.contains("500"));
        assert!(!out.contains("125 "));
    }

    #[test]
    fn optimize_quick_emits_csv() {
        let out = run_line(&[
            "optimize",
            "-",
            "--population",
            "8",
            "--generations",
            "2",
            "--emit-csv",
        ])
        .expect("runs");
        let matrix = from_csv(&out).expect("valid csv");
        assert_eq!(matrix.rows.len(), 64);
        // The identifier pool is preserved.
        let base = powertrain_kmatrix(&CaseStudyConfig::default());
        let mut a: Vec<u32> = base.rows.iter().map(|r| r.id).collect();
        let mut b: Vec<u32> = matrix.rows.iter().map(|r| r.id).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn lint_builtin_surfaces_inversions() {
        let out = run_line(&["lint", "-"]).expect("runs");
        assert!(out.contains("rate-inversion"));
        assert!(out.contains("unknown-jitter"));
    }

    #[test]
    fn diff_against_self_is_safe() {
        // Write the built-in matrix to a temp file and diff it with a
        // jittered variant of itself.
        let dir = std::env::temp_dir().join("carta_cli_diff_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let base = dir.join("base.csv");
        let csv = run_line(&["generate"]).expect("generates");
        std::fs::write(&base, &csv).expect("write");
        let out = run_line(&[
            "diff",
            base.to_str().expect("utf8"),
            base.to_str().expect("utf8"),
        ])
        .expect("runs");
        assert!(out.contains("safe change"), "{out}");
        assert!(out.contains("0 regression(s)"));
        let err = run_line(&["diff", base.to_str().expect("utf8")]).expect_err("one path");
        assert!(err.to_string().contains("two"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_flag_appends_table() {
        let out = run_line(&["analyze", "-", "--metrics"]).expect("runs");
        assert!(out.contains("== metrics =="), "{out}");
        assert!(out.contains("derived.cache_hit_rate"), "{out}");
        assert!(out.contains("derived.points_per_s"), "{out}");
        assert!(out.contains("wall_ms"), "{out}");
        assert!(out.contains("phase.analyze.wall_ns"), "{out}");
    }

    #[test]
    fn metrics_json_writes_schema_document() {
        let dir = std::env::temp_dir().join("carta_cli_metrics_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("metrics.json");
        let out =
            run_line(&["loss", "-", "--metrics-json", path.to_str().expect("utf8")]).expect("runs");
        assert!(out.contains("metrics written to"), "{out}");
        let text = std::fs::read_to_string(&path).expect("written");
        let doc = carta_obs::json::parse(&text).expect("valid json");
        assert_eq!(
            doc.get("schema").and_then(carta_obs::json::Value::as_str),
            Some("carta.metrics.v1")
        );
        assert_eq!(
            doc.get("command").and_then(carta_obs::json::Value::as_str),
            Some("loss")
        );
        assert!(doc.get("wall_ms").is_some());
        assert!(doc
            .get("metrics")
            .and_then(|m| m.get("engine.cache.misses"))
            .is_some());
        assert!(doc
            .get("derived")
            .and_then(|d| d.get("points_per_s"))
            .is_some());
        std::fs::remove_dir_all(&dir).ok();
        let err = run_line(&["loss", "-", "--metrics-json"]).expect_err("needs path");
        assert!(err.to_string().contains("--metrics-json"));
    }

    #[test]
    fn trace_flag_writes_replayable_file() {
        let dir = std::env::temp_dir().join("carta_cli_trace_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("trace.jsonl");
        let out =
            run_line(&["analyze", "-", "--trace", path.to_str().expect("utf8")]).expect("runs");
        assert!(out.contains("trace written to"), "{out}");
        assert!(path.exists());
        let replay =
            run_line(&["trace", path.to_str().expect("utf8"), "--limit", "5"]).expect("replays");
        assert!(
            replay.contains("rta.bus") || replay.contains("more events") || replay.contains("us"),
            "{replay}"
        );
        std::fs::remove_dir_all(&dir).ok();
        let err = run_line(&["trace", "/nonexistent/trace.jsonl"]).expect_err("missing");
        assert!(err.to_string().contains("cannot read trace"));
    }

    #[test]
    fn help_lists_observability() {
        let text = help_text();
        assert!(text.contains("trace"), "help misses `trace`");
        assert!(text.contains("--metrics"), "help misses `--metrics`");
        assert!(
            text.contains("--metrics-json"),
            "help misses `--metrics-json`"
        );
        assert!(text.contains("--backend"), "help misses `--backend`");
    }

    #[test]
    fn fuzz_smoke_holds_every_law() {
        let out = run_line(&["fuzz", "--cases", "2", "--seed", "2006", "--jobs", "1"])
            .expect("laws hold");
        assert!(out.contains("sim-never-exceeds-analysis"), "{out}");
        assert!(out.contains("jitter-monotonicity"), "{out}");
        assert!(
            out.contains("fd-dominates-classic-at-same-payload"),
            "{out}"
        );
        assert!(out.contains("prob-dominates-worst-case"), "{out}");
        assert!(
            out.contains("all 13 laws held over 2 cases each (seed 2006)"),
            "{out}"
        );
        assert!(!out.contains("VIOLATED"), "{out}");
    }

    #[test]
    fn fuzz_smoke_on_the_fd_backend() {
        let out = run_line(&[
            "fuzz",
            "--cases",
            "2",
            "--seed",
            "2006",
            "--backend",
            "can-fd",
            "--jobs",
            "1",
        ])
        .expect("laws hold on FD");
        assert!(
            out.contains("all 13 laws held over 2 cases each (seed 2006)"),
            "{out}"
        );
        let err = run_line(&["fuzz", "--cases", "1", "--backend", "lin"]).expect_err("bad");
        assert!(err.to_string().contains("unknown backend `lin`"));
    }

    #[test]
    fn fuzz_runs_the_chaos_laws() {
        let out = run_line(&[
            "fuzz",
            "--cases",
            "3",
            "--laws",
            "degraded-is-sound,fault-isolation",
            "--jobs",
            "1",
        ])
        .expect("chaos laws hold");
        assert!(out.contains("degraded-is-sound"), "{out}");
        assert!(out.contains("fault-isolation"), "{out}");
        assert!(out.contains("all 2 laws held"), "{out}");
    }

    #[test]
    fn analyze_renders_degraded_diagnostics() {
        // The built-in case study plus an infeasible flood message:
        // the flood diverges and is diagnosed, the rest keeps bounds.
        let mut csv = run_line(&["generate", "--seed", "7"]).expect("generates");
        csv.push_str("flood,0x7fa,0,8,50,,,EMS,TCU\n");
        let dir = std::env::temp_dir().join("carta_cli_degraded_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("flooded.csv");
        std::fs::write(&path, csv).expect("write");
        let out = run_line(&["analyze", path.to_str().expect("utf8")]).expect("analyzes");
        std::fs::remove_dir_all(&dir).ok();
        assert!(out.contains("DIVERGED"), "{out}");
        assert!(out.contains("DEGRADED REPORT"), "{out}");
        assert!(out.contains("`flood`"), "{out}");
        assert!(out.contains("interference:"), "{out}");
        // Messages above the flood keep their verdicts.
        assert!(out.contains("ok"), "{out}");
    }

    #[test]
    fn fuzz_law_filter_and_validation() {
        let out =
            run_line(&["fuzz", "--cases", "1", "--laws", "load-schedulability"]).expect("runs");
        assert!(out.contains("all 1 laws held"), "{out}");
        let err = run_line(&["fuzz", "--cases", "1", "--laws", "no-such-law"]).expect_err("bad");
        assert!(err.to_string().contains("unknown law `no-such-law`"));
        assert!(err.to_string().contains("jitter-monotonicity"));
    }

    #[test]
    fn fuzz_replays_repro_files() {
        use carta_testkit::prelude::*;
        let err = run_line(&["fuzz", "--repro", "/nonexistent/r.json"]).expect_err("missing");
        assert!(err.to_string().contains("cannot read repro"));
        assert_eq!(exit_code_for(err.as_ref()), 66);

        let dir = std::env::temp_dir().join("carta_cli_fuzz_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("repro.json");
        let repro = Repro {
            law: "load-schedulability".into(),
            seed: 11,
            errors: ErrorSpec::None,
            violation: "synthetic".into(),
            shrink_steps: 0,
            network: random_network(&NetShape::bus(), 11),
        };
        std::fs::write(&path, repro.to_json()).expect("write");
        let out = run_line(&["fuzz", "--repro", path.to_str().expect("utf8")]).expect("replays");
        assert!(out.contains("no longer reproduces"), "{out}");
        std::fs::write(&path, "{\"schema\":\"nope\"}").expect("write");
        let err = run_line(&["fuzz", "--repro", path.to_str().expect("utf8")]).expect_err("bad");
        assert!(err.to_string().contains("invalid repro"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn repro_with_a_retired_law_is_an_invalid_request_not_a_violation() {
        use carta_testkit::prelude::*;
        let dir = std::env::temp_dir().join("carta_cli_retired_law_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("retired.json");
        let repro = Repro {
            law: "retired-law".into(),
            seed: 3,
            errors: ErrorSpec::None,
            violation: "synthetic".into(),
            shrink_steps: 0,
            network: random_network(&NetShape::bus(), 3),
        };
        std::fs::write(&path, repro.to_json()).expect("write");
        let err = run_line(&["fuzz", "--repro", path.to_str().expect("utf8")])
            .expect_err("unknown law must fail loudly, not silently pass another oracle");
        assert!(
            err.to_string().contains("unknown law `retired-law`"),
            "{err}"
        );
        assert!(
            err.to_string().contains("jitter-monotonicity"),
            "the error lists the known laws: {err}"
        );
        assert_eq!(
            exit_code_for(err.as_ref()),
            2,
            "a bad law name is a request error, not a fuzz violation"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prob_analyze_reports_zero_risk_when_schedulable() {
        let out = run_line(&[
            "analyze",
            "-",
            "--prob",
            "--scenario",
            "best",
            "--jobs",
            "1",
        ])
        .expect("runs");
        assert!(out.contains("miss prob"), "{out}");
        assert!(
            out.contains("expected lost messages: 0"),
            "best case has no errors to convolve: {out}"
        );
        let worst = run_line(&["analyze", "-", "--prob", "--jobs", "1"]).expect("runs");
        assert!(worst.contains("p99"), "{worst}");
        assert!(worst.contains("quantum"), "{worst}");
    }

    #[test]
    fn prob_loss_curve_runs_and_stays_inside_the_envelope() {
        let prob = run_line(&["loss", "-", "--prob", "--jobs", "1"]).expect("runs");
        assert!(prob.contains("expected"), "{prob}");
        assert!(prob.lines().count() > 13, "{prob}");
    }

    #[test]
    fn scenario_parse_errors_are_friendly() {
        let err = run_line(&["analyze", "-", "--scenario", "chaotic"]).expect_err("bad");
        assert!(err.to_string().contains("chaotic"));
        let err = run_line(&["analyze"]).expect_err("missing path");
        assert!(err.to_string().contains("K-Matrix"));
        let err = run_line(&["load", "/nonexistent/file.csv"]).expect_err("missing file");
        assert!(err.to_string().contains("cannot read"));
        assert_eq!(exit_code_for(err.as_ref()), 66);
    }

    #[test]
    fn exit_codes_come_from_the_shared_table() {
        // Analysis divergence is a *degraded report*, not an error, so
        // exercise the table directly on representative errors.
        assert_eq!(
            exit_code_for(&ApiError::new(ErrorCode::FuzzViolation, "x")),
            4
        );
        assert_eq!(exit_code_for(&ApiError::model("bad csv")), 65);
        assert_eq!(exit_code_for(&ParseArgsError("bad flag".into())), 2);
        assert_eq!(exit_code_for(&std::io::Error::other("raw")), 1);
    }
}
