//! The `carta` subcommands. Every command is a pure function from
//! parsed arguments to the text it prints, so the full surface is unit
//! testable without spawning processes.

use crate::args::{ParseArgsError, ParsedArgs};
use crate::obs::ObsSession;
use crate::render::{cache_stats_line, Table};
use carta_can::backend::BackendConfig;
use carta_can::network::CanNetwork;
use carta_can::opa::audsley_assignment;
use carta_core::time::Time;
use carta_engine::prelude::{BaseSystem, Evaluator, Parallelism, SystemVariant};
use carta_explore::jitter::{with_assumed_unknown_jitter, with_jitter_ratio};
use carta_explore::loss::paper_jitter_grid;
use carta_explore::scenario::Scenario;
use carta_explore::sweeps::Sweeps;
use carta_kmatrix::csv::{from_csv, to_csv};
use carta_kmatrix::generator::{powertrain_kmatrix, CaseStudyConfig};
use carta_kmatrix::model::KMatrix;
use carta_obs::metrics::PhaseGuard;
use std::error::Error;
use std::fmt::Write as _;

type CmdResult = Result<String, Box<dyn Error>>;

/// Dispatches a parsed invocation inside an observability session
/// (the global `--metrics`, `--metrics-json` and `--trace` flags).
///
/// # Errors
///
/// Propagates I/O, parse and analysis errors as boxed errors whose
/// `Display` is the message shown to the user.
pub fn run(args: &ParsedArgs) -> CmdResult {
    let obs = ObsSession::start(args)?;
    let mut out = dispatch(args)?;
    obs.finish(&args.command, &mut out)?;
    Ok(out)
}

fn dispatch(args: &ParsedArgs) -> CmdResult {
    match args.command.as_str() {
        "help" | "--help" | "-h" => Ok(help_text()),
        "generate" => cmd_generate(args),
        "load" => cmd_load(args),
        "analyze" => cmd_analyze(args),
        "loss" => cmd_loss(args),
        "sensitivity" => cmd_sensitivity(args),
        "audsley" => cmd_audsley(args),
        "optimize" => cmd_optimize(args),
        "simulate" => cmd_simulate(args),
        "dimension" => cmd_dimension(args),
        "lint" => cmd_lint(args),
        "diff" => cmd_diff(args),
        "fuzz" => cmd_fuzz(args),
        "trace" => crate::obs::cmd_trace(args),
        other => Err(Box::new(ParseArgsError(format!(
            "unknown command `{other}`; try `carta help`"
        )))),
    }
}

/// The `help` text.
pub fn help_text() -> String {
    "\
carta — compositional CAN timing analysis (SymTA/S-style)

USAGE: carta <command> [<kmatrix.csv>] [flags]

COMMANDS
  generate     emit the synthetic power-train K-Matrix CSV
                 --seed <n>
  load         bus-load (utilization) report
  analyze      worst-case response times per message
                 --scenario best|worst|sporadic:<ms>   (default worst)
                 --jitter <pct>          uniform jitter override
                 --assume-unknown <pct>  jitter for unknown messages
                 --backend can|can-fd    bus backend (default can)
  loss         message-loss curve over the 0–60 % jitter grid
                 --scenario ...
  sensitivity  response-vs-jitter classes per message
                 --message <name>        restrict to one message
  audsley      optimal (feasibility) identifier assignment
                 --scenario ... --jitter <pct>
  optimize     SPEA2 identifier optimization
                 --population <n> --generations <n> --emit-csv
  simulate     discrete-event simulation
                 --millis <n> --seed <n> --errors <ms> --gantt
  dimension    compare candidate bit rates
                 --rates <kbps,kbps,...>   (default 125,250,500,1000)
  lint         structural review of a K-Matrix
  diff         compare two matrices' analyses message by message
                 carta diff <before.csv> <after.csv> [--scenario ...]
  fuzz         randomized verification (metamorphic laws + the
               differential sim-vs-analysis oracle, shrinking failures)
                 --cases <n> --seed <n> --laws <name,name,...>
                 --backend can|can-fd    fuzz corpus backend
                 --repro <file>    replay a stored counterexample
                 --repro-dir <d>   where shrunk repros are written
                                   (default: fuzz-repros/)
  trace        replay the span trace of a previous --trace run
                 carta trace [<trace.jsonl>] [--limit <n>]

GLOBAL FLAGS
  --backend <b>        bus backend for every model-loading command:
                       can (classic, default) or can-fd (dual rate,
                       4x data phase, payloads to 64 bytes)
  --jobs <n>           worker threads for sweep/optimizer evaluation
                       (default: the CARTA_JOBS env var, else all cores)
  --metrics            append a metrics table (cache hit rate, RTA
                       iteration counts, per-phase wall times, ...)
  --metrics-json <p>   write the same metrics as JSON (schema
                       carta.metrics.v1) to <p>
  --trace [<p>]        record a span trace as JSONL (default path:
                       <tmp>/carta-last-trace.jsonl)

Use `-` as the K-Matrix path to analyze the built-in case study.
"
    .to_string()
}

/// Loads a K-Matrix from a path, or the built-in case study for `-`.
fn load_matrix(path: &str) -> Result<KMatrix, Box<dyn Error>> {
    if path == "-" {
        return Ok(powertrain_kmatrix(&CaseStudyConfig::default()));
    }
    let text = std::fs::read_to_string(path)
        .map_err(|e| ParseArgsError(format!("cannot read `{path}`: {e}")))?;
    Ok(from_csv(&text)?)
}

/// Resolves `--backend` (default classic CAN).
fn backend_from(args: &ParsedArgs) -> Result<BackendConfig, Box<dyn Error>> {
    match args.flag("backend") {
        None => Ok(BackendConfig::Can),
        Some(name) => BackendConfig::parse(name).map_err(|unknown| {
            Box::new(ParseArgsError(format!(
                "unknown backend `{unknown}` (can, can-fd)"
            ))) as Box<dyn Error>
        }),
    }
}

fn load_network(args: &ParsedArgs) -> Result<CanNetwork, Box<dyn Error>> {
    let _phase = PhaseGuard::new("load");
    let path = args.required_positional("K-Matrix path (or `-`)")?;
    let matrix = load_matrix(path)?;
    let mut net = matrix.to_network()?;
    net.set_backend(backend_from(args)?);
    if let Some(pct) = args.flag("jitter") {
        let pct: f64 = pct
            .parse()
            .map_err(|_| ParseArgsError(format!("invalid --jitter `{pct}`")))?;
        net = with_jitter_ratio(&net, pct / 100.0);
    }
    if let Some(pct) = args.flag("assume-unknown") {
        let pct: f64 = pct
            .parse()
            .map_err(|_| ParseArgsError(format!("invalid --assume-unknown `{pct}`")))?;
        net = with_assumed_unknown_jitter(&net, pct / 100.0);
    }
    Ok(net)
}

/// Resolves `--jobs` into [`Parallelism`] (flag, then `CARTA_JOBS`,
/// then all hardware threads).
fn parallelism_from(args: &ParsedArgs) -> Result<Parallelism, Box<dyn Error>> {
    let explicit = match args.flag("jobs") {
        None => None,
        Some(v) => Some(
            v.parse::<usize>()
                .map_err(|_| ParseArgsError(format!("invalid --jobs `{v}`")))?,
        ),
    };
    Ok(Parallelism::resolve(explicit))
}

/// One evaluation engine per invocation, honoring `--jobs`.
fn evaluator_from(args: &ParsedArgs) -> Result<Evaluator, Box<dyn Error>> {
    Ok(Evaluator::builder()
        .parallelism(parallelism_from(args)?)
        .build())
}

fn scenario_from(args: &ParsedArgs) -> Result<Scenario, Box<dyn Error>> {
    match args.flag("scenario").unwrap_or("worst") {
        "worst" => Ok(Scenario::worst_case()),
        "best" => Ok(Scenario::best_case()),
        s => {
            if let Some(ms) = s.strip_prefix("sporadic:") {
                let ms: u64 = ms
                    .parse()
                    .map_err(|_| ParseArgsError(format!("invalid sporadic interval `{ms}`")))?;
                Ok(Scenario::sporadic_errors(Time::from_ms(ms)))
            } else {
                Err(Box::new(ParseArgsError(format!(
                    "unknown scenario `{s}` (best, worst, sporadic:<ms>)"
                ))))
            }
        }
    }
}

fn cmd_generate(args: &ParsedArgs) -> CmdResult {
    let seed = args.numeric_flag("seed", 42u64)?;
    let matrix = powertrain_kmatrix(&CaseStudyConfig {
        seed,
        ..CaseStudyConfig::default()
    });
    Ok(to_csv(&matrix))
}

fn cmd_load(args: &ParsedArgs) -> CmdResult {
    use carta_can::frame::StuffingMode;
    let net = load_network(args)?;
    let worst = net.load(StuffingMode::WorstCase);
    let best = net.load(StuffingMode::None);
    let mut out = String::new();
    writeln!(out, "messages: {}", net.messages().len())?;
    writeln!(out, "bit rate: {} kbit/s", net.bit_rate() / 1000)?;
    writeln!(out, "backend: {}", net.backend())?;
    writeln!(
        out,
        "load (worst-case stuffing): {:.1} %",
        worst.utilization_percent()
    )?;
    writeln!(
        out,
        "load (no stuffing):         {:.1} %",
        best.utilization_percent()
    )?;
    writeln!(
        out,
        "note: the load model cannot decide schedulability — run `carta analyze`"
    )?;
    Ok(out)
}

fn cmd_analyze(args: &ParsedArgs) -> CmdResult {
    let net = load_network(args)?;
    let scenario = scenario_from(args)?;
    let eval = evaluator_from(args)?;
    let report = {
        let _phase = PhaseGuard::new("analyze");
        eval.evaluate(&SystemVariant::new(BaseSystem::new(net), scenario.clone()))?
    };
    let _phase = PhaseGuard::new("render");
    let mut table = Table::new(["message", "id", "WCRT", "BCRT", "deadline", "verdict"]);
    for m in &report.messages {
        table.row([
            m.name.to_string(),
            m.id.to_string(),
            m.outcome
                .wcrt()
                .map(|t| t.to_string())
                .unwrap_or_else(|| "unbounded".into()),
            m.outcome
                .bcrt()
                .map(|t| t.to_string())
                .unwrap_or_else(|| "-".into()),
            m.deadline.to_string(),
            if m.outcome.diagnostic().is_some() {
                "DIVERGED".into()
            } else if m.misses_deadline() {
                "LOST".into()
            } else {
                "ok".to_string()
            },
        ]);
    }
    let mut out = table.render();
    writeln!(
        out,
        "\nscenario `{}`: {} of {} messages can be lost",
        scenario.name,
        report.missed_count(),
        report.messages.len()
    )?;
    if report.is_degraded() {
        writeln!(
            out,
            "\nDEGRADED REPORT: {} message(s) have no response bound; all other bounds remain \
             sound",
            report.diagnostics().count()
        )?;
        for d in report.diagnostics() {
            writeln!(
                out,
                "  `{}` (priority level {}): {} — busy window {} over {} instance(s)",
                d.entity, d.priority_level, d.cause, d.busy_window, d.instances
            )?;
            writeln!(
                out,
                "    interference: {}",
                d.interference
                    .iter()
                    .map(|n| format!("`{n}`"))
                    .collect::<Vec<_>>()
                    .join(", ")
            )?;
        }
    }
    Ok(out)
}

fn cmd_loss(args: &ParsedArgs) -> CmdResult {
    let net = load_network(args)?;
    let scenario = scenario_from(args)?;
    let eval = evaluator_from(args)?;
    let grid = paper_jitter_grid();
    let curve = {
        let _phase = PhaseGuard::new("analyze");
        eval.loss_vs_jitter(&net, &scenario, &grid)?
    };
    let _phase = PhaseGuard::new("render");
    let mut table = Table::new(["jitter %", "lost", "of", "fraction"]);
    for p in &curve.points {
        table.row([
            format!("{:.0}", p.jitter_ratio * 100.0),
            p.missed.to_string(),
            p.total.to_string(),
            format!("{:.1} %", p.fraction() * 100.0),
        ]);
    }
    let mut out = table.render();
    if let Some(z) = curve.zero_loss_up_to() {
        writeln!(out, "\nzero loss up to {:.0} % jitter", z * 100.0)?;
    } else {
        writeln!(out, "\nloss already at zero jitter")?;
    }
    Ok(out)
}

fn cmd_sensitivity(args: &ParsedArgs) -> CmdResult {
    let net = load_network(args)?;
    let scenario = scenario_from(args)?;
    let eval = evaluator_from(args)?;
    let grid = paper_jitter_grid();
    let only = args.flag("message").map(|m| vec![m]);
    let series = {
        let _phase = PhaseGuard::new("analyze");
        eval.response_vs_jitter(&net, &scenario, &grid, only.as_deref())?
    };
    let _phase = PhaseGuard::new("render");
    let mut table = Table::new(["message", "class", "WCRT @0%", "WCRT @60%"]);
    for s in &series {
        let first = s.points.first().and_then(|(_, r)| *r);
        let last = s.points.last().and_then(|(_, r)| *r);
        table.row([
            s.message.clone(),
            s.classify().to_string(),
            first
                .map(|t| t.to_string())
                .unwrap_or_else(|| "unbounded".into()),
            last.map(|t| t.to_string())
                .unwrap_or_else(|| "unbounded".into()),
        ]);
    }
    Ok(table.render())
}

fn cmd_audsley(args: &ParsedArgs) -> CmdResult {
    let net = load_network(args)?;
    let scenario = scenario_from(args)?;
    let prepared = scenario.apply(&net);
    let order = audsley_assignment(
        &prepared,
        scenario.errors.model().as_ref(),
        &scenario.analysis_config(),
    )?;
    match order {
        None => Ok("no fixed-priority identifier assignment is feasible\n".into()),
        Some(order) => {
            let fixed = order.apply(&net);
            let mut table = Table::new(["rank", "message", "new id"]);
            for (rank, &idx) in order.strongest_first().iter().enumerate() {
                table.row([
                    (rank + 1).to_string(),
                    net.messages()[idx].name.clone(),
                    fixed.messages()[idx].id.to_string(),
                ]);
            }
            let mut out = String::from("feasible assignment found:\n\n");
            out.push_str(&table.render());
            Ok(out)
        }
    }
}

fn cmd_optimize(args: &ParsedArgs) -> CmdResult {
    use carta_optim::canid::{optimize_can_ids, OptimizeIdsConfig};
    use carta_optim::spea2::Spea2Config;
    let (matrix, net) = {
        let _phase = PhaseGuard::new("load");
        let path = args.required_positional("K-Matrix path (or `-`)")?;
        let matrix = load_matrix(path)?;
        let mut net = matrix.to_network()?;
        net.set_backend(backend_from(args)?);
        (matrix, net)
    };
    let population = args.numeric_flag("population", 60usize)?;
    let generations = args.numeric_flag("generations", 40usize)?;
    let config = OptimizeIdsConfig {
        spea2: Spea2Config {
            population,
            archive: (population / 2).max(1),
            generations,
            ..Spea2Config::default()
        },
        parallelism: parallelism_from(args)?,
        ..OptimizeIdsConfig::default()
    };
    let result = {
        let _phase = PhaseGuard::new("analyze");
        optimize_can_ids(&net, &config)
    };
    if args.has_flag("emit-csv") {
        // Re-emit the matrix with the optimized identifiers.
        let mut out_matrix = matrix.clone();
        for (row, msg) in out_matrix.rows.iter_mut().zip(result.optimized.messages()) {
            debug_assert_eq!(row.name, msg.name);
            row.id = msg.id.raw();
        }
        return Ok(to_csv(&out_matrix));
    }
    let mut out = String::new();
    writeln!(
        out,
        "SPEA2 finished: {} evaluations, winner objectives {:?}",
        result.archive.evaluations, result.objectives
    )?;
    writeln!(out, "{}", cache_stats_line(&result.cache))?;
    let eval = evaluator_from(args)?;
    let grid = paper_jitter_grid();
    let before = eval.loss_vs_jitter(&net, &Scenario::worst_case(), &grid)?;
    let after = eval.loss_vs_jitter(&result.optimized, &Scenario::worst_case(), &grid)?;
    let _phase = PhaseGuard::new("render");
    let mut table = Table::new(["jitter %", "loss before", "loss after"]);
    for (b, a) in before.points.iter().zip(&after.points) {
        table.row([
            format!("{:.0}", b.jitter_ratio * 100.0),
            format!("{:.1} %", b.fraction() * 100.0),
            format!("{:.1} %", a.fraction() * 100.0),
        ]);
    }
    out.push_str(&table.render());
    writeln!(out, "\nuse --emit-csv to write the optimized K-Matrix")?;
    Ok(out)
}

fn cmd_simulate(args: &ParsedArgs) -> CmdResult {
    use carta_sim::engine::{simulate, SimConfig, SimStuffing};
    use carta_sim::gantt::{render, GanttConfig};
    use carta_sim::inject::{NoInjection, PeriodicInjection};
    let net = load_network(args)?;
    let millis = args.numeric_flag("millis", 2_000u64)?;
    let seed = args.numeric_flag("seed", 42u64)?;
    let config = SimConfig {
        horizon: Time::from_ms(millis),
        seed,
        stuffing: SimStuffing::Random,
        record_trace: true,
    };
    let report = match args.flag("errors") {
        Some(ms) => {
            let ms: u64 = ms
                .parse()
                .map_err(|_| ParseArgsError(format!("invalid --errors `{ms}`")))?;
            simulate(
                &net,
                &PeriodicInjection {
                    interval: Time::from_ms(ms),
                    phase: Time::from_us(137),
                },
                &config,
            )
        }
        None => simulate(&net, &NoInjection, &config),
    };
    let mut table = Table::new(["message", "queued", "done", "lost", "max resp", "misses"]);
    for s in &report.stats {
        table.row([
            s.name.clone(),
            s.queued.to_string(),
            s.completed.to_string(),
            s.overwritten.to_string(),
            s.max_response
                .map(|t| t.to_string())
                .unwrap_or_else(|| "-".into()),
            s.deadline_misses.to_string(),
        ]);
    }
    let mut out = table.render();
    writeln!(
        out,
        "\n{} ms simulated, observed utilization {:.1} %, {} error hits",
        millis,
        report.observed_utilization() * 100.0,
        report.trace.error_count()
    )?;
    if args.has_flag("gantt") {
        let labels: Vec<String> = net.messages().iter().map(|m| m.name.clone()).collect();
        let window = Time::from_ms(millis.min(20));
        out.push('\n');
        out.push_str(&render(
            &report.trace,
            &labels,
            &GanttConfig {
                from: Time::ZERO,
                to: window,
                columns: 100,
            },
        ));
    }
    Ok(out)
}

fn cmd_dimension(args: &ParsedArgs) -> CmdResult {
    use carta_explore::extensibility::EcuTemplate;
    use carta_explore::network_choice::cheapest_sufficient;
    let net = load_network(args)?;
    let scenario = scenario_from(args)?;
    let rates: Vec<u64> = match args.flag("rates") {
        None => vec![125_000, 250_000, 500_000, 1_000_000],
        Some(list) => list
            .split(',')
            .map(|s| {
                s.trim()
                    .parse::<u64>()
                    .map(|kbps| kbps * 1000)
                    .map_err(|_| ParseArgsError(format!("invalid rate `{s}`")))
            })
            .collect::<Result<_, _>>()?,
    };
    let eval = evaluator_from(args)?;
    let options = {
        let _phase = PhaseGuard::new("analyze");
        eval.compare_bit_rates(&net, &scenario, &rates, &EcuTemplate::default())?
    };
    let _phase = PhaseGuard::new("render");
    let mut table = Table::new([
        "kbit/s",
        "load",
        "schedulable",
        "jitter slack",
        "ECU headroom",
    ]);
    for o in &options {
        table.row([
            (o.bit_rate / 1000).to_string(),
            format!("{:.1} %", o.load * 100.0),
            o.schedulable.to_string(),
            o.jitter_slack
                .map(|s| format!("{:.0} %", s * 100.0))
                .unwrap_or_else(|| "-".into()),
            o.ecu_headroom.to_string(),
        ]);
    }
    let mut out = table.render();
    match cheapest_sufficient(&options, 0.10) {
        Some(pick) => writeln!(
            out,
            "\ncheapest candidate with ≥ 10 % jitter reserve: {} kbit/s",
            pick.bit_rate / 1000
        )?,
        None => writeln!(out, "\nno candidate offers a 10 % jitter reserve")?,
    }
    Ok(out)
}

fn cmd_lint(args: &ParsedArgs) -> CmdResult {
    let path = args.required_positional("K-Matrix path (or `-`)")?;
    let matrix = load_matrix(path)?;
    let findings = carta_kmatrix::lint::lint(&matrix);
    if findings.is_empty() {
        return Ok("no findings
"
        .into());
    }
    let mut out = String::new();
    for f in &findings {
        writeln!(out, "{f}")?;
    }
    Ok(out)
}

fn cmd_diff(args: &ParsedArgs) -> CmdResult {
    use carta_explore::diff::diff_reports;
    let before_path = args.required_positional("two K-Matrix paths")?;
    let after_path = args
        .positional
        .get(1)
        .ok_or_else(|| ParseArgsError("diff needs two K-Matrix paths".into()))?;
    let scenario = scenario_from(args)?;
    let backend = backend_from(args)?;
    let before = scenario.analyze(
        &load_matrix(before_path)?
            .to_network()?
            .with_backend(backend),
    )?;
    let after = scenario.analyze(&load_matrix(after_path)?.to_network()?.with_backend(backend))?;
    let diff = diff_reports(&before, &after);
    let mut table = Table::new(["message", "before", "after", "change"]);
    for r in &diff.rows {
        // Keep the table focused: skip unchanged-ok rows with identical WCRT.
        if r.change == carta_explore::diff::VerdictChange::StillOk && r.before == r.after {
            continue;
        }
        table.row([
            r.message.clone(),
            r.before
                .map(|t| t.to_string())
                .unwrap_or_else(|| "unbounded".into()),
            r.after
                .map(|t| t.to_string())
                .unwrap_or_else(|| "unbounded".into()),
            r.change.to_string(),
        ]);
    }
    let mut out = String::new();
    if table.is_empty() {
        writeln!(out, "no per-message changes")?;
    } else {
        out.push_str(&table.render());
    }
    if !diff.added.is_empty() {
        writeln!(out, "added: {}", diff.added.join(", "))?;
    }
    if !diff.removed.is_empty() {
        writeln!(out, "removed: {}", diff.removed.join(", "))?;
    }
    writeln!(
        out,
        "
{} regression(s), {} fix(es) — {}",
        diff.regressions().len(),
        diff.fixes().len(),
        if diff.is_safe() {
            "safe change"
        } else {
            "NOT safe"
        }
    )?;
    Ok(out)
}

/// One or more fuzz laws were violated; `Display` carries the full
/// per-law summary including the repro file paths.
#[derive(Debug)]
struct FuzzFailedError(String);

impl std::fmt::Display for FuzzFailedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fuzz found violations\n{}", self.0)
    }
}

impl Error for FuzzFailedError {}

fn cmd_fuzz(args: &ParsedArgs) -> CmdResult {
    use carta_testkit::prelude::*;

    if let Some(path) = args.flag("repro") {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ParseArgsError(format!("cannot read repro `{path}`: {e}")))?;
        let repro = Repro::from_json(&text)?;
        let _phase = PhaseGuard::new("fuzz");
        return match repro.replay() {
            Ok(()) => Ok(format!(
                "repro `{path}` ({}, seed {}) passes — the defect no longer reproduces\n",
                repro.law, repro.seed
            )),
            Err(v) => Err(Box::new(v)),
        };
    }

    let config = FuzzConfig {
        seed: args.numeric_flag("seed", 2006u64)?,
        cases: args.numeric_flag("cases", 64u64)?,
        laws: args.flag("laws").map(|list| {
            list.split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect()
        }),
        parallelism: parallelism_from(args)?,
        backend: backend_from(args)?,
    };
    let report = {
        let _phase = PhaseGuard::new("fuzz");
        run_fuzz(&config)?
    };

    let mut table = Table::new(["law", "cases", "verdict"]);
    for o in &report.outcomes {
        table.row([
            o.law.clone(),
            o.cases_run.to_string(),
            if o.repro.is_some() {
                "VIOLATED".into()
            } else {
                "ok".to_string()
            },
        ]);
    }
    let mut out = table.render();
    if report.passed() {
        writeln!(
            out,
            "\nall {} laws held over {} cases each (seed {})",
            report.outcomes.len(),
            config.cases,
            report.seed
        )?;
        return Ok(out);
    }
    let dir = std::path::Path::new(args.flag("repro-dir").unwrap_or("fuzz-repros"));
    std::fs::create_dir_all(dir)
        .map_err(|e| ParseArgsError(format!("cannot create `{}`: {e}", dir.display())))?;
    for o in report.violations() {
        let repro = o.repro.as_ref().expect("violations carry a repro");
        let path = dir.join(repro.file_name());
        std::fs::write(&path, repro.to_json())
            .map_err(|e| ParseArgsError(format!("cannot write `{}`: {e}", path.display())))?;
        writeln!(out, "\n{}", repro.violation)?;
        writeln!(
            out,
            "  shrunk to {} message(s) in {} steps; replay with `carta fuzz --repro {}`",
            repro.network.messages().len(),
            repro.shrink_steps,
            path.display()
        )?;
    }
    Err(Box::new(FuzzFailedError(out)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_line(line: &[&str]) -> CmdResult {
        run(&ParsedArgs::parse(line.iter().copied()).expect("parses"))
    }

    #[test]
    fn help_lists_all_commands() {
        let text = help_text();
        for cmd in [
            "generate",
            "load",
            "analyze",
            "loss",
            "sensitivity",
            "audsley",
            "optimize",
            "simulate",
            "dimension",
            "fuzz",
        ] {
            assert!(text.contains(cmd), "help misses `{cmd}`");
        }
        assert!(run_line(&["help"]).is_ok());
    }

    #[test]
    fn unknown_command_rejected() {
        let err = run_line(&["frobnicate"]).expect_err("unknown");
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn generate_roundtrips_through_load() {
        let csv = run_line(&["generate", "--seed", "7"]).expect("generates");
        assert!(csv.starts_with("#kmatrix,powertrain"));
        let matrix = from_csv(&csv).expect("parses");
        assert_eq!(matrix.rows.len(), 64);
    }

    #[test]
    fn load_and_analyze_builtin() {
        let out = run_line(&["load", "-"]).expect("loads");
        assert!(out.contains("load (worst-case stuffing)"));
        assert!(out.contains("backend: can\n"), "{out}");
        let out = run_line(&["analyze", "-", "--scenario", "best"]).expect("analyzes");
        assert!(out.contains("0 of 64 messages can be lost"), "{out}");
        let out = run_line(&["analyze", "-", "--jitter", "40"]).expect("analyzes");
        assert!(out.contains("LOST"));
    }

    #[test]
    fn analyze_on_the_fd_backend_is_bounded() {
        // `--backend can` is the default spelled out.
        let classic = run_line(&["analyze", "-"]).expect("analyzes");
        let explicit = run_line(&["analyze", "-", "--backend", "can"]).expect("analyzes");
        assert_eq!(classic, explicit);
        let fd = run_line(&["analyze", "-", "--backend", "can-fd"]).expect("analyzes");
        assert!(!fd.contains("unbounded"), "{fd}");
        assert!(!fd.contains("DIVERGED"), "{fd}");
        assert!(fd.contains("0 of 64 messages can be lost"), "{fd}");
        assert_ne!(classic, fd, "FD must change the response times");
        let out = run_line(&["load", "-", "--backend", "can-fd"]).expect("loads");
        assert!(out.contains("backend: can-fd(x4)"), "{out}");
        let err = run_line(&["analyze", "-", "--backend", "flexray"]).expect_err("bad");
        assert!(err.to_string().contains("unknown backend `flexray`"));
    }

    #[test]
    fn loss_curve_runs() {
        let out = run_line(&["loss", "-", "--scenario", "sporadic:10"]).expect("runs");
        assert!(out.lines().count() > 13);
        assert!(out.contains("jitter %"));
    }

    #[test]
    fn jobs_flag_accepted_and_validated() {
        let sequential = run_line(&["loss", "-", "--jobs", "1"]).expect("runs");
        let parallel = run_line(&["loss", "-", "--jobs", "4"]).expect("runs");
        assert_eq!(sequential, parallel, "job count must not change results");
        let err = run_line(&["loss", "-", "--jobs", "many"]).expect_err("invalid");
        assert!(err.to_string().contains("--jobs"));
    }

    #[test]
    fn sensitivity_subset() {
        let out = run_line(&["sensitivity", "-", "--message", "clutch_torque_1"]).expect("runs");
        assert!(out.contains("clutch_torque_1"));
        assert_eq!(out.lines().count(), 3); // header + rule + one row
    }

    #[test]
    fn audsley_on_builtin() {
        let out = run_line(&["audsley", "-", "--jitter", "25"]).expect("runs");
        assert!(out.contains("feasible assignment found"), "{out}");
    }

    #[test]
    fn simulate_with_gantt() {
        let out = run_line(&[
            "simulate", "-", "--millis", "100", "--errors", "7", "--gantt",
        ])
        .expect("runs");
        assert!(out.contains("observed utilization"));
        assert!(out.contains('|'));
    }

    #[test]
    fn dimension_custom_rates() {
        let out = run_line(&["dimension", "-", "--rates", "250,500"]).expect("runs");
        assert!(out.contains("250"));
        assert!(out.contains("500"));
        assert!(!out.contains("125 "));
    }

    #[test]
    fn optimize_quick_emits_csv() {
        let out = run_line(&[
            "optimize",
            "-",
            "--population",
            "8",
            "--generations",
            "2",
            "--emit-csv",
        ])
        .expect("runs");
        let matrix = from_csv(&out).expect("valid csv");
        assert_eq!(matrix.rows.len(), 64);
        // The identifier pool is preserved.
        let base = powertrain_kmatrix(&CaseStudyConfig::default());
        let mut a: Vec<u32> = base.rows.iter().map(|r| r.id).collect();
        let mut b: Vec<u32> = matrix.rows.iter().map(|r| r.id).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn lint_builtin_surfaces_inversions() {
        let out = run_line(&["lint", "-"]).expect("runs");
        assert!(out.contains("rate-inversion"));
        assert!(out.contains("unknown-jitter"));
    }

    #[test]
    fn diff_against_self_is_safe() {
        // Write the built-in matrix to a temp file and diff it with a
        // jittered variant of itself.
        let dir = std::env::temp_dir().join("carta_cli_diff_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let base = dir.join("base.csv");
        let csv = run_line(&["generate"]).expect("generates");
        std::fs::write(&base, &csv).expect("write");
        let out = run_line(&[
            "diff",
            base.to_str().expect("utf8"),
            base.to_str().expect("utf8"),
        ])
        .expect("runs");
        assert!(out.contains("safe change"), "{out}");
        assert!(out.contains("0 regression(s)"));
        let err = run_line(&["diff", base.to_str().expect("utf8")]).expect_err("one path");
        assert!(err.to_string().contains("two"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_flag_appends_table() {
        let out = run_line(&["analyze", "-", "--metrics"]).expect("runs");
        assert!(out.contains("== metrics =="), "{out}");
        assert!(out.contains("derived.cache_hit_rate"), "{out}");
        assert!(out.contains("derived.points_per_s"), "{out}");
        assert!(out.contains("wall_ms"), "{out}");
        assert!(out.contains("phase.analyze.wall_ns"), "{out}");
    }

    #[test]
    fn metrics_json_writes_schema_document() {
        let dir = std::env::temp_dir().join("carta_cli_metrics_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("metrics.json");
        let out =
            run_line(&["loss", "-", "--metrics-json", path.to_str().expect("utf8")]).expect("runs");
        assert!(out.contains("metrics written to"), "{out}");
        let text = std::fs::read_to_string(&path).expect("written");
        let doc = carta_obs::json::parse(&text).expect("valid json");
        assert_eq!(
            doc.get("schema").and_then(carta_obs::json::Value::as_str),
            Some("carta.metrics.v1")
        );
        assert_eq!(
            doc.get("command").and_then(carta_obs::json::Value::as_str),
            Some("loss")
        );
        assert!(doc.get("wall_ms").is_some());
        assert!(doc
            .get("metrics")
            .and_then(|m| m.get("engine.cache.misses"))
            .is_some());
        assert!(doc
            .get("derived")
            .and_then(|d| d.get("points_per_s"))
            .is_some());
        std::fs::remove_dir_all(&dir).ok();
        let err = run_line(&["loss", "-", "--metrics-json"]).expect_err("needs path");
        assert!(err.to_string().contains("--metrics-json"));
    }

    #[test]
    fn trace_flag_writes_replayable_file() {
        let dir = std::env::temp_dir().join("carta_cli_trace_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("trace.jsonl");
        let out =
            run_line(&["analyze", "-", "--trace", path.to_str().expect("utf8")]).expect("runs");
        assert!(out.contains("trace written to"), "{out}");
        assert!(path.exists());
        let replay =
            run_line(&["trace", path.to_str().expect("utf8"), "--limit", "5"]).expect("replays");
        assert!(
            replay.contains("rta.bus") || replay.contains("more events") || replay.contains("us"),
            "{replay}"
        );
        std::fs::remove_dir_all(&dir).ok();
        let err = run_line(&["trace", "/nonexistent/trace.jsonl"]).expect_err("missing");
        assert!(err.to_string().contains("cannot read trace"));
    }

    #[test]
    fn help_lists_observability() {
        let text = help_text();
        assert!(text.contains("trace"), "help misses `trace`");
        assert!(text.contains("--metrics"), "help misses `--metrics`");
        assert!(
            text.contains("--metrics-json"),
            "help misses `--metrics-json`"
        );
        assert!(text.contains("--backend"), "help misses `--backend`");
    }

    #[test]
    fn fuzz_smoke_holds_every_law() {
        let out = run_line(&["fuzz", "--cases", "2", "--seed", "2006", "--jobs", "1"])
            .expect("laws hold");
        assert!(out.contains("sim-never-exceeds-analysis"), "{out}");
        assert!(out.contains("jitter-monotonicity"), "{out}");
        assert!(
            out.contains("fd-dominates-classic-at-same-payload"),
            "{out}"
        );
        assert!(
            out.contains("all 12 laws held over 2 cases each (seed 2006)"),
            "{out}"
        );
        assert!(!out.contains("VIOLATED"), "{out}");
    }

    #[test]
    fn fuzz_smoke_on_the_fd_backend() {
        let out = run_line(&[
            "fuzz",
            "--cases",
            "2",
            "--seed",
            "2006",
            "--backend",
            "can-fd",
            "--jobs",
            "1",
        ])
        .expect("laws hold on FD");
        assert!(
            out.contains("all 12 laws held over 2 cases each (seed 2006)"),
            "{out}"
        );
        let err = run_line(&["fuzz", "--cases", "1", "--backend", "lin"]).expect_err("bad");
        assert!(err.to_string().contains("unknown backend `lin`"));
    }

    #[test]
    fn fuzz_runs_the_chaos_laws() {
        let out = run_line(&[
            "fuzz",
            "--cases",
            "3",
            "--laws",
            "degraded-is-sound,fault-isolation",
            "--jobs",
            "1",
        ])
        .expect("chaos laws hold");
        assert!(out.contains("degraded-is-sound"), "{out}");
        assert!(out.contains("fault-isolation"), "{out}");
        assert!(out.contains("all 2 laws held"), "{out}");
    }

    #[test]
    fn analyze_renders_degraded_diagnostics() {
        // The built-in case study plus an infeasible flood message:
        // the flood diverges and is diagnosed, the rest keeps bounds.
        let mut csv = run_line(&["generate", "--seed", "7"]).expect("generates");
        csv.push_str("flood,0x7fa,0,8,50,,,EMS,TCU\n");
        let dir = std::env::temp_dir().join("carta_cli_degraded_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("flooded.csv");
        std::fs::write(&path, csv).expect("write");
        let out = run_line(&["analyze", path.to_str().expect("utf8")]).expect("analyzes");
        std::fs::remove_dir_all(&dir).ok();
        assert!(out.contains("DIVERGED"), "{out}");
        assert!(out.contains("DEGRADED REPORT"), "{out}");
        assert!(out.contains("`flood`"), "{out}");
        assert!(out.contains("interference:"), "{out}");
        // Messages above the flood keep their verdicts.
        assert!(out.contains("ok"), "{out}");
    }

    #[test]
    fn fuzz_law_filter_and_validation() {
        let out =
            run_line(&["fuzz", "--cases", "1", "--laws", "load-schedulability"]).expect("runs");
        assert!(out.contains("all 1 laws held"), "{out}");
        let err = run_line(&["fuzz", "--cases", "1", "--laws", "no-such-law"]).expect_err("bad");
        assert!(err.to_string().contains("unknown law `no-such-law`"));
        assert!(err.to_string().contains("jitter-monotonicity"));
    }

    #[test]
    fn fuzz_replays_repro_files() {
        use carta_testkit::prelude::*;
        let err = run_line(&["fuzz", "--repro", "/nonexistent/r.json"]).expect_err("missing");
        assert!(err.to_string().contains("cannot read repro"));

        let dir = std::env::temp_dir().join("carta_cli_fuzz_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("repro.json");
        let repro = Repro {
            law: "load-schedulability".into(),
            seed: 11,
            errors: ErrorSpec::None,
            violation: "synthetic".into(),
            shrink_steps: 0,
            network: random_network(&NetShape::bus(), 11),
        };
        std::fs::write(&path, repro.to_json()).expect("write");
        let out = run_line(&["fuzz", "--repro", path.to_str().expect("utf8")]).expect("replays");
        assert!(out.contains("no longer reproduces"), "{out}");
        std::fs::write(&path, "{\"schema\":\"nope\"}").expect("write");
        let err = run_line(&["fuzz", "--repro", path.to_str().expect("utf8")]).expect_err("bad");
        assert!(err.to_string().contains("invalid repro"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scenario_parse_errors_are_friendly() {
        let err = run_line(&["analyze", "-", "--scenario", "chaotic"]).expect_err("bad");
        assert!(err.to_string().contains("chaotic"));
        let err = run_line(&["analyze"]).expect_err("missing path");
        assert!(err.to_string().contains("K-Matrix"));
        let err = run_line(&["load", "/nonexistent/file.csv"]).expect_err("missing file");
        assert!(err.to_string().contains("cannot read"));
    }
}
