//! Minimal, dependency-free argument parsing for the `carta` binary.
//!
//! Grammar: `carta <command> [positional] [--flag [value]]...`.
//! Flags may appear in any order after the command; `--flag=value` and
//! `--flag value` are both accepted.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedArgs {
    /// The subcommand.
    pub command: String,
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
    /// `--flag [value]` pairs; value-less flags map to an empty string.
    flags: BTreeMap<String, String>,
}

/// Argument-parsing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseArgsError(pub String);

impl fmt::Display for ParseArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Error for ParseArgsError {}

impl ParsedArgs {
    /// Parses `argv` (without the program name).
    ///
    /// # Errors
    ///
    /// Returns [`ParseArgsError`] when no command is given or a flag is
    /// malformed.
    pub fn parse<I, S>(argv: I) -> Result<Self, ParseArgsError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut it = argv.into_iter().map(Into::into).peekable();
        let command = it
            .next()
            .ok_or_else(|| ParseArgsError("missing command; try `carta help`".into()))?;
        if command.starts_with('-') {
            return Err(ParseArgsError(format!(
                "expected a command, found flag `{command}`; try `carta help`"
            )));
        }
        let mut positional = Vec::new();
        let mut flags = BTreeMap::new();
        while let Some(arg) = it.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if name.is_empty() {
                    return Err(ParseArgsError("empty flag `--`".into()));
                }
                if let Some((k, v)) = name.split_once('=') {
                    flags.insert(k.to_string(), v.to_string());
                } else if it.peek().map(|n| !n.starts_with("--")).unwrap_or(false) {
                    let value = it.next().expect("peeked");
                    flags.insert(name.to_string(), value);
                } else {
                    flags.insert(name.to_string(), String::new());
                }
            } else {
                positional.push(arg);
            }
        }
        Ok(ParsedArgs {
            command,
            positional,
            flags,
        })
    }

    /// The value of a flag, if present (empty string for value-less).
    pub fn flag(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// `true` if the flag was given at all.
    pub fn has_flag(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    /// Parses a numeric flag with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ParseArgsError`] if the value does not parse.
    pub fn numeric_flag<T: std::str::FromStr>(
        &self,
        name: &str,
        default: T,
    ) -> Result<T, ParseArgsError> {
        match self.flag(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ParseArgsError(format!("invalid value for --{name}: `{v}`"))),
        }
    }

    /// The single required positional argument (e.g. a K-Matrix path).
    ///
    /// # Errors
    ///
    /// Returns [`ParseArgsError`] if it is missing.
    pub fn required_positional(&self, what: &str) -> Result<&str, ParseArgsError> {
        self.positional
            .first()
            .map(String::as_str)
            .ok_or_else(|| ParseArgsError(format!("missing {what} argument")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_command_positionals_and_flags() {
        let a = ParsedArgs::parse([
            "loss",
            "matrix.csv",
            "--scenario",
            "worst",
            "--grid=0,25,60",
        ])
        .expect("parses");
        assert_eq!(a.command, "loss");
        assert_eq!(a.positional, vec!["matrix.csv"]);
        assert_eq!(a.flag("scenario"), Some("worst"));
        assert_eq!(a.flag("grid"), Some("0,25,60"));
        assert!(!a.has_flag("gantt"));
    }

    #[test]
    fn valueless_flags_and_numeric() {
        let a = ParsedArgs::parse(["simulate", "m.csv", "--gantt", "--seed", "7"]).expect("parses");
        assert!(a.has_flag("gantt"));
        assert_eq!(a.flag("gantt"), Some(""));
        assert_eq!(a.numeric_flag("seed", 42u64).expect("numeric"), 7);
        assert_eq!(a.numeric_flag("missing", 42u64).expect("default"), 42);
        assert!(a.numeric_flag::<u64>("gantt", 0).is_err());
    }

    #[test]
    fn errors() {
        assert!(ParsedArgs::parse(Vec::<String>::new()).is_err());
        assert!(ParsedArgs::parse(["--worst"]).is_err());
        assert!(ParsedArgs::parse(["x", "--"]).is_err());
        let a = ParsedArgs::parse(["analyze"]).expect("parses");
        assert!(a.required_positional("K-Matrix path").is_err());
    }

    #[test]
    fn flag_value_cannot_start_with_dashes() {
        // `--a --b` treats both as value-less flags.
        let a = ParsedArgs::parse(["cmd", "--a", "--b"]).expect("parses");
        assert_eq!(a.flag("a"), Some(""));
        assert_eq!(a.flag("b"), Some(""));
    }
}
