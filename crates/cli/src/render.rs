//! Plain-text rendering for CLI output: the column [`Table`] plus the
//! pure [`render_response`] function that turns every `carta.api.v1`
//! [`Response`] into the text the CLI has always printed.

use carta_api::prelude::{
    AnalyzeReport, AudsleyRow, FuzzSummary, LoadSummary, OptimizeSummary, ProbAnalyzeReport,
    Response, SimulateSummary,
};
use carta_can::prob::ProbOutcome;
use carta_engine::prelude::CacheStats;
use carta_explore::diff::{AnalysisDiff, VerdictChange};
use carta_explore::network_choice::{cheapest_sufficient, BitRateOption};
use carta_explore::prelude::{LossCurve, ProbLossCurve, SensitivitySeries};
use carta_kmatrix::lint::Finding;
use std::fmt::Write as _;

type RenderResult = Result<String, std::fmt::Error>;

/// Renders a response as the CLI's plain text. Pure: the same
/// [`Response`] always yields the same bytes.
///
/// # Errors
///
/// Only formatter errors, which cannot occur when writing to `String`.
pub fn render_response(resp: &Response) -> RenderResult {
    match resp {
        Response::Matrix { csv } => Ok(csv.clone()),
        Response::Load(l) => render_load(l),
        Response::Analyze(a) => render_analyze(a),
        Response::Loss(curve) => render_loss(curve),
        Response::ProbAnalyze(a) => render_prob_analyze(a),
        Response::ProbLoss(curve) => render_prob_loss(curve),
        Response::Sensitivity(series) => Ok(render_sensitivity(series)),
        Response::Audsley(order) => Ok(render_audsley(order.as_deref())),
        Response::Optimize(o) => render_optimize(o),
        Response::Simulate(s) => render_simulate(s),
        Response::Dimension(options) => render_dimension(options),
        Response::Lint(findings) => render_lint(findings),
        Response::Diff(diff) => render_diff(diff),
        Response::Fuzz(f) => render_fuzz(f),
        Response::FuzzReplay(r) => Ok(format!(
            "repro ({}, seed {}) passes — the defect no longer reproduces\n",
            r.law, r.seed
        )),
    }
}

fn render_load(l: &LoadSummary) -> RenderResult {
    let mut out = String::new();
    writeln!(out, "messages: {}", l.messages)?;
    writeln!(out, "bit rate: {} kbit/s", l.bit_rate / 1000)?;
    writeln!(out, "backend: {}", l.backend)?;
    writeln!(
        out,
        "load (worst-case stuffing): {:.1} %",
        l.worst_util_percent
    )?;
    writeln!(
        out,
        "load (no stuffing):         {:.1} %",
        l.best_util_percent
    )?;
    writeln!(
        out,
        "note: the load model cannot decide schedulability — run `carta analyze`"
    )?;
    Ok(out)
}

fn render_analyze(a: &AnalyzeReport) -> RenderResult {
    let report = &a.report;
    let mut table = Table::new(["message", "id", "WCRT", "BCRT", "deadline", "verdict"]);
    for m in &report.messages {
        table.row([
            m.name.to_string(),
            m.id.to_string(),
            m.outcome
                .wcrt()
                .map(|t| t.to_string())
                .unwrap_or_else(|| "unbounded".into()),
            m.outcome
                .bcrt()
                .map(|t| t.to_string())
                .unwrap_or_else(|| "-".into()),
            m.deadline.to_string(),
            if m.outcome.diagnostic().is_some() {
                "DIVERGED".into()
            } else if m.misses_deadline() {
                "LOST".into()
            } else {
                "ok".to_string()
            },
        ]);
    }
    let mut out = table.render();
    writeln!(
        out,
        "\nscenario `{}`: {} of {} messages can be lost",
        a.scenario,
        report.missed_count(),
        report.messages.len()
    )?;
    if report.is_degraded() {
        writeln!(
            out,
            "\nDEGRADED REPORT: {} message(s) have no response bound; all other bounds remain \
             sound",
            report.diagnostics().count()
        )?;
        for d in report.diagnostics() {
            writeln!(
                out,
                "  `{}` (priority level {}): {} — busy window {} over {} instance(s)",
                d.entity, d.priority_level, d.cause, d.busy_window, d.instances
            )?;
            writeln!(
                out,
                "    interference: {}",
                d.interference
                    .iter()
                    .map(|n| format!("`{n}`"))
                    .collect::<Vec<_>>()
                    .join(", ")
            )?;
        }
    }
    Ok(out)
}

fn render_loss(curve: &LossCurve) -> RenderResult {
    let mut table = Table::new(["jitter %", "lost", "of", "fraction"]);
    for p in &curve.points {
        table.row([
            format!("{:.0}", p.jitter_ratio * 100.0),
            p.missed.to_string(),
            p.total.to_string(),
            format!("{:.1} %", p.fraction() * 100.0),
        ]);
    }
    let mut out = table.render();
    if let Some(z) = curve.zero_loss_up_to() {
        writeln!(out, "\nzero loss up to {:.0} % jitter", z * 100.0)?;
    } else {
        writeln!(out, "\nloss already at zero jitter")?;
    }
    Ok(out)
}

/// Compact, deterministic rendering of a probability: `0` and `1`
/// exactly, fixed-point for probable events, scientific for rare ones.
fn format_prob(p: f64) -> String {
    if p == 0.0 {
        "0".into()
    } else if p == 1.0 {
        "1".into()
    } else if p >= 1e-3 {
        format!("{p:.4}")
    } else {
        format!("{p:.2e}")
    }
}

fn render_prob_analyze(a: &ProbAnalyzeReport) -> RenderResult {
    let report = &a.report;
    let mut table = Table::new([
        "message",
        "id",
        "p50",
        "p95",
        "p99",
        "deadline",
        "miss prob",
        "verdict",
    ]);
    for m in &report.messages {
        match &m.outcome {
            ProbOutcome::Dist(dist) => table.row([
                m.name.to_string(),
                m.id.to_string(),
                dist.p50.to_string(),
                dist.p95.to_string(),
                dist.p99.to_string(),
                m.deadline.to_string(),
                format_prob(dist.miss_probability),
                if dist.miss_probability >= 1.0 {
                    "LOST".into()
                } else if dist.miss_probability > 0.0 {
                    "risk".into()
                } else {
                    "ok".to_string()
                },
            ]),
            ProbOutcome::Overload(_) => table.row([
                m.name.to_string(),
                m.id.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                m.deadline.to_string(),
                "1".into(),
                "DIVERGED".into(),
            ]),
        };
    }
    let mut out = table.render();
    writeln!(
        out,
        "\nscenario `{}`: expected lost messages: {} of {} (certain {}, possible {})",
        a.scenario,
        format_prob(report.expected_missed()),
        report.messages.len(),
        report.certain_missed(),
        report.possible_missed()
    )?;
    writeln!(
        out,
        "binning quantum {} — distributions are pessimistic bounds; miss \
         probabilities are guaranteed 0 only where the worst case meets the deadline",
        report.quantum
    )?;
    Ok(out)
}

fn render_prob_loss(curve: &ProbLossCurve) -> RenderResult {
    let mut table = Table::new(["jitter %", "expected", "certain", "possible", "of"]);
    for p in &curve.points {
        table.row([
            format!("{:.0}", p.jitter_ratio * 100.0),
            format_prob(p.expected_missed),
            p.certain_missed.to_string(),
            p.possible_missed.to_string(),
            p.total.to_string(),
        ]);
    }
    let mut out = table.render();
    if let Some(z) = curve.zero_risk_up_to() {
        writeln!(out, "\nzero loss risk up to {:.0} % jitter", z * 100.0)?;
    } else {
        writeln!(out, "\nloss risk already at zero jitter")?;
    }
    Ok(out)
}

fn render_sensitivity(series: &[SensitivitySeries]) -> String {
    let mut table = Table::new(["message", "class", "WCRT @0%", "WCRT @60%"]);
    for s in series {
        let first = s.points.first().and_then(|(_, r)| *r);
        let last = s.points.last().and_then(|(_, r)| *r);
        table.row([
            s.message.clone(),
            s.classify().to_string(),
            first
                .map(|t| t.to_string())
                .unwrap_or_else(|| "unbounded".into()),
            last.map(|t| t.to_string())
                .unwrap_or_else(|| "unbounded".into()),
        ]);
    }
    table.render()
}

fn render_audsley(order: Option<&[AudsleyRow]>) -> String {
    match order {
        None => "no fixed-priority identifier assignment is feasible\n".into(),
        Some(rows) => {
            let mut table = Table::new(["rank", "message", "new id"]);
            for (rank, row) in rows.iter().enumerate() {
                table.row([
                    (rank + 1).to_string(),
                    row.message.clone(),
                    row.new_id.clone(),
                ]);
            }
            let mut out = String::from("feasible assignment found:\n\n");
            out.push_str(&table.render());
            out
        }
    }
}

fn render_optimize(o: &OptimizeSummary) -> RenderResult {
    let mut out = String::new();
    writeln!(
        out,
        "SPEA2 finished: {} evaluations, winner objectives {:?}",
        o.evaluations, o.objectives
    )?;
    writeln!(out, "{}", cache_stats_line(&o.cache))?;
    let mut table = Table::new(["jitter %", "loss before", "loss after"]);
    for (b, a) in o.loss_before.points.iter().zip(&o.loss_after.points) {
        table.row([
            format!("{:.0}", b.jitter_ratio * 100.0),
            format!("{:.1} %", b.fraction() * 100.0),
            format!("{:.1} %", a.fraction() * 100.0),
        ]);
    }
    out.push_str(&table.render());
    writeln!(out, "\nuse --emit-csv to write the optimized K-Matrix")?;
    Ok(out)
}

fn render_simulate(s: &SimulateSummary) -> RenderResult {
    let mut table = Table::new(["message", "queued", "done", "lost", "max resp", "misses"]);
    for m in &s.stats {
        table.row([
            m.name.clone(),
            m.queued.to_string(),
            m.completed.to_string(),
            m.overwritten.to_string(),
            m.max_response
                .map(|t| t.to_string())
                .unwrap_or_else(|| "-".into()),
            m.deadline_misses.to_string(),
        ]);
    }
    let mut out = table.render();
    writeln!(
        out,
        "\n{} ms simulated, observed utilization {:.1} %, {} error hits",
        s.millis,
        s.observed_utilization * 100.0,
        s.error_hits
    )?;
    if let Some(gantt) = &s.gantt {
        out.push('\n');
        out.push_str(gantt);
    }
    Ok(out)
}

fn render_dimension(options: &[BitRateOption]) -> RenderResult {
    let mut table = Table::new([
        "kbit/s",
        "load",
        "schedulable",
        "jitter slack",
        "ECU headroom",
    ]);
    for o in options {
        table.row([
            (o.bit_rate / 1000).to_string(),
            format!("{:.1} %", o.load * 100.0),
            o.schedulable.to_string(),
            o.jitter_slack
                .map(|s| format!("{:.0} %", s * 100.0))
                .unwrap_or_else(|| "-".into()),
            o.ecu_headroom.to_string(),
        ]);
    }
    let mut out = table.render();
    match cheapest_sufficient(options, 0.10) {
        Some(pick) => writeln!(
            out,
            "\ncheapest candidate with ≥ 10 % jitter reserve: {} kbit/s",
            pick.bit_rate / 1000
        )?,
        None => writeln!(out, "\nno candidate offers a 10 % jitter reserve")?,
    }
    Ok(out)
}

fn render_lint(findings: &[Finding]) -> RenderResult {
    if findings.is_empty() {
        return Ok("no findings\n".into());
    }
    let mut out = String::new();
    for f in findings {
        writeln!(out, "{f}")?;
    }
    Ok(out)
}

fn render_diff(diff: &AnalysisDiff) -> RenderResult {
    let mut table = Table::new(["message", "before", "after", "change"]);
    for r in &diff.rows {
        // Keep the table focused: skip unchanged-ok rows with identical WCRT.
        if r.change == VerdictChange::StillOk && r.before == r.after {
            continue;
        }
        table.row([
            r.message.clone(),
            r.before
                .map(|t| t.to_string())
                .unwrap_or_else(|| "unbounded".into()),
            r.after
                .map(|t| t.to_string())
                .unwrap_or_else(|| "unbounded".into()),
            r.change.to_string(),
        ]);
    }
    let mut out = String::new();
    if table.is_empty() {
        writeln!(out, "no per-message changes")?;
    } else {
        out.push_str(&table.render());
    }
    if !diff.added.is_empty() {
        writeln!(out, "added: {}", diff.added.join(", "))?;
    }
    if !diff.removed.is_empty() {
        writeln!(out, "removed: {}", diff.removed.join(", "))?;
    }
    writeln!(
        out,
        "\n{} regression(s), {} fix(es) — {}",
        diff.regressions().len(),
        diff.fixes().len(),
        if diff.is_safe() {
            "safe change"
        } else {
            "NOT safe"
        }
    )?;
    Ok(out)
}

/// Renders the fuzz outcome table, plus the all-laws-held footer on a
/// clean pass. The violating path's repro-file lines are appended by
/// the CLI, which owns the file I/O.
pub fn render_fuzz(f: &FuzzSummary) -> RenderResult {
    let mut table = Table::new(["law", "cases", "verdict"]);
    for o in &f.report.outcomes {
        table.row([
            o.law.clone(),
            o.cases_run.to_string(),
            if o.repro.is_some() {
                "VIOLATED".into()
            } else {
                "ok".to_string()
            },
        ]);
    }
    let mut out = table.render();
    if f.report.passed() {
        writeln!(
            out,
            "\nall {} laws held over {} cases each (seed {})",
            f.report.outcomes.len(),
            f.cases,
            f.report.seed
        )?;
    }
    Ok(out)
}

/// The one-line engine cache summary every subcommand prints the same
/// way (hit rate, hits, fresh analyses, contended/evicted shards).
pub fn cache_stats_line(stats: &CacheStats) -> String {
    format!(
        "engine cache: {:.0} % hit rate ({} hits, {} analyses); rta: {} compiles, {:.0} % warm starts",
        stats.hit_rate() * 100.0,
        stats.hits,
        stats.misses,
        stats.compiles,
        stats.warm_start_rate() * 100.0
    )
}

/// A simple left-padded column table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given header.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (short rows are padded with empty cells).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    #[allow(dead_code)] // exercised by tests; kept for API symmetry
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no data rows were added.
    #[allow(dead_code)] // exercised by tests; kept for API symmetry
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<width$}", width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_columns() {
        let mut t = Table::new(["name", "wcrt"]);
        t.row(["engine_rpm", "792us"]).row(["x", "1ms"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("engine_rpm  792us"));
        assert!(lines[3].starts_with("x "));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn cache_line_reports_hit_rate() {
        let stats = CacheStats {
            hits: 3,
            misses: 1,
            compiles: 2,
            warm_starts: 9,
            cold_starts: 3,
            ..CacheStats::default()
        };
        let line = cache_stats_line(&stats);
        assert!(line.contains("75 % hit rate"), "{line}");
        assert!(line.contains("3 hits"), "{line}");
        assert!(line.contains("1 analyses"), "{line}");
        assert!(line.contains("2 compiles"), "{line}");
        assert!(line.contains("75 % warm starts"), "{line}");
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["1"]);
        assert!(t.render().lines().nth(2).expect("row").starts_with('1'));
    }
}
