//! Plain-text table rendering for CLI output.

use carta_engine::prelude::CacheStats;

/// The one-line engine cache summary every subcommand prints the same
/// way (hit rate, hits, fresh analyses, contended/evicted shards).
pub fn cache_stats_line(stats: &CacheStats) -> String {
    format!(
        "engine cache: {:.0} % hit rate ({} hits, {} analyses); rta: {} compiles, {:.0} % warm starts",
        stats.hit_rate() * 100.0,
        stats.hits,
        stats.misses,
        stats.compiles,
        stats.warm_start_rate() * 100.0
    )
}

/// A simple left-padded column table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given header.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (short rows are padded with empty cells).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    #[allow(dead_code)] // exercised by tests; kept for API symmetry
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no data rows were added.
    #[allow(dead_code)] // exercised by tests; kept for API symmetry
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<width$}", width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_columns() {
        let mut t = Table::new(["name", "wcrt"]);
        t.row(["engine_rpm", "792us"]).row(["x", "1ms"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("engine_rpm  792us"));
        assert!(lines[3].starts_with("x "));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn cache_line_reports_hit_rate() {
        let stats = CacheStats {
            hits: 3,
            misses: 1,
            compiles: 2,
            warm_starts: 9,
            cold_starts: 3,
            ..CacheStats::default()
        };
        let line = cache_stats_line(&stats);
        assert!(line.contains("75 % hit rate"), "{line}");
        assert!(line.contains("3 hits"), "{line}");
        assert!(line.contains("1 analyses"), "{line}");
        assert!(line.contains("2 compiles"), "{line}");
        assert!(line.contains("75 % warm starts"), "{line}");
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["1"]);
        assert!(t.render().lines().nth(2).expect("row").starts_with('1'));
    }
}
