//! End-to-end contract for the `--metrics-json` document: run the real
//! `carta` binary and assert the `carta.metrics.v1` schema holds — the
//! same validation the CI observability job performs.

use carta_obs::json::{self, Value};
use std::path::PathBuf;
use std::process::Command;

fn carta() -> Command {
    Command::new(env!("CARGO_BIN_EXE_carta"))
}

fn temp_file(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("carta_metrics_schema_test");
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir.join(name)
}

fn run_with_metrics_json(args: &[&str], path: &PathBuf) -> Value {
    let output = carta()
        .args(args)
        .arg("--metrics-json")
        .arg(path)
        .output()
        .expect("binary runs");
    assert!(
        output.status.success(),
        "carta {args:?} failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let text = std::fs::read_to_string(path).expect("metrics file written");
    json::parse(&text).expect("metrics file is valid JSON")
}

#[test]
fn loss_metrics_document_has_required_keys() {
    let path = temp_file("loss.json");
    let doc = run_with_metrics_json(&["loss", "-"], &path);

    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some("carta.metrics.v1")
    );
    assert_eq!(doc.get("command").and_then(Value::as_str), Some("loss"));
    assert!(
        doc.get("wall_ms").and_then(Value::as_f64).is_some(),
        "wall_ms missing"
    );

    let metrics = doc
        .get("metrics")
        .and_then(Value::as_obj)
        .expect("metrics map");
    for key in [
        "engine.cache.hits",
        "engine.cache.misses",
        "engine.batch.chunks",
        "engine.batch.worker_points",
        "engine.batch.publish_flushes",
        "engine.batch.shard_waits",
        "engine.scratch.evictions",
        "rta.iterations",
        "sweep.runs",
        "sweep.points",
        "phase.load.wall_ns",
        "phase.analyze.wall_ns",
        "phase.render.wall_ns",
    ] {
        assert!(metrics.contains_key(key), "metrics missing `{key}`");
    }
    // A 14-point loss sweep analyzes at least one variant per point.
    let misses = metrics
        .get("engine.cache.misses")
        .and_then(Value::as_f64)
        .expect("counter is a number");
    assert!(misses >= 1.0, "no analyses recorded: {misses}");
    // The sweep runs through the chunked batch path at least once.
    let chunks = metrics
        .get("engine.batch.chunks")
        .and_then(Value::as_f64)
        .expect("counter is a number");
    assert!(chunks >= 1.0, "no batch chunks recorded: {chunks}");

    let derived = doc
        .get("derived")
        .and_then(Value::as_obj)
        .expect("derived map");
    for key in ["cache_hit_rate", "points_per_s"] {
        let v = derived
            .get(key)
            .and_then(Value::as_f64)
            .unwrap_or_else(|| panic!("derived missing `{key}`"));
        assert!(v.is_finite() && v >= 0.0, "derived.{key} = {v}");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn analyze_metrics_and_trace_round_trip() {
    let json_path = temp_file("analyze.json");
    let trace_path = temp_file("analyze-trace.jsonl");
    let output = carta()
        .args(["analyze", "-", "--metrics"])
        .arg("--metrics-json")
        .arg(&json_path)
        .arg("--trace")
        .arg(&trace_path)
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("== metrics =="), "{stdout}");
    assert!(stdout.contains("trace written to"), "{stdout}");

    let doc =
        json::parse(&std::fs::read_to_string(&json_path).expect("written")).expect("valid JSON");
    assert_eq!(doc.get("command").and_then(Value::as_str), Some("analyze"));

    // Every line of the trace file is standalone JSON, and the replay
    // subcommand accepts it.
    let trace = std::fs::read_to_string(&trace_path).expect("trace written");
    assert!(trace.lines().count() >= 2, "trace too short:\n{trace}");
    for line in trace.lines() {
        json::parse(line).expect("trace line is valid JSON");
    }
    let replay = carta()
        .arg("trace")
        .arg(&trace_path)
        .output()
        .expect("binary runs");
    assert!(replay.status.success());
    assert!(
        String::from_utf8_lossy(&replay.stdout).contains("rta.bus"),
        "replay misses rta.bus span"
    );
    std::fs::remove_file(&json_path).ok();
    std::fs::remove_file(&trace_path).ok();
}
