//! Golden pins for the CLI text surface.
//!
//! Every deterministic subcommand's output is committed under
//! `tests/golden/` and compared byte-for-byte. The pins exist so the
//! `carta-api` handler refactor (CLI and server as two thin frontends
//! over one request/response layer) provably cannot move a single byte
//! of the user-visible text.
//!
//! Regenerate after an intentional output change with
//! `CARTA_UPDATE_GOLDEN=1 cargo test -p carta-cli --test golden_cli`.

use carta_cli::args::ParsedArgs;
use carta_cli::commands::run;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn check(name: &str, argv: &[&str]) {
    let parsed = ParsedArgs::parse(argv.iter().copied()).expect("argv parses");
    let out = run(&parsed).unwrap_or_else(|e| panic!("`{argv:?}` failed: {e}"));
    let path = golden_dir().join(format!("{name}.txt"));
    if std::env::var_os("CARTA_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("mkdir golden");
        std::fs::write(&path, &out).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden `{}`: {e}", path.display()));
    assert_eq!(
        out,
        want,
        "`{argv:?}` drifted from {} (CARTA_UPDATE_GOLDEN=1 to re-pin)",
        path.display()
    );
}

/// Every deterministic command of the surface, pinned byte-for-byte.
/// `--jobs 1` keeps cache-statistics lines independent of the host's
/// core count; all seeds are fixed.
#[test]
fn cli_text_output_is_pinned() {
    check("help", &["help"]);
    check("generate_seed7", &["generate", "--seed", "7"]);
    check("load_builtin", &["load", "-"]);
    check("load_fd", &["load", "-", "--backend", "can-fd"]);
    check("analyze_worst", &["analyze", "-", "--jobs", "1"]);
    check(
        "analyze_best",
        &["analyze", "-", "--scenario", "best", "--jobs", "1"],
    );
    check(
        "analyze_jitter40",
        &["analyze", "-", "--jitter", "40", "--jobs", "1"],
    );
    check(
        "analyze_fd",
        &["analyze", "-", "--backend", "can-fd", "--jobs", "1"],
    );
    check(
        "analyze_sporadic10",
        &["analyze", "-", "--scenario", "sporadic:10", "--jobs", "1"],
    );
    check(
        "analyze_assume_unknown",
        &["analyze", "-", "--assume-unknown", "15", "--jobs", "1"],
    );
    check("analyze_prob", &["analyze", "-", "--prob", "--jobs", "1"]);
    check(
        "analyze_prob_fd",
        &[
            "analyze",
            "-",
            "--prob",
            "--backend",
            "can-fd",
            "--jobs",
            "1",
        ],
    );
    check("loss_prob", &["loss", "-", "--prob", "--jobs", "1"]);
    check(
        "loss_prob_fd",
        &["loss", "-", "--prob", "--backend", "can-fd", "--jobs", "1"],
    );
    check("loss_worst", &["loss", "-", "--jobs", "1"]);
    check(
        "loss_sporadic10",
        &["loss", "-", "--scenario", "sporadic:10", "--jobs", "1"],
    );
    check("sensitivity_all", &["sensitivity", "-", "--jobs", "1"]);
    check(
        "sensitivity_one",
        &[
            "sensitivity",
            "-",
            "--message",
            "clutch_torque_1",
            "--jobs",
            "1",
        ],
    );
    check("audsley_jitter25", &["audsley", "-", "--jitter", "25"]);
    check("dimension_default", &["dimension", "-", "--jobs", "1"]);
    check(
        "dimension_250_500",
        &["dimension", "-", "--rates", "250,500", "--jobs", "1"],
    );
    check(
        "simulate_gantt",
        &[
            "simulate", "-", "--millis", "100", "--seed", "42", "--errors", "7", "--gantt",
        ],
    );
    check("lint_builtin", &["lint", "-"]);
    check(
        "optimize_small",
        &[
            "optimize",
            "-",
            "--population",
            "8",
            "--generations",
            "2",
            "--jobs",
            "1",
        ],
    );
    check(
        "optimize_emit_csv",
        &[
            "optimize",
            "-",
            "--population",
            "8",
            "--generations",
            "2",
            "--emit-csv",
            "--jobs",
            "1",
        ],
    );
    check(
        "fuzz_2cases",
        &["fuzz", "--cases", "2", "--seed", "2006", "--jobs", "1"],
    );
}

/// `diff` and degraded `analyze` need scratch files; the outputs are
/// still deterministic and pinned.
#[test]
fn cli_file_commands_are_pinned() {
    let dir = std::env::temp_dir().join("carta_golden_cli");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let base = dir.join("base.csv");
    let csv =
        run(&ParsedArgs::parse(["generate", "--seed", "7"]).expect("parses")).expect("generates");
    std::fs::write(&base, &csv).expect("write");
    let flooded = dir.join("flooded.csv");
    std::fs::write(&flooded, format!("{csv}flood,0x7fa,0,8,50,,,EMS,TCU\n")).expect("write");

    let base_s = base.to_str().expect("utf8");
    let flooded_s = flooded.to_str().expect("utf8");
    check("diff_self", &["diff", base_s, base_s, "--jobs", "1"]);
    check("diff_flood", &["diff", base_s, flooded_s, "--jobs", "1"]);
    check("analyze_degraded", &["analyze", flooded_s, "--jobs", "1"]);
    std::fs::remove_dir_all(&dir).ok();
}
