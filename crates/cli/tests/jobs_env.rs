//! Pins the `CARTA_JOBS` environment handling: a malformed or zero
//! value produces one warning line on stderr (and, with metrics on, an
//! `engine.jobs.env_invalid` counter) instead of a silent fallback,
//! while valid values and the `--jobs` flag stay quiet.

use carta_obs::json::{self, Value};
use std::process::Command;

fn run_analyze(env: Option<(&str, &str)>, extra: &[&str]) -> (bool, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_carta"));
    cmd.args(["analyze", "-"]).args(extra);
    cmd.env_remove("CARTA_JOBS");
    if let Some((key, value)) = env {
        cmd.env(key, value);
    }
    let output = cmd.output().expect("binary runs");
    (
        output.status.success(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

#[test]
fn malformed_jobs_env_warns_on_stderr_and_still_runs() {
    let (ok, stderr) = run_analyze(Some(("CARTA_JOBS", "abc")), &[]);
    assert!(ok, "analyze must still succeed: {stderr}");
    assert!(
        stderr.contains("warning:") && stderr.contains("CARTA_JOBS"),
        "expected a CARTA_JOBS warning on stderr, got: {stderr:?}"
    );
    assert!(
        stderr.contains("not a valid worker count"),
        "warning must say why: {stderr:?}"
    );
}

#[test]
fn zero_jobs_env_warns_and_clamps() {
    let (ok, stderr) = run_analyze(Some(("CARTA_JOBS", "0")), &[]);
    assert!(ok, "analyze must still succeed: {stderr}");
    assert!(
        stderr.contains("zero workers"),
        "expected the clamp warning, got: {stderr:?}"
    );
}

#[test]
fn valid_jobs_env_and_explicit_flag_stay_quiet() {
    let (ok, stderr) = run_analyze(Some(("CARTA_JOBS", "2")), &[]);
    assert!(ok);
    assert!(
        !stderr.contains("CARTA_JOBS"),
        "valid env must not warn: {stderr:?}"
    );
    // An explicit --jobs wins without consulting the env at all.
    let (ok, stderr) = run_analyze(Some(("CARTA_JOBS", "abc")), &["--jobs", "1"]);
    assert!(ok);
    assert!(
        !stderr.contains("CARTA_JOBS"),
        "--jobs must bypass the env: {stderr:?}"
    );
}

#[test]
fn malformed_jobs_env_is_counted_in_metrics() {
    let dir = std::env::temp_dir().join("carta_jobs_env_test");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("metrics.json");
    let output = Command::new(env!("CARGO_BIN_EXE_carta"))
        .args(["analyze", "-", "--metrics-json"])
        .arg(&path)
        .env("CARTA_JOBS", "many")
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    let doc = json::parse(&std::fs::read_to_string(&path).expect("written")).expect("valid JSON");
    let metrics = doc
        .get("metrics")
        .and_then(Value::as_obj)
        .expect("metrics map");
    assert_eq!(
        metrics
            .get("engine.jobs.env_invalid")
            .and_then(Value::as_f64),
        Some(1.0),
        "typed note missing from --metrics output"
    );
    std::fs::remove_file(&path).ok();
}
