//! **F5 — Figure 5**: "Message Loss due to Jitter before and after
//! Optimization" — the paper's headline result. Four curves:
//!
//! * non-optimized best case (no errors, no stuffing),
//! * non-optimized worst case (burst errors + stuffing + min re-arrival
//!   deadline),
//! * optimized best case,
//! * optimized worst case,
//!
//! where "optimized" is the SPEA2 CAN-ID assignment of Sec. 4.3.
//!
//! Expected shape vs. the paper: best case flat at 0 % until ≈ 25–30 %
//! jitter then slightly rising; worst case losing messages from very
//! small jitters and rising rapidly; optimized curves at 0 % through
//! the 25 % design point and below the non-optimized ones.

use carta_bench::plot::{line_chart, Series};
use carta_bench::{case_study, print_jitter_header, print_loss_curve};
use carta_engine::prelude::Evaluator;
use carta_explore::loss::paper_jitter_grid;
use carta_explore::scenario::Scenario;
use carta_explore::sweeps::Sweeps;
use carta_optim::canid::{optimize_can_ids, OptimizeIdsConfig};
use carta_optim::spea2::Spea2Config;
use std::time::Instant;

fn main() {
    println!("=== Figure 5: message loss vs jitter, before/after optimization ===\n");
    let net = case_study();
    let grid = paper_jitter_grid();
    let eval = Evaluator::default();

    let best = eval
        .loss_vs_jitter(&net, &Scenario::best_case(), &grid)
        .expect("valid");
    let worst = eval
        .loss_vs_jitter(&net, &Scenario::worst_case(), &grid)
        .expect("valid");

    let config = OptimizeIdsConfig {
        spea2: Spea2Config {
            population: 60,
            archive: 30,
            generations: 40,
            // Same budget and seed as the figure-5 acceptance test.
            seed: 3,
            ..Spea2Config::default()
        },
        ..OptimizeIdsConfig::default()
    };
    println!(
        "running SPEA2 (population {}, archive {}, {} generations)...",
        config.spea2.population, config.spea2.archive, config.spea2.generations
    );
    let t0 = Instant::now();
    let result = optimize_can_ids(&net, &config);
    println!(
        "optimizer finished in {:?} after {} evaluations\n",
        t0.elapsed(),
        result.archive.evaluations
    );

    let opt_best = eval
        .loss_vs_jitter(&result.optimized, &Scenario::best_case(), &grid)
        .expect("valid");
    let opt_worst = eval
        .loss_vs_jitter(&result.optimized, &Scenario::worst_case(), &grid)
        .expect("valid");

    println!("loss in % of all messages:\n");
    print_jitter_header(&grid);
    print_loss_curve("non-opt. best case", &best);
    print_loss_curve("non-opt. worst case", &worst);
    print_loss_curve("optimized best case", &opt_best);
    print_loss_curve("optimized worst case", &opt_worst);

    // The figure itself, as ASCII.
    let x: Vec<String> = grid.iter().map(|r| format!("{:.0}", r * 100.0)).collect();
    let to_series = |label: &str, mark: char, curve: &carta_explore::loss::LossCurve| Series {
        label: label.into(),
        mark,
        values: curve
            .points
            .iter()
            .map(|p| Some(p.fraction() * 100.0))
            .collect(),
    };
    println!(
        "\n{}",
        line_chart(
            &x,
            &[
                to_series("non-optimized best case", 'b', &best),
                to_series("non-optimized worst case", 'W', &worst),
                to_series("optimized best case", 'o', &opt_best),
                to_series("optimized worst case", 'P', &opt_worst),
            ],
            14,
            "%",
        )
    );

    println!(
        "zero-loss prefix, worst case: non-optimized {}, optimized {}",
        worst
            .zero_loss_up_to()
            .map(|r| format!("up to {:.0} %", r * 100.0))
            .unwrap_or_else(|| "none".into()),
        opt_worst
            .zero_loss_up_to()
            .map(|r| format!("up to {:.0} %", r * 100.0))
            .unwrap_or_else(|| "none".into()),
    );
    let at25 = opt_worst.fraction_at(0.25).expect("sampled");
    println!(
        "paper claim check — optimized system at 25 % jitter with errors and stuffing: \
         {:.1} % loss (paper: \"does not loose a single message\")",
        at25 * 100.0
    );
}
