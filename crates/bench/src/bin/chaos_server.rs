//! Chaos soak + load bench for `carta-server`.
//!
//! Phase 1 (soak): a client fleet uploads sessions and analyzes them
//! while a supervisor `kill -9`s and restarts the server on the same
//! state directory. Invariants checked every cycle and at the end:
//!
//! * **zero lost acks** — every session whose upload was acknowledged
//!   (201) before a crash resolves after the restart,
//! * **zero hung clients** — every client request completes (success,
//!   typed error, or connection error) within its timeout,
//! * **bit-identity** — the post-restart `analyze` of each acked
//!   session is byte-for-byte the envelope a fresh in-process
//!   [`Handler`] produces for the same CSV.
//!
//! Phase 2 (load): offered-load sweep against a fresh server,
//! measuring requests/s, shed rate and p99 latency, written to
//! `BENCH_server.json`.
//!
//! Environment knobs: `CHAOS_CYCLES` (default 3), `CHAOS_CLIENTS`
//! (default 3), `CHAOS_UPLOADS_PER_CYCLE` (default 2),
//! `CHAOS_LOAD_REQUESTS` (default 40 per level), `CARTA_SERVER_BIN`
//! (default: sibling of this binary), `CHAOS_BENCH_OUT` (default
//! `BENCH_server.json`).

use carta_api::prelude::{Handler, Model, Request, Response, ScenarioSpec};
use carta_api::wire;
use carta_obs::json::{self, ObjectBuilder};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Path of the `carta-server` binary: an explicit override, else the
/// sibling of this executable (both live in the same target dir).
fn server_bin() -> std::path::PathBuf {
    if let Ok(path) = std::env::var("CARTA_SERVER_BIN") {
        return path.into();
    }
    let exe = std::env::current_exe().expect("own path");
    exe.parent().expect("bin dir").join("carta-server")
}

struct ServerProc {
    child: Child,
    addr: String,
}

impl ServerProc {
    fn launch(state_dir: &std::path::Path, budget: u32) -> ServerProc {
        let mut child = Command::new(server_bin())
            .env("CARTA_SERVER_ADDR", "127.0.0.1:0")
            .env("CARTA_SERVER_STATE_DIR", state_dir)
            .env("CARTA_SERVER_WORKERS", "4")
            .env("CARTA_SERVER_BUDGET", budget.to_string())
            .env("CARTA_SERVER_WINDOW_MS", "1000")
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .unwrap_or_else(|e| panic!("cannot spawn {}: {e}", server_bin().display()));
        // Re-parse the OS-chosen address from stderr on every launch:
        // fixed ports would race TIME_WAIT sockets across restarts.
        let stderr = child.stderr.take().expect("piped stderr");
        let mut lines = BufReader::new(stderr).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("stderr open until the listen line")
                .expect("readable stderr");
            if let Some(rest) = line.split("listening on http://").nth(1) {
                break rest
                    .split_whitespace()
                    .next()
                    .expect("address token")
                    .to_string();
            }
        };
        std::thread::spawn(move || for _ in lines {});
        ServerProc { child, addr }
    }

    fn kill_hard(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        self.kill_hard();
    }
}

/// One `connection: close` request. `Err` means the connection failed
/// (expected while the server is dead); a response always carries a
/// status — a request never hangs past the timeout.
fn request(
    addr: &str,
    method: &str,
    path: &str,
    tenant: Option<&str>,
    body: &str,
) -> Result<(u16, String), std::io::Error> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let tenant_header = tenant
        .map(|t| format!("x-carta-tenant: {t}\r\n"))
        .unwrap_or_default();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nhost: carta\r\nconnection: close\r\n{tenant_header}content-length: {}\r\n\r\n{body}",
        body.len()
    )?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no status line"))?
        .parse()
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status"))?;
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

fn analyze_body(id: &str) -> String {
    format!(
        r#"{{"schema":"carta.api.v1","request":"analyze","params":{{"model":{{"source":{{"kind":"session","id":"{id}"}}}},"scenario":"worst"}}}}"#
    )
}

fn generate_csv(seed: u64) -> String {
    match Handler::default()
        .handle(&Request::Generate { seed })
        .expect("generates")
    {
        Response::Matrix { csv } => csv,
        other => panic!("wrong kind {}", other.kind()),
    }
}

/// The envelope a fresh in-process handler produces for this CSV —
/// the bit-identity reference for post-restart responses.
fn reference_envelope(csv: &str) -> String {
    let resp = Handler::default()
        .handle(&Request::Analyze {
            model: Model::from_csv(csv.to_string()),
            scenario: ScenarioSpec::Worst,
        })
        .expect("reference analyze");
    wire::encode_response(&resp)
}

#[derive(Clone)]
struct AckedSession {
    tenant: String,
    id: String,
    csv: String,
}

fn main() {
    let cycles = env_u64("CHAOS_CYCLES", 3);
    let clients = env_u64("CHAOS_CLIENTS", 3);
    let uploads_per_cycle = env_u64("CHAOS_UPLOADS_PER_CYCLE", 2);
    let started = Instant::now();

    let state_dir = std::env::temp_dir().join(format!("carta-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_dir);

    // ---- Phase 1: kill -9 / restart soak ----
    let ledger: Arc<Mutex<Vec<AckedSession>>> = Arc::new(Mutex::new(Vec::new()));
    let conn_errors = Arc::new(AtomicU64::new(0));
    let mut killed = 0u64;
    println!("chaos_server: {cycles} kill -9 cycles, {clients} clients");
    let mut server = ServerProc::launch(&state_dir, 1000);
    for cycle in 0..cycles {
        // Client fleet: upload + immediately analyze, recording every
        // *acked* upload in the ledger before moving on.
        let mut fleet = Vec::new();
        for client in 0..clients {
            let addr = server.addr.clone();
            let ledger = Arc::clone(&ledger);
            let conn_errors = Arc::clone(&conn_errors);
            fleet.push(std::thread::spawn(move || {
                let tenant = format!("fleet-{client}");
                for upload in 0..uploads_per_cycle {
                    let seed = cycle * 1000 + client * 100 + upload;
                    let csv = generate_csv(seed);
                    match request(
                        &addr,
                        "POST",
                        &format!("/v1/tenants/{tenant}/sessions"),
                        None,
                        &csv,
                    ) {
                        Ok((201, body)) => {
                            let id = json::parse(&body)
                                .ok()
                                .and_then(|d| {
                                    d.get("result")?.get("id")?.as_str().map(str::to_string)
                                })
                                .expect("ack carries an id");
                            ledger.lock().expect("ledger lock").push(AckedSession {
                                tenant: tenant.clone(),
                                id: id.clone(),
                                csv,
                            });
                            // Exercise the analysis path too; any
                            // outcome is fine while the killer runs.
                            let _ = request(
                                &addr,
                                "POST",
                                "/v1/requests",
                                Some(&tenant),
                                &analyze_body(&id),
                            );
                        }
                        Ok((status, _)) => {
                            // Un-acked upload (e.g. server died before
                            // the 201): by contract it may be lost.
                            assert!(status < 600, "well-formed status even under chaos");
                        }
                        Err(_) => {
                            conn_errors.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                }
            }));
        }
        // Let the fleet get some acks in, then murder the server.
        std::thread::sleep(Duration::from_millis(150));
        server.kill_hard();
        killed += 1;
        for worker in fleet {
            worker.join().expect("no hung clients");
        }
        // Restart on the same state dir; replay must bring every
        // acked session back.
        server = ServerProc::launch(&state_dir, 1000);
        let acked = ledger.lock().expect("ledger lock").clone();
        for session in &acked {
            let (status, body) = request(
                &server.addr,
                "POST",
                "/v1/requests",
                Some(&session.tenant),
                &analyze_body(&session.id),
            )
            .expect("server is up");
            assert_eq!(
                status, 200,
                "cycle {cycle}: acked session {}/{} lost after restart: {body}",
                session.tenant, session.id
            );
            assert_eq!(
                body,
                reference_envelope(&session.csv),
                "cycle {cycle}: {}/{} not bit-identical after restart",
                session.tenant,
                session.id
            );
        }
        println!(
            "  cycle {}/{cycles}: {} acked sessions verified bit-identical after kill -9",
            cycle + 1,
            acked.len()
        );
    }
    let acked_total = ledger.lock().expect("ledger lock").len() as u64;
    assert!(acked_total > 0, "the soak must ack at least one session");

    // ---- Phase 2: offered-load sweep ----
    // Fresh server with the production admission budget (32/s) so the
    // shed column reflects real admission control, not the soak's
    // wide-open window.
    server.kill_hard();
    server = ServerProc::launch(&state_dir, 32);
    let load_requests = env_u64("CHAOS_LOAD_REQUESTS", 40);
    let analyze = analyze_case_study_body();
    // Warm the single bench tenant's evaluator cache once so the
    // sweep measures the service layer, not first-point compilation.
    let _ = request(
        &server.addr,
        "POST",
        "/v1/requests",
        Some("bench"),
        &analyze,
    );
    let mut levels = Vec::new();
    for &concurrency in &[1u64, 4, 8] {
        let addr = server.addr.clone();
        let latencies: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
        let shed = Arc::new(AtomicU64::new(0));
        let ok = Arc::new(AtomicU64::new(0));
        let level_started = Instant::now();
        let workers: Vec<_> = (0..concurrency)
            .map(|w| {
                let addr = addr.clone();
                let latencies = Arc::clone(&latencies);
                let shed = Arc::clone(&shed);
                let ok = Arc::clone(&ok);
                let analyze = analyze.clone();
                std::thread::spawn(move || {
                    for i in 0..load_requests {
                        // Alternate a heavy request in so admission
                        // control has something to shed under load.
                        let body = if i % 4 == 3 {
                            loss_case_study_body()
                        } else {
                            analyze.clone()
                        };
                        let t0 = Instant::now();
                        match request(&addr, "POST", "/v1/requests", Some("bench"), &body) {
                            Ok((200, _)) => {
                                ok.fetch_add(1, Ordering::SeqCst);
                            }
                            Ok((429, _)) => {
                                shed.fetch_add(1, Ordering::SeqCst);
                            }
                            Ok((status, body)) => {
                                panic!("worker {w}: unexpected {status}: {body}")
                            }
                            Err(e) => panic!("worker {w}: connection failed: {e}"),
                        }
                        latencies
                            .lock()
                            .expect("latency lock")
                            .push(t0.elapsed().as_secs_f64() * 1000.0);
                    }
                })
            })
            .collect();
        for worker in workers {
            worker.join().expect("no hung load workers");
        }
        let wall_s = level_started.elapsed().as_secs_f64();
        let mut lat = latencies.lock().expect("latency lock").clone();
        lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let total = lat.len() as u64;
        let p50 = lat[((lat.len() as f64 * 0.50) as usize).min(lat.len() - 1)];
        let p99 = lat[((lat.len() as f64 * 0.99) as usize).min(lat.len() - 1)];
        let level = ObjectBuilder::new()
            .uint("concurrency", concurrency)
            .uint("requests", total)
            .uint("ok", ok.load(Ordering::SeqCst))
            .uint("shed", shed.load(Ordering::SeqCst))
            .num("requests_per_sec", total as f64 / wall_s)
            .num(
                "shed_rate",
                shed.load(Ordering::SeqCst) as f64 / total as f64,
            )
            .num("p50_ms", p50)
            .num("p99_ms", p99)
            .build();
        println!(
            "  load c={concurrency}: {:.0} req/s, shed {:.0}%, p99 {:.1} ms",
            total as f64 / wall_s,
            100.0 * shed.load(Ordering::SeqCst) as f64 / total as f64,
            p99
        );
        levels.push(level);
    }

    // ---- Report ----
    let doc = ObjectBuilder::new()
        .string("bench", "chaos_server")
        .string(
            "command",
            "cargo run --release -p carta-bench --bin chaos_server",
        )
        .raw(
            "soak",
            &ObjectBuilder::new()
                .uint("kill9_cycles", killed)
                .uint("clients", clients)
                .uint("acked_sessions", acked_total)
                .uint("lost_acked_sessions", 0)
                .uint("hung_clients", 0)
                .uint(
                    "connection_errors_during_outage",
                    conn_errors.load(Ordering::SeqCst),
                )
                .bool("post_restart_bit_identical", true)
                .build(),
        )
        .raw("load", &format!("[{}]", levels.join(",")))
        .num("wall_s", started.elapsed().as_secs_f64())
        .build();
    let out = std::env::var("CHAOS_BENCH_OUT").unwrap_or_else(|_| "BENCH_server.json".into());
    std::fs::write(&out, format!("{doc}\n")).expect("writes the bench report");
    println!(
        "chaos_server: PASS — {killed} kill -9 cycles, {acked_total} acked sessions, zero lost; report in {out}"
    );
    let _ = std::fs::remove_dir_all(&state_dir);
}

fn analyze_case_study_body() -> String {
    wire::encode_request(&Request::Analyze {
        model: Model::case_study(),
        scenario: ScenarioSpec::Worst,
    })
}

fn loss_case_study_body() -> String {
    // No `model` param → the case-study default, same as the CLI.
    r#"{"schema":"carta.api.v1","request":"loss","params":{"scenario":"worst"}}"#.to_string()
}
