//! **F6 — Figure 6**: "Duality of Requirements and Guarantees between
//! OEMs and Suppliers". Derives all four artifacts on the case study
//! and closes both check loops.

use carta_bench::case_study;
use carta_contract::compat::{check, check_freshness};
use carta_contract::duality::{
    oem_receive_guarantees, oem_send_requirements, supplier_send_datasheet,
};
use carta_core::time::Time;
use carta_ecu::rta::EcuAnalysisConfig;
use carta_ecu::task::{OsekOverhead, Priority, Task};
use carta_explore::jitter::with_assumed_unknown_jitter;
use carta_explore::scenario::Scenario;

fn main() {
    println!("=== Figure 6: requirements/guarantees duality ===\n");
    let net = with_assumed_unknown_jitter(&case_study(), 0.15);

    // --- OEM -> supplier: required send behavior -------------------------
    // Budgets are derived under the error-free scenario: the
    // *non-optimized* identifier assignment already misses deadlines
    // under burst errors at any jitter (Fig. 5 worst case), so it
    // offers no budget to give away; worst-case budgets exist only
    // after the Sec. 4.3 optimization (see fig5_loss).
    let tcu = 1; // node index of the TCU in the generated matrix
    let req = oem_send_requirements(&net, &Scenario::best_case(), tcu, 0.9, 0.8).expect("valid");
    println!("required by OEM (send jitter budgets for the TCU):");
    for (name, bound) in req.iter().take(6) {
        println!("  {name:<22} {bound}");
    }
    if req.len() > 6 {
        println!("  ... ({} more)", req.len() - 6);
    }

    // --- supplier: guaranteed send behavior ------------------------------
    let tasks = vec![
        Task::periodic(
            "shift_ctrl",
            Priority(3),
            Time::from_ms(5),
            Time::from_us(200),
            Time::from_us(800),
        )
        .cooperative(Time::from_us(400)),
        Task::periodic(
            "comm_tx",
            Priority(2),
            Time::from_ms(10),
            Time::from_us(80),
            Time::from_us(350),
        ),
        Task::periodic(
            "diag",
            Priority(1),
            Time::from_ms(100),
            Time::from_us(50),
            Time::from_ms(1),
        ),
    ];
    let overhead = OsekOverhead {
        activate: Time::from_us(15),
        terminate: Time::from_us(8),
        preempt: Time::from_us(12),
    };
    // The supplier maps its comm task to every message it owns.
    let tcu_messages: Vec<String> = net
        .messages()
        .iter()
        .filter(|m| m.sender == tcu)
        .map(|m| m.name.clone())
        .collect();
    let mapping: Vec<(usize, &str)> = tcu_messages.iter().map(|n| (1usize, n.as_str())).collect();
    let ds = supplier_send_datasheet(
        "TCU supplier",
        &tasks,
        &EcuAnalysisConfig {
            overhead,
            ..EcuAnalysisConfig::default()
        },
        &mapping,
    )
    .expect("bounded");
    println!("\nguaranteed by supplier (from its private ECU analysis):");
    for (name, model) in ds.iter().take(6) {
        println!("  {name:<22} {model}");
    }

    // --- check loop 1: supplier guarantee vs OEM requirement -------------
    let compat = check(&ds, &req);
    println!("\ncheck 1 — supplier send guarantees vs OEM requirements:");
    println!(
        "  {} of {} satisfied{}",
        req.len() - compat.failures().len(),
        req.len(),
        if compat.all_satisfied() {
            " — CLOSED"
        } else {
            ""
        }
    );
    for name in compat.failures() {
        println!("  needs renegotiation: {name}");
    }

    // --- check loop 2: OEM arrival guarantee vs supplier freshness -------
    let (arrivals, unguaranteed) =
        oem_receive_guarantees(&net, &Scenario::best_case()).expect("valid");
    println!(
        "\ncheck 2 — OEM arrival guarantees vs supplier freshness needs \
         ({} messages guaranteed, {} not guaranteeable):",
        arrivals.len(),
        unguaranteed.len()
    );
    let mut ok = 0;
    let mut total = 0;
    for (name, model) in arrivals.iter() {
        // Receivers want data at most 2 periods + 20 % stale.
        let bound = model.period().scale(2.2);
        total += 1;
        if check_freshness(bound, model).is_ok() {
            ok += 1;
        } else {
            println!("  {name}: freshness {bound} NOT met by {model}");
        }
    }
    println!("  {ok} of {total} freshness requirements satisfied");
}
