//! **F4 — Figure 4**: "Jitter-Sensitive and Robust Messages" — the
//! worst-case response time of selected messages as a function of the
//! assumed jitter ratio, with the paper's robust → very sensitive
//! classification.

use carta_bench::case_study;
use carta_bench::plot::{line_chart, Series as PlotSeries};
use carta_engine::prelude::Evaluator;
use carta_explore::loss::paper_jitter_grid;
use carta_explore::scenario::Scenario;
use carta_explore::sensitivity::SensitivityClass;
use carta_explore::sweeps::Sweeps;

fn main() {
    println!("=== Figure 4: response time vs jitter ===\n");
    let net = case_study();
    let grid = paper_jitter_grid();
    let series = Evaluator::default()
        .response_vs_jitter(&net, &Scenario::worst_case(), &grid, None)
        .expect("valid");

    // Pick representatives of each class, like the paper's figure.
    let mut by_class: std::collections::BTreeMap<SensitivityClass, Vec<&_>> =
        std::collections::BTreeMap::new();
    for s in &series {
        by_class.entry(s.classify()).or_default().push(s);
    }

    print!("{:<26} |", "jitter in % of period");
    for r in &grid {
        print!(" {:>7.0}", r * 100.0);
    }
    println!("\n{}", "-".repeat(28 + 8 * grid.len()));
    for (class, members) in &by_class {
        for s in members.iter().take(2) {
            print!("{:<26} |", format!("{} [{}]", s.message, class));
            for (_, r) in &s.points {
                match r {
                    Some(t) => print!(" {:>6.2}ms", t.as_ms_f64()),
                    None => print!(" {:>7}", "inf"),
                }
            }
            println!();
        }
    }

    // The figure itself: one representative per class.
    let x: Vec<String> = grid.iter().map(|r| format!("{:.0}", r * 100.0)).collect();
    let marks = ['r', 'm', 's', 'V'];
    let mut plot_series = Vec::new();
    for ((class, members), mark) in by_class.iter().zip(marks) {
        if let Some(s) = members.first() {
            plot_series.push(PlotSeries {
                label: format!("{} [{}]", s.message, class),
                mark,
                values: s
                    .points
                    .iter()
                    .map(|(_, r)| r.map(|t| t.as_ms_f64()))
                    .collect(),
            });
        }
    }
    println!("\n{}", line_chart(&x, &plot_series, 14, "ms"));

    println!("class census over all {} messages:", series.len());
    for (class, members) in &by_class {
        println!("  {class:<20} {:>3}", members.len());
    }
    println!(
        "\nshape check (paper): response times grow monotonically with jitter;\n\
         some messages stay flat (robust), others explode (very sensitive)."
    );
}
