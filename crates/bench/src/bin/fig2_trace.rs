//! **F2 — Figure 2**: "Message Jitters, Burst, and Errors Result in
//! Complex Communication Patterns". Simulates the case-study bus with
//! jittered releases and injected burst errors, then renders a window
//! of the bus occupancy around an error burst as an ASCII Gantt chart.

use carta_bench::case_study;
use carta_core::time::Time;
use carta_explore::jitter::with_assumed_unknown_jitter;
use carta_sim::engine::{simulate, SimConfig, SimStuffing};
use carta_sim::gantt::{render, GanttConfig};
use carta_sim::inject::BurstInjection;
use carta_sim::trace::TraceKind;

fn main() {
    println!("=== Figure 2: complex communication pattern ===\n");
    let net = with_assumed_unknown_jitter(&case_study(), 0.20);
    let injector = BurstInjection {
        burst_len: 3,
        intra_gap: Time::from_us(200),
        inter_burst: Time::from_us(25_300),
        phase: Time::from_ms(2),
    };
    let sim = simulate(
        &net,
        &injector,
        &SimConfig {
            horizon: Time::from_ms(500),
            stuffing: SimStuffing::Random,
            ..SimConfig::default()
        },
    );

    // Center the window on the first error hit so bursts, error frames
    // and retransmissions are all visible.
    let first_hit = sim
        .trace
        .events()
        .iter()
        .find(|e| e.kind == TraceKind::ErrorHit)
        .map(|e| e.start)
        .unwrap_or(Time::from_ms(2));
    let from = first_hit.saturating_sub(Time::from_ms(2));
    let to = from + Time::from_ms(10);

    // Label only the messages that actually appear in the window.
    let mut present: Vec<usize> = sim.trace.window(from, to).map(|e| e.message).collect();
    present.sort_unstable();
    present.dedup();
    let labels: Vec<String> = net
        .messages()
        .iter()
        .enumerate()
        .map(|(i, m)| {
            if present.contains(&i) {
                m.name.clone()
            } else {
                String::new()
            }
        })
        .collect();

    let gantt = render(
        &sim.trace,
        &labels,
        &GanttConfig {
            from,
            to,
            columns: 100,
        },
    );
    for line in gantt.lines() {
        let body: String = line.chars().skip_while(|c| *c != '|').collect();
        if !line.starts_with(' ') || body.chars().any(|c| "#Rx".contains(c)) {
            println!("{line}");
        }
    }
    println!("\nlegend: # transmission, R retransmission, x error frame, . idle");
    println!(
        "run stats: {} error hits in 500 ms, observed utilization {:.1} %, \
         {} buffer overwrites",
        sim.trace.error_count(),
        sim.observed_utilization() * 100.0,
        sim.total_overwritten()
    );
}
