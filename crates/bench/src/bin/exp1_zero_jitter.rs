//! **E1 — Sec. 4 experiment 1**: "we assumed zero jitters and verified
//! that all messages will meet their deadlines", and the point the
//! paper stresses: such what-if observations run "within minutes,
//! without any simulation or test equipment" — here, microseconds.

use carta_bench::case_study;
use carta_explore::jitter::with_jitter_ratio;
use carta_explore::scenario::Scenario;
use std::time::Instant;

fn main() {
    println!("=== Experiment 1: zero jitters, no errors ===\n");
    let net = with_jitter_ratio(&case_study(), 0.0);
    let t0 = Instant::now();
    let report = Scenario::best_case().analyze(&net).expect("valid");
    let elapsed = t0.elapsed();

    println!(
        "{:<20} {:>10} {:>10} {:>8}",
        "message (10 slowest responses)", "WCRT", "deadline", "ok"
    );
    let mut rows: Vec<_> = report.messages.iter().collect();
    rows.sort_by_key(|m| std::cmp::Reverse(m.outcome.wcrt()));
    for m in rows.iter().take(10) {
        println!(
            "{:<20} {:>10} {:>10} {:>8}",
            m.name,
            m.outcome.wcrt().map(|t| t.to_string()).unwrap_or_default(),
            m.deadline.to_string(),
            if m.misses_deadline() { "MISS" } else { "yes" }
        );
    }
    println!(
        "\nresult: {} / {} deadlines met -> {}",
        report.messages.len() - report.missed_count(),
        report.messages.len(),
        if report.schedulable() {
            "VERIFIED (as in the paper)"
        } else {
            "FAILED"
        }
    );
    println!("analysis wall time: {elapsed:?} (paper: \"within minutes\")");
}
