//! **E2 — Sec. 4 experiment 2**: realistic jitters for the unknown
//! messages (known ones keep their 10–30 % datasheet values) under the
//! two practically useful error models the paper cites: sporadic
//! (MTBF-style, ref. \[7\]) and burst (ref. \[8\]).

use carta_bench::case_study;
use carta_core::time::Time;
use carta_explore::jitter::with_assumed_unknown_jitter;
use carta_explore::scenario::Scenario;

fn main() {
    println!("=== Experiment 2: realistic jitters + error models ===\n");
    let net = case_study();

    println!(
        "{:<34} {:>22} {:>8} {:>12}",
        "scenario", "assumed jitter (unknown)", "lost", "max WCRT"
    );
    for assumed in [0.10, 0.20, 0.30] {
        let variant = with_assumed_unknown_jitter(&net, assumed);
        for scenario in [
            Scenario::best_case(),
            Scenario::sporadic_errors(Time::from_ms(10)),
            Scenario::sporadic_errors(Time::from_ms(2)),
            Scenario::worst_case(),
        ] {
            let report = scenario.analyze(&variant).expect("valid");
            println!(
                "{:<34} {:>21.0}% {:>5} /{:>2} {:>12}",
                scenario.name,
                assumed * 100.0,
                report.missed_count(),
                report.messages.len(),
                report
                    .max_wcrt()
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "unbounded".into())
            );
        }
        println!();
    }
    println!(
        "observation (paper Sec. 4): error models and bit stuffing dominate the loss\n\
         figures once jitters are realistic; the zero-jitter simplification has\n\
         limited practical relevance."
    );
}
