//! **A3 — baseline comparison** for the Sec. 4.3 optimization: the
//! original (legacy) identifier assignment vs. three repair strategies:
//!
//! * **rate-monotonic** — the textbook static rule,
//! * **Audsley OPA** — optimal *feasibility* at the 25 % design point,
//! * **SPEA2** — the paper's multi-objective search, which also trades
//!   off high-jitter loss and robustness.

use carta_bench::{case_study, print_jitter_header, print_loss_curve};
use carta_can::opa::audsley_assignment;
use carta_engine::prelude::Evaluator;
use carta_explore::jitter::with_jitter_ratio;
use carta_explore::loss::paper_jitter_grid;
use carta_explore::scenario::Scenario;
use carta_explore::sweeps::Sweeps;
use carta_optim::canid::{optimize_can_ids, CanIdProblem, OptimizeIdsConfig};
use carta_optim::spea2::Spea2Config;

fn main() {
    println!("=== A3: identifier-assignment baselines (worst-case scenario) ===\n");
    let net = case_study();
    let grid = paper_jitter_grid();
    let scenario = Scenario::worst_case();

    // Rate monotonic.
    let problem = CanIdProblem::new(&net, scenario.clone(), vec![0.25]);
    let rm = problem.apply(&problem.rate_monotonic());

    // Audsley at the 25 % design point.
    let prepared = scenario.apply(&with_jitter_ratio(&net, 0.25));
    let opa = audsley_assignment(
        &prepared,
        scenario.errors.model().as_ref(),
        &scenario.analysis_config(),
    )
    .expect("valid network");
    let opa_net = opa.as_ref().map(|order| order.apply(&net));
    println!(
        "Audsley OPA at 25 % jitter: {}",
        if opa.is_some() {
            "feasible order found"
        } else {
            "infeasible"
        }
    );

    // SPEA2 with the experiment budget.
    let result = optimize_can_ids(
        &net,
        &OptimizeIdsConfig {
            spea2: Spea2Config {
                population: 60,
                archive: 30,
                generations: 40,
                ..Spea2Config::default()
            },
            ..OptimizeIdsConfig::default()
        },
    );

    println!();
    print_jitter_header(&grid);
    let eval = Evaluator::default();
    let orig = eval.loss_vs_jitter(&net, &scenario, &grid).expect("valid");
    print_loss_curve("original (legacy IDs)", &orig);
    let rm_curve = eval.loss_vs_jitter(&rm, &scenario, &grid).expect("valid");
    print_loss_curve("rate-monotonic", &rm_curve);
    if let Some(opa_net) = &opa_net {
        let c = eval
            .loss_vs_jitter(opa_net, &scenario, &grid)
            .expect("valid");
        print_loss_curve("Audsley OPA @25%", &c);
    }
    let ga = eval
        .loss_vs_jitter(&result.optimized, &scenario, &grid)
        .expect("valid");
    print_loss_curve("SPEA2 (paper Sec. 4.3)", &ga);

    println!(
        "\nreading: OPA proves *feasibility* at the design point (zero loss at 25 %),\n\
         but only the multi-objective search also keeps the high-jitter tail and the\n\
         robustness margins under control — the reason the paper uses a GA."
    );
}
