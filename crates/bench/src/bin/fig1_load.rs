//! **F1 — Figure 1**: the simple load analysis example. Four ECUs
//! producing 100/50/20/10 kbit/s on a 500 kbit/s CAN bus: a 36 % load.
//! Also prints the load of the case-study matrix under both stuffing
//! assumptions, and demonstrates why the load model alone cannot decide
//! schedulability (paper Sec. 3.1).

use carta_bench::case_study;
use carta_can::frame::StuffingMode;
use carta_core::load::{bus_load, TrafficSource};
use carta_core::time::Time;
use carta_explore::jitter::with_jitter_ratio;
use carta_explore::scenario::Scenario;

fn main() {
    println!("=== Figure 1: simple load analysis ===\n");
    // The paper's example: express each ECU's average rate as frames.
    let sources = [
        (
            "ECU 1 (100 kbit/s)",
            TrafficSource::new(1000, Time::from_ms(10)),
        ),
        (
            "ECU 2 (50 kbit/s)",
            TrafficSource::new(1000, Time::from_ms(20)),
        ),
        (
            "ECU 3 (20 kbit/s)",
            TrafficSource::new(1000, Time::from_ms(50)),
        ),
        (
            "ECU 4 (10 kbit/s)",
            TrafficSource::new(1000, Time::from_ms(100)),
        ),
    ];
    for (name, s) in &sources {
        println!("  {name:<22} {:>8.1} kbit/s", s.bits_per_second() / 1000.0);
    }
    let report = bus_load(sources.iter().map(|(_, s)| *s), 500_000);
    println!(
        "  total demand {:.0} kbit/s on 500 kbit/s -> load {:.0} %  (paper: 180 kbit/s ~ 36 %)\n",
        report.demand_bps / 1000.0,
        report.utilization_percent()
    );

    println!("=== case-study matrix load ===\n");
    let net = case_study();
    let worst = net.load(StuffingMode::WorstCase);
    let best = net.load(StuffingMode::None);
    println!(
        "  worst-case stuffing: {:.1} %",
        worst.utilization_percent()
    );
    println!("  no stuffing:         {:.1} %", best.utilization_percent());
    for limit in [0.40, 0.60] {
        println!(
            "  OEM limit {:.0} %: {}",
            limit * 100.0,
            if worst.exceeds_limit(limit) {
                "EXCEEDED"
            } else {
                "ok"
            }
        );
    }

    println!("\n=== why load is not enough (Sec. 3.1) ===\n");
    // Same load, different jitter assumptions: the load model cannot
    // tell these apart, the schedulability analysis can.
    for ratio in [0.0, 0.40] {
        let variant = with_jitter_ratio(&net, ratio);
        let load = variant.load(StuffingMode::WorstCase).utilization_percent();
        let report = Scenario::worst_case().analyze(&variant).expect("valid");
        println!(
            "  jitter {:>3.0} %: load {:.1} % (unchanged), deadline misses {:>2} of {}",
            ratio * 100.0,
            load,
            report.missed_count(),
            report.messages.len()
        );
    }
}
