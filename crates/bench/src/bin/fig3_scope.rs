//! **F3 — Figure 3**: "Information Required for Reliable Schedulability
//! Analysis" and the OEM's actual scope (the gray area). Prints the
//! readiness report: what the OEM knows first-hand, what must be
//! covered by assumptions, and how datasheets shrink the gap.

use carta_bench::{case_study, case_study_matrix};
use carta_contract::scope::{analysis_readiness, InformationScope};

fn main() {
    println!("=== Figure 3: information scopes ===\n");
    let matrix = case_study_matrix();
    let net = case_study();
    let known: Vec<String> = matrix
        .rows
        .iter()
        .filter(|r| r.jitter_us.is_some())
        .map(|r| r.name.clone())
        .collect();

    println!(
        "OEM first-hand knowledge: K-Matrix statics ({} messages), controller types, \
         {} published send jitters\n",
        matrix.rows.len(),
        known.len()
    );

    let mut scope = InformationScope::oem(known);
    let report = analysis_readiness(&scope, &net);
    println!("--- initial readiness ---");
    println!(
        "can run: {} | complete: {} | assumptions needed: {}",
        report.can_run(),
        report.is_complete(),
        report.assumptions_needed.len()
    );
    for a in report.assumptions_needed.iter().take(6) {
        println!("  needs assumption: {a}");
    }
    println!(
        "  ... ({} more)\n",
        report.assumptions_needed.len().saturating_sub(6)
    );

    // Suppliers publish datasheets for everything; the error model and
    // flashing profile are agreed contractually.
    for m in net.messages() {
        scope.learn_jitter(&m.name);
    }
    scope.error_model = true;
    scope.flashing_profile = true;
    let report = analysis_readiness(&scope, &net);
    println!("--- after all datasheets arrived ---");
    print!("{report}");
}
